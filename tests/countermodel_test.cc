#include <gtest/gtest.h>

#include "constraints/checker.h"
#include "constraints/constraint_parser.h"
#include "implication/countermodel.h"
#include "model/structural_validator.h"

namespace xic {
namespace {

ConstraintSet LuSigma(const std::string& text) {
  Result<ConstraintSet> sigma = ParseConstraintSet(text, Language::kLu);
  EXPECT_TRUE(sigma.ok()) << sigma.status();
  return sigma.value();
}

TableRow Row(std::initializer_list<std::pair<std::string, AttrValue>> kv) {
  TableRow row;
  for (const auto& [k, v] : kv) row[k] = v;
  return row;
}

TEST(TableInstance, SatisfiesKeys) {
  TableInstance inst;
  inst.tables["r"] = {Row({{"k", {"1"}}}), Row({{"k", {"2"}}})};
  EXPECT_TRUE(Satisfies(inst, Constraint::UnaryKey("r", "k")));
  inst.tables["r"].push_back(Row({{"k", {"1"}}}));
  EXPECT_FALSE(Satisfies(inst, Constraint::UnaryKey("r", "k")));
  // Multi-attribute keys.
  TableInstance multi;
  multi.tables["r"] = {Row({{"a", {"1"}}, {"b", {"1"}}}),
                       Row({{"a", {"1"}}, {"b", {"2"}}})};
  EXPECT_TRUE(Satisfies(multi, Constraint::Key("r", {"a", "b"})));
  EXPECT_FALSE(Satisfies(multi, Constraint::Key("r", {"a"})));
}

TEST(TableInstance, SatisfiesForeignKeys) {
  TableInstance inst;
  inst.tables["e"] = {Row({{"f", {"1"}}})};
  inst.tables["p"] = {Row({{"k", {"1"}}}), Row({{"k", {"2"}}})};
  EXPECT_TRUE(
      Satisfies(inst, Constraint::UnaryForeignKey("e", "f", "p", "k")));
  inst.tables["e"].push_back(Row({{"f", {"9"}}}));
  EXPECT_FALSE(
      Satisfies(inst, Constraint::UnaryForeignKey("e", "f", "p", "k")));
}

TEST(TableInstance, SatisfiesSetForeignKeys) {
  TableInstance inst;
  inst.tables["r"] = {Row({{"refs", {"1", "2"}}})};
  inst.tables["p"] = {Row({{"k", {"1"}}}), Row({{"k", {"2"}}})};
  EXPECT_TRUE(
      Satisfies(inst, Constraint::SetForeignKey("r", "refs", "p", "k")));
  inst.tables["r"].push_back(Row({{"refs", {"3"}}}));
  EXPECT_FALSE(
      Satisfies(inst, Constraint::SetForeignKey("r", "refs", "p", "k")));
  // Empty set references are fine.
  TableInstance empty;
  empty.tables["r"] = {Row({{"refs", {}}})};
  empty.tables["p"] = {};
  EXPECT_TRUE(
      Satisfies(empty, Constraint::SetForeignKey("r", "refs", "p", "k")));
}

TEST(TableInstance, SatisfiesInverse) {
  // Typed semantics: containments plus mutual membership.
  Constraint inv = Constraint::InverseU("a", "k", "r", "b", "k2", "s");
  TableInstance good;
  good.tables["a"] = {Row({{"k", {"a1"}}, {"r", {"b1"}}})};
  good.tables["b"] = {Row({{"k2", {"b1"}}, {"s", {"a1"}}})};
  EXPECT_TRUE(Satisfies(good, inv));

  // Missing back-reference.
  TableInstance asym;
  asym.tables["a"] = {Row({{"k", {"a1"}}, {"r", {"b1"}}})};
  asym.tables["b"] = {Row({{"k2", {"b1"}}, {"s", {}}})};
  EXPECT_FALSE(Satisfies(asym, inv));

  // Untyped garbage reference violates the containment half.
  TableInstance garbage;
  garbage.tables["a"] = {Row({{"k", {"a1"}}, {"r", {"zzz"}}})};
  garbage.tables["b"] = {Row({{"k2", {"b1"}}, {"s", {}}})};
  EXPECT_FALSE(Satisfies(garbage, inv));
}

TEST(TableSchema, InfersSetValuedness) {
  ConstraintSet sigma = LuSigma(R"(
    key a.k
    sfk a.refs -> b.k2
    key b.k2
  )");
  TableSchema schema = TableSchema::Infer(
      sigma, Constraint::UnaryKey("a", "k"));
  EXPECT_FALSE(schema.attrs["a"]["k"]);
  EXPECT_TRUE(schema.attrs["a"]["refs"]);
  EXPECT_FALSE(schema.attrs["b"]["k2"]);
}

TEST(EnumerateCountermodel, FindsKeyCountermodel) {
  // Nothing implies that a.x is a key.
  ConstraintSet sigma = LuSigma("key a.k");
  std::optional<TableInstance> cm =
      EnumerateCountermodel(sigma, Constraint::UnaryKey("a", "x"));
  ASSERT_TRUE(cm.has_value());
  EXPECT_TRUE(SatisfiesAll(*cm, sigma));
  EXPECT_FALSE(Satisfies(*cm, Constraint::UnaryKey("a", "x")));
}

TEST(EnumerateCountermodel, RespectsImplication) {
  // a.x <= b.y implies key b.y (UFK-K): no countermodel exists.
  ConstraintSet sigma = LuSigma("key b.y; fk a.x -> b.y");
  EXPECT_FALSE(
      EnumerateCountermodel(sigma, Constraint::UnaryKey("b", "y"))
          .has_value());
  // And transitivity: a.x <= c.z given the chain.
  ConstraintSet chain = LuSigma("key b.y; key c.z; fk a.x -> b.y; fk b.y -> c.z");
  EXPECT_FALSE(EnumerateCountermodel(
                   chain, Constraint::UnaryForeignKey("a", "x", "c", "z"))
                   .has_value());
  // But not the reverse.
  EXPECT_TRUE(EnumerateCountermodel(
                  chain, Constraint::UnaryForeignKey("c", "z", "a", "x"))
                  .has_value());
}

TEST(EnumerateCountermodel, WitnessesFiniteDivergence) {
  // The divergence family of Corollary 3.3: finitely implied constraints
  // admit no finite countermodel even though unrestricted implication
  // fails. Bounded enumeration agrees with the finite-implication solver.
  ConstraintSet sigma = LuSigma(R"(
    key t.a; key t.b
    key u.c; key u.d
    fk t.a -> u.c
    fk u.d -> t.b
  )");
  Constraint reversed = Constraint::UnaryForeignKey("u", "c", "t", "a");
  EnumerationBounds bounds;
  bounds.max_rows_per_type = 2;
  bounds.num_values = 3;
  EXPECT_FALSE(EnumerateCountermodel(sigma, reversed, bounds).has_value());
}

TEST(EnumerateCountermodel, BoundsCapRespected) {
  ConstraintSet sigma = LuSigma("key a.k");
  EnumerationBounds bounds;
  bounds.max_instances = 1;  // give up immediately
  // With the cap hit, no countermodel is reported (sound "no answer").
  std::optional<TableInstance> cm = EnumerateCountermodel(
      sigma, Constraint::UnaryKey("a", "k"), bounds);
  EXPECT_FALSE(cm.has_value());
}

TEST(LiftToDocument, ProducesValidDocuments) {
  ConstraintSet sigma = LuSigma("key a.k; sfk a.refs -> b.k2; key b.k2");
  Constraint phi = Constraint::UnaryKey("b", "k2");
  TableSchema schema = TableSchema::Infer(sigma, phi);
  TableInstance inst;
  inst.tables["a"] = {Row({{"k", {"1"}}, {"refs", {"x", "y"}}})};
  inst.tables["b"] = {Row({{"k2", {"x"}}}), Row({{"k2", {"y"}}})};
  Result<LiftedDocument> doc = LiftToDocument(inst, schema);
  ASSERT_TRUE(doc.ok()) << doc.status();
  StructuralValidator validator(doc.value().dtd);
  ValidationReport report = validator.Validate(doc.value().tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
  // The document satisfies sigma under the real checker too.
  ConstraintChecker checker(doc.value().dtd, sigma);
  EXPECT_TRUE(checker.Check(doc.value().tree).ok());
}

TEST(LiftToDocument, AgreesWithTableSatisfaction) {
  // Satisfaction on the table abstraction coincides with satisfaction on
  // the lifted document (the abstraction's correctness claim).
  ConstraintSet sigma = LuSigma("key a.k");
  Constraint phi = Constraint::UnaryKey("a", "x");
  std::optional<TableInstance> cm = EnumerateCountermodel(sigma, phi);
  ASSERT_TRUE(cm.has_value());
  TableSchema schema = TableSchema::Infer(sigma, phi);
  Result<LiftedDocument> doc = LiftToDocument(*cm, schema);
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma_and_phi = sigma;
  sigma_and_phi.constraints.push_back(phi);
  ConstraintChecker checker(doc.value().dtd, sigma_and_phi);
  ConstraintReport report = checker.Check(doc.value().tree);
  // Exactly phi (the last constraint) is violated.
  ASSERT_FALSE(report.ok());
  for (const ConstraintViolation& v : report.violations) {
    EXPECT_EQ(v.constraint_index, sigma.constraints.size());
  }
}

TEST(EnumerateCountermodel, ZeroRowBoundLeavesOnlyTheEmptyInstance) {
  // max_rows_per_type = 0: every extent is empty, so keys hold vacuously
  // and no constraint can be falsified -- a sound "no countermodel
  // within bounds", not an error.
  ConstraintSet sigma = LuSigma("key a.k");
  EnumerationBounds bounds;
  bounds.max_rows_per_type = 0;
  EnumerationOutcome outcome = EnumerateCountermodelBounded(
      sigma, Constraint::UnaryKey("a", "x"), bounds);
  EXPECT_FALSE(outcome.countermodel.has_value());
  EXPECT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_GE(outcome.inspected, 1u) << "the empty instance itself";
}

TEST(EnumerateCountermodel, DomainSizeOneStillFalsifiesKeys) {
  // num_values = 1: two rows must collide, which is exactly a key
  // countermodel; but a single-row bound on top makes keys unfalsifiable.
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  EnumerationBounds bounds;
  bounds.num_values = 1;
  EnumerationOutcome outcome = EnumerateCountermodelBounded(
      sigma, Constraint::UnaryKey("a", "x"), bounds);
  ASSERT_TRUE(outcome.countermodel.has_value());
  EXPECT_FALSE(Satisfies(*outcome.countermodel,
                         Constraint::UnaryKey("a", "x")));

  bounds.max_rows_per_type = 1;
  EnumerationOutcome capped = EnumerateCountermodelBounded(
      sigma, Constraint::UnaryKey("a", "x"), bounds);
  EXPECT_FALSE(capped.countermodel.has_value());
  EXPECT_TRUE(capped.status.ok()) << capped.status;
}

TEST(EnumerateCountermodel, SetValuedAttributesEnumerate) {
  // phi references a set-valued field: the schema must infer r as
  // set-valued and the countermodel must dangle one of its members.
  ConstraintSet sigma = LuSigma("key b.k");
  Constraint phi = Constraint::SetForeignKey("a", "r", "b", "k");
  TableSchema schema = TableSchema::Infer(sigma, phi);
  EXPECT_TRUE(schema.attrs.at("a").at("r"));
  EnumerationOutcome outcome = EnumerateCountermodelBounded(sigma, phi);
  ASSERT_TRUE(outcome.countermodel.has_value());
  EXPECT_TRUE(SatisfiesAll(*outcome.countermodel, sigma));
  EXPECT_FALSE(Satisfies(*outcome.countermodel, phi));
}

TEST(EnumerateCountermodel, InstanceCapReportsResourceExhausted) {
  ConstraintSet sigma = LuSigma("key a.k");
  EnumerationBounds bounds;
  bounds.max_instances = 1;
  EnumerationOutcome outcome = EnumerateCountermodelBounded(
      sigma, Constraint::UnaryKey("a", "k"), bounds);
  EXPECT_FALSE(outcome.countermodel.has_value());
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted)
      << outcome.status;
  EXPECT_GE(outcome.inspected, 1u);
  EXPECT_LE(outcome.inspected, 2u) << "cap of 1 must stop almost at once";
}

TEST(TableInstance, ToStringIsReadable) {
  TableInstance inst;
  inst.tables["r"] = {Row({{"a", {"1"}}, {"refs", {"x", "y"}}})};
  std::string text = inst.ToString();
  EXPECT_NE(text.find("r:"), std::string::npos);
  EXPECT_NE(text.find("a=1"), std::string::npos);
  EXPECT_NE(text.find("refs={x,y}"), std::string::npos);
}

}  // namespace
}  // namespace xic
