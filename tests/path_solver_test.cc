#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "paths/path_solver.h"
#include "xml/xml_parser.h"

namespace xic {
namespace {

Path P(const std::string& text) {
  Result<Path> p = Path::Parse(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return p.value();
}

// Book DTD^C as in Section 2.4 but with L_id semantics (isbn/sid are IDs).
struct Fixture {
  DtdStructure dtd;
  ConstraintSet sigma;
  Fixture() {
    EXPECT_TRUE(
        dtd.AddElement("book", "(entry, author*, section*, ref)").ok());
    EXPECT_TRUE(dtd.AddElement("entry", "(title, publisher)").ok());
    EXPECT_TRUE(dtd.AddElement("author", "(#PCDATA)").ok());
    EXPECT_TRUE(dtd.AddElement("title", "(#PCDATA)").ok());
    EXPECT_TRUE(dtd.AddElement("publisher", "(#PCDATA)").ok());
    EXPECT_TRUE(dtd.AddElement("text", "(#PCDATA)").ok());
    EXPECT_TRUE(dtd.AddElement("section", "(title, (text|section)*)").ok());
    EXPECT_TRUE(dtd.AddElement("ref", "EMPTY").ok());
    EXPECT_TRUE(
        dtd.AddAttribute("entry", "isbn", AttrCardinality::kSingle).ok());
    EXPECT_TRUE(dtd.SetKind("entry", "isbn", AttrKind::kId).ok());
    EXPECT_TRUE(
        dtd.AddAttribute("section", "sid", AttrCardinality::kSingle).ok());
    EXPECT_TRUE(dtd.SetKind("section", "sid", AttrKind::kId).ok());
    EXPECT_TRUE(dtd.AddAttribute("ref", "to", AttrCardinality::kSet).ok());
    EXPECT_TRUE(dtd.SetKind("ref", "to", AttrKind::kIdref).ok());
    EXPECT_TRUE(dtd.SetRoot("book").ok());
    EXPECT_TRUE(dtd.Validate().ok());
    Result<ConstraintSet> s = ParseConstraintSet(R"(
      id entry.isbn
      id section.sid
      sfk ref.to -> entry.isbn
    )", Language::kLid);
    EXPECT_TRUE(s.ok()) << s.status();
    sigma = s.value();
  }
};

TEST(PathSolverFunctional, PaperExampleIsbnDeterminesAuthors) {
  // phi = book.entry.isbn -> book.author (Section 4.2). Implied because
  // entry.isbn is a key path of book.
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  ASSERT_TRUE(context.status().ok());
  PathSolver solver(context);
  PathFunctionalConstraint phi{"book", P("entry.isbn"), P("author")};
  EXPECT_TRUE(solver.ImpliesFunctional(phi).value());
  EXPECT_EQ(phi.ToString(), "book.entry.isbn -> book.author");
}

TEST(PathSolverFunctional, NonKeyPathsNotImplied) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathSolver solver(context);
  // author is not unique: book.author does not determine book.entry.
  EXPECT_FALSE(solver
                   .ImpliesFunctional(
                       {"book", P("author"), P("entry.isbn")})
                   .value());
  // section paths are not key paths of book (section not unique).
  EXPECT_FALSE(solver
                   .ImpliesFunctional(
                       {"book", P("section.sid"), P("author")})
                   .value());
}

TEST(PathSolverFunctional, ExtensionsAreTriviallyImplied) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathSolver solver(context);
  // rho determines any of its extensions (nodes(x.rho.theta) is a
  // function of nodes(x.rho)).
  EXPECT_TRUE(solver
                  .ImpliesFunctional(
                      {"book", P("section"), P("section.title")})
                  .value());
  // And itself.
  EXPECT_TRUE(
      solver.ImpliesFunctional({"book", P("author"), P("author")}).value());
}

TEST(PathSolverFunctional, InvalidPathsError) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathSolver solver(context);
  EXPECT_FALSE(
      solver.ImpliesFunctional({"book", P("ghost"), P("author")}).ok());
  EXPECT_FALSE(
      solver.ImpliesFunctional({"book", P("entry"), P("ghost")}).ok());
}

TEST(PathSolverInclusion, PaperExamples) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathSolver solver(context);
  // book.ref.to <= entry  (typing inclusion, rho2 = epsilon).
  EXPECT_TRUE(solver
                  .ImpliesInclusion({"book", P("ref.to"), "entry", P("")})
                  .value());
  // book.ref.to.title <= entry.title.
  EXPECT_TRUE(solver
                  .ImpliesInclusion(
                      {"book", P("ref.to.title"), "entry", P("title")})
                  .value());
  // Deeper suffixes too.
  EXPECT_TRUE(solver
                  .ImpliesInclusion({"book", P("section.section"), "section",
                                     P("section")})
                  .value());
  // Reflexive.
  EXPECT_TRUE(solver
                  .ImpliesInclusion({"book", P("author"), "book",
                                     P("author")})
                  .value());
}

TEST(PathSolverInclusion, NonImplications) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathSolver solver(context);
  // book.author is not included in entry extents.
  EXPECT_FALSE(solver
                   .ImpliesInclusion({"book", P("author"), "entry", P("")})
                   .value());
  // Suffix matches but the split prefix types to section, not entry.
  EXPECT_FALSE(solver
                   .ImpliesInclusion(
                       {"book", P("section.title"), "entry", P("title")})
                   .value());
  // rho2 longer than rho1.
  EXPECT_FALSE(solver
                   .ImpliesInclusion(
                       {"book", P("title"), "entry", P("title.extra")})
                   .ok());
}

// Inverse fixture: the course/student/teacher example of Section 4.2.
struct InverseFixture {
  DtdStructure dtd;
  ConstraintSet sigma;
  InverseFixture() {
    EXPECT_TRUE(
        dtd.AddElement("db", "(student*, teacher*, course*)").ok());
    for (const char* e : {"student", "teacher", "course"}) {
      EXPECT_TRUE(dtd.AddElement(e, "EMPTY").ok());
      EXPECT_TRUE(
          dtd.AddAttribute(e, "oid", AttrCardinality::kSingle).ok());
      EXPECT_TRUE(dtd.SetKind(e, "oid", AttrKind::kId).ok());
    }
    auto add_ref = [&](const char* e, const char* a) {
      EXPECT_TRUE(dtd.AddAttribute(e, a, AttrCardinality::kSet).ok());
      EXPECT_TRUE(dtd.SetKind(e, a, AttrKind::kIdref).ok());
    };
    add_ref("student", "taking");
    add_ref("teacher", "teaching");
    add_ref("course", "taken_by");
    add_ref("course", "taught_by");
    EXPECT_TRUE(dtd.SetRoot("db").ok());
    EXPECT_TRUE(dtd.Validate().ok());
    Result<ConstraintSet> s = ParseConstraintSet(R"(
      id student.oid
      id teacher.oid
      id course.oid
      inverse student.taking <-> course.taken_by
      inverse teacher.teaching <-> course.taught_by
    )", Language::kLid);
    EXPECT_TRUE(s.ok()) << s.status();
    sigma = s.value();
  }
};

TEST(PathSolverInverse, PaperCompositionExample) {
  // student.taking.taught_by <-> teacher.teaching.taken_by, implied by
  // composing the two basic inverses (Proposition 4.3).
  InverseFixture f;
  PathContext context(f.dtd, f.sigma);
  ASSERT_TRUE(context.status().ok()) << context.status();
  PathSolver solver(context);
  PathInverseConstraint phi{"student", P("taking.taught_by"), "teacher",
                            P("teaching.taken_by")};
  EXPECT_TRUE(solver.ImpliesInverse(phi).value());
  EXPECT_EQ(phi.ToString(),
            "student.taking.taught_by <-> teacher.teaching.taken_by");
}

TEST(PathSolverInverse, BasicAndSymmetric) {
  InverseFixture f;
  PathContext context(f.dtd, f.sigma);
  PathSolver solver(context);
  EXPECT_TRUE(solver
                  .ImpliesInverse({"student", P("taking"), "course",
                                   P("taken_by")})
                  .value());
  // Symmetric orientation.
  EXPECT_TRUE(solver
                  .ImpliesInverse({"course", P("taken_by"), "student",
                                   P("taking")})
                  .value());
}

TEST(PathSolverInverse, NonImplications) {
  InverseFixture f;
  PathContext context(f.dtd, f.sigma);
  PathSolver solver(context);
  // Wrong partner attribute.
  EXPECT_FALSE(solver
                   .ImpliesInverse({"student", P("taking"), "course",
                                    P("taught_by")})
                   .value());
  // Wrong end type for the composed chain.
  EXPECT_FALSE(solver
                   .ImpliesInverse({"student", P("taking.taught_by"),
                                    "student", P("teaching.taken_by")})
                   .ok());
  // Mismatched lengths.
  EXPECT_FALSE(solver
                   .ImpliesInverse({"student", P("taking.taught_by"),
                                    "teacher", P("teaching")})
                   .value());
  // Empty paths are not inverses.
  EXPECT_FALSE(
      solver.ImpliesInverse({"student", P(""), "student", P("")}).value());
}

TEST(PathSolverInverse, LongerChains) {
  // Extend the chain with a fourth hop: student.taking.taught_by.?? --
  // compose three inverses through course and teacher and back.
  InverseFixture f;
  PathContext context(f.dtd, f.sigma);
  PathSolver solver(context);
  // taking . taught_by . teaching: student -> course -> teacher -> course
  // with reversed course path taken_by after teaching... The reversed
  // side must be taken_by.teaching... reversed: (taught_by, teaching)
  // pairs: chain of 3: a = [taking, taught_by, teaching],
  // b reversed = [taught_by, teaching ...]. Verify via the rule:
  // links: student.taking <-> course.taken_by;
  //        course.taught_by <-> teacher.teaching;
  //        teacher.teaching <-> course.taught_by.
  PathInverseConstraint phi{"student", P("taking.taught_by.teaching"),
                            "course", P("taught_by.teaching.taken_by")};
  EXPECT_TRUE(solver.ImpliesInverse(phi).value());
}

}  // namespace
}  // namespace xic
