// Small-model tools: witnessing non-implication and cross-validating the
// axiomatic solvers.
//
// Constraint satisfaction of all three languages depends only on, per
// element type, the bag of attribute tuples of its extension -- the tree
// shape is irrelevant as long as a document can host the extents, which a
// trivial (tau1*, ..., taun*) root always can (DESIGN.md). TableInstance
// is that abstraction; LiftToDocument materializes a table instance as an
// actual valid DataTree + DtdStructure so end-to-end tests can replay a
// countermodel against the real ConstraintChecker.
//
// Two search strategies:
//   * EnumerateCountermodel -- exhaustive enumeration of instances within
//     bounds (rows per type, value domain); sound and complete within the
//     bounds. Used by property tests against LuSolver / LidSolver.
//   * (see l_general_solver.h) the chase, which decides implication for
//     full L when it terminates.

#ifndef XIC_IMPLICATION_COUNTERMODEL_H_
#define XIC_IMPLICATION_COUNTERMODEL_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "model/data_tree.h"
#include "model/dtd_structure.h"
#include "util/limits.h"
#include "util/status.h"

namespace xic {

/// One element's attribute values: attr -> set of atomic values
/// (singletons for single-valued attributes).
using TableRow = std::map<std::string, std::set<std::string>>;

/// Extensions of every element type, as bags of rows.
struct TableInstance {
  std::map<std::string, std::vector<TableRow>> tables;
  std::string ToString() const;
};

/// The attribute schema a constraint set ranges over: per type, the
/// attributes used and whether each is set-valued (inferred from how the
/// constraints use them).
struct TableSchema {
  // type -> attr -> set-valued?
  std::map<std::string, std::map<std::string, bool>> attrs;

  /// Infers the schema mentioned by sigma and phi.
  static TableSchema Infer(const ConstraintSet& sigma, const Constraint& phi);
  /// Infers the schema mentioned by sigma alone.
  static TableSchema Infer(const ConstraintSet& sigma);
};

/// Does `instance` satisfy `c`? `dtd` is only needed to resolve implicit
/// ID attributes (kId constraints and L_id inverses); it may be null
/// otherwise. Inverse constraints use the typed semantics (the two
/// set-valued containments plus the two membership implications; see
/// DESIGN.md).
bool Satisfies(const TableInstance& instance, const Constraint& c,
               const DtdStructure* dtd = nullptr);

bool SatisfiesAll(const TableInstance& instance, const ConstraintSet& sigma,
                  const DtdStructure* dtd = nullptr);

struct EnumerationBounds {
  size_t max_rows_per_type = 2;
  size_t num_values = 2;
  /// Abort after inspecting this many instances (0 = no cap).
  size_t max_instances = 2'000'000;
  /// Time budget; polled every few thousand instances.
  Deadline deadline;
};

/// Exhaustively searches for an instance satisfying `sigma` but not
/// `phi`. Returns the first countermodel found, or nullopt if none exists
/// within the bounds (or the instance cap / deadline was hit).
std::optional<TableInstance> EnumerateCountermodel(
    const ConstraintSet& sigma, const Constraint& phi,
    const EnumerationBounds& bounds = {}, const DtdStructure* dtd = nullptr);

/// The structured variant: distinguishes "no countermodel within bounds"
/// (countermodel empty, status OK) from "search cut short" (status
/// kResourceExhausted naming max_instances, or kDeadlineExceeded).
struct EnumerationOutcome {
  std::optional<TableInstance> countermodel;
  Status status = Status::OK();
  /// Instances actually inspected.
  size_t inspected = 0;
};
EnumerationOutcome EnumerateCountermodelBounded(
    const ConstraintSet& sigma, const Constraint& phi,
    const EnumerationBounds& bounds = {}, const DtdStructure* dtd = nullptr);

/// Materializes `instance` as a valid document: a DTD with root content
/// (tau1*, ..., taun*) and one child element per row. Attribute names and
/// cardinalities come from `schema`.
struct LiftedDocument {
  DtdStructure dtd;
  DataTree tree;
};
Result<LiftedDocument> LiftToDocument(const TableInstance& instance,
                                      const TableSchema& schema);

}  // namespace xic

#endif  // XIC_IMPLICATION_COUNTERMODEL_H_
