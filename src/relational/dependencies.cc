#include "relational/dependencies.h"

#include <map>
#include <set>

#include "util/strings.h"

namespace xic {

std::string FunctionalDependency::ToString() const {
  return relation + ": " + Join(lhs, ",") + " -> " + Join(rhs, ",");
}

std::string InclusionDependency::ToString() const {
  return relation + "[" + Join(attrs, ",") + "] <= " + ref_relation + "[" +
         Join(ref_attrs, ",") + "]";
}

std::string DependencyToString(const Dependency& d) {
  if (const auto* fd = std::get_if<FunctionalDependency>(&d)) {
    return fd->ToString();
  }
  return std::get<InclusionDependency>(d).ToString();
}

namespace {

// The standard chase for functional + inclusion dependencies over
// symbolic values with union-find equality.
class FdIndChase {
 public:
  FdIndChase(const std::vector<Dependency>& sigma, const Dependency& phi,
             const FdIndChaseOptions& options)
      : sigma_(sigma), phi_(phi), options_(options) {}

  FdIndResult Run() {
    CollectSchema();
    Seed();
    FdIndResult result;
    bool changed = true;
    while (changed) {
      if (steps_ > options_.max_steps || TotalRows() > options_.max_rows) {
        result.outcome = ImplicationOutcome::kUnknown;
        result.steps = steps_;
        return result;
      }
      changed = false;
      for (const Dependency& d : sigma_) {
        if (const auto* fd = std::get_if<FunctionalDependency>(&d)) {
          changed |= ApplyFd(*fd);
        } else {
          changed |= ApplyInd(std::get<InclusionDependency>(d));
        }
      }
    }
    result.steps = steps_;
    if (const auto* fd = std::get_if<FunctionalDependency>(&phi_)) {
      bool equal = true;
      for (const std::string& a : fd->rhs) {
        size_t idx = attr_index_[fd->relation].at(a);
        if (Find(rows_[fd->relation][0][idx]) !=
            Find(rows_[fd->relation][1][idx])) {
          equal = false;
          break;
        }
      }
      result.outcome = equal ? ImplicationOutcome::kImplied
                             : ImplicationOutcome::kNotImplied;
    } else {
      const auto& ind = std::get<InclusionDependency>(phi_);
      std::vector<int> want = Tuple(ind.relation, 0, ind.attrs);
      bool found =
          FindMatch(ind.ref_relation, ind.ref_attrs, want) >= 0;
      result.outcome = found ? ImplicationOutcome::kImplied
                             : ImplicationOutcome::kNotImplied;
    }
    return result;
  }

 private:
  void AddAttrs(const std::string& rel,
                const std::vector<std::string>& attrs) {
    for (const std::string& a : attrs) schema_[rel].insert(a);
  }

  void CollectSchema() {
    auto visit = [&](const Dependency& d) {
      if (const auto* fd = std::get_if<FunctionalDependency>(&d)) {
        AddAttrs(fd->relation, fd->lhs);
        AddAttrs(fd->relation, fd->rhs);
      } else {
        const auto& ind = std::get<InclusionDependency>(d);
        AddAttrs(ind.relation, ind.attrs);
        AddAttrs(ind.ref_relation, ind.ref_attrs);
      }
    };
    for (const Dependency& d : sigma_) visit(d);
    visit(phi_);
    for (const auto& [rel, attrs] : schema_) {
      size_t i = 0;
      for (const std::string& a : attrs) attr_index_[rel][a] = i++;
      rows_[rel];
    }
  }

  void Seed() {
    if (const auto* fd = std::get_if<FunctionalDependency>(&phi_)) {
      std::map<std::string, int> shared;
      for (const std::string& a : fd->lhs) shared[a] = Fresh();
      AddRow(fd->relation, shared);
      AddRow(fd->relation, shared);
    } else {
      AddRow(std::get<InclusionDependency>(phi_).relation, {});
    }
  }

  int Fresh() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return static_cast<int>(parent_.size()) - 1;
  }

  int Find(int v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

  void AddRow(const std::string& rel, const std::map<std::string, int>& fixed) {
    std::vector<int> row(schema_[rel].size());
    for (const auto& [attr, idx] : attr_index_[rel]) {
      auto it = fixed.find(attr);
      row[idx] = it != fixed.end() ? it->second : Fresh();
    }
    rows_[rel].push_back(std::move(row));
  }

  size_t TotalRows() const {
    size_t total = 0;
    for (const auto& [rel, rows] : rows_) total += rows.size();
    return total;
  }

  std::vector<int> Tuple(const std::string& rel, size_t row,
                         const std::vector<std::string>& attrs) {
    std::vector<int> out;
    for (const std::string& a : attrs) {
      out.push_back(Find(rows_[rel][row][attr_index_[rel].at(a)]));
    }
    return out;
  }

  int FindMatch(const std::string& rel, const std::vector<std::string>& attrs,
                const std::vector<int>& want) {
    for (size_t i = 0; i < rows_[rel].size(); ++i) {
      if (Tuple(rel, i, attrs) == want) return static_cast<int>(i);
    }
    return -1;
  }

  // Applies every unification found in one pass over the relation.
  bool ApplyFd(const FunctionalDependency& fd) {
    auto& rows = rows_[fd.relation];
    std::map<std::vector<int>, size_t> seen;
    bool any = false;
    for (size_t i = 0; i < rows.size(); ++i) {
      std::vector<int> lhs = Tuple(fd.relation, i, fd.lhs);
      auto [it, inserted] = seen.emplace(std::move(lhs), i);
      if (inserted) continue;
      // Unify the RHS values of rows it->second and i if they differ.
      bool fired = false;
      for (const std::string& a : fd.rhs) {
        size_t idx = attr_index_[fd.relation].at(a);
        if (Find(rows[it->second][idx]) != Find(rows[i][idx])) {
          Union(rows[it->second][idx], rows[i][idx]);
          fired = true;
        }
      }
      if (fired) {
        ++steps_;
        any = true;
      }
    }
    return any;
  }

  // Adds all missing target rows for the pass at once.
  bool ApplyInd(const InclusionDependency& ind) {
    auto& rows = rows_[ind.relation];
    std::set<std::vector<int>> targets;
    for (size_t i = 0; i < rows_[ind.ref_relation].size(); ++i) {
      targets.insert(Tuple(ind.ref_relation, i, ind.ref_attrs));
    }
    std::set<std::vector<int>> missing;
    for (size_t i = 0; i < rows.size(); ++i) {
      std::vector<int> want = Tuple(ind.relation, i, ind.attrs);
      if (targets.count(want) == 0) missing.insert(std::move(want));
    }
    for (const std::vector<int>& want : missing) {
      std::map<std::string, int> fixed;
      for (size_t a = 0; a < ind.ref_attrs.size(); ++a) {
        fixed[ind.ref_attrs[a]] = want[a];
      }
      AddRow(ind.ref_relation, fixed);
      ++steps_;
    }
    return !missing.empty();
  }

  const std::vector<Dependency>& sigma_;
  const Dependency& phi_;
  const FdIndChaseOptions& options_;

  std::map<std::string, std::set<std::string>> schema_;
  std::map<std::string, std::map<std::string, size_t>> attr_index_;
  std::map<std::string, std::vector<std::vector<int>>> rows_;
  std::vector<int> parent_;
  size_t steps_ = 0;
};

}  // namespace

FdIndResult ChaseFdInd(const std::vector<Dependency>& sigma,
                       const Dependency& phi,
                       const FdIndChaseOptions& options) {
  return FdIndChase(sigma, phi, options).Run();
}

}  // namespace xic
