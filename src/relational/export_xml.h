// Export of relational data to XML with preserved semantics -- the
// paper's publishers/editors scenario (Sections 1 and 2.4).
//
// Each relation becomes an element type whose attributes are *unique
// sub-elements* holding character data, exactly as the paper's
//   <!ELEMENT publisher (pname, country, address)>
// listing does; keys and foreign keys become L constraints over those
// sub-elements (legal per Section 3.4). The exporter returns the DTD^C
// (structure + constraint set) and the document tree, so callers can
// re-validate with StructuralValidator + ConstraintChecker and reason
// with the implication solvers.

#ifndef XIC_RELATIONAL_EXPORT_XML_H_
#define XIC_RELATIONAL_EXPORT_XML_H_

#include <string>

#include "constraints/constraint.h"
#include "model/data_tree.h"
#include "model/dtd_structure.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "util/status.h"

namespace xic {

struct RelationalExport {
  DtdStructure dtd;
  ConstraintSet sigma;  // language L
  DataTree tree;
};

struct RelationalExportOptions {
  /// Root element name.
  std::string root = "db";
};

/// Exports the schema (structure + constraints) and the instance's data.
Result<RelationalExport> ExportRelational(
    const RelationalInstance& instance,
    const RelationalExportOptions& options = {});

}  // namespace xic

#endif  // XIC_RELATIONAL_EXPORT_XML_H_
