// One consolidated suite tracing the paper's in-text examples and
// remarks, section by section, so EXPERIMENTS.md can point at a single
// place where each claim is replayed verbatim. Detailed behaviour tests
// live in the per-module suites; these tests are the paper's narrative.

#include <gtest/gtest.h>

#include "xic.h"

namespace xic {
namespace {

// --- Section 1 / 2.4: the book DTD^C with L_u constraints ----------------

TEST(PaperSection2, BookDtdCWellFormedAndSatisfiable) {
  DtdStructure dtd;
  ASSERT_TRUE(dtd.AddElement("book", "(entry, author*, section*, ref)").ok());
  ASSERT_TRUE(dtd.AddElement("entry", "(title, publisher)").ok());
  ASSERT_TRUE(dtd.AddElement("section", "(title, (text|section)*)").ok());
  ASSERT_TRUE(dtd.AddElement("ref", "EMPTY").ok());
  ASSERT_TRUE(dtd.AddElement("title", "(#PCDATA)").ok());
  ASSERT_TRUE(dtd.AddElement("publisher", "(#PCDATA)").ok());
  ASSERT_TRUE(dtd.AddElement("author", "(#PCDATA)").ok());
  ASSERT_TRUE(dtd.AddElement("text", "(#PCDATA)").ok());
  ASSERT_TRUE(dtd.AddAttribute("entry", "isbn", AttrCardinality::kSingle).ok());
  ASSERT_TRUE(dtd.AddAttribute("section", "sid", AttrCardinality::kSingle).ok());
  ASSERT_TRUE(dtd.AddAttribute("ref", "to", AttrCardinality::kSet).ok());
  ASSERT_TRUE(dtd.SetRoot("book").ok());
  ASSERT_TRUE(dtd.Validate().ok());

  // Sigma = { entry.isbn -> entry, section.sid -> section,
  //           ref.to <=S entry.isbn }  -- Section 2.4, "kind kept empty".
  Result<ConstraintSet> sigma = ParseConstraintSet(
      "key entry.isbn; key section.sid; sfk ref.to -> entry.isbn",
      Language::kLu);
  ASSERT_TRUE(sigma.ok());
  EXPECT_TRUE(CheckWellFormed(sigma.value(), dtd).ok());
  // Satisfiable at every size (completeness-style construction).
  Result<TableInstance> model =
      GenerateSatisfyingInstance(sigma.value(), nullptr, 4);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(SatisfiesAll(model.value(), sigma.value()));
}

TEST(PaperSection1, IdIsStrongerThanPerTypeKeys) {
  // "isbn ... as an ID attribute indeed makes it unique, but across all
  // the ID attributes in the document. This is a much stronger
  // assumption, preventing other elements ... from using the same isbn."
  // Exhibit: a document where per-type keys hold but document-wide ID
  // uniqueness fails.
  Result<XmlDocument> doc = ParseXml(R"(<!DOCTYPE db [
    <!ELEMENT db (book*, entry*)>
    <!ELEMENT book EMPTY> <!ATTLIST book isbn ID #REQUIRED>
    <!ELEMENT entry EMPTY> <!ATTLIST entry isbn ID #REQUIRED>
  ]>
  <db><book isbn="X"/><entry isbn="X"/></db>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  // Per-type keys (L_u reading): satisfied.
  Result<ConstraintSet> keys = ParseConstraintSet(
      "key book.isbn; key entry.isbn", Language::kLu);
  ConstraintChecker key_checker(*doc.value().dtd, keys.value());
  EXPECT_TRUE(key_checker.Check(doc.value().tree).ok());
  // Original ID semantics (L_id reading): violated.
  Result<ConstraintSet> ids =
      ParseConstraintSet("id book.isbn; id entry.isbn", Language::kLid);
  ConstraintChecker id_checker(*doc.value().dtd, ids.value());
  EXPECT_FALSE(id_checker.Check(doc.value().tree).ok());
}

// --- Section 3.1: I_id -----------------------------------------------------

TEST(PaperSection31, EveryIdAxiomFires) {
  Result<DtdStructure> dtd = InferDtdForSigma(
      ParseConstraintSet(
          "id a.oid; id b.oid; fk a.r -> b.oid; sfk a.s -> b.oid; "
          "inverse a.m <-> b.n",
          Language::kLid)
          .value());
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  // Start from just the inverse and watch the whole closure appear.
  ConstraintSet sigma;
  sigma.language = Language::kLid;
  sigma.constraints = {Constraint::InverseId("a", "m", "b", "n")};
  LidSolver solver(dtd.value(), sigma);
  ASSERT_TRUE(solver.status().ok());
  EXPECT_TRUE(solver.Implies(  // Inv-SFK-ID
      Constraint::SetForeignKey("a", "m", "b", "oid")));
  EXPECT_TRUE(solver.Implies(Constraint::Id("b", "oid")));     // SFK-ID
  EXPECT_TRUE(solver.Implies(                                  // ID-FK
      Constraint::UnaryForeignKey("b", "oid", "b", "oid")));
  EXPECT_TRUE(solver.Implies(Constraint::UnaryKey("b", "oid")));  // ID-Key
}

// --- Section 3.2: I_u and the missing-rule remark --------------------------

TEST(PaperSection32, NoSetThroughUnaryIntoSetRule) {
  // "Observe that we do not have the rule: if tau1.l1 <= tau2.l2 and
  //  tau2.l2 <=S tau3.l3 then tau1.l1 <=S tau3.l3. This is because key
  //  attributes cannot be set-valued."
  // (A unary foreign key's target l2 is a key, hence single-valued; the
  // premise pair is not even jointly well-formed. The solver must not
  // invent the conclusion.)
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  sigma.constraints = {
      Constraint::UnaryKey("t2", "l2"),
      Constraint::UnaryKey("t3", "l3"),
      Constraint::UnaryForeignKey("t1", "l1", "t2", "l2"),
      Constraint::SetForeignKey("t2", "m2", "t3", "l3"),
  };
  LuSolver solver(sigma);
  ASSERT_TRUE(solver.status().ok());
  EXPECT_FALSE(
      solver.Implies(Constraint::SetForeignKey("t1", "l1", "t3", "l3")));
  // The legitimate direction (USFK-trans) does hold:
  // t2.m2 <=S t3.l3 composed with nothing further.
  EXPECT_TRUE(
      solver.Implies(Constraint::SetForeignKey("t2", "m2", "t3", "l3")));
}

TEST(PaperSection32, CkvStyleDivergence) {
  // Corollary 3.3: "these problems do not coincide" -- the adaptation of
  // Cosmadakis-Kanellakis-Vardi to L_u.
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    key t.a; key t.b; key u.c; key u.d
    fk t.a -> u.c
    fk u.d -> t.b
  )", Language::kLu);
  LuSolver solver(sigma.value());
  Constraint phi = Constraint::UnaryForeignKey("u", "c", "t", "a");
  EXPECT_FALSE(solver.Implies(phi));
  EXPECT_TRUE(solver.FinitelyImplies(phi));
  // And the semantic ground truth: no finite countermodel exists within
  // generous bounds, while Sigma itself has finite models of any size.
  EnumerationBounds bounds;
  bounds.num_values = 3;
  EXPECT_FALSE(EnumerateCountermodel(sigma.value(), phi, bounds).has_value());
  Result<TableInstance> model =
      GenerateSatisfyingInstance(sigma.value(), nullptr, 3);
  EXPECT_TRUE(SatisfiesAll(model.value(), sigma.value()));
}

// --- Section 3.3: the publisher L constraints -------------------------------

TEST(PaperSection33, PublisherConstraintsUnderIp) {
  // publisher[pname, country] -> publisher
  // editor[pname, country] <= publisher[pname, country]
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    key publisher[pname, country]
    fk editor[pname, country] -> publisher[pname, country]
  )", Language::kL);
  LpSolver solver(sigma.value());
  ASSERT_TRUE(solver.status().ok());
  // PFK-perm: both sides reordered together.
  EXPECT_TRUE(solver
                  .Implies(Constraint::ForeignKey(
                      "editor", {"country", "pname"}, "publisher",
                      {"country", "pname"}))
                  .value());
  // PK-FK.
  EXPECT_TRUE(solver
                  .Implies(Constraint::ForeignKey(
                      "publisher", {"pname", "country"}, "publisher",
                      {"pname", "country"}))
                  .value());
  // The chase agrees on both (Theorem 3.8: I_p is complete).
  GeneralResult chased = ChaseImplication(
      sigma.value(), Constraint::ForeignKey("editor", {"country", "pname"},
                                            "publisher",
                                            {"country", "pname"}));
  EXPECT_EQ(chased.outcome, ImplicationOutcome::kImplied);
}

// --- Section 3.4: sub-elements as keys --------------------------------------

TEST(PaperSection34, PersonNameIsAKeyViaUniqueSubElement) {
  // "It is perfectly reasonable to assume that name is a key for person."
  Result<DtdStructure> dtd = ParseDtd(R"(
    <!ELEMENT db (person*)>
    <!ELEMENT person (name, address)>
    <!ATTLIST person oid ID #REQUIRED in_dept IDREFS #IMPLIED>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT address (#PCDATA)>
  )", "db");
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(dtd.value().IsUniqueSubElement("person", "name"));
  Constraint key = Constraint::UnaryKey("person", "name");
  EXPECT_TRUE(CheckConstraintShape(key, Language::kLid, dtd.value()).ok());
  // And the checker enforces it over sub-element character data.
  Result<XmlDocument> doc = ParseXml(R"(<db>
    <person oid="p1"><name>An</name><address>x</address></person>
    <person oid="p2"><name>An</name><address>y</address></person>
  </db>)", {.dtd = &dtd.value()});
  ConstraintSet sigma;
  sigma.language = Language::kLid;
  sigma.constraints = {key};
  ConstraintChecker checker(dtd.value(), sigma);
  EXPECT_FALSE(checker.Check(doc.value().tree).ok());
}

// --- Section 4: the worked path-constraint examples -------------------------

struct Section4Fixture {
  DtdStructure dtd;
  ConstraintSet sigma;
  Section4Fixture() {
    EXPECT_TRUE(
        dtd.AddElement("book", "(entry, author*, section*, ref)").ok());
    EXPECT_TRUE(dtd.AddElement("entry", "(title, publisher)").ok());
    EXPECT_TRUE(dtd.AddElement("section", "(title, (text|section)*)").ok());
    EXPECT_TRUE(dtd.AddElement("ref", "EMPTY").ok());
    EXPECT_TRUE(dtd.AddElement("title", "(#PCDATA)").ok());
    EXPECT_TRUE(dtd.AddElement("publisher", "(#PCDATA)").ok());
    EXPECT_TRUE(dtd.AddElement("author", "(#PCDATA)").ok());
    EXPECT_TRUE(dtd.AddElement("text", "(#PCDATA)").ok());
    EXPECT_TRUE(
        dtd.AddAttribute("entry", "isbn", AttrCardinality::kSingle).ok());
    EXPECT_TRUE(dtd.SetKind("entry", "isbn", AttrKind::kId).ok());
    EXPECT_TRUE(
        dtd.AddAttribute("section", "sid", AttrCardinality::kSingle).ok());
    EXPECT_TRUE(dtd.SetKind("section", "sid", AttrKind::kId).ok());
    EXPECT_TRUE(dtd.AddAttribute("ref", "to", AttrCardinality::kSet).ok());
    EXPECT_TRUE(dtd.SetKind("ref", "to", AttrKind::kIdref).ok());
    EXPECT_TRUE(dtd.SetRoot("book").ok());
    sigma = ParseConstraintSet(
                "id entry.isbn; id section.sid; sfk ref.to -> entry.isbn",
                Language::kLid)
                .value();
  }
};

TEST(PaperSection4, PathsOfFigure2) {
  // "paths in Figure 2 include book.entry, book.author,
  //  book.ref.to.author" -- the last one dereferences `to` into entry,
  // whose content has no author, so the paper's listing is (as written)
  // a typo for a path like book.ref.to.title; we check the dereference
  // machinery on both.
  Section4Fixture f;
  PathContext context(f.dtd, f.sigma);
  ASSERT_TRUE(context.status().ok());
  EXPECT_TRUE(context.IsValidPath("book", Path::Parse("entry").value()));
  EXPECT_TRUE(context.IsValidPath("book", Path::Parse("author").value()));
  EXPECT_TRUE(
      context.IsValidPath("book", Path::Parse("ref.to.title").value()));
  EXPECT_FALSE(
      context.IsValidPath("book", Path::Parse("ref.to.author").value()));
}

TEST(PaperSection4, IsbnKeysTheOuterBookElements) {
  // "we would like to know that isbn is not only a key for entry, but
  //  also a key for the outer book elements. This never occurs in the
  //  relational setting."
  Section4Fixture f;
  PathContext context(f.dtd, f.sigma);
  EXPECT_TRUE(
      context.IsKeyPath("book", Path::Parse("entry.isbn").value()));
  PathSolver solver(context);
  // phi = book.entry.isbn -> book.author (the worked example).
  EXPECT_TRUE(solver
                  .ImpliesFunctional({"book",
                                      Path::Parse("entry.isbn").value(),
                                      Path::Parse("author").value()})
                  .value());
}

TEST(PaperSection4, InclusionExamples) {
  Section4Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathSolver solver(context);
  // book.ref.to <= entry  and  book.ref.to.title <= entry.title.
  EXPECT_TRUE(solver
                  .ImpliesInclusion({"book", Path::Parse("ref.to").value(),
                                     "entry", Path::Parse("").value()})
                  .value());
  EXPECT_TRUE(solver
                  .ImpliesInclusion(
                      {"book", Path::Parse("ref.to.title").value(), "entry",
                       Path::Parse("title").value()})
                  .value());
}

TEST(PaperSection4, CourseInverseComposition) {
  // student.taking.taught_by <-> teacher.teaching.taken_by follows from
  // the two basic inverses (Proposition 4.3's worked example).
  DtdStructure dtd;
  EXPECT_TRUE(dtd.AddElement("db", "(student*, teacher*, course*)").ok());
  for (const char* e : {"student", "teacher", "course"}) {
    EXPECT_TRUE(dtd.AddElement(e, "EMPTY").ok());
    EXPECT_TRUE(dtd.AddAttribute(e, "oid", AttrCardinality::kSingle).ok());
    EXPECT_TRUE(dtd.SetKind(e, "oid", AttrKind::kId).ok());
  }
  for (const auto& [e, a] : std::vector<std::pair<const char*, const char*>>{
           {"student", "taking"},
           {"teacher", "teaching"},
           {"course", "taken_by"},
           {"course", "taught_by"}}) {
    EXPECT_TRUE(dtd.AddAttribute(e, a, AttrCardinality::kSet).ok());
    EXPECT_TRUE(dtd.SetKind(e, a, AttrKind::kIdref).ok());
  }
  EXPECT_TRUE(dtd.SetRoot("db").ok());
  ConstraintSet sigma = ParseConstraintSet(R"(
    id student.oid; id teacher.oid; id course.oid
    inverse student.taking <-> course.taken_by
    inverse teacher.teaching <-> course.taught_by
  )", Language::kLid).value();
  PathContext context(dtd, sigma);
  PathSolver solver(context);
  EXPECT_TRUE(solver
                  .ImpliesInverse(
                      {"student", Path::Parse("taking.taught_by").value(),
                       "teacher", Path::Parse("teaching.taken_by").value()})
                  .value());
}

// --- Section 1's FO^2 discussion --------------------------------------------

TEST(PaperSection1, KeyConstraintNotExpressibleInFo2) {
  // "Observe that G |= phi but G' |/= phi. This shows that phi is not
  //  expressible in FO^2."
  FoStructure g = MakeFigure1Matching(3);
  FoStructure g2 = MakeFigure1Shared(3);
  EXPECT_TRUE(EfGame2(g, g2).DecideFo2Equivalence().equivalent);
  FoPtr phi = UnaryKeySentence(kFigure1Relation);
  EXPECT_FALSE(phi->IsFo2());  // needs three variables as written
  EXPECT_TRUE(phi->Evaluate(g));
  EXPECT_FALSE(phi->Evaluate(g2));
}

}  // namespace
}  // namespace xic
