#include "constraints/checker.h"

#include <unordered_map>
#include <unordered_set>

#include "constraints/well_formed.h"
#include "obs/obs.h"
#include "util/strings.h"

namespace xic {

std::string ConstraintReport::ToString(const ConstraintSet& sigma) const {
  if (ok()) return "all constraints satisfied";
  std::string out;
  for (const ConstraintViolation& v : violations) {
    out += sigma.constraints[v.constraint_index].ToString() + ": " +
           v.message + "\n";
  }
  return out;
}

ConstraintChecker::ConstraintChecker(const DtdStructure& dtd,
                                     const ConstraintSet& sigma,
                                     CheckOptions options)
    : dtd_(dtd), sigma_(sigma), options_(options) {
  // Compile the immutable plan: everything that depends only on the DTD
  // and Sigma is resolved here so Check() never mutates shared state.
  plan_.resize(sigma_.constraints.size());
  for (size_t i = 0; i < sigma_.constraints.size(); ++i) {
    const Constraint& c = sigma_.constraints[i];
    if (c.kind == ConstraintKind::kId) needs_global_ids_ = true;
    if (c.kind == ConstraintKind::kInverse) {
      plan_[i].inv_key =
          c.inv_key.empty() ? dtd_.IdAttribute(c.element).value_or("")
                            : c.inv_key;
      plan_[i].inv_ref_key =
          c.inv_ref_key.empty() ? dtd_.IdAttribute(c.ref_element).value_or("")
                                : c.inv_ref_key;
    }
  }
}

namespace {

// Concatenated character data beneath `v` (depth-first).
std::string TextContent(const DataTree& tree, VertexId v) {
  std::string out;
  for (const Child& c : tree.children(v)) {
    if (const std::string* s = std::get_if<std::string>(&c)) {
      out += *s;
    } else {
      out += TextContent(tree, std::get<VertexId>(c));
    }
  }
  return out;
}

// Encodes a tuple of values into one hashable string (values are
// length-prefixed so distinct tuples never collide).
std::string EncodeTuple(const std::vector<std::string>& values) {
  std::string out;
  for (const std::string& v : values) {
    out += std::to_string(v.size());
    out += ':';
    out += v;
  }
  return out;
}

}  // namespace

Result<AttrValue> ConstraintChecker::FieldValue(const DataTree& tree,
                                                VertexId v,
                                                const std::string& name) const {
  if (tree.HasAttribute(v, name)) return tree.Attribute(v, name);
  // A name in Att(tau) always denotes the attribute: an unset declared
  // attribute is a missing field, never a sub-element fallback (keeps the
  // batch checker in agreement with IncrementalChecker, which only ever
  // reads attributes).
  if (dtd_.HasAttribute(tree.label(v), name)) {
    return Status::InvalidArgument("field " + name + " undefined on vertex " +
                                   std::to_string(v) +
                                   " (declared attribute unset)");
  }
  // Section 3.4: a unique sub-element acts as a field whose value is its
  // character data.
  VertexId match = kInvalidVertex;
  int count = 0;
  for (VertexId child : tree.ChildVertices(v)) {
    if (tree.label(child) == name) {
      match = child;
      ++count;
    }
  }
  if (count == 1) return AttrValue{TextContent(tree, match)};
  return Status::InvalidArgument(
      "field " + name + " undefined on vertex " + std::to_string(v) +
      (count > 1 ? " (sub-element not unique)" : ""));
}

ConstraintReport ConstraintChecker::Check(const DataTree& tree,
                                          const Deadline& deadline) const {
  obs::ScopedSpan span("constraints.check", "constraints");
  ConstraintReport report = CheckImpl(tree, deadline);
  span.AddInt("constraints", static_cast<int64_t>(sigma_.constraints.size()));
  span.AddInt("steps", static_cast<int64_t>(report.steps));
  span.AddInt("violations", static_cast<int64_t>(report.violations.size()));
  XIC_COUNTER_ADD("constraints.checks", 1);
  XIC_COUNTER_ADD("constraints.steps", report.steps);
  XIC_COUNTER_ADD("constraints.violations", report.violations.size());
  return report;
}

ConstraintReport ConstraintChecker::CheckImpl(const DataTree& tree,
                                              const Deadline& deadline) const {
  ConstraintReport report;
  ExtentIndex extents(tree);
  auto add = [&](size_t index, std::string msg, std::vector<VertexId> wit,
                 std::vector<std::string> values = {}) {
    if (options_.max_violations == 0 ||
        report.violations.size() < options_.max_violations) {
      report.violations.push_back(
          {index, std::move(msg), std::move(wit), std::move(values)});
    }
  };
  auto full = [&] {
    return options_.max_violations != 0 &&
           report.violations.size() >= options_.max_violations;
  };

  // Single value of a field, or nullopt (missing fields are reported by
  // the caller as violations of the constraint that needed them).
  auto single = [&](VertexId v,
                    const std::string& name) -> std::optional<std::string> {
    ++report.steps;
    Result<AttrValue> value = FieldValue(tree, v, name);
    if (!value.ok() || value.value().size() != 1) return std::nullopt;
    return *value.value().begin();
  };
  auto tuple = [&](VertexId v, const std::vector<std::string>& names)
      -> std::optional<std::vector<std::string>> {
    std::vector<std::string> out;
    for (const std::string& name : names) {
      std::optional<std::string> val = single(v, name);
      if (!val.has_value()) return std::nullopt;
      out.push_back(std::move(*val));
    }
    return out;
  };

  // Global ID table for kId constraints: value -> vertices carrying it in
  // their type's ID attribute (document-wide scope). Per-document scratch,
  // like `extents` above -- nothing here outlives this call.
  std::unordered_map<std::string, std::vector<VertexId>> global_ids;
  if (needs_global_ids_) {
    for (VertexId v = 0; v < tree.size(); ++v) {
      if ((v & 0x3FF) == 0) {
        if (Status s = deadline.Check("constraint check"); !s.ok()) {
          report.status = std::move(s);
          return report;
        }
      }
      std::optional<std::string> id_attr = dtd_.IdAttribute(tree.label(v));
      if (!id_attr.has_value()) continue;
      if (std::optional<std::string> val = single(v, *id_attr)) {
        global_ids[*val].push_back(v);
      }
    }
  }

  for (size_t i = 0; i < sigma_.constraints.size() && !full(); ++i) {
    if (Status s = deadline.Check("constraint check"); !s.ok()) {
      report.status = std::move(s);
      return report;
    }
    const Constraint& c = sigma_.constraints[i];
    const std::vector<VertexId>& ext = extents.Extent(c.element);
    const std::vector<VertexId>& ref_ext = extents.Extent(c.ref_element);

    switch (c.kind) {
      case ConstraintKind::kKey: {
        if (options_.naive) {
          // Mirrors the indexed path exactly: each duplicate is reported
          // once, against the *first* vertex carrying the same tuple (not
          // once per earlier occurrence, which over-reports on triples).
          for (size_t b = 0; b < ext.size() && !full(); ++b) {
            std::optional<std::vector<std::string>> tb = tuple(ext[b], c.attrs);
            if (!tb.has_value()) {
              add(i, "key field missing", {ext[b]});
              continue;
            }
            for (size_t a = 0; a < b; ++a) {
              std::optional<std::vector<std::string>> ta =
                  tuple(ext[a], c.attrs);
              if (ta.has_value() && *ta == *tb) {
                add(i, "duplicate key [" + Join(*tb, ",") + "]",
                    {ext[a], ext[b]}, *tb);
                break;
              }
            }
          }
          break;
        }
        std::unordered_map<std::string, VertexId> seen;
        for (VertexId v : ext) {
          std::optional<std::vector<std::string>> t = tuple(v, c.attrs);
          if (!t.has_value()) {
            add(i, "key field missing", {v});
            continue;
          }
          auto [it, inserted] = seen.try_emplace(EncodeTuple(*t), v);
          if (!inserted) {
            add(i, "duplicate key [" + Join(*t, ",") + "]", {it->second, v},
                *t);
          }
          if (full()) break;
        }
        break;
      }

      case ConstraintKind::kId: {
        // Report each duplicated value once per constraint, not once per
        // vertex of ext(tau) holding it (the witnesses already list every
        // holder).
        std::unordered_set<std::string> reported;
        for (VertexId v : ext) {
          std::optional<std::string> val = single(v, c.attr());
          if (!val.has_value()) {
            add(i, "ID attribute missing", {v});
            continue;
          }
          auto it = global_ids.find(*val);
          if (it != global_ids.end() && it->second.size() > 1 &&
              reported.insert(*val).second) {
            add(i, "ID value \"" + *val + "\" is not document-unique",
                it->second, {*val});
          }
          if (full()) break;
        }
        break;
      }

      case ConstraintKind::kForeignKey: {
        if (options_.naive) {
          for (VertexId v : ext) {
            std::optional<std::vector<std::string>> t = tuple(v, c.attrs);
            if (!t.has_value()) {
              add(i, "foreign-key field missing", {v});
              continue;
            }
            bool found = false;
            for (VertexId w : ref_ext) {
              std::optional<std::vector<std::string>> u =
                  tuple(w, c.ref_attrs);
              if (u.has_value() && *u == *t) {
                found = true;
                break;
              }
            }
            if (!found) {
              add(i, "dangling reference [" + Join(*t, ",") + "]", {v}, *t);
            }
            if (full()) break;
          }
          break;
        }
        std::unordered_set<std::string> targets;
        for (VertexId w : ref_ext) {
          std::optional<std::vector<std::string>> u = tuple(w, c.ref_attrs);
          if (u.has_value()) targets.insert(EncodeTuple(*u));
        }
        for (VertexId v : ext) {
          std::optional<std::vector<std::string>> t = tuple(v, c.attrs);
          if (!t.has_value()) {
            add(i, "foreign-key field missing", {v});
            continue;
          }
          if (targets.count(EncodeTuple(*t)) == 0) {
            add(i, "dangling reference [" + Join(*t, ",") + "]", {v}, *t);
          }
          if (full()) break;
        }
        break;
      }

      case ConstraintKind::kSetForeignKey: {
        std::unordered_set<std::string> targets;
        for (VertexId w : ref_ext) {
          if (std::optional<std::string> u = single(w, c.ref_attr())) {
            targets.insert(*u);
          }
        }
        for (VertexId v : ext) {
          Result<AttrValue> vals = FieldValue(tree, v, c.attr());
          if (!vals.ok()) {
            add(i, "set-valued field missing", {v});
            continue;
          }
          for (const std::string& val : vals.value()) {
            bool found;
            if (options_.naive) {
              found = false;
              for (VertexId w : ref_ext) {
                std::optional<std::string> u = single(w, c.ref_attr());
                if (u.has_value() && *u == val) {
                  found = true;
                  break;
                }
              }
            } else {
              found = targets.count(val) > 0;
            }
            if (!found) {
              add(i, "dangling reference \"" + val + "\"", {v}, {val});
              if (full()) break;
            }
          }
          if (full()) break;
        }
        break;
      }

      case ConstraintKind::kInverse: {
        // Key attributes (named in L_u, ID attributes in L_id) were
        // resolved at compile time.
        const std::string& lk = plan_[i].inv_key;
        const std::string& lk2 = plan_[i].inv_ref_key;
        if (lk.empty() || lk2.empty()) {
          add(i, "inverse constraint lacks key attributes", {});
          break;
        }
        // key value -> vertices (multimap: key violations must not mask
        // inverse violations).
        std::unordered_map<std::string, std::vector<VertexId>> by_key;
        std::unordered_map<std::string, std::vector<VertexId>> ref_by_key;
        for (VertexId v : ext) {
          if (std::optional<std::string> val = single(v, lk)) {
            by_key[*val].push_back(v);
          }
        }
        for (VertexId w : ref_ext) {
          if (std::optional<std::string> val = single(w, lk2)) {
            ref_by_key[*val].push_back(w);
          }
        }
        // Typed semantics (DESIGN.md): the referenced values must be keys
        // of the partner type (the containments Inv-SFK-ID derives).
        for (VertexId x : ext) {
          Result<AttrValue> xl = FieldValue(tree, x, c.attr());
          if (!xl.ok()) continue;
          for (const std::string& val : xl.value()) {
            if (ref_by_key.count(val) == 0) {
              add(i, "inverse reference \"" + val + "\" is not a " +
                         c.ref_element + " key",
                  {x}, {val});
              if (full()) break;
            }
          }
          if (full()) break;
        }
        for (VertexId y : ref_ext) {
          Result<AttrValue> yl = FieldValue(tree, y, c.ref_attr());
          if (!yl.ok()) continue;
          for (const std::string& val : yl.value()) {
            if (by_key.count(val) == 0) {
              add(i, "inverse reference \"" + val + "\" is not a " +
                         c.element + " key",
                  {y}, {val});
              if (full()) break;
            }
          }
          if (full()) break;
        }
        // Direction 1: x.lk in y.l'  ==>  y.lk' in x.l.
        for (VertexId y : ref_ext) {
          Result<AttrValue> yl2 = FieldValue(tree, y, c.ref_attr());
          std::optional<std::string> ykey = single(y, lk2);
          if (!yl2.ok() || !ykey.has_value()) continue;
          for (const std::string& val : yl2.value()) {
            auto it = by_key.find(val);
            if (it == by_key.end()) continue;
            for (VertexId x : it->second) {
              Result<AttrValue> xl = FieldValue(tree, x, c.attr());
              if (!xl.ok() || xl.value().count(*ykey) == 0) {
                add(i, "inverse missing: " + c.ref_element + " \"" + *ykey +
                           "\" references \"" + val + "\" but not back",
                    {x, y}, {*ykey});
              }
              if (full()) break;
            }
            if (full()) break;
          }
          if (full()) break;
        }
        // Direction 2 (symmetric).
        for (VertexId x : ext) {
          Result<AttrValue> xl = FieldValue(tree, x, c.attr());
          std::optional<std::string> xkey = single(x, lk);
          if (!xl.ok() || !xkey.has_value()) continue;
          for (const std::string& val : xl.value()) {
            auto it = ref_by_key.find(val);
            if (it == ref_by_key.end()) continue;
            for (VertexId y : it->second) {
              Result<AttrValue> yl2 = FieldValue(tree, y, c.ref_attr());
              if (!yl2.ok() || yl2.value().count(*xkey) == 0) {
                add(i, "inverse missing: " + c.element + " \"" + *xkey +
                           "\" references \"" + val + "\" but not back",
                    {y, x}, {*xkey});
              }
              if (full()) break;
            }
            if (full()) break;
          }
          if (full()) break;
        }
        break;
      }
    }
  }
  return report;
}

}  // namespace xic
