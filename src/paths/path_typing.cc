#include "paths/path_typing.h"

namespace xic {

PathContext::PathContext(const DtdStructure& dtd, const ConstraintSet& sigma)
    : dtd_(dtd), sigma_(sigma), solver_(dtd, sigma) {
  status_ = solver_.status();
  if (!status_.ok()) return;
  // Precompute reference targets from the closure: every (set-valued or
  // unary) foreign key tau.l <= tau2.id fixes the type of l.
  for (const auto& [c, just] : solver_.facts()) {
    if (c.kind != ConstraintKind::kForeignKey &&
        c.kind != ConstraintKind::kSetForeignKey) {
      continue;
    }
    // Only references into ID attributes type a path step (L_id form).
    std::optional<std::string> id = dtd_.IdAttribute(c.ref_element);
    if (!id.has_value() || *id != c.ref_attr()) continue;
    // Skip the reflexive tau.id <= tau.id facts produced by ID-FK: they
    // would make every ID attribute a self-reference.
    if (c.element == c.ref_element && c.attr() == c.ref_attr()) continue;
    auto key = std::make_pair(c.element, c.attr());
    auto [it, inserted] = ref_targets_.try_emplace(key, c.ref_element);
    if (!inserted && it->second != c.ref_element) {
      status_ = Status::InvalidArgument(
          "attribute " + c.element + "." + c.attr() +
          " references two element types (" + it->second + ", " +
          c.ref_element + "); type(tau.rho) would be ambiguous");
      return;
    }
  }
}

std::optional<std::string> PathContext::ReferenceTarget(
    const std::string& tau, const std::string& attr) const {
  auto it = ref_targets_.find(std::make_pair(tau, attr));
  if (it == ref_targets_.end()) return std::nullopt;
  return it->second;
}

Result<std::string> PathContext::TypeOf(const std::string& tau,
                                        const Path& rho) const {
  if (!status_.ok()) return status_;
  if (!dtd_.HasElement(tau)) {
    return Status::InvalidArgument("undeclared element type " + tau);
  }
  std::string current = tau;
  for (size_t i = 0; i < rho.size(); ++i) {
    const std::string& step = rho.steps[i];
    if (current == kStringSymbol) {
      return Status::InvalidArgument(
          "path " + rho.ToString() + " extends beyond S at step " +
          std::to_string(i));
    }
    if (dtd_.HasAttribute(current, step)) {
      std::optional<std::string> target = ReferenceTarget(current, step);
      current = target.has_value() ? *target : std::string(kStringSymbol);
      continue;
    }
    // Element step: the name must occur in P(current).
    Result<RegexPtr> content = dtd_.ContentModel(current);
    if (!content.ok()) return content.status();
    if (content.value()->Symbols().count(step) == 0) {
      return Status::InvalidArgument(
          "path " + rho.ToString() + " invalid: " + step +
          " is neither an attribute of " + current +
          " nor occurs in its content model");
    }
    current = step;  // step may itself be kStringSymbol (#PCDATA)
  }
  return current;
}

bool PathContext::IsValidPath(const std::string& tau, const Path& rho) const {
  return TypeOf(tau, rho).ok();
}

bool PathContext::IsKeyPath(const std::string& tau, const Path& rho) const {
  if (!status_.ok()) return false;
  std::string current = tau;
  for (const std::string& step : rho.steps) {
    if (current == kStringSymbol) return false;
    if (dtd_.HasAttribute(current, step)) {
      // An attribute extends a key path when it is a key of the current
      // type, or it is the ID attribute with its ID constraint implied.
      bool is_key =
          solver_.Implies(Constraint::UnaryKey(current, step)) ||
          (dtd_.IdAttribute(current) == step &&
           solver_.Implies(Constraint::Id(current, step)));
      if (!is_key) return false;
      std::optional<std::string> target = ReferenceTarget(current, step);
      current = target.has_value() ? *target : std::string(kStringSymbol);
      continue;
    }
    // Element steps extend key paths only through unique sub-elements.
    if (!dtd_.IsUniqueSubElement(current, step)) return false;
    current = step;
  }
  return true;
}

}  // namespace xic
