// Prometheus text-format exposition (version 0.0.4) for a
// MetricsSnapshot.
//
// The renderer is a pure function of the snapshot so it serves three
// callers identically: the dispatcher's `stats.prom` verb, xicd's
// --prom-out periodic file export, and the golden tests. Output rules,
// pinned by tests and checked end-to-end by tools/xicd_client.py's
// strict parser:
//
//   * Metric families are emitted in ascending order of their rendered
//     name; each is exactly one `# HELP`, one `# TYPE`, then its
//     samples. HELP text is the original dot-separated registry name
//     (escaped per the format: backslash and newline).
//   * Names are sanitized to [a-zA-Z0-9_:] (dots and any other byte
//     become '_') and prefixed "xic_": "serve.request.ms" ->
//     xic_serve_request_ms.
//   * Counters render as TYPE counter (registry counters and high-water
//     marks are both monotonic non-decreasing, which is the contract
//     that matters for scrapes), gauges as TYPE gauge, histograms as
//     TYPE histogram with *cumulative* `le` buckets -- the registry
//     stores per-bucket counts, the renderer accumulates -- a mandatory
//     le="+Inf" bucket equal to _count, then _sum and _count samples.
//   * Values print integers bare and other doubles with %.6g, matching
//     the registry's JSON rendering.
//
// Compiled unconditionally: under XIC_OBS=OFF the registry snapshot is
// empty but the daemon-level metrics a caller layers into the snapshot
// (cache, sessions, flight recorder) still render, so `stats.prom`
// remains a working protocol verb in probe-free builds.

#ifndef XIC_OBS_PROM_H_
#define XIC_OBS_PROM_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace xic::obs {

/// A Prometheus-valid metric name: `prefix` + `name` with every byte
/// outside [a-zA-Z0-9_:] replaced by '_'.
std::string PrometheusName(std::string_view name,
                           std::string_view prefix = "xic_");

/// Renders the snapshot as Prometheus text format; see the header
/// comment for the exact output contract.
std::string PrometheusText(const MetricsSnapshot& snapshot,
                           std::string_view prefix = "xic_");

}  // namespace xic::obs

#endif  // XIC_OBS_PROM_H_
