// Two-pebble Ehrenfeucht-Fraissé games (Section 1, Figure 1).
//
// The m-round 2-pebble game characterizes equivalence of two structures
// under FO^2 sentences of quantifier rank m; duplicator winning for every
// m (a fixpoint of the winning-set iteration) characterizes full FO^2
// equivalence. The paper uses this to show unary key constraints are not
// FO^2-expressible: Figure 1 exhibits FO^2-equivalent structures G, G'
// with G |= (tau.l -> tau) and G' |/= it. The solver below certifies that
// property mechanically for the reconstructed Figure 1 family.
//
// Implementation: dynamic programming over pebble configurations. A
// configuration assigns each of the two pebbles either "unplaced" or a
// pair (a in A, b in B). Win_0 = partial isomorphisms; Win_{m+1} keeps
// the configurations where every spoiler move (either pebble, either
// side) has a duplicator reply staying in Win_m. The iteration is
// monotone decreasing, so it reaches a fixpoint in at most |configs|
// rounds; in practice a handful.

#ifndef XIC_LOGIC_EF_GAME_H_
#define XIC_LOGIC_EF_GAME_H_

#include <cstdint>
#include <vector>

#include "logic/structure.h"

namespace xic {

class EfGame2 {
 public:
  /// Both structures must share the vocabulary of interest; relations
  /// present in either are compared.
  EfGame2(const FoStructure& a, const FoStructure& b);

  /// Does duplicator survive `rounds` rounds from the empty
  /// configuration (i.e. are A and B equivalent for FO^2 sentences of
  /// quantifier rank <= rounds)?
  bool DuplicatorWins(size_t rounds);

  struct FixpointResult {
    bool equivalent = false;        // FO^2-equivalent (all ranks)
    size_t rounds_to_fixpoint = 0;  // iterations until Win stabilized
  };
  /// Runs the iteration to its fixpoint (capped defensively).
  FixpointResult DecideFo2Equivalence(size_t max_rounds = 4096);

  size_t num_configs() const;

 private:
  // Pair index: a * size_b_ + b; kUnset = size_a_ * size_b_ (unplaced).
  size_t PairIndex(size_t a, size_t b) const { return a * size_b_ + b; }
  size_t ConfigIndex(size_t p1, size_t p2) const {
    return p1 * (num_pairs_ + 1) + p2;
  }

  bool PairCompatible(size_t a, size_t b) const;
  bool ConfigValid(size_t p1, size_t p2) const;

  void InitWin();
  // One refinement step; returns true if Win changed.
  bool Refine();

  const FoStructure& a_;
  const FoStructure& b_;
  size_t size_a_;
  size_t size_b_;
  size_t num_pairs_;        // size_a_ * size_b_
  std::vector<uint8_t> win_;  // (num_pairs_+1)^2 entries
  size_t rounds_computed_ = 0;
  bool initialized_ = false;
  bool fixpoint_ = false;
};

}  // namespace xic

#endif  // XIC_LOGIC_EF_GAME_H_
