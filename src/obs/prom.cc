#include "obs/prom.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>

namespace xic::obs {

namespace {

// Matches the registry's JSON rendering: integers bare, otherwise %.6g.
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

// HELP text and label values share the format's escaping rules
// (backslash and newline; label values additionally escape '"', harmless
// in HELP text).
std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '"':
        out += "\\\"";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendHeader(std::string* out, const std::string& name,
                  const std::string& help, const char* type) {
  *out += "# HELP " + name + " " + EscapeText(help) + "\n";
  *out += "# TYPE " + name + " ";
  *out += type;
  *out += "\n";
}

}  // namespace

std::string PrometheusName(std::string_view name, std::string_view prefix) {
  std::string out(prefix);
  out.reserve(prefix.size() + name.size());
  for (char c : name) {
    bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot,
                           std::string_view prefix) {
  // One rendered block per family, keyed (and therefore emitted) in
  // ascending rendered-name order. Distinct registry names can collide
  // after sanitization ("a.b" and "a_b"); last writer wins, which keeps
  // the output parseable rather than emitting a duplicate family.
  std::map<std::string, std::string> families;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = PrometheusName(name, prefix);
    std::string block;
    AppendHeader(&block, metric, name, "counter");
    block += metric + " " + std::to_string(value) + "\n";
    families[metric] = std::move(block);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = PrometheusName(name, prefix);
    std::string block;
    AppendHeader(&block, metric, name, "gauge");
    block += metric + " " + FormatValue(value) + "\n";
    families[metric] = std::move(block);
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string metric = PrometheusName(name, prefix);
    std::string block;
    AppendHeader(&block, metric, name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      cumulative += histogram.buckets[i];
      const std::string le = i < histogram.bounds.size()
                                 ? FormatValue(histogram.bounds[i])
                                 : "+Inf";
      block += metric + "_bucket{le=\"" + EscapeText(le) + "\"} " +
               std::to_string(cumulative) + "\n";
    }
    // A histogram always renders a +Inf bucket, even for a hand-built
    // snapshot whose bucket vector lacks the overflow slot.
    if (histogram.buckets.size() <= histogram.bounds.size()) {
      cumulative = std::max(cumulative, histogram.count);
      block += metric + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative) + "\n";
    }
    // _count is the +Inf cumulative by construction, not the snapshot's
    // count field: a snapshot taken while observations land can read the
    // buckets and the count at slightly different instants, and the text
    // format requires the two samples to agree within one scrape.
    block += metric + "_sum " + FormatValue(histogram.sum) + "\n";
    block += metric + "_count " + std::to_string(cumulative) + "\n";
    families[metric] = std::move(block);
  }
  std::string out;
  for (const auto& [metric, block] : families) out += block;
  return out;
}

}  // namespace xic::obs
