#include <gtest/gtest.h>

#include <random>

#include "constraints/checker.h"
#include "constraints/constraint_parser.h"
#include "implication/satisfy.h"
#include "model/structural_validator.h"
#include "xml/dtd_parser.h"

namespace xic {
namespace {

TEST(Satisfy, BookLuSigmaAtSeveralSizes) {
  Result<ConstraintSet> sigma = ParseConstraintSet(
      "key entry.isbn; key section.sid; sfk ref.to -> entry.isbn",
      Language::kLu);
  ASSERT_TRUE(sigma.ok());
  for (size_t rows : {0u, 1u, 5u}) {
    Result<TableInstance> instance =
        GenerateSatisfyingInstance(sigma.value(), nullptr, rows);
    ASSERT_TRUE(instance.ok()) << instance.status();
    EXPECT_TRUE(SatisfiesAll(instance.value(), sigma.value()))
        << instance.value().ToString();
  }
}

TEST(Satisfy, DivergenceFamilyIsSatisfiableAtEverySize) {
  // Corollary 3.3's divergence Sigma is itself satisfiable in finite
  // models of any extent size (the divergence concerns an *extra*
  // constraint, not Sigma).
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    key t.a; key t.b
    key u.c; key u.d
    fk t.a -> u.c
    fk u.d -> t.b
  )", Language::kLu);
  ASSERT_TRUE(sigma.ok());
  Result<TableInstance> instance =
      GenerateSatisfyingInstance(sigma.value(), nullptr, 4);
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(SatisfiesAll(instance.value(), sigma.value()))
      << instance.value().ToString();
}

TEST(Satisfy, MultiAttributeL) {
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    key publisher[pname, country]
    key editor.name
    fk editor[pname, country] -> publisher[pname, country]
  )", Language::kL);
  ASSERT_TRUE(sigma.ok());
  Result<TableInstance> instance =
      GenerateSatisfyingInstance(sigma.value(), nullptr, 3);
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(SatisfiesAll(instance.value(), sigma.value()));
  EXPECT_EQ(instance.value().tables.at("publisher").size(), 3u);
}

TEST(Satisfy, LidWithInverses) {
  Result<DtdStructure> dtd = ParseDtd(R"(
    <!ELEMENT db (person*, dept*)>
    <!ELEMENT person EMPTY>
    <!ATTLIST person oid ID #REQUIRED in_dept IDREFS #REQUIRED>
    <!ELEMENT dept EMPTY>
    <!ATTLIST dept oid ID #REQUIRED manager IDREF #REQUIRED
              has_staff IDREFS #REQUIRED>
  )", "db");
  ASSERT_TRUE(dtd.ok());
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    id person.oid
    id dept.oid
    sfk person.in_dept -> dept.oid
    fk dept.manager -> person.oid
    sfk dept.has_staff -> person.oid
    inverse person.in_dept <-> dept.has_staff
  )", Language::kLid);
  ASSERT_TRUE(sigma.ok());
  Result<TableInstance> instance =
      GenerateSatisfyingInstance(sigma.value(), &dtd.value(), 3);
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_TRUE(SatisfiesAll(instance.value(), sigma.value(), &dtd.value()))
      << instance.value().ToString();
  // IDs are document-wide distinct by construction.
  const TableRow& person0 = instance.value().tables.at("person")[0];
  const TableRow& dept0 = instance.value().tables.at("dept")[0];
  EXPECT_NE(*person0.at("oid").begin(), *dept0.at("oid").begin());
  // The manager field copies person IDs.
  EXPECT_EQ(*dept0.at("manager").begin(), *person0.at("oid").begin());
}

TEST(Satisfy, LidNeedsDtd) {
  ConstraintSet sigma;
  sigma.language = Language::kLid;
  EXPECT_FALSE(GenerateSatisfyingInstance(sigma, nullptr, 1).ok());
}

TEST(Satisfy, GeneratedDocumentsValidateEndToEnd) {
  Result<ConstraintSet> sigma = ParseConstraintSet(
      "key entry.isbn; sfk ref.to -> entry.isbn", Language::kLu);
  ASSERT_TRUE(sigma.ok());
  Result<LiftedDocument> doc =
      GenerateSatisfyingDocument(sigma.value(), nullptr, 8);
  ASSERT_TRUE(doc.ok()) << doc.status();
  StructuralValidator validator(doc.value().dtd);
  EXPECT_TRUE(validator.Validate(doc.value().tree).ok());
  ConstraintChecker checker(doc.value().dtd, sigma.value());
  EXPECT_TRUE(checker.Check(doc.value().tree).ok())
      << checker.Check(doc.value().tree).ToString(sigma.value());
  EXPECT_EQ(doc.value().tree.Extent("entry").size(), 8u);
}

// Randomized: every random well-formed L_u Sigma is satisfied by its
// generated instance (the constructive satisfiability property).
class SatisfyProperty : public ::testing::TestWithParam<int> {};

TEST_P(SatisfyProperty, RandomLuSigmasAreSatisfied) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 48271u);
  const std::vector<std::string> types = {"t0", "t1", "t2"};
  const std::vector<std::string> single = {"a", "b"};
  for (int trial = 0; trial < 50; ++trial) {
    ConstraintSet sigma;
    sigma.language = Language::kLu;
    int n = 1 + static_cast<int>(rng() % 6);
    for (int i = 0; i < n; ++i) {
      std::string t = types[rng() % 3];
      std::string t2 = types[rng() % 3];
      std::string l = single[rng() % 2];
      std::string l2 = single[rng() % 2];
      switch (rng() % 4) {
        case 0:
          sigma.constraints.push_back(Constraint::UnaryKey(t, l));
          break;
        case 1:
          sigma.constraints.push_back(Constraint::UnaryKey(t2, l2));
          sigma.constraints.push_back(
              Constraint::UnaryForeignKey(t, l, t2, l2));
          break;
        case 2:
          sigma.constraints.push_back(Constraint::UnaryKey(t2, l2));
          sigma.constraints.push_back(
              Constraint::SetForeignKey(t, "r", t2, l2));
          break;
        case 3:
          sigma.constraints.push_back(Constraint::UnaryKey(t, l));
          sigma.constraints.push_back(Constraint::UnaryKey(t2, l2));
          sigma.constraints.push_back(
              Constraint::InverseU(t, l, "r", t2, l2, "r"));
          break;
      }
    }
    for (size_t rows : {1u, 3u}) {
      Result<TableInstance> instance =
          GenerateSatisfyingInstance(sigma, nullptr, rows);
      ASSERT_TRUE(instance.ok()) << sigma.ToString();
      EXPECT_TRUE(SatisfiesAll(instance.value(), sigma))
          << sigma.ToString() << "\n"
          << instance.value().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatisfyProperty, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace xic
