// Parser for DTD declarations (<!ELEMENT ...> and <!ATTLIST ...>),
// producing a DtdStructure (Definition 2.2).
//
// Attribute type mapping:
//   ID                  -> R = S,  kind = ID
//   IDREF               -> R = S,  kind = IDREF
//   IDREFS              -> R = S*, kind = IDREF
//   NMTOKENS / ENTITIES -> R = S*
//   CDATA / NMTOKEN / enumerations / ENTITY -> R = S
// Default declarations (#REQUIRED / #IMPLIED / #FIXED "v" / "v") are
// parsed and discarded: the paper's R has no notion of optionality.
// Parameter entities are not supported.

#ifndef XIC_XML_DTD_PARSER_H_
#define XIC_XML_DTD_PARSER_H_

#include <string>

#include "model/dtd_structure.h"
#include "util/limits.h"
#include "util/status.h"

namespace xic {

struct DtdParseOptions {
  /// Hard input bounds (subset bytes, content-model nesting). Violations
  /// return kResourceExhausted naming the limit.
  ResourceLimits limits;
  /// Time budget; checked once per declaration.
  Deadline deadline;
};

/// Parses a DTD (a sequence of declarations, e.g. the internal subset of a
/// DOCTYPE). `root` becomes the structure's root element type r.
Result<DtdStructure> ParseDtd(const std::string& text,
                              const std::string& root,
                              const DtdParseOptions& options = {});

}  // namespace xic

#endif  // XIC_XML_DTD_PARSER_H_
