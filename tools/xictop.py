#!/usr/bin/env python3
"""xictop: a terminal top-alike for a running xicd daemon.

Polls the daemon's stats.prom verb over the xic/1 wire protocol and
renders live qps / latency / cache-hit-rate / shed-rate deltas. No
curses, no dependencies: plain ANSI repaint, so it works in CI logs
(--count 1 prints one snapshot and exits) and over ssh alike.

Usage:
  tools/xictop.py --port 7677 [--interval 1.0] [--count 0]

Keys shown per refresh:
  qps        requests per second since the previous scrape
  p50/p90    request latency estimated from the serve.request.ms
             histogram deltas (linear interpolation within a bucket)
  hit%       plan-cache hit rate over the interval
  shed/s     load-shed responses per second
  err/s      non-ok responses per second
  rec/drop   flight-recorder records and drops over the interval

Exit code 0 on a clean run, 1 when the daemon cannot be reached.
"""

import argparse
import socket
import sys
import time


def scrape(host, port, timeout):
    """One stats.prom round-trip; returns the exposition text."""
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.sendall(b"xic/1 stats.prom 0\n")
        reader = sock.makefile("rb")
        line = reader.readline().decode()
        parts = line.strip().split(" ")
        if len(parts) < 3 or parts[0] != "xic/1" or parts[1] != "ok":
            raise RuntimeError(f"bad stats.prom response: {line.strip()!r}")
        body = reader.read(int(parts[2]))
        return body.decode()
    finally:
        sock.close()


def parse(text):
    """Exposition text -> {metric-name: value} and histogram buckets.

    Returns (flat, histograms) where histograms maps family name to a
    list of (le-bound, cumulative-count) plus ("sum"/"count", value)
    entries kept in flat under '<family>_sum' / '<family>_count'.
    """
    flat = {}
    histograms = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value_text = line.rpartition(" ")
        try:
            value = float(value_text)
        except ValueError:
            continue
        if "{" in name_part:
            name, _, labels = name_part.partition("{")
            if name.endswith("_bucket") and 'le="' in labels:
                family = name[: -len("_bucket")]
                le_text = labels.split('le="', 1)[1].split('"', 1)[0]
                le = float("inf") if le_text == "+Inf" else float(le_text)
                histograms.setdefault(family, []).append((le, value))
            continue
        flat[name_part] = value
    return flat, histograms


def quantile(buckets_before, buckets_after, q):
    """Latency quantile from histogram deltas, linearly interpolated."""
    if not buckets_after:
        return None
    before = dict(buckets_before or [])
    deltas = []
    for le, cumulative in buckets_after:
        deltas.append((le, cumulative - before.get(le, 0.0)))
    total = deltas[-1][1]
    if total <= 0:
        return None
    target = q * total
    prev_le, prev_cum = 0.0, 0.0
    for le, cumulative in deltas:
        if cumulative >= target:
            if le == float("inf"):
                return prev_le  # open-ended bucket: report its lower edge
            span = cumulative - prev_cum
            if span <= 0:
                return le
            return prev_le + (le - prev_le) * (target - prev_cum) / span
        prev_le, prev_cum = le, cumulative
    return prev_le


def fmt_ms(value):
    if value is None:
        return "   -  "
    if value < 10:
        return f"{value:5.2f}m"
    return f"{value:5.0f}m"


def delta(after, before, name):
    return after.get(name, 0.0) - before.get(name, 0.0)


def render(after, before, hist_after, hist_before, interval):
    qps = delta(after, before, "xic_serve_requests") / interval
    shed = delta(after, before, "xic_serve_shed") / interval
    errors = delta(after, before, "xic_serve_errors") / interval
    hits = delta(after, before, "xic_serve_cache_hits")
    misses = delta(after, before, "xic_serve_cache_misses")
    lookups = hits + misses
    hit_rate = 100.0 * hits / lookups if lookups > 0 else None
    family = "xic_serve_request_ms"
    p50 = quantile(hist_before.get(family), hist_after.get(family), 0.50)
    p90 = quantile(hist_before.get(family), hist_after.get(family), 0.90)
    recorded = delta(after, before, "xic_serve_flightrec_recorded")
    dropped = delta(after, before, "xic_serve_flightrec_dropped")
    hit_text = f"{hit_rate:5.1f}%" if hit_rate is not None else "   -  "
    return (f"qps {qps:8.1f}  p50 {fmt_ms(p50)}  p90 {fmt_ms(p90)}  "
            f"hit {hit_text}  shed/s {shed:6.1f}  err/s {errors:6.1f}  "
            f"rec {recorded:6.0f}/drop {dropped:.0f}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between scrapes (default 1)")
    parser.add_argument("--count", type=int, default=0,
                        help="refreshes before exiting (0 = forever)")
    parser.add_argument("--timeout", type=float, default=5.0)
    args = parser.parse_args()

    try:
        flat, hist = parse(scrape(args.host, args.port, args.timeout))
    except (OSError, RuntimeError) as error:
        print(f"xictop: {error}", file=sys.stderr)
        return 1
    print(f"xictop: {args.host}:{args.port} every {args.interval}s "
          "(ctrl-c to quit)")
    refreshes = 0
    try:
        while args.count == 0 or refreshes < args.count:
            time.sleep(args.interval)
            try:
                now_flat, now_hist = parse(
                    scrape(args.host, args.port, args.timeout))
            except (OSError, RuntimeError) as error:
                print(f"xictop: {error}", file=sys.stderr)
                return 1
            line = render(now_flat, flat, now_hist, hist, args.interval)
            if sys.stdout.isatty() and refreshes > 0:
                sys.stdout.write("\x1b[1A\x1b[2K")  # repaint in place
            print(line)
            sys.stdout.flush()
            flat, hist = now_flat, now_hist
            refreshes += 1
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
