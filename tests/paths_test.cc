#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "paths/path.h"
#include "paths/path_eval.h"
#include "paths/path_typing.h"
#include "xml/xml_parser.h"

namespace xic {
namespace {

Path P(const std::string& text) {
  Result<Path> p = Path::Parse(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return p.value();
}

TEST(Path, ParseAndPrint) {
  EXPECT_TRUE(P("").empty());
  EXPECT_TRUE(P("epsilon").empty());
  EXPECT_EQ(P("").ToString(), "epsilon");
  EXPECT_EQ(P("book.entry.isbn").steps,
            (std::vector<std::string>{"book", "entry", "isbn"}));
  EXPECT_EQ(P("a.b").ToString(), "a.b");
  EXPECT_FALSE(Path::Parse("a..b").ok());
  EXPECT_FALSE(Path::Parse("a.1x").ok());
}

TEST(Path, Operations) {
  Path p = P("a.b.c");
  EXPECT_EQ(p.Concat(P("d.e")).ToString(), "a.b.c.d.e");
  EXPECT_EQ(p.Prefix(2).ToString(), "a.b");
  EXPECT_EQ(p.Prefix(9).ToString(), "a.b.c");
  EXPECT_EQ(p.Suffix(1).ToString(), "b.c");
  EXPECT_EQ(p.Suffix(3).ToString(), "epsilon");
  EXPECT_TRUE(p.StartsWith(P("a.b")));
  EXPECT_TRUE(p.StartsWith(P("")));
  EXPECT_FALSE(p.StartsWith(P("b")));
  EXPECT_FALSE(P("a").StartsWith(p));
}

// The book DTD^C with L_id constraints: isbn keys entries and ref.to
// references entries via their ID attribute.
struct BookContext {
  DtdStructure dtd;
  ConstraintSet sigma;
};

BookContext MakeBook() {
  BookContext ctx;
  EXPECT_TRUE(
      ctx.dtd.AddElement("book", "(entry, author*, section*, ref)").ok());
  EXPECT_TRUE(ctx.dtd.AddElement("entry", "(title, publisher)").ok());
  EXPECT_TRUE(ctx.dtd.AddElement("author", "(#PCDATA)").ok());
  EXPECT_TRUE(ctx.dtd.AddElement("title", "(#PCDATA)").ok());
  EXPECT_TRUE(ctx.dtd.AddElement("publisher", "(#PCDATA)").ok());
  EXPECT_TRUE(ctx.dtd.AddElement("text", "(#PCDATA)").ok());
  EXPECT_TRUE(
      ctx.dtd.AddElement("section", "(title, (text|section)*)").ok());
  EXPECT_TRUE(ctx.dtd.AddElement("ref", "EMPTY").ok());
  EXPECT_TRUE(
      ctx.dtd.AddAttribute("entry", "isbn", AttrCardinality::kSingle).ok());
  EXPECT_TRUE(ctx.dtd.SetKind("entry", "isbn", AttrKind::kId).ok());
  EXPECT_TRUE(
      ctx.dtd.AddAttribute("section", "sid", AttrCardinality::kSingle).ok());
  EXPECT_TRUE(ctx.dtd.SetKind("section", "sid", AttrKind::kId).ok());
  EXPECT_TRUE(ctx.dtd.AddAttribute("ref", "to", AttrCardinality::kSet).ok());
  EXPECT_TRUE(ctx.dtd.SetKind("ref", "to", AttrKind::kIdref).ok());
  EXPECT_TRUE(ctx.dtd.SetRoot("book").ok());
  EXPECT_TRUE(ctx.dtd.Validate().ok());
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    id entry.isbn
    id section.sid
    sfk ref.to -> entry.isbn
  )", Language::kLid);
  EXPECT_TRUE(sigma.ok()) << sigma.status();
  ctx.sigma = sigma.value();
  return ctx;
}

TEST(PathTyping, TypeOfPaths) {
  BookContext ctx = MakeBook();
  PathContext context(ctx.dtd, ctx.sigma);
  ASSERT_TRUE(context.status().ok()) << context.status();
  EXPECT_EQ(context.TypeOf("book", P("")).value(), "book");
  EXPECT_EQ(context.TypeOf("book", P("entry")).value(), "entry");
  EXPECT_EQ(context.TypeOf("book", P("entry.isbn")).value(), kStringSymbol);
  EXPECT_EQ(context.TypeOf("book", P("ref")).value(), "ref");
  // The paper's example: attribute `to` dereferences to entry elements.
  EXPECT_EQ(context.TypeOf("book", P("ref.to")).value(), "entry");
  EXPECT_EQ(context.TypeOf("book", P("ref.to.title")).value(), "title");
  // Recursive sections.
  EXPECT_EQ(context.TypeOf("book", P("section.section.section")).value(),
            "section");
  EXPECT_EQ(context.TypeOf("section", P("text")).value(), "text");
}

TEST(PathTyping, InvalidPaths) {
  BookContext ctx = MakeBook();
  PathContext context(ctx.dtd, ctx.sigma);
  EXPECT_FALSE(context.TypeOf("book", P("ghost")).ok());
  EXPECT_FALSE(context.TypeOf("book", P("entry.ghost")).ok());
  // Extending beyond S.
  EXPECT_FALSE(context.TypeOf("book", P("entry.isbn.title")).ok());
  EXPECT_FALSE(context.TypeOf("ghost", P("entry")).ok());
  EXPECT_TRUE(context.IsValidPath("book", P("entry.title")));
  EXPECT_FALSE(context.IsValidPath("book", P("title")));
}

TEST(PathTyping, ReferenceTargets) {
  BookContext ctx = MakeBook();
  PathContext context(ctx.dtd, ctx.sigma);
  EXPECT_EQ(context.ReferenceTarget("ref", "to"), "entry");
  EXPECT_EQ(context.ReferenceTarget("entry", "isbn"), std::nullopt);
  EXPECT_EQ(context.ReferenceTarget("nope", "x"), std::nullopt);
}

TEST(PathTyping, KeyPaths) {
  BookContext ctx = MakeBook();
  PathContext context(ctx.dtd, ctx.sigma);
  // epsilon is a key path; unique sub-elements extend key paths.
  EXPECT_TRUE(context.IsKeyPath("book", P("")));
  EXPECT_TRUE(context.IsKeyPath("book", P("entry")));
  // The ID attribute (with its ID constraint) extends a key path: the
  // paper's motivating example -- isbn is a key for books too.
  EXPECT_TRUE(context.IsKeyPath("book", P("entry.isbn")));
  // author is not unique in book.
  EXPECT_FALSE(context.IsKeyPath("book", P("author")));
  // section is not unique either.
  EXPECT_FALSE(context.IsKeyPath("book", P("section.sid")));
  // title of entry is unique but carries no key constraint; still a key
  // path via uniqueness of the sub-element itself.
  EXPECT_TRUE(context.IsKeyPath("book", P("entry.title")));
}

TEST(PathTyping, AmbiguousReferenceRejected) {
  // An IDREF attribute that Sigma sends to two element types makes
  // type() ill-defined; the context must refuse.
  DtdStructure dtd;
  ASSERT_TRUE(dtd.AddElement("db", "(a*, b*, r*)").ok());
  for (const char* e : {"a", "b"}) {
    ASSERT_TRUE(dtd.AddElement(e, "EMPTY").ok());
    ASSERT_TRUE(dtd.AddAttribute(e, "oid", AttrCardinality::kSingle).ok());
    ASSERT_TRUE(dtd.SetKind(e, "oid", AttrKind::kId).ok());
  }
  ASSERT_TRUE(dtd.AddElement("r", "EMPTY").ok());
  ASSERT_TRUE(dtd.AddAttribute("r", "to", AttrCardinality::kSingle).ok());
  ASSERT_TRUE(dtd.SetKind("r", "to", AttrKind::kIdref).ok());
  ASSERT_TRUE(dtd.SetRoot("db").ok());
  ConstraintSet sigma;
  sigma.language = Language::kLid;
  sigma.constraints = {Constraint::Id("a", "oid"), Constraint::Id("b", "oid"),
                       Constraint::UnaryForeignKey("r", "to", "a", "oid"),
                       Constraint::UnaryForeignKey("r", "to", "b", "oid")};
  PathContext context(dtd, sigma);
  EXPECT_FALSE(context.status().ok());
}

const char* kBookDoc = R"(<book>
  <entry isbn="i1"><title>T</title><publisher>P</publisher></entry>
  <author>A1</author>
  <author>A2</author>
  <section sid="s1"><title>S1</title>
    <section sid="s2"><title>S2</title></section>
  </section>
  <ref to="i1"/>
</book>)";

struct EvalFixture {
  BookContext ctx;
  XmlDocument doc;
};

EvalFixture MakeEval() {
  EvalFixture f;
  f.ctx = MakeBook();
  Result<XmlDocument> doc = ParseXml(kBookDoc, {.dtd = &f.ctx.dtd});
  EXPECT_TRUE(doc.ok()) << doc.status();
  f.doc = std::move(doc).value();
  return f;
}

TEST(PathEval, NodesFollowsChildrenAndReferences) {
  EvalFixture f = MakeEval();
  PathContext context(f.ctx.dtd, f.ctx.sigma);
  ASSERT_TRUE(context.status().ok());
  PathEvaluator eval(context, f.doc.tree);
  VertexId book = f.doc.tree.root();
  EXPECT_EQ(eval.Nodes(book, P("")).size(), 1u);
  EXPECT_EQ(eval.Nodes(book, P("author")).size(), 2u);
  EXPECT_EQ(eval.Nodes(book, P("entry")).size(), 1u);
  // Attribute with type S yields the atomic value.
  std::set<PathNode> isbn = eval.Nodes(book, P("entry.isbn"));
  ASSERT_EQ(isbn.size(), 1u);
  EXPECT_EQ(std::get<std::string>(*isbn.begin()), "i1");
  // Dereferencing ref.to lands on the entry vertex.
  std::set<PathNode> deref = eval.Nodes(book, P("ref.to"));
  ASSERT_EQ(deref.size(), 1u);
  VertexId entry = f.doc.tree.Extent("entry")[0];
  EXPECT_EQ(std::get<VertexId>(*deref.begin()), entry);
  // And continues into its children.
  EXPECT_EQ(eval.Nodes(book, P("ref.to.title")).size(), 1u);
  // Recursive descent.
  EXPECT_EQ(eval.Nodes(book, P("section.section")).size(), 1u);
  EXPECT_EQ(eval.Extent("section", P("title")).size(), 2u);
}

TEST(PathEval, SemanticChecks) {
  EvalFixture f = MakeEval();
  PathContext context(f.ctx.dtd, f.ctx.sigma);
  PathEvaluator eval(context, f.doc.tree);
  // One book: every functional constraint holds trivially; still checks
  // plumbing.
  EXPECT_TRUE(eval.SatisfiesFunctional("book", P("entry.isbn"),
                                       P("author")));
  EXPECT_TRUE(eval.SatisfiesInclusion("book", P("ref.to"), "entry", P("")));
  EXPECT_TRUE(eval.SatisfiesInclusion("book", P("ref.to.title"), "entry",
                                      P("title")));
  EXPECT_FALSE(eval.SatisfiesInclusion("book", P("author"), "entry", P("")));
}

TEST(PathEval, FunctionalViolationDetected) {
  // Two sections share the same title path value but different sid.
  BookContext ctx = MakeBook();
  const char* doc_text = R"(<book>
    <entry isbn="i1"><title>T</title><publisher>P</publisher></entry>
    <section sid="s1"><title>Same</title></section>
    <section sid="s2"><title>Same</title></section>
    <ref to="i1"/>
  </book>)";
  Result<XmlDocument> doc = ParseXml(doc_text, {.dtd = &ctx.dtd});
  ASSERT_TRUE(doc.ok());
  PathContext context(ctx.dtd, ctx.sigma);
  PathEvaluator eval(context, doc.value().tree);
  // section.title does not determine section.sid here.
  EXPECT_FALSE(
      eval.SatisfiesFunctional("section", P("title.#PCDATA"), P("sid")));
  // But sid determines title.
  EXPECT_TRUE(
      eval.SatisfiesFunctional("section", P("sid"), P("title.#PCDATA")));
}

TEST(PathEval, InverseSemantics) {
  // person/dept with mutual references evaluated as path inverses.
  DtdStructure dtd;
  ASSERT_TRUE(dtd.AddElement("db", "(person*, dept*)").ok());
  ASSERT_TRUE(dtd.AddElement("person", "EMPTY").ok());
  ASSERT_TRUE(dtd.AddElement("dept", "EMPTY").ok());
  ASSERT_TRUE(
      dtd.AddAttribute("person", "oid", AttrCardinality::kSingle).ok());
  ASSERT_TRUE(dtd.SetKind("person", "oid", AttrKind::kId).ok());
  ASSERT_TRUE(
      dtd.AddAttribute("person", "in_dept", AttrCardinality::kSet).ok());
  ASSERT_TRUE(dtd.SetKind("person", "in_dept", AttrKind::kIdref).ok());
  ASSERT_TRUE(dtd.AddAttribute("dept", "oid", AttrCardinality::kSingle).ok());
  ASSERT_TRUE(dtd.SetKind("dept", "oid", AttrKind::kId).ok());
  ASSERT_TRUE(
      dtd.AddAttribute("dept", "has_staff", AttrCardinality::kSet).ok());
  ASSERT_TRUE(dtd.SetKind("dept", "has_staff", AttrKind::kIdref).ok());
  ASSERT_TRUE(dtd.SetRoot("db").ok());
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    id person.oid
    id dept.oid
    sfk person.in_dept -> dept.oid
    sfk dept.has_staff -> person.oid
    inverse person.in_dept <-> dept.has_staff
  )", Language::kLid);
  ASSERT_TRUE(sigma.ok());
  PathContext context(dtd, sigma.value());
  ASSERT_TRUE(context.status().ok()) << context.status();

  Result<XmlDocument> good = ParseXml(R"(<db>
    <person oid="p1" in_dept="d1"/>
    <dept oid="d1" has_staff="p1"/>
  </db>)", {.dtd = &dtd});
  ASSERT_TRUE(good.ok());
  PathEvaluator eval(context, good.value().tree);
  EXPECT_TRUE(
      eval.SatisfiesInverse("person", P("in_dept"), "dept", P("has_staff")));

  Result<XmlDocument> bad = ParseXml(R"(<db>
    <person oid="p1" in_dept="d1"/>
    <person oid="p2" in_dept="d1"/>
    <dept oid="d1" has_staff="p1"/>
  </db>)", {.dtd = &dtd});
  ASSERT_TRUE(bad.ok());
  PathEvaluator eval_bad(context, bad.value().tree);
  EXPECT_FALSE(eval_bad.SatisfiesInverse("person", P("in_dept"), "dept",
                                         P("has_staff")));
}

}  // namespace
}  // namespace xic
