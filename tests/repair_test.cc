#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "constraints/repair.h"
#include "xml/xml_parser.h"

namespace xic {
namespace {

Result<XmlDocument> PersonDeptDoc(const std::string& body) {
  std::string text = R"(<!DOCTYPE db [
    <!ELEMENT db (person*, dept*)>
    <!ELEMENT person EMPTY>
    <!ATTLIST person oid ID #REQUIRED in_dept IDREFS #REQUIRED>
    <!ELEMENT dept EMPTY>
    <!ATTLIST dept oid ID #REQUIRED has_staff IDREFS #REQUIRED>
  ]>
  <db>)" + body + "</db>";
  return ParseXml(text);
}

ConstraintSet Sigma() {
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    id person.oid
    id dept.oid
    sfk person.in_dept -> dept.oid
    sfk dept.has_staff -> person.oid
    inverse person.in_dept <-> dept.has_staff
  )", Language::kLid);
  EXPECT_TRUE(sigma.ok()) << sigma.status();
  return sigma.value();
}

TEST(Repair, DropsDanglingSetReferences) {
  Result<XmlDocument> doc = PersonDeptDoc(R"(
    <person oid="p1" in_dept="d1 ghost"/>
    <dept oid="d1" has_staff="p1"/>
  )");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ConstraintSet sigma = Sigma();
  Result<RepairReport> repaired =
      RepairDocument(&doc.value().tree, *doc.value().dtd, sigma);
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_TRUE(repaired.value().fully_repaired())
      << repaired.value().remaining.ToString(sigma);
  ASSERT_FALSE(repaired.value().actions.empty());
  EXPECT_NE(repaired.value().actions[0].find("ghost"), std::string::npos);
  // The ghost value is gone from the document.
  VertexId p1 = doc.value().tree.Extent("person")[0];
  EXPECT_EQ(doc.value().tree.Attribute(p1, "in_dept").value(),
            AttrValue{"d1"});
}

TEST(Repair, CompletesInversePairs) {
  // d1 lists p2 but p2 does not list d1 back.
  Result<XmlDocument> doc = PersonDeptDoc(R"(
    <person oid="p1" in_dept="d1"/>
    <person oid="p2" in_dept=""/>
    <dept oid="d1" has_staff="p1 p2"/>
  )");
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma = Sigma();
  Result<RepairReport> repaired =
      RepairDocument(&doc.value().tree, *doc.value().dtd, sigma);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired.value().fully_repaired())
      << repaired.value().remaining.ToString(sigma);
  VertexId p2 = doc.value().tree.Extent("person")[1];
  EXPECT_EQ(doc.value().tree.Attribute(p2, "in_dept").value(),
            AttrValue{"d1"});
}

TEST(Repair, CascadingRepairsConverge) {
  // Dropping one dangling ref and adding a back-reference in the same
  // document; rounds must converge.
  Result<XmlDocument> doc = PersonDeptDoc(R"(
    <person oid="p1" in_dept="d1 zombie"/>
    <person oid="p2" in_dept=""/>
    <dept oid="d1" has_staff="p1 p2"/>
  )");
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma = Sigma();
  Result<RepairReport> repaired =
      RepairDocument(&doc.value().tree, *doc.value().dtd, sigma);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired.value().fully_repaired())
      << repaired.value().remaining.ToString(sigma);
  EXPECT_GE(repaired.value().actions.size(), 2u);
}

TEST(Repair, KeyViolationsAreNotAutoRepaired) {
  const char* text = R"(<!DOCTYPE catalog [
    <!ELEMENT catalog (entry*)>
    <!ELEMENT entry EMPTY>
    <!ATTLIST entry isbn CDATA #REQUIRED>
  ]>
  <catalog><entry isbn="dup"/><entry isbn="dup"/></catalog>)";
  Result<XmlDocument> doc = ParseXml(text);
  ASSERT_TRUE(doc.ok());
  Result<ConstraintSet> sigma =
      ParseConstraintSet("key entry.isbn", Language::kLu);
  ASSERT_TRUE(sigma.ok());
  Result<RepairReport> repaired =
      RepairDocument(&doc.value().tree, *doc.value().dtd, sigma.value());
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired.value().fully_repaired());
  EXPECT_TRUE(repaired.value().actions.empty());
}

TEST(Repair, CreatesMissingTargetsWhenAsked) {
  const char* text = R"(<!DOCTYPE db [
    <!ELEMENT db (editor*, publisher*)>
    <!ELEMENT editor EMPTY>
    <!ATTLIST editor pub CDATA #REQUIRED>
    <!ELEMENT publisher EMPTY>
    <!ATTLIST publisher pname CDATA #REQUIRED>
  ]>
  <db><editor pub="MK"/></db>)";
  Result<XmlDocument> doc = ParseXml(text);
  ASSERT_TRUE(doc.ok());
  Result<ConstraintSet> sigma = ParseConstraintSet(
      "key publisher.pname; fk editor.pub -> publisher.pname",
      Language::kLu);
  ASSERT_TRUE(sigma.ok());
  // Without the option: unrepaired.
  DataTree copy = doc.value().tree;
  Result<RepairReport> untouched =
      RepairDocument(&copy, *doc.value().dtd, sigma.value());
  ASSERT_TRUE(untouched.ok());
  EXPECT_FALSE(untouched.value().fully_repaired());
  // With it: a publisher appears.
  RepairOptions options;
  options.create_missing_targets = true;
  Result<RepairReport> repaired = RepairDocument(
      &doc.value().tree, *doc.value().dtd, sigma.value(), options);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired.value().fully_repaired())
      << repaired.value().remaining.ToString(sigma.value());
  ASSERT_EQ(doc.value().tree.Extent("publisher").size(), 1u);
  VertexId pub = doc.value().tree.Extent("publisher")[0];
  EXPECT_EQ(doc.value().tree.SingleAttribute(pub, "pname").value(), "MK");
}

TEST(Repair, ConsistentDocumentsUntouched) {
  Result<XmlDocument> doc = PersonDeptDoc(R"(
    <person oid="p1" in_dept="d1"/>
    <dept oid="d1" has_staff="p1"/>
  )");
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma = Sigma();
  Result<RepairReport> repaired =
      RepairDocument(&doc.value().tree, *doc.value().dtd, sigma);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired.value().fully_repaired());
  EXPECT_TRUE(repaired.value().actions.empty());
}

TEST(Repair, NullDocumentRejected) {
  DtdStructure dtd;
  ConstraintSet sigma;
  EXPECT_FALSE(RepairDocument(nullptr, dtd, sigma).ok());
}

}  // namespace
}  // namespace xic
