// The static-analysis front door: run every registered lint rule over a
// (DTD, constraint set) pair -- no document required -- and collect the
// findings into one deterministic AnalysisReport.
//
// This is the library behind examples/xiclint.cpp. The paper's point is
// that DTDs with constraints admit static reasoning (implication,
// consistency, finite satisfiability are decidable or soundly
// approximable before any document exists); the Analyzer turns the
// solvers of implication/ into actionable diagnostics the way a compiler
// turns a type system into error messages.

#ifndef XIC_ANALYSIS_ANALYZER_H_
#define XIC_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/rule.h"
#include "constraints/constraint.h"
#include "model/dtd_structure.h"
#include "util/limits.h"
#include "util/status.h"

namespace xic {

struct AnalysisOptions {
  /// Bounds for the grammar analyses and solver searches. Violations
  /// surface as report.status = kResourceExhausted naming the limit.
  ResourceLimits limits;
  /// Wall-clock budget for the whole run; checked between rules and
  /// inside the solver-backed rules.
  Deadline deadline;
  /// Run only these rules (registry names); empty means all.
  std::vector<std::string> rules;
  /// Per-constraint source locations (parallel to sigma.constraints),
  /// e.g. from ParseConstraintsLocated. May be empty.
  std::vector<DiagLocation> locations;
};

class Analyzer {
 public:
  /// Analyzes with the built-in rule registry.
  Analyzer() : registry_(RuleRegistry::Builtin()) {}
  /// Analyzes with a caller-assembled registry (tests, extensions).
  explicit Analyzer(const RuleRegistry& registry) : registry_(registry) {}

  /// Runs the (selected) rules in registry order. Diagnostics are sorted
  /// deterministically; an expired deadline or exceeded limit stops the
  /// run and is recorded in report.status (exit code 3 territory).
  AnalysisReport Analyze(const DtdStructure& dtd, const ConstraintSet& sigma,
                         const AnalysisOptions& options = {}) const;

 private:
  const RuleRegistry& registry_;
};

}  // namespace xic

#endif  // XIC_ANALYSIS_ANALYZER_H_
