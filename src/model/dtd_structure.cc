#include "model/dtd_structure.h"

#include <cstddef>

namespace xic {

Status DtdStructure::AddElement(const std::string& name, RegexPtr content) {
  if (name.empty()) return Status::InvalidArgument("empty element name");
  if (content == nullptr) {
    return Status::InvalidArgument("null content model for " + name);
  }
  auto [it, inserted] = elements_.try_emplace(name);
  if (!inserted) {
    return Status::InvalidArgument("element type redeclared: " + name);
  }
  it->second.content = std::move(content);
  return Status::OK();
}

Status DtdStructure::AddElement(const std::string& name,
                                const std::string& content) {
  XIC_ASSIGN_OR_RETURN(RegexPtr re, ParseContentModel(content));
  return AddElement(name, std::move(re));
}

Status DtdStructure::AddAttribute(const std::string& element,
                                  const std::string& attr,
                                  AttrCardinality card) {
  auto it = elements_.find(element);
  if (it == elements_.end()) {
    return Status::InvalidArgument("attribute on undeclared element: " +
                                   element);
  }
  auto [attr_it, inserted] = it->second.attrs.try_emplace(attr);
  if (!inserted) {
    return Status::InvalidArgument("attribute redeclared: " + element + "." +
                                   attr);
  }
  attr_it->second.card = card;
  return Status::OK();
}

Status DtdStructure::SetKind(const std::string& element,
                             const std::string& attr, AttrKind kind) {
  auto it = elements_.find(element);
  if (it == elements_.end()) {
    return Status::InvalidArgument("kind on undeclared element: " + element);
  }
  auto attr_it = it->second.attrs.find(attr);
  if (attr_it == it->second.attrs.end()) {
    // Definition 2.2: kind(tau, l) defined implies R(tau, l) defined.
    return Status::InvalidArgument("kind on undeclared attribute: " +
                                   element + "." + attr);
  }
  if (kind == AttrKind::kId) {
    if (attr_it->second.card != AttrCardinality::kSingle) {
      return Status::InvalidArgument("ID attribute must be single-valued: " +
                                     element + "." + attr);
    }
    if (it->second.id_attr.has_value() && *it->second.id_attr != attr) {
      return Status::InvalidArgument("element " + element +
                                     " already has an ID attribute " +
                                     *it->second.id_attr);
    }
    it->second.id_attr = attr;
  }
  attr_it->second.kind = kind;
  return Status::OK();
}

Status DtdStructure::SetRoot(const std::string& element) {
  root_ = element;
  return Status::OK();
}

Status DtdStructure::Validate() const {
  if (root_.empty()) return Status::InvalidArgument("no root element set");
  if (elements_.find(root_) == elements_.end()) {
    return Status::InvalidArgument("root element undeclared: " + root_);
  }
  for (const auto& [name, info] : elements_) {
    for (const std::string& sym : info.content->Symbols()) {
      if (sym == kStringSymbol) continue;
      if (elements_.find(sym) == elements_.end()) {
        return Status::InvalidArgument("content model of " + name +
                                       " references undeclared element " +
                                       sym);
      }
    }
  }
  return Status::OK();
}

const DtdStructure::ElementInfo* DtdStructure::Find(
    std::string_view element) const {
  auto it = elements_.find(element);
  return it == elements_.end() ? nullptr : &it->second;
}

bool DtdStructure::HasElement(const std::string& name) const {
  return Find(name) != nullptr;
}

std::vector<std::string> DtdStructure::Elements() const {
  std::vector<std::string> out;
  out.reserve(elements_.size());
  for (const auto& [name, info] : elements_) out.push_back(name);
  return out;
}

Result<RegexPtr> DtdStructure::ContentModel(const std::string& element) const {
  const ElementInfo* info = Find(element);
  if (info == nullptr) {
    return Status::InvalidArgument("undeclared element: " + element);
  }
  return info->content;
}

std::vector<std::string> DtdStructure::Attributes(
    const std::string& element) const {
  std::vector<std::string> out;
  if (const ElementInfo* info = Find(element)) {
    for (const auto& [attr, ai] : info->attrs) out.push_back(attr);
  }
  return out;
}

bool DtdStructure::HasAttribute(const std::string& element,
                                const std::string& attr) const {
  const ElementInfo* info = Find(element);
  return info != nullptr && info->attrs.count(attr) > 0;
}

Result<AttrCardinality> DtdStructure::Cardinality(std::string_view element,
                                                  std::string_view attr) const {
  const ElementInfo* info = Find(element);
  if (info == nullptr) {
    return Status::InvalidArgument("undeclared element: " +
                                   std::string(element));
  }
  auto it = info->attrs.find(attr);
  if (it == info->attrs.end()) {
    return Status::InvalidArgument("undeclared attribute: " +
                                   std::string(element) + "." +
                                   std::string(attr));
  }
  return it->second.card;
}

bool DtdStructure::IsSingleValued(std::string_view element,
                                  std::string_view attr) const {
  Result<AttrCardinality> card = Cardinality(element, attr);
  return card.ok() && card.value() == AttrCardinality::kSingle;
}

bool DtdStructure::IsSetValued(std::string_view element,
                               std::string_view attr) const {
  Result<AttrCardinality> card = Cardinality(element, attr);
  return card.ok() && card.value() == AttrCardinality::kSet;
}

std::optional<AttrKind> DtdStructure::Kind(const std::string& element,
                                           const std::string& attr) const {
  const ElementInfo* info = Find(element);
  if (info == nullptr) return std::nullopt;
  auto it = info->attrs.find(attr);
  if (it == info->attrs.end()) return std::nullopt;
  return it->second.kind;
}

std::optional<std::string> DtdStructure::IdAttribute(
    const std::string& element) const {
  const ElementInfo* info = Find(element);
  if (info == nullptr) return std::nullopt;
  return info->id_attr;
}

bool DtdStructure::IsUniqueSubElement(const std::string& element,
                                      const std::string& sub) const {
  const ElementInfo* info = Find(element);
  if (info == nullptr) return false;
  return info->content->IsUniqueSymbol(sub);
}

size_t DtdStructure::DefinitionSize() const {
  size_t total = 0;
  for (const auto& [name, info] : elements_) {
    total += 1 + info.content->ToString().size() / 4 + info.attrs.size();
    total += info.content->Symbols().size();
  }
  return total;
}

std::string DtdStructure::ToString() const {
  std::string out;
  for (const auto& [name, info] : elements_) {
    // XML requires parentheses around non-EMPTY content models.
    std::string model = info.content->ToString();
    if (info.content->kind() != RegexKind::kEpsilon) {
      model = "(" + model + ")";
    }
    out += "<!ELEMENT " + name + " " + model + ">\n";
    if (!info.attrs.empty()) {
      out += "<!ATTLIST " + name;
      for (const auto& [attr, ai] : info.attrs) {
        out += "\n          " + attr + " ";
        if (ai.kind.has_value()) {
          out += (*ai.kind == AttrKind::kId) ? "ID" : "IDREF";
          if (*ai.kind == AttrKind::kIdref &&
              ai.card == AttrCardinality::kSet) {
            out += "S";
          }
        } else {
          out += (ai.card == AttrCardinality::kSet) ? "NMTOKENS" : "CDATA";
        }
        out += " #REQUIRED";
      }
      out += ">\n";
    }
  }
  return out;
}

}  // namespace xic
