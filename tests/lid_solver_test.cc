#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "implication/lid_solver.h"
#include "xml/dtd_parser.h"

namespace xic {
namespace {

Result<DtdStructure> ObjectDtd() {
  return ParseDtd(R"(
    <!ELEMENT db (person*, dept*)>
    <!ELEMENT person (name, address)>
    <!ATTLIST person oid ID #REQUIRED in_dept IDREFS #IMPLIED>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT address (#PCDATA)>
    <!ELEMENT dname (#PCDATA)>
    <!ELEMENT dept (dname)>
    <!ATTLIST dept oid ID #REQUIRED manager IDREF #REQUIRED
              has_staff IDREFS #IMPLIED>
  )", "db");
}

ConstraintSet PaperSigma() {
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    id person.oid
    id dept.oid
    key person.name
    key dept.dname
    sfk person.in_dept -> dept.oid
    fk dept.manager -> person.oid
    sfk dept.has_staff -> person.oid
    inverse dept.has_staff <-> person.in_dept
  )", Language::kLid);
  EXPECT_TRUE(sigma.ok()) << sigma.status();
  return sigma.value();
}

TEST(LidSolver, HypothesesAreImplied) {
  Result<DtdStructure> dtd = ObjectDtd();
  ASSERT_TRUE(dtd.ok());
  ConstraintSet sigma = PaperSigma();
  LidSolver solver(dtd.value(), sigma);
  ASSERT_TRUE(solver.status().ok()) << solver.status();
  for (const Constraint& c : sigma.constraints) {
    EXPECT_TRUE(solver.Implies(c)) << c.ToString();
  }
}

TEST(LidSolver, IdFkRule) {
  // ID-FK: person.oid ->id person |- person.oid <= person.oid.
  Result<DtdStructure> dtd = ObjectDtd();
  ASSERT_TRUE(dtd.ok());
  LidSolver solver(dtd.value(), PaperSigma());
  EXPECT_TRUE(solver.Implies(
      Constraint::UnaryForeignKey("person", "oid", "person", "oid")));
}

TEST(LidSolver, IdKeyRule) {
  // Our soundness addition: the ID constraint implies the per-type key.
  Result<DtdStructure> dtd = ObjectDtd();
  ASSERT_TRUE(dtd.ok());
  LidSolver solver(dtd.value(), PaperSigma());
  EXPECT_TRUE(solver.Implies(Constraint::UnaryKey("person", "oid")));
  EXPECT_TRUE(solver.Implies(Constraint::UnaryKey("dept", "oid")));
}

TEST(LidSolver, FkIdAndSfkIdRules) {
  // FK-ID / SFK-ID: a reference's target must be an ID. Start from a
  // Sigma that omits the ID constraints and check they are derived.
  Result<DtdStructure> dtd = ObjectDtd();
  ASSERT_TRUE(dtd.ok());
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    fk dept.manager -> person.oid
    sfk person.in_dept -> dept.oid
  )", Language::kLid);
  ASSERT_TRUE(sigma.ok());
  LidSolver solver(dtd.value(), sigma.value());
  EXPECT_TRUE(solver.Implies(Constraint::Id("person", "oid")));
  EXPECT_TRUE(solver.Implies(Constraint::Id("dept", "oid")));
  // And transitively the per-type keys.
  EXPECT_TRUE(solver.Implies(Constraint::UnaryKey("person", "oid")));
}

TEST(LidSolver, ReflexiveForeignKeysDoNotImplyIds) {
  // tau.l <= tau.l holds in every document (it is what ID-FK concludes
  // from a genuine ID), so hypothesizing it must not conjure an ID via
  // FK-ID / SFK-ID.
  Result<DtdStructure> dtd = ObjectDtd();
  ASSERT_TRUE(dtd.ok());
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    fk person.oid -> person.oid
    sfk dept.has_staff -> dept.has_staff
  )", Language::kLid);
  ASSERT_TRUE(sigma.ok()) << sigma.status();
  LidSolver solver(dtd.value(), sigma.value());
  ASSERT_TRUE(solver.status().ok()) << solver.status();
  // The hypotheses themselves stay implied...
  EXPECT_TRUE(solver.Implies(
      Constraint::UnaryForeignKey("person", "oid", "person", "oid")));
  // ...but the tautology carries no uniqueness information.
  EXPECT_FALSE(solver.Implies(Constraint::Id("person", "oid")));
  EXPECT_FALSE(solver.Implies(Constraint::Id("dept", "has_staff")));
  EXPECT_FALSE(solver.Implies(Constraint::UnaryKey("person", "oid")));
}

TEST(LidSolver, DuplicateHypothesesAreIdempotent) {
  Result<DtdStructure> dtd = ObjectDtd();
  ASSERT_TRUE(dtd.ok());
  ConstraintSet once = PaperSigma();
  ConstraintSet twice = once;
  twice.constraints.insert(twice.constraints.end(), once.constraints.begin(),
                           once.constraints.end());
  LidSolver single(dtd.value(), once);
  LidSolver doubled(dtd.value(), twice);
  ASSERT_TRUE(single.status().ok());
  ASSERT_TRUE(doubled.status().ok());
  EXPECT_EQ(single.closure_size(), doubled.closure_size());
  for (const Constraint& c : once.constraints) {
    EXPECT_TRUE(doubled.Implies(c)) << c.ToString();
    EXPECT_EQ(single.Explain(c), doubled.Explain(c)) << c.ToString();
  }
}

TEST(LidSolver, InverseRules) {
  Result<DtdStructure> dtd = ObjectDtd();
  ASSERT_TRUE(dtd.ok());
  Result<ConstraintSet> sigma = ParseConstraintSet(
      "inverse dept.has_staff <-> person.in_dept", Language::kLid);
  ASSERT_TRUE(sigma.ok());
  LidSolver solver(dtd.value(), sigma.value());
  // Inv-Symm.
  EXPECT_TRUE(solver.Implies(
      Constraint::InverseId("person", "in_dept", "dept", "has_staff")));
  // Inv-SFK-ID: both typed set-valued foreign keys.
  EXPECT_TRUE(solver.Implies(
      Constraint::SetForeignKey("dept", "has_staff", "person", "oid")));
  EXPECT_TRUE(solver.Implies(
      Constraint::SetForeignKey("person", "in_dept", "dept", "oid")));
  // And via SFK-ID the ID constraints.
  EXPECT_TRUE(solver.Implies(Constraint::Id("person", "oid")));
  EXPECT_TRUE(solver.Implies(Constraint::Id("dept", "oid")));
}

TEST(LidSolver, NonImplications) {
  Result<DtdStructure> dtd = ObjectDtd();
  ASSERT_TRUE(dtd.ok());
  LidSolver solver(dtd.value(), PaperSigma());
  // dname is a key of dept but nothing says address keys person.
  EXPECT_FALSE(solver.Implies(Constraint::UnaryKey("person", "address")));
  // No inverse between manager and anything.
  EXPECT_FALSE(solver.Implies(
      Constraint::InverseId("dept", "manager", "person", "in_dept")));
  // No foreign key from person.name.
  EXPECT_FALSE(solver.Implies(
      Constraint::UnaryForeignKey("person", "name", "dept", "oid")));
}

TEST(LidSolver, ExplainProducesDerivations) {
  Result<DtdStructure> dtd = ObjectDtd();
  ASSERT_TRUE(dtd.ok());
  LidSolver solver(dtd.value(), PaperSigma());
  std::optional<std::string> proof =
      solver.Explain(Constraint::Id("person", "oid"));
  ASSERT_TRUE(proof.has_value());
  EXPECT_NE(proof->find("hypothesis"), std::string::npos);
  std::optional<std::string> key_proof =
      solver.Explain(Constraint::UnaryKey("person", "oid"));
  ASSERT_TRUE(key_proof.has_value());
  EXPECT_NE(key_proof->find("ID-Key"), std::string::npos);
  EXPECT_FALSE(
      solver.Explain(Constraint::UnaryKey("person", "address")).has_value());
}

TEST(LidSolver, RejectsWrongLanguage) {
  Result<DtdStructure> dtd = ObjectDtd();
  ASSERT_TRUE(dtd.ok());
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  LidSolver solver(dtd.value(), sigma);
  EXPECT_FALSE(solver.status().ok());
  EXPECT_FALSE(solver.Implies(Constraint::UnaryKey("person", "oid")));
}

TEST(LidSolver, ClosureIsLinear) {
  // Closure size grows linearly with |Sigma| (Proposition 3.1's linear
  // time hinges on this).
  DtdStructure dtd;
  std::string root_model;
  ASSERT_TRUE(dtd.AddElement("db", "EMPTY").ok());
  ASSERT_TRUE(dtd.SetRoot("db").ok());
  ConstraintSet sigma;
  sigma.language = Language::kLid;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    std::string t = "t" + std::to_string(i);
    ASSERT_TRUE(dtd.AddElement(t, "EMPTY").ok());
    ASSERT_TRUE(dtd.AddAttribute(t, "oid", AttrCardinality::kSingle).ok());
    ASSERT_TRUE(dtd.SetKind(t, "oid", AttrKind::kId).ok());
    ASSERT_TRUE(dtd.AddAttribute(t, "refs", AttrCardinality::kSet).ok());
    ASSERT_TRUE(dtd.SetKind(t, "refs", AttrKind::kIdref).ok());
    sigma.constraints.push_back(Constraint::Id(t, "oid"));
    if (i > 0) {
      sigma.constraints.push_back(Constraint::SetForeignKey(
          t, "refs", "t" + std::to_string(i - 1), "oid"));
    }
  }
  LidSolver solver(dtd, sigma);
  ASSERT_TRUE(solver.status().ok());
  // Each ID constraint contributes <= 3 facts, each SFK <= 2.
  EXPECT_LE(solver.closure_size(), 5u * sigma.constraints.size());
}

}  // namespace
}  // namespace xic
