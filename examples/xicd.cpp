// xicd -- the long-lived validation daemon.
//
// Serves validate / lint / imply / incremental-session requests over a
// blocking TCP socket (protocol: src/serve/protocol.h; one-line header,
// length-prefixed body -- speakable with netcat, see README). Compiled
// schemas are cached across requests (src/serve/plan_cache.h), overload
// is shed explicitly with kUnavailable + retry-after-ms, and shutdown
// is graceful:
//
//   SIGTERM / SIGINT   stop accepting, drain in-flight requests, exit 0
//   SIGUSR1            flush --trace-out / --metrics-out without
//                      stopping (snapshot of a live daemon)
//   SIGQUIT            dump the flight recorder (the last N requests
//                      with verb / trace-id / status / duration) to
//                      stderr without stopping -- same text the debugz
//                      verb returns
//
// Builds with -DXIC_FAULT_INJECTION=ON additionally accept --fault-rate
// / --fault-seed / --fault-throw to rehearse transient failures
// deterministically (tools/xicd_client.py --faults in CI does exactly
// that).
//
// Exit codes: 0 clean shutdown, 2 bad usage / bind failure.

#include <csignal>
#include <cstdio>
#include <ctime>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs_cli.h"
#include "serve/server.h"

using namespace xic;
using namespace xic::serve;

namespace {

// Signal handlers may only touch lock-free flags; the acceptor's poll
// loop and the main thread's Wait() notice them within ~100ms.
volatile std::sig_atomic_t g_shutdown = 0;
volatile std::sig_atomic_t g_flush = 0;
volatile std::sig_atomic_t g_debugz = 0;

void OnShutdownSignal(int) { g_shutdown = 1; }
void OnFlushSignal(int) { g_flush = 1; }
void OnDebugzSignal(int) { g_debugz = 1; }

int Usage() {
  std::printf(
      "usage: xicd [options]\n"
      "\n"
      "Long-lived xic validation daemon (protocol xic/1, see DESIGN.md).\n"
      "\n"
      "  --host H           bind address (default 127.0.0.1)\n"
      "  --port P           port; 0 picks an ephemeral port (default 0)\n"
      "  --threads N        worker threads (default: hardware)\n"
      "  --queue-depth N    accepted connections awaiting a worker before\n"
      "                     load-shedding (default 64)\n"
      "  --cache-bytes N    plan-cache byte budget (default 256 MiB)\n"
      "  --negative-ttl-ms N  compile-failure cache TTL (default 2000)\n"
      "  --max-sessions N   open incremental sessions (default 256)\n"
      "  --deadline-ms N    default per-request deadline (default 10000)\n"
      "  --read-timeout-ms N  per-connection socket read timeout\n"
      "  --backoff-ms N     initial retry backoff for transient failures\n"
      "                     (0 disables waiting; default 10)\n"
#ifdef XIC_FAULT_INJECTION
      "  --fault-rate P     inject faults on fraction P of (site, id)\n"
      "  --fault-seed S     seed for deterministic fault decisions\n"
      "  --fault-throw      faults throw instead of returning unavailable\n"
#endif
      "  --trace-out FILE   span trace (flushed on SIGUSR1 and exit)\n"
      "  --metrics-out FILE metrics JSON (flushed on SIGUSR1 and exit)\n"
      "  --stats            print the metrics table to stderr on exit\n"
      "  --prom-out FILE    Prometheus text metrics, rewritten every\n"
      "                     --prom-interval-ms and on SIGUSR1/exit\n"
      "  --prom-interval-ms N  --prom-out rewrite period (default 1000)\n"
      "  --flightrec-capacity N  flight-recorder records kept for debugz/\n"
      "                     SIGQUIT (0 disables; default 512)\n"
      "  --slow-us N        requests at/above N microseconds get a phase\n"
      "                     breakdown in the flight record (default\n"
      "                     100000)\n");
  return 2;
}

bool ParseCount(const char* text, unsigned long* out) {
  char* end = nullptr;
  errno = 0;
  *out = std::strtoul(text, &end, 10);
  return errno == 0 && end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  ObsCliOptions obs_options;
  std::string prom_out;
  unsigned long prom_interval_ms = 1000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    unsigned long count = 0;
    bool obs_error = false;
    if (ObsParseFlag(argc, argv, &i, &obs_options, &obs_error)) {
      if (obs_error) return Usage();
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count) || count > 65535) {
        std::cerr << "--port: not a port: " << argv[i] << "\n";
        return Usage();
      }
      options.port = static_cast<uint16_t>(count);
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) return Usage();
      options.num_threads = count;
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count) || count == 0) return Usage();
      options.max_queue_depth = count;
    } else if (arg == "--cache-bytes" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) return Usage();
      options.dispatcher.cache.max_bytes = count;
    } else if (arg == "--negative-ttl-ms" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) return Usage();
      options.dispatcher.cache.negative_ttl_ms = count;
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) return Usage();
      options.dispatcher.sessions.max_sessions = count;
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) return Usage();
      options.dispatcher.default_deadline_ms = count;
    } else if (arg == "--read-timeout-ms" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) return Usage();
      options.read_timeout_ms = count;
    } else if (arg == "--backoff-ms" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) return Usage();
      options.dispatcher.backoff.initial_delay_ms = count;
    } else if (arg == "--prom-out" && i + 1 < argc) {
      prom_out = argv[++i];
    } else if (arg == "--prom-interval-ms" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count) || count == 0) return Usage();
      prom_interval_ms = count;
    } else if (arg == "--flightrec-capacity" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) return Usage();
      options.dispatcher.flight_recorder.capacity = count;
    } else if (arg == "--slow-us" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) return Usage();
      options.dispatcher.flight_recorder.slow_threshold_us = count;
#ifdef XIC_FAULT_INJECTION
    } else if (arg == "--fault-rate" && i + 1 < argc) {
      char* end = nullptr;
      double rate = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || rate < 0 || rate > 1) {
        std::cerr << "--fault-rate: not a probability: " << argv[i] << "\n";
        return Usage();
      }
      options.dispatcher.faults.rate = rate;
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) return Usage();
      options.dispatcher.faults.seed = count;
    } else if (arg == "--fault-throw") {
      options.dispatcher.faults.throw_exceptions = true;
#else
    } else if (arg == "--fault-rate" || arg == "--fault-seed" ||
               arg == "--fault-throw") {
      std::cerr << arg << ": fault injection is disabled in this build "
                          "(configure with -DXIC_FAULT_INJECTION=ON)\n";
      return 2;
#endif
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage();
    }
  }

  // The default per-request retry policy mirrors the engine: transient
  // faults get a second attempt with deterministic-jitter backoff.
  if (options.dispatcher.backoff.initial_delay_ms == 0 &&
      options.dispatcher.faults.enabled()) {
    options.dispatcher.backoff.initial_delay_ms = 10;
  }
  options.dispatcher.backoff.seed = options.dispatcher.faults.seed;

  ObsCliSession obs_session(obs_options);
  Server server(options);
  if (Status status = server.Start(); !status.ok()) {
    std::cerr << "xicd: " << status.ToString() << "\n";
    return 2;
  }

  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGUSR1, OnFlushSignal);
  std::signal(SIGQUIT, OnDebugzSignal);
  std::signal(SIGPIPE, SIG_IGN);  // a dead peer is the peer's problem

  // Rewrites --prom-out atomically (write-then-rename), so a scraper
  // tailing the file never reads a torn exposition.
  auto export_prom = [&]() {
    if (prom_out.empty()) return;
    const std::string tmp = prom_out + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "xicd: cannot write %s\n", tmp.c_str());
      return;
    }
    const std::string text = server.dispatcher().StatsProm();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::rename(tmp.c_str(), prom_out.c_str());
  };

  // The scripted client greps for this exact line to learn the port.
  std::printf("xicd listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  // Main thread: relay signal flags to the server until shutdown.
  uint64_t naps_since_export = 0;
  const uint64_t naps_per_export = (prom_interval_ms + 49) / 50;
  while (!g_shutdown) {
    if (g_flush) {
      g_flush = 0;
      obs_session.Flush();
      export_prom();
      std::fprintf(stderr, "xicd: observability flushed\n");
    }
    if (g_debugz) {
      g_debugz = 0;
      // Same text as the debugz verb; stderr keeps it out of the
      // port-announcement stream tools parse on stdout.
      std::string dump = server.dispatcher().flight_recorder().DebugString();
      std::fwrite(dump.data(), 1, dump.size(), stderr);
      std::fflush(stderr);
    }
    if (!prom_out.empty() && ++naps_since_export >= naps_per_export) {
      naps_since_export = 0;
      export_prom();
    }
    timespec nap{0, 50'000'000};  // 50ms
    nanosleep(&nap, nullptr);
  }
  std::fprintf(stderr, "xicd: draining\n");
  server.Shutdown(/*drain=*/true);
  Server::Stats stats = server.stats();
  std::fprintf(stderr,
               "xicd: served %llu requests (%llu accepted, %llu shed)\n",
               static_cast<unsigned long long>(stats.served_requests),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.shed_queue_full +
                                               stats.shed_inflight_bytes));
  export_prom();
  if (!obs_session.Finish()) return 2;
  return 0;
}
