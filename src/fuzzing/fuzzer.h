// The differential-fuzzing driver: seed-driven trial loops over one
// oracle family, with optional ddmin minimization of every mismatch.
//
// Determinism contract: trial i uses seed first_seed + i and a private
// SplitMix64 stream, so a (oracle, seed) pair reproduces bit-identically
// across runs, platforms and thread counts. Mismatch entries are
// self-contained corpus entries; replaying them does not consult the
// seed.

#ifndef XIC_FUZZING_FUZZER_H_
#define XIC_FUZZING_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzzing/oracles.h"
#include "fuzzing/reducer.h"

namespace xic::fuzz {

struct FuzzOptions {
  GenOptions gen;
  /// Shrink each mismatch entry with ReduceEntry before reporting.
  bool minimize = false;
  ReduceOptions reduce;
  /// Stop the run early once this many mismatches have been collected
  /// (0 = never stop early).
  size_t max_mismatches = 0;
};

struct FuzzMismatch {
  uint64_t seed = 0;
  std::string detail;
  CorpusEntry entry;  // minimized when FuzzOptions::minimize is set
};

struct FuzzResult {
  size_t trials = 0;   // trials actually executed
  size_t skipped = 0;  // trials the oracle could not judge
  std::vector<FuzzMismatch> mismatches;
};

/// Runs `trials` seed-driven trials of `oracle` starting at `first_seed`.
FuzzResult RunFuzz(OracleId oracle, uint64_t first_seed, size_t trials,
                   const FuzzOptions& options = {});

}  // namespace xic::fuzz

#endif  // XIC_FUZZING_FUZZER_H_
