// The XML data model of Definition 2.1.
//
// A data tree is (V, elem, att, root):
//   * V     -- a set of vertices,
//   * elem  -- maps each vertex to its element name and ordered list of
//              children (string values or vertices), forming a tree,
//   * att   -- partial map from (vertex, attribute name) to a *set* of
//              atomic values (single-valued attributes hold singletons),
//   * root  -- the distinguished root vertex.
//
// Memory layout (see DESIGN.md "Memory layout"): vertices are dense
// VertexId indexes into columnar per-field vectors, and every element and
// attribute *name* is interned into the tree's SymbolTable, so labels_ is
// a flat vector of 32-bit ids and per-vertex attributes are a small
// sorted vector of (Symbol, value) entries instead of a node-based
// std::map. ext(tau) and all pipeline indexes key on Symbol ids; the
// string-based accessors below are kept for the cold paths and resolve
// through the table. Symbol ids are assigned in first-appearance order
// during construction, so two parses of the same document produce
// identical ids regardless of which thread ran them.

#ifndef XIC_MODEL_DATA_TREE_H_
#define XIC_MODEL_DATA_TREE_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/status.h"
#include "util/symbol_table.h"

namespace xic {

using VertexId = uint32_t;
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// A child of a vertex: either a string value or a sub-tree vertex.
using Child = std::variant<std::string, VertexId>;

/// The (unordered) value of one attribute: a set of atomic values.
using AttrValue = std::set<std::string>;

class DataTree {
 public:
  /// One attribute of one vertex: interned name plus value set. Entries
  /// are kept sorted by name (lexicographically), preserving the
  /// iteration order of the std::map this storage replaced.
  struct AttrEntry {
    Symbol name;
    AttrValue value;
  };

  /// Read-only view of one vertex's attributes. Iterates in name order,
  /// yielding (const std::string& name, const AttrValue& value) pairs, so
  /// range-for with structured bindings works as it did over std::map.
  class VertexAttrs {
   public:
    class iterator {
     public:
      using value_type = std::pair<const std::string&, const AttrValue&>;

      value_type operator*() const {
        return {table_->name(it_->name), it_->value};
      }
      iterator& operator++() {
        ++it_;
        return *this;
      }
      bool operator==(const iterator& o) const { return it_ == o.it_; }
      bool operator!=(const iterator& o) const { return it_ != o.it_; }

     private:
      friend class VertexAttrs;
      iterator(const SymbolTable* table,
               std::vector<AttrEntry>::const_iterator it)
          : table_(table), it_(it) {}
      const SymbolTable* table_;
      std::vector<AttrEntry>::const_iterator it_;
    };

    iterator begin() const { return {table_, entries_->begin()}; }
    iterator end() const { return {table_, entries_->end()}; }
    size_t size() const { return entries_->size(); }
    bool empty() const { return entries_->empty(); }

    /// The raw sorted entries (hot paths index these by Symbol).
    const std::vector<AttrEntry>& entries() const { return *entries_; }

    /// Name-and-value equality, comparable across trees with different
    /// symbol tables (both sides iterate in name order).
    friend bool operator==(const VertexAttrs& a, const VertexAttrs& b) {
      if (a.size() != b.size()) return false;
      auto ia = a.begin(), ib = b.begin();
      for (; ia != a.end(); ++ia, ++ib) {
        if ((*ia).first != (*ib).first || (*ia).second != (*ib).second) {
          return false;
        }
      }
      return true;
    }
    friend bool operator!=(const VertexAttrs& a, const VertexAttrs& b) {
      return !(a == b);
    }

   private:
    friend class DataTree;
    VertexAttrs(const SymbolTable* table,
                const std::vector<AttrEntry>* entries)
        : table_(table), entries_(entries) {}
    const SymbolTable* table_;
    const std::vector<AttrEntry>* entries_;
  };

  DataTree() = default;

  /// Creates a vertex labeled `element_name`; the first vertex created
  /// becomes the root. Returns its id.
  VertexId AddVertex(std::string_view element_name);

  /// Appends `child` as the last child of `parent`. Fails if `child`
  /// already has a parent or if the edge would break the tree shape.
  Status AddChildVertex(VertexId parent, VertexId child);

  /// Appends a string child (character data) to `parent`.
  void AddChildText(VertexId parent, std::string text);

  /// Sets attribute `name` of `v` to the given set of values, replacing
  /// any previous value.
  void SetAttribute(VertexId v, std::string_view name, AttrValue value);

  /// Convenience for single-valued attributes.
  void SetAttribute(VertexId v, std::string_view name, std::string value);

  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  VertexId root() const { return root_; }

  const std::string& label(VertexId v) const {
    return symbols_.name(labels_[v]);
  }
  /// Interned label id of `v` (the hot-path equivalent of label()).
  Symbol label_symbol(VertexId v) const { return labels_[v]; }

  /// The tree's name table. Symbols returned by label_symbol() and
  /// AttrEntry::name index into it.
  const SymbolTable& symbols() const { return symbols_; }

  /// The id of `name` in this tree's table, or kInvalidSymbol if the name
  /// never occurs as a label or attribute name (then no vertex has it).
  Symbol FindName(std::string_view name) const {
    return symbols_.Find(name);
  }

  const std::vector<Child>& children(VertexId v) const {
    return children_[v];
  }
  /// Parent of `v`, or kInvalidVertex for the root.
  VertexId parent(VertexId v) const { return parents_[v]; }

  /// The attributes of `v` as a name-ordered view (name -> set of
  /// values).
  VertexAttrs attributes(VertexId v) const {
    return VertexAttrs(&symbols_, &attributes_[v]);
  }

  /// True iff att(v, name) is defined.
  bool HasAttribute(VertexId v, std::string_view name) const;
  bool HasAttribute(VertexId v, Symbol name) const {
    return FindAttr(v, name) != nullptr;
  }

  /// att(v, name); fails if undefined.
  Result<AttrValue> Attribute(VertexId v, std::string_view name) const;

  /// att(v, name) by interned id, or null if undefined. The hot-path
  /// accessor: no copy, no Status construction.
  const AttrValue* FindAttr(VertexId v, Symbol name) const {
    for (const AttrEntry& e : attributes_[v]) {
      if (e.name == name) return &e.value;
    }
    return nullptr;
  }

  /// The single value of a single-valued attribute; fails if undefined or
  /// not a singleton.
  Result<std::string> SingleAttribute(VertexId v,
                                      std::string_view name) const;

  /// ext(tau): ids of all vertices labeled `element_name`, in creation
  /// order. O(|V|) per call; see ExtentIndex for repeated queries.
  std::vector<VertexId> Extent(std::string_view element_name) const;

  /// All distinct labels in the tree.
  std::set<std::string> Labels() const;

  /// Vertex-labelled children only (skipping string children), in order.
  std::vector<VertexId> ChildVertices(VertexId v) const;

  /// Labels of all children in order, with string children rendered as
  /// the reserved S symbol -- the word checked against P(tau).
  std::vector<std::string> ChildWord(VertexId v) const;

 private:
  const AttrValue* FindAttr(VertexId v, std::string_view name) const {
    Symbol s = symbols_.Find(name);
    return s == kInvalidSymbol ? nullptr : FindAttr(v, s);
  }
  void SetAttributeImpl(VertexId v, std::string_view name, AttrValue value);

  SymbolTable symbols_;
  std::vector<Symbol> labels_;
  std::vector<std::vector<Child>> children_;
  std::vector<VertexId> parents_;
  std::vector<std::vector<AttrEntry>> attributes_;  // sorted by name
  VertexId root_ = kInvalidVertex;
};

/// Precomputed ext(tau) index over an immutable DataTree: one flat
/// vector of extents indexed by label Symbol.
class ExtentIndex {
 public:
  explicit ExtentIndex(const DataTree& tree);

  /// ext(tau) (empty if the label does not occur).
  const std::vector<VertexId>& Extent(std::string_view element_name) const;
  const std::vector<VertexId>& Extent(Symbol label) const {
    return label < extents_.size() ? extents_[label] : empty_;
  }

 private:
  const DataTree& tree_;
  std::vector<std::vector<VertexId>> extents_;  // indexed by Symbol
  std::vector<VertexId> empty_;
};

}  // namespace xic

#endif  // XIC_MODEL_DATA_TREE_H_
