#include "engine/batch_validator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>

#include "engine/thread_pool.h"
#include "obs/obs.h"
#include "util/arena.h"

namespace xic {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::string Fmt(const char* format, double a, double b = 0, double c = 0) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), format, a, b, c);
  return buffer;
}

// Status codes that mean "the pipeline could not finish", as opposed to a
// verdict about the document itself.
// Per-thread scratch arena for the constraint-check stage. Each pool
// worker (and the inline path's calling thread) reuses one arena across
// every document it processes, Reset() between documents, so steady-state
// checking never touches the shared allocator -- the main serialization
// point behind the flat batch-scaling curve.
Arena& WorkerArena() {
  static thread_local Arena arena;
  return arena;
}

bool IsInfrastructureStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool DocumentOutcome::infrastructure_failure() const {
  return !error.ok() || IsInfrastructureStatus(parse) ||
         IsInfrastructureStatus(structure.status) ||
         IsInfrastructureStatus(constraints.status);
}

std::string BatchStats::ToString() const {
  // `ok_documents` is counted straight from the outcomes; deriving it as
  // documents minus the failure buckets underflowed when a document
  // landed in more than one bucket.
  std::string out;
  out += "batch: " + std::to_string(documents) + " document(s), " +
         std::to_string(ok_documents) + " ok, " +
         std::to_string(parse_failures) +
         " parse failure(s), " + std::to_string(structurally_invalid) +
         " structurally invalid, " + std::to_string(constraint_violating) +
         " with constraint violations, " +
         std::to_string(resource_failures) +
         " resource/fault failure(s), " + std::to_string(retries) +
         " retry(ies)\n";
  out += "       " + std::to_string(total_vertices) + " vertices, " +
         std::to_string(total_violations) + " violation(s)\n";
  double docs_per_sec = wall_seconds > 0 ? documents / wall_seconds : 0;
  out += Fmt("wall:  %.3f s (%.1f docs/s) on ", wall_seconds, docs_per_sec) +
         std::to_string(threads) + " thread(s)\n";
  out += Fmt("stage: parse %.3f s, structure %.3f s, constraints %.3f s\n",
             parse_seconds, structure_seconds, constraints_seconds);
  return out;
}

bool BatchReport::all_ok() const {
  for (const DocumentOutcome& outcome : outcomes) {
    if (!outcome.ok()) return false;
  }
  return true;
}

bool BatchReport::any_infrastructure_failure() const {
  for (const DocumentOutcome& outcome : outcomes) {
    if (outcome.infrastructure_failure()) return true;
  }
  return false;
}

std::string BatchReport::ViolationsToString(const ConstraintSet& sigma) const {
  std::string out;
  for (const DocumentOutcome& o : outcomes) {
    if (o.ok()) continue;
    if (!o.error.ok()) {
      out += o.name + ": " + o.error.ToString() + "\n";
      continue;
    }
    if (!o.parse.ok()) {
      out += o.name + ": " + o.parse.ToString() + "\n";
      continue;
    }
    if (!o.structure.status.ok()) {
      out += o.name + ": structure: " + o.structure.status.ToString() + "\n";
    }
    for (const Violation& v : o.structure.violations) {
      out += o.name + ": structure: vertex " + std::to_string(v.vertex) +
             ": " + v.message + "\n";
    }
    if (!o.constraints.status.ok()) {
      out += o.name + ": constraints: " + o.constraints.status.ToString() +
             "\n";
    }
    for (const ConstraintViolation& v : o.constraints.violations) {
      out += o.name + ": " +
             sigma.constraints[v.constraint_index].ToString() + ": " +
             v.message + "\n";
    }
  }
  return out;
}

namespace {

// Minimal JSON string escaping for report fields (names, messages).
std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

bool HasCode(const DocumentOutcome& o, StatusCode code) {
  return o.error.code() == code || o.parse.code() == code ||
         o.structure.status.code() == code ||
         o.constraints.status.code() == code;
}

const char* Verdict(const DocumentOutcome& o) {
  if (o.infrastructure_failure()) return "infrastructure_failure";
  if (!o.parse.ok()) return "parse_error";
  if (!o.structure.ok()) return "invalid_structure";
  if (!o.constraints.ok()) return "constraint_violations";
  return "ok";
}

}  // namespace

std::string BatchReport::ToJson(const ConstraintSet& sigma) const {
  // Deterministic by construction: input order, no timings, no thread or
  // worker identities (`stats.threads` is also omitted so one corpus
  // renders identically at every --threads setting).
  std::string out = "{\n  \"schema\": \"xic-batch-report-v1\",\n";
  out += "  \"documents\": [";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const DocumentOutcome& o = outcomes[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + JsonQuote(o.name);
    out += ", \"verdict\": \"" + std::string(Verdict(o)) + "\"";
    out += ", \"attempts\": " + std::to_string(o.attempts);
    out += ", \"retries\": " + std::to_string(o.attempts - 1);
    out += ", \"vertices\": " + std::to_string(o.vertices);
    out += std::string(", \"timed_out\": ") +
           (HasCode(o, StatusCode::kDeadlineExceeded) ? "true" : "false");
    out += std::string(", \"faulted\": ") +
           (HasCode(o, StatusCode::kUnavailable) ? "true" : "false");
    if (!o.error.ok()) {
      out += std::string(", \"error\": {\"code\": \"") +
             StatusCodeToString(o.error.code()) +
             "\", \"message\": " + JsonQuote(o.error.message()) + "}";
    }
    if (!o.parse.ok()) {
      out += ", \"parse_error\": " + JsonQuote(o.parse.ToString());
    }
    if (!o.structure.status.ok()) {
      out += ", \"structure_error\": " +
             JsonQuote(o.structure.status.ToString());
    }
    if (!o.constraints.status.ok()) {
      out += ", \"constraints_error\": " +
             JsonQuote(o.constraints.status.ToString());
    }
    if (!o.structure.violations.empty()) {
      out += ", \"structure_violations\": [";
      for (size_t v = 0; v < o.structure.violations.size(); ++v) {
        const Violation& viol = o.structure.violations[v];
        if (v > 0) out += ", ";
        out += "{\"vertex\": " + std::to_string(viol.vertex) +
               ", \"message\": " + JsonQuote(viol.message) + "}";
      }
      out += "]";
    }
    if (!o.constraints.violations.empty()) {
      out += ", \"constraint_violations\": [";
      for (size_t v = 0; v < o.constraints.violations.size(); ++v) {
        const ConstraintViolation& viol = o.constraints.violations[v];
        if (v > 0) out += ", ";
        out += "{\"constraint\": " +
               JsonQuote(
                   sigma.constraints[viol.constraint_index].ToString()) +
               ", \"message\": " + JsonQuote(viol.message) + "}";
      }
      out += "]";
    }
    out += "}";
  }
  out += outcomes.empty() ? "],\n" : "\n  ],\n";
  out += "  \"stats\": {";
  out += "\"documents\": " + std::to_string(stats.documents);
  out += ", \"ok_documents\": " + std::to_string(stats.ok_documents);
  out += ", \"parse_failures\": " + std::to_string(stats.parse_failures);
  out += ", \"structurally_invalid\": " +
         std::to_string(stats.structurally_invalid);
  out += ", \"constraint_violating\": " +
         std::to_string(stats.constraint_violating);
  out += ", \"resource_failures\": " +
         std::to_string(stats.resource_failures);
  out += ", \"retries\": " + std::to_string(stats.retries);
  out += ", \"total_vertices\": " + std::to_string(stats.total_vertices);
  out += ", \"total_violations\": " +
         std::to_string(stats.total_violations);
  out += "}\n}\n";
  return out;
}

namespace {

// The single limits knob wins over whatever the per-stage option structs
// carried (the CLI and tests set BatchOptions::limits only).
BatchOptions NormalizeOptions(BatchOptions options) {
  options.parse.limits = options.limits;
  options.validation.limits = options.limits;
  return options;
}

}  // namespace

BatchValidator::BatchValidator(const DtdStructure& dtd,
                               const ConstraintSet& sigma,
                               BatchOptions options)
    : dtd_(dtd),
      sigma_(sigma),
      options_(NormalizeOptions(std::move(options))),
      validator_(dtd, options_.validation),
      checker_(dtd, sigma, options_.check),
      injector_(options_.faults) {
  options_.parse.dtd = &dtd_;
  if (options_.stream) {
    StreamOptions sopt;
    sopt.skip_ignorable_whitespace = options_.parse.skip_ignorable_whitespace;
    sopt.validation = options_.validation;
    sopt.check = options_.check;
    sopt.limits = options_.limits;
    sopt.spill_budget_bytes = options_.stream_spill_budget_bytes;
    streamer_.emplace(dtd_, sigma_, sopt);
  }
}

Deadline BatchValidator::DocumentDeadline(
    const RunOverrides& overrides) const {
  uint64_t timeout_ms =
      overrides.document_timeout_ms.value_or(options_.document_timeout_ms);
  Deadline deadline = timeout_ms == 0 ? Deadline::Infinite()
                                      : Deadline::AfterMillis(timeout_ms);
  if (overrides.cancellation != nullptr) {
    deadline = deadline.WithToken(overrides.cancellation);
  }
  return deadline;
}

DocumentOutcome BatchValidator::CheckOne(
    const BatchDocument& doc, const RunOverrides& overrides) const {
  size_t max_attempts =
      std::max<size_t>(1, overrides.max_attempts.value_or(
                              options_.max_attempts));
  DocumentOutcome outcome;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff with deterministic jitter before each retry
      // (disabled by default). Skipped once the caller cancelled: a
      // draining service wants the final deterministic outcome, not a
      // sleep.
      if (overrides.cancellation == nullptr ||
          !overrides.cancellation->cancelled()) {
        BackoffSleep(options_.backoff, doc.name, attempt);
      }
    }
    outcome = CheckOneAttempt(doc, overrides.attempt_base + attempt,
                              overrides);
    outcome.attempts = attempt + 1;
    // Only transient failures are worth retrying; limits and deadlines
    // would trip identically on the next attempt.
    if (outcome.error.code() != StatusCode::kUnavailable) break;
  }
  return outcome;
}

DocumentOutcome BatchValidator::CheckOneAttempt(
    const BatchDocument& doc, size_t attempt,
    const RunOverrides& overrides) const {
  DocumentOutcome outcome;
  outcome.name = doc.name;
  obs::ScopedSpan span("batch.attempt", "engine");
  span.SetSeq(static_cast<int64_t>(attempt));
  span.AddInt("attempt", static_cast<int64_t>(attempt));
  // The whole attempt runs under one try: anything a stage (or the fault
  // injector in throwing mode) throws becomes this document's outcome
  // instead of tearing down the batch.
  try {
    Deadline deadline = DocumentDeadline(overrides);
    int n = static_cast<int>(attempt);
    Clock::time_point t0 = Clock::now();
    if (Status s = injector_.MaybeFail("parse", doc.name, n); !s.ok()) {
      XIC_COUNTER_ADD("engine.batch.faults", 1);
      span.AddString("fault", "parse");
      outcome.error = std::move(s);
      return outcome;
    }
    XmlParseOptions parse_options = options_.parse;
    if (overrides.limits.has_value()) {
      parse_options.limits = *overrides.limits;
    }
    parse_options.deadline = deadline;
    if (streamer_.has_value()) {
      // Streaming path: the three stages interleave inside one pass, so
      // the pipeline-stage fault sites collapse onto "parse" and the
      // whole pass is billed to parse_seconds.
      StringSource source(doc.text);
      StreamOutcome so =
          streamer_->Run(source, deadline, parse_options.limits);
      outcome.parse = std::move(so.parse);
      // On a parse failure the materialized path never builds a tree and
      // reports zero vertices; drop the partial count so the report
      // bytes match.
      outcome.vertices = outcome.parse.ok() ? so.stats.vertices : 0;
      outcome.structure = std::move(so.structure);
      outcome.constraints = std::move(so.constraints);
      outcome.parse_seconds = Seconds(t0, Clock::now());
      return outcome;
    }
    Result<XmlDocument> parsed = ParseXml(doc.text, parse_options);
    Clock::time_point t1 = Clock::now();
    outcome.parse_seconds = Seconds(t0, t1);
    if (!parsed.ok()) {
      outcome.parse = parsed.status();
      return outcome;
    }
    const DataTree& tree = parsed.value().tree;
    outcome.vertices = tree.size();
    if (Status s = injector_.MaybeFail("structure", doc.name, n); !s.ok()) {
      XIC_COUNTER_ADD("engine.batch.faults", 1);
      span.AddString("fault", "structure");
      outcome.error = std::move(s);
      return outcome;
    }
    outcome.structure = validator_.Validate(tree, deadline);
    Clock::time_point t2 = Clock::now();
    outcome.structure_seconds = Seconds(t1, t2);
    if (Status s = injector_.MaybeFail("constraints", doc.name, n); !s.ok()) {
      XIC_COUNTER_ADD("engine.batch.faults", 1);
      span.AddString("fault", "constraints");
      outcome.error = std::move(s);
      return outcome;
    }
    Arena& arena = WorkerArena();
    arena.Reset();
    outcome.constraints = checker_.Check(tree, deadline, &arena);
    outcome.constraints_seconds = Seconds(t2, Clock::now());
  } catch (const std::exception& e) {
    outcome.error =
        Status::Internal(std::string("uncaught exception: ") + e.what());
  } catch (...) {
    outcome.error = Status::Internal("uncaught exception");
  }
  return outcome;
}

BatchReport BatchValidator::Run(
    const std::vector<BatchDocument>& corpus) const {
  return Run(corpus, RunOverrides{});
}

BatchReport BatchValidator::Run(const std::vector<BatchDocument>& corpus,
                                const RunOverrides& overrides) const {
  obs::ScopedSpan batch_span("batch.run", "engine");
  BatchReport report;
  report.outcomes.resize(corpus.size());
  Clock::time_point start = Clock::now();
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // One document's full pipeline (all attempts), wrapped in a span tagged
  // with its deterministic input index. queue_wait measures fan-out start
  // to pipeline start -- on the pool path that approximates time sitting
  // in the worker deques.
  auto run_one = [&](size_t i) {
    // Re-install the request's trace id on this worker before opening the
    // document span; on the inline path this re-installs the caller's own
    // ambient id (a no-op).
    obs::ScopedTraceId scoped_trace(overrides.trace_id.empty()
                                        ? obs::ScopedTraceId::Current()
                                        : overrides.trace_id);
    obs::ScopedSpan doc_span("batch.document", "engine");
    doc_span.SetSeq(static_cast<int64_t>(i));
    double queue_wait = Seconds(start, Clock::now());
    Clock::time_point doc_start = Clock::now();
    DocumentOutcome& o = report.outcomes[i];
    o = CheckOne(corpus[i], overrides);
    o.queue_wait_seconds = queue_wait;
    o.worker = ThreadPool::current_worker();
    double doc_seconds = Seconds(doc_start, Clock::now());
    XIC_COUNTER_ADD("engine.batch.documents", 1);
    XIC_COUNTER_ADD("engine.batch.retries", o.attempts - 1);
    XIC_HISTOGRAM_OBSERVE("engine.batch.doc_ms", doc_seconds * 1e3,
                          {0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0});
    if (doc_span.active()) {
      doc_span.AddString("doc", o.name);
      doc_span.AddInt("worker", o.worker);
      doc_span.AddInt("attempts", static_cast<int64_t>(o.attempts));
      doc_span.AddInt("vertices", static_cast<int64_t>(o.vertices));
      doc_span.AddInt("structure_steps",
                      static_cast<int64_t>(o.structure.steps));
      doc_span.AddInt("constraint_steps",
                      static_cast<int64_t>(o.constraints.steps));
      doc_span.AddDouble("queue_wait_ms", queue_wait * 1e3);
      doc_span.AddDouble("run_ms", doc_seconds * 1e3);
      if (!o.error.ok()) {
        doc_span.AddString("error", StatusCodeToString(o.error.code()));
      }
    }
  };
  if (threads <= 1 || corpus.size() <= 1) {
    threads = 1;
    for (size_t i = 0; i < corpus.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(threads);
    // Each worker writes only its own outcome slot; the Wait() inside
    // ParallelFor publishes them to this thread.
    pool.ParallelFor(corpus.size(), run_one);
  }
  report.stats.wall_seconds = Seconds(start, Clock::now());
  report.stats.threads = threads;
  report.stats.documents = corpus.size();
  for (const DocumentOutcome& o : report.outcomes) {
    if (o.ok()) ++report.stats.ok_documents;
    if (o.attempts > 1) report.stats.retries += o.attempts - 1;
    if (o.infrastructure_failure()) {
      ++report.stats.resource_failures;
    } else if (!o.parse.ok()) {
      ++report.stats.parse_failures;
    } else if (!o.structure.ok()) {
      ++report.stats.structurally_invalid;
    } else if (!o.constraints.ok()) {
      ++report.stats.constraint_violating;
    }
    report.stats.total_vertices += o.vertices;
    report.stats.total_violations +=
        o.structure.violations.size() + o.constraints.violations.size();
    report.stats.parse_seconds += o.parse_seconds;
    report.stats.structure_seconds += o.structure_seconds;
    report.stats.constraints_seconds += o.constraints_seconds;
  }
  XIC_COUNTER_ADD("engine.batch.runs", 1);
  XIC_COUNTER_ADD("engine.batch.resource_failures",
                  report.stats.resource_failures);
  if (batch_span.active()) {
    batch_span.AddInt("documents",
                      static_cast<int64_t>(report.stats.documents));
    batch_span.AddInt("threads", static_cast<int64_t>(threads));
    batch_span.AddInt("retries", static_cast<int64_t>(report.stats.retries));
    batch_span.AddInt("violations",
                      static_cast<int64_t>(report.stats.total_violations));
  }
  return report;
}

BatchReport BatchValidator::RunTrees(
    const std::vector<const DataTree*>& corpus) const {
  // Reuse Run()'s fan-out by expressing a tree as a pre-parsed document;
  // the pipeline stages after parse are identical.
  obs::ScopedSpan batch_span("batch.run_trees", "engine");
  XIC_COUNTER_ADD("engine.batch.runs", 1);
  BatchReport report;
  report.outcomes.resize(corpus.size());
  Clock::time_point start = Clock::now();
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  auto check_tree = [&](size_t i) {
    obs::ScopedSpan doc_span("batch.document", "engine");
    doc_span.SetSeq(static_cast<int64_t>(i));
    DocumentOutcome& outcome = report.outcomes[i];
    outcome.name = "tree[" + std::to_string(i) + "]";
    outcome.queue_wait_seconds = Seconds(start, Clock::now());
    outcome.worker = ThreadPool::current_worker();
    XIC_COUNTER_ADD("engine.batch.documents", 1);
    if (doc_span.active()) {
      doc_span.AddString("doc", outcome.name);
      doc_span.AddInt("worker", outcome.worker);
    }
    try {
      Deadline deadline = DocumentDeadline(RunOverrides{});
      const DataTree& tree = *corpus[i];
      outcome.vertices = tree.size();
      if (Status s = injector_.MaybeFail("structure", outcome.name);
          !s.ok()) {
        outcome.error = std::move(s);
        return;
      }
      Clock::time_point t1 = Clock::now();
      outcome.structure = validator_.Validate(tree, deadline);
      Clock::time_point t2 = Clock::now();
      outcome.structure_seconds = Seconds(t1, t2);
      if (Status s = injector_.MaybeFail("constraints", outcome.name);
          !s.ok()) {
        outcome.error = std::move(s);
        return;
      }
      Arena& arena = WorkerArena();
      arena.Reset();
      outcome.constraints = checker_.Check(tree, deadline, &arena);
      outcome.constraints_seconds = Seconds(t2, Clock::now());
    } catch (const std::exception& e) {
      outcome.error =
          Status::Internal(std::string("uncaught exception: ") + e.what());
    } catch (...) {
      outcome.error = Status::Internal("uncaught exception");
    }
  };
  if (threads <= 1 || corpus.size() <= 1) {
    threads = 1;
    for (size_t i = 0; i < corpus.size(); ++i) check_tree(i);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(corpus.size(), check_tree);
  }
  report.stats.wall_seconds = Seconds(start, Clock::now());
  report.stats.threads = threads;
  report.stats.documents = corpus.size();
  for (const DocumentOutcome& o : report.outcomes) {
    if (o.ok()) ++report.stats.ok_documents;
    if (o.infrastructure_failure()) {
      ++report.stats.resource_failures;
    } else if (!o.structure.ok()) {
      ++report.stats.structurally_invalid;
    } else if (!o.constraints.ok()) {
      ++report.stats.constraint_violating;
    }
    report.stats.total_vertices += o.vertices;
    report.stats.total_violations +=
        o.structure.violations.size() + o.constraints.violations.size();
    report.stats.structure_seconds += o.structure_seconds;
    report.stats.constraints_seconds += o.constraints_seconds;
  }
  return report;
}

}  // namespace xic
