// The differential oracles: cross-implementation agreement checks.
//
// Each oracle family pits independent implementations of the same
// paper semantics against each other (DESIGN.md "Differential testing"
// has the full trust hierarchy):
//
//   kChecker      naive (nested-loop) vs. fast (hash-index)
//                 ConstraintChecker: identical violation reports, also
//                 under max_violations truncation.
//   kIncremental  IncrementalChecker replaying an update sequence vs. a
//                 batch re-check of its tree after *every* operation;
//                 rejected operations must leave the verdict unchanged.
//   kImplication  LuSolver / LidSolver / the chase vs. bounded
//                 EnumerateCountermodel: an "implied" verdict with a
//                 verified countermodel is a soundness mismatch; found
//                 countermodels are re-verified and (for L / L_u)
//                 replayed through LiftToDocument + ConstraintChecker.
//   kRoundTrip    parse -> serialize -> parse fixpoint on self-
//                 describing documents: tree, DTD and constraint block
//                 must survive, and the second serialization must be
//                 byte-identical.
//   kLint         xiclint determinism (two runs byte-identical) and
//                 verdict invariance under a WriteDtdC / ParseDtdC
//                 round-trip.
//   kStream       the streaming pipeline (StreamValidateSelfDescribing,
//                 spill budgets from never-spill to spill-everything)
//                 vs. the materialized DOM pipeline: parse status,
//                 structure report and constraint report must agree
//                 byte-for-byte, witnesses included. A third of trials
//                 corrupt the serialized bytes so the two parsers' error
//                 texts and positions are compared too.
//
// Every oracle has two entry points sharing one comparison core: a
// seed-driven trial (generate inputs, compare) and a corpus replay
// (re-run the comparison on a committed entry's concrete inputs).

#ifndef XIC_FUZZING_ORACLES_H_
#define XIC_FUZZING_ORACLES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzzing/corpus.h"
#include "fuzzing/generate.h"
#include "util/status.h"

namespace xic::fuzz {

enum class OracleId {
  kChecker,
  kIncremental,
  kImplication,
  kRoundTrip,
  kLint,
  kStream,
};

inline constexpr OracleId kAllOracles[] = {
    OracleId::kChecker, OracleId::kIncremental, OracleId::kImplication,
    OracleId::kRoundTrip, OracleId::kLint, OracleId::kStream};

const char* OracleName(OracleId id);
std::optional<OracleId> ParseOracleName(const std::string& name);

/// One trial / replay outcome. `skipped` marks trials whose generated
/// inputs the oracle cannot judge (e.g. enumeration bounds exhausted);
/// they count toward neither agreement nor mismatch.
struct OracleOutcome {
  bool mismatch = false;
  bool skipped = false;
  /// Human-readable diagnosis of the disagreement.
  std::string detail;
  /// Replayable reproduction of the trial (filled on mismatch).
  CorpusEntry entry;
};

/// Runs one seed-driven trial of `oracle`.
OracleOutcome RunTrial(OracleId oracle, uint64_t seed, const GenOptions& opt);

/// Re-runs an entry's oracle on its concrete inputs. Fails (Status) only
/// on malformed entries; a reproduced disagreement is a mismatch
/// outcome, not an error.
Result<OracleOutcome> ReplayEntry(const CorpusEntry& entry);

}  // namespace xic::fuzz

#endif  // XIC_FUZZING_ORACLES_H_
