// Differential suite: the ConstraintChecker's indexed fast path and its
// naive nested-loop mode (options_.naive) must report the *same*
// violations in the same order on every document. Generated documents
// with a tiny attribute value pool make duplicate keys and dangling
// references common, so the two evaluation strategies get exercised on
// violating inputs, not just clean ones.

#include <string>

#include <gtest/gtest.h>

#include "constraints/checker.h"
#include "constraints/constraint_parser.h"
#include "model/doc_generator.h"

namespace {

using namespace xic;

std::string Render(const ConstraintReport& report) {
  std::string out;
  for (const ConstraintViolation& v : report.violations) {
    out += std::to_string(v.constraint_index) + "|" + v.message + "|";
    for (VertexId w : v.witnesses) out += std::to_string(w) + ",";
    out += "|";
    for (const std::string& s : v.values) out += s + ",";
    out += "\n";
  }
  return out;
}

DtdStructure DiffDtd() {
  DtdStructure dtd;
  EXPECT_TRUE(dtd.AddElement("catalog", "(book*)").ok());
  EXPECT_TRUE(dtd.AddElement("book", "(entry, ref*)").ok());
  EXPECT_TRUE(dtd.AddElement("entry", "(#PCDATA)").ok());
  EXPECT_TRUE(dtd.AddElement("ref", "EMPTY").ok());
  EXPECT_TRUE(
      dtd.AddAttribute("entry", "isbn", AttrCardinality::kSingle).ok());
  EXPECT_TRUE(dtd.AddAttribute("ref", "main", AttrCardinality::kSingle).ok());
  EXPECT_TRUE(dtd.AddAttribute("ref", "to", AttrCardinality::kSet).ok());
  EXPECT_TRUE(dtd.SetRoot("catalog").ok());
  return dtd;
}

ConstraintSet DiffSigma() {
  return ParseConstraintSet("key entry.isbn\n"
                            "fk ref.main -> entry.isbn\n"
                            "sfk ref.to -> entry.isbn",
                            Language::kLu)
      .value();
}

TEST(CheckerDiff, FastAndNaiveAgreeOnGeneratedDocuments) {
  DtdStructure dtd = DiffDtd();
  ConstraintSet sigma = DiffSigma();
  ConstraintChecker fast(dtd, sigma);
  ConstraintChecker naive(dtd, sigma, {.naive = true});
  size_t violating_docs = 0;
  for (uint32_t seed = 1; seed <= 25; ++seed) {
    // A 4-value pool over dozens of vertices guarantees key collisions
    // and frequent dangling references.
    DocGenerator generator(dtd, {.seed = seed,
                                 .max_depth = 6,
                                 .star_mean = 4.0,
                                 .value_pool = 4});
    ASSERT_TRUE(generator.status().ok()) << generator.status();
    Result<DataTree> tree = generator.Generate();
    ASSERT_TRUE(tree.ok()) << tree.status();
    ConstraintReport fast_report = fast.Check(tree.value());
    ConstraintReport naive_report = naive.Check(tree.value());
    EXPECT_EQ(Render(fast_report), Render(naive_report)) << "seed " << seed;
    if (!fast_report.ok()) ++violating_docs;
  }
  // The differential test is vacuous if no generated document violates.
  EXPECT_GT(violating_docs, 0u);
}

TEST(CheckerDiff, TripleDuplicateKeyIsReportedOncePerExtraVertex) {
  // Regression: the naive path used to report one violation per *pair*
  // (3 for a triple), the indexed path one per extra occurrence (2).
  DtdStructure dtd = DiffDtd();
  ConstraintSet sigma = DiffSigma();
  DataTree tree;
  VertexId root = tree.AddVertex("catalog");
  for (int i = 0; i < 3; ++i) {
    VertexId book = tree.AddVertex("book");
    ASSERT_TRUE(tree.AddChildVertex(root, book).ok());
    VertexId entry = tree.AddVertex("entry");
    ASSERT_TRUE(tree.AddChildVertex(book, entry).ok());
    tree.SetAttribute(entry, "isbn", "same");
  }
  ConstraintChecker fast(dtd, sigma);
  ConstraintChecker naive(dtd, sigma, {.naive = true});
  ConstraintReport fast_report = fast.Check(tree);
  ConstraintReport naive_report = naive.Check(tree);
  EXPECT_EQ(fast_report.violations.size(), 2u);
  EXPECT_EQ(Render(fast_report), Render(naive_report));
  // Both extra occurrences are reported against the first one.
  for (const ConstraintViolation& v : fast_report.violations) {
    ASSERT_EQ(v.witnesses.size(), 2u);
    EXPECT_EQ(v.witnesses[0], fast_report.violations[0].witnesses[0]);
  }
}

TEST(CheckerDiff, DuplicatedIdValueReportedOncePerConstraint) {
  // Regression: a duplicated ID value used to yield one violation per
  // vertex of ext(tau) holding it; the witnesses already list every
  // holder, so one violation per value suffices.
  DtdStructure dtd;
  ASSERT_TRUE(dtd.AddElement("db", "(person*)").ok());
  ASSERT_TRUE(dtd.AddElement("person", "EMPTY").ok());
  ASSERT_TRUE(
      dtd.AddAttribute("person", "oid", AttrCardinality::kSingle).ok());
  ASSERT_TRUE(dtd.SetKind("person", "oid", AttrKind::kId).ok());
  ASSERT_TRUE(dtd.SetRoot("db").ok());
  ConstraintSet sigma =
      ParseConstraintSet("id person.oid", Language::kLid).value();
  DataTree tree;
  VertexId root = tree.AddVertex("db");
  for (int i = 0; i < 3; ++i) {
    VertexId person = tree.AddVertex("person");
    ASSERT_TRUE(tree.AddChildVertex(root, person).ok());
    tree.SetAttribute(person, "oid", "shared");
  }
  ConstraintChecker checker(dtd, sigma);
  ConstraintReport report = checker.Check(tree);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].witnesses.size(), 3u);
  EXPECT_EQ(report.violations[0].values,
            std::vector<std::string>{"shared"});
}

}  // namespace
