// Per-client incremental-update sessions for xicd.
//
// A session wraps an IncrementalChecker built against a cached plan's
// (DTD, Sigma): the client streams `add` / `set` updates and queries
// consistency in O(1) instead of re-submitting the whole document per
// revision. Sessions are named (client-chosen or synthesized), bounded
// in number, and isolated: each applies its script under its own mutex,
// and a session whose update path throws (a poisoned handle) is reaped
// from the registry -- subsequent requests for it get invalid-argument,
// while every other session keeps working. The registry pins the plan's
// shared_ptr, so cache eviction never pulls the DTD out from under a
// live session.

#ifndef XIC_SERVE_SESSION_REGISTRY_H_
#define XIC_SERVE_SESSION_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "constraints/incremental.h"
#include "serve/plan_cache.h"
#include "util/fault_injector.h"
#include "util/status.h"
#include "util/sync.h"

namespace xic::serve {

class SessionRegistry {
 public:
  struct Config {
    /// Open sessions beyond this are refused with kUnavailable (the
    /// load-shedding response; clients retry or close older sessions).
    size_t max_sessions = 256;
  };

  struct Stats {
    uint64_t opened = 0;
    uint64_t closed = 0;
    uint64_t reaped = 0;  // sessions removed after a poisoned update
    uint64_t refused = 0;
  };

  SessionRegistry() = default;
  explicit SessionRegistry(Config config) : config_(config) {}

  /// Opens a session named `name` (synthesizes "s<N>" when empty)
  /// against `plan`. Fails with kInvalidArgument when the name is taken
  /// or the checker rejects Sigma, kUnavailable when the registry is
  /// full. Returns the session's name.
  Result<std::string> Open(const std::string& name, PlanPtr plan)
      XIC_EXCLUDES(mutex_);

  /// Applies an update script to the named session and returns the
  /// response body. Script grammar, one statement per line
  /// ('#' comments):
  ///
  ///   add <parent-vertex|root> <label>   -> line "vertex <id>"
  ///   set <vertex> <attr> <value...>     -> line "ok"
  ///
  /// followed by a final "consistent true|false violations <N>" line.
  /// A statement rejected by the checker aborts the script at that line
  /// (prior statements stay applied -- the checker's documented
  /// rejected-op state invariance) and reports the statement's status.
  /// An *exception* escaping the checker poisons the handle: the session
  /// is reaped and kInternal returned; other sessions are unaffected.
  /// `injector` + `fault_key` drive the deterministic "serve.session"
  /// fault site (exception mode exercises the reap path).
  Result<std::string> Apply(const std::string& name,
                            const std::string& script,
                            const FaultInjector& injector,
                            const std::string& fault_key)
      XIC_EXCLUDES(mutex_);

  /// Closes and frees the named session.
  Status Close(const std::string& name) XIC_EXCLUDES(mutex_);

  size_t size() const XIC_EXCLUDES(mutex_);
  Stats stats() const XIC_EXCLUDES(mutex_);

 private:
  struct Session {
    /// Serializes scripts for this session. A leaf lock: never held
    /// while the registry's mutex_ is taken (Apply looks the session up,
    /// drops mutex_, then runs the script under this one; the reap path
    /// retakes mutex_ only after the script scope ends).
    util::Mutex mutex;
    std::unique_ptr<IncrementalChecker> checker XIC_GUARDED_BY(mutex);
    PlanPtr plan;  // keeps dtd/sigma alive for the checker; immutable
  };

  /// Runs the update script against `session`'s checker. On an escaping
  /// checker exception sets *poisoned and returns the reap status; the
  /// caller erases the session from the registry after dropping the
  /// session lock.
  Result<std::string> ApplySessionLocked(Session& session,
                                         const std::string& script,
                                         const FaultInjector& injector,
                                         const std::string& fault_key,
                                         bool* poisoned)
      XIC_REQUIRES(session.mutex);

  Config config_{};
  mutable util::Mutex mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_
      XIC_GUARDED_BY(mutex_);
  uint64_t next_id_ XIC_GUARDED_BY(mutex_) = 1;
  Stats stats_ XIC_GUARDED_BY(mutex_);
};

}  // namespace xic::serve

#endif  // XIC_SERVE_SESSION_REGISTRY_H_
