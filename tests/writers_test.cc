#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "constraints/infer_dtd.h"
#include "constraints/well_formed.h"
#include "implication/lid_solver.h"
#include "oo/odl_writer.h"
#include "relational/sql_ddl.h"

namespace xic {
namespace {

TEST(SqlDdl, RendersThePublisherSchema) {
  RelationalSchema schema;
  ASSERT_TRUE(
      schema.AddRelation("publisher", {"pname", "country", "address"}).ok());
  ASSERT_TRUE(
      schema.AddRelation("editor", {"name", "pname", "country"}).ok());
  ASSERT_TRUE(schema.AddKey("publisher", {"pname", "country"}).ok());
  ASSERT_TRUE(schema.AddKey("editor", {"name"}).ok());
  ASSERT_TRUE(schema
                  .AddForeignKey({"editor",
                                  {"pname", "country"},
                                  "publisher",
                                  {"pname", "country"}})
                  .ok());
  std::string ddl = WriteSqlDdl(schema);
  EXPECT_NE(ddl.find("CREATE TABLE publisher"), std::string::npos);
  EXPECT_NE(ddl.find("pname VARCHAR NOT NULL"), std::string::npos);
  EXPECT_NE(ddl.find("PRIMARY KEY (country, pname)"), std::string::npos);
  EXPECT_NE(ddl.find("FOREIGN KEY (pname, country) REFERENCES publisher"),
            std::string::npos);
  // No dangling commas before ');'.
  EXPECT_EQ(ddl.find(",\n);"), std::string::npos) << ddl;
}

TEST(SqlDdl, InsertsAndEscaping) {
  RelationalSchema schema;
  ASSERT_TRUE(schema.AddRelation("r", {"a", "b"}).ok());
  RelationalInstance inst(schema);
  ASSERT_TRUE(inst.Insert("r", {"O'Reilly", "x"}).ok());
  std::string sql = WriteSqlInserts(inst);
  EXPECT_NE(sql.find("INSERT INTO r (a, b) VALUES ('O''Reilly', 'x');"),
            std::string::npos)
      << sql;
  EXPECT_EQ(SqlEscape("a'b'c"), "a''b''c");
}

TEST(OdlWriter, RendersThePaperListing) {
  OdlSchema schema;
  OdlClass person;
  person.name = "Person";
  person.attributes = {"name", "address"};
  person.keys = {"name"};
  person.relationships = {
      {"in_dept", "Dept", RelationshipCardinality::kMany, "has_staff"}};
  OdlClass dept;
  dept.name = "Dept";
  dept.attributes = {"dname"};
  dept.keys = {"dname"};
  dept.relationships = {
      {"has_staff", "Person", RelationshipCardinality::kMany, "in_dept"},
      {"manager", "Person", RelationshipCardinality::kOne, std::nullopt}};
  ASSERT_TRUE(schema.AddClass(person).ok());
  ASSERT_TRUE(schema.AddClass(dept).ok());
  std::string odl = WriteOdl(schema);
  EXPECT_NE(odl.find("interface Person (extent Persons, key name)"),
            std::string::npos)
      << odl;
  EXPECT_NE(odl.find("attribute string address;"), std::string::npos);
  EXPECT_NE(
      odl.find("relationship set<Dept> in_dept inverse Dept::has_staff;"),
      std::string::npos);
  EXPECT_NE(odl.find("relationship Person manager;"), std::string::npos);
}

TEST(InferDtd, LidStructureFromConstraints) {
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    id person.oid
    id dept.oid
    key person.name
    sfk person.in_dept -> dept.oid
    fk dept.manager -> person.oid
    inverse person.in_dept <-> dept.has_staff
  )", Language::kLid);
  ASSERT_TRUE(sigma.ok());
  Result<DtdStructure> dtd = InferDtdForSigma(sigma.value());
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd.value().IdAttribute("person"), "oid");
  EXPECT_EQ(dtd.value().IdAttribute("dept"), "oid");
  EXPECT_TRUE(dtd.value().IsSetValued("person", "in_dept"));
  EXPECT_TRUE(dtd.value().IsSetValued("dept", "has_staff"));
  EXPECT_EQ(dtd.value().Kind("person", "in_dept"), AttrKind::kIdref);
  EXPECT_TRUE(dtd.value().IsSingleValued("person", "name"));
  EXPECT_TRUE(dtd.value().IsSingleValued("dept", "manager"));
  EXPECT_EQ(dtd.value().root(), "db");
  // The inferred structure supports the solver end to end.
  LidSolver solver(dtd.value(), sigma.value());
  ASSERT_TRUE(solver.status().ok());
  EXPECT_TRUE(solver.Implies(Constraint::UnaryKey("person", "oid")));
  EXPECT_TRUE(solver.Implies(
      Constraint::SetForeignKey("dept", "has_staff", "person", "oid")));
}

TEST(InferDtd, LuStructure) {
  Result<ConstraintSet> sigma = ParseConstraintSet(
      "key entry.isbn; sfk ref.to -> entry.isbn", Language::kLu);
  ASSERT_TRUE(sigma.ok());
  Result<DtdStructure> dtd = InferDtdForSigma(sigma.value());
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_TRUE(dtd.value().IsSingleValued("entry", "isbn"));
  EXPECT_TRUE(dtd.value().IsSetValued("ref", "to"));
  EXPECT_EQ(dtd.value().Kind("entry", "isbn"), std::nullopt);
  EXPECT_TRUE(CheckWellFormed(sigma.value(), dtd.value()).ok())
      << CheckWellFormed(sigma.value(), dtd.value());
}

TEST(InferDtd, Contradictions) {
  // One attribute used both single- and set-valued.
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  sigma.constraints = {
      Constraint::UnaryKey("t", "x"),
      Constraint::UnaryKey("u", "k"),
      Constraint::SetForeignKey("t", "x", "u", "k")};
  EXPECT_FALSE(InferDtdForSigma(sigma).ok());

  // Two ID attributes on one type.
  ConstraintSet lid;
  lid.language = Language::kLid;
  lid.constraints = {Constraint::Id("t", "a"), Constraint::Id("t", "b")};
  EXPECT_FALSE(InferDtdForSigma(lid).ok());

  // Root collision.
  ConstraintSet collide;
  collide.language = Language::kLu;
  collide.constraints = {Constraint::UnaryKey("db", "x")};
  EXPECT_FALSE(InferDtdForSigma(collide, "db").ok());
  EXPECT_TRUE(InferDtdForSigma(collide, "root2").ok());
}

}  // namespace
}  // namespace xic
