// Exporters for trace snapshots and the metrics registry.
//
//   * ToChromeTraceJson: the Chrome trace_event format ("X" complete
//     events, microsecond timestamps) that chrome://tracing and
//     Perfetto's legacy importer load directly. Span attributes become
//     the event's "args"; thread names become thread_name metadata
//     events, so pool workers show up as labeled rows with their
//     document spans nested beneath them.
//   * DeterministicTreeString: a rendering that keeps only the
//     scheduling-independent parts of a snapshot -- span names,
//     categories, seq tags, attribute keys, and nesting -- with
//     siblings sorted by (seq, name, cat). Two runs of the same
//     workload produce the same string regardless of thread count or
//     interleaving; the obs tests pin batch-engine traces with it.
//   * MetricsToJson / MetricsToTable: re-exported from the registry for
//     symmetric naming at CLI call sites.
//
// Everything here is a pure function of its input; file I/O stays in
// the callers (the CLI binaries).

#ifndef XIC_OBS_EXPORT_H_
#define XIC_OBS_EXPORT_H_

#include "obs/enabled.h"

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xic::obs {

/// Options for DeterministicTreeString.
struct TreeStringOptions {
  /// Render only trees rooted at spans with this name (after lifting:
  /// a matching span's subtree is rendered even when the span itself
  /// is nested, e.g. document spans under worker spans). Empty keeps
  /// every root.
  std::string root_name;
  /// Include attribute *values* as well as keys. Off by default: values
  /// such as worker ids and queue-wait times are scheduling-dependent.
  bool attr_values = false;
};

#if XIC_OBS_ENABLED

/// Serializes a snapshot as Chrome trace_event JSON. Deterministic for a
/// fixed snapshot (events ordered by tid, then record order).
std::string ToChromeTraceJson(const TraceSnapshot& snapshot);

/// Scheduling-independent rendering; see the header comment.
std::string DeterministicTreeString(const TraceSnapshot& snapshot,
                                    const TreeStringOptions& options = {});

#else

inline std::string ToChromeTraceJson(const TraceSnapshot&) {
  return "{\"traceEvents\":[]}\n";
}
inline std::string DeterministicTreeString(const TraceSnapshot&,
                                           const TreeStringOptions& = {}) {
  return "";
}

#endif  // XIC_OBS_ENABLED

inline std::string MetricsToJson() { return Registry::Global().ToJson(); }
inline std::string MetricsToTable() { return Registry::Global().ToTable(); }

}  // namespace xic::obs

#endif  // XIC_OBS_EXPORT_H_
