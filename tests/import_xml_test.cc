#include <gtest/gtest.h>

#include "relational/export_xml.h"
#include "relational/import_xml.h"
#include "xml/xml_parser.h"

namespace xic {
namespace {

RelationalSchema PublisherSchema() {
  RelationalSchema schema;
  EXPECT_TRUE(
      schema.AddRelation("publisher", {"pname", "country", "address"}).ok());
  EXPECT_TRUE(schema.AddRelation("editor", {"name", "pname", "country"}).ok());
  EXPECT_TRUE(schema.AddKey("publisher", {"pname", "country"}).ok());
  EXPECT_TRUE(schema.AddKey("editor", {"name"}).ok());
  EXPECT_TRUE(schema
                  .AddForeignKey({"editor",
                                  {"pname", "country"},
                                  "publisher",
                                  {"pname", "country"}})
                  .ok());
  return schema;
}

TEST(ImportXml, RoundTripsTheExport) {
  RelationalSchema schema = PublisherSchema();
  RelationalInstance inst(schema);
  ASSERT_TRUE(inst.Insert("publisher", {"MK", "USA", "a1"}).ok());
  ASSERT_TRUE(inst.Insert("publisher", {"AW", "USA", "a2"}).ok());
  ASSERT_TRUE(inst.Insert("editor", {"e1", "MK", "USA"}).ok());
  Result<RelationalExport> exported = ExportRelational(inst);
  ASSERT_TRUE(exported.ok());

  Result<RelationalImport> imported = ImportRelational(
      exported.value().tree, exported.value().dtd, exported.value().sigma);
  ASSERT_TRUE(imported.ok()) << imported.status();

  // Schema round-trips: relations, attributes, keys, foreign keys.
  const RelationalSchema& back = imported.value().schema;
  ASSERT_NE(back.Find("publisher"), nullptr);
  EXPECT_EQ(back.Find("publisher")->attributes,
            (std::vector<std::string>{"pname", "country", "address"}));
  EXPECT_EQ(back.Find("publisher")->keys.size(), 1u);
  EXPECT_EQ(back.foreign_keys().size(), 1u);

  // Data round-trips.
  EXPECT_EQ(imported.value().rows.at("publisher").size(), 2u);
  EXPECT_EQ(imported.value().rows.at("editor").size(), 1u);
  EXPECT_EQ(imported.value().rows.at("editor")[0],
            (RelationalTuple{"e1", "MK", "USA"}));

  // Rows load into a consistent instance.
  RelationalInstance reloaded(imported.value().schema);
  ASSERT_TRUE(PopulateInstance(imported.value(), &reloaded).ok());
  EXPECT_TRUE(reloaded.CheckIntegrity().empty());
}

TEST(ImportXml, ImportsHandWrittenDocuments) {
  const char* text = R"(<!DOCTYPE db [
    <!ELEMENT db (publisher*, editor*)>
    <!ELEMENT publisher (pname, country, address)>
    <!ELEMENT editor (name, pname, country)>
    <!ELEMENT pname (#PCDATA)> <!ELEMENT country (#PCDATA)>
    <!ELEMENT address (#PCDATA)> <!ELEMENT name (#PCDATA)>
  ]>
  <db>
    <publisher><pname>MK</pname><country>USA</country><address>a</address></publisher>
    <editor><name>e</name><pname>MK</pname><country>USA</country></editor>
  </db>)";
  Result<XmlDocument> doc = ParseXml(text);
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma;
  sigma.language = Language::kL;
  sigma.constraints = {
      Constraint::Key("publisher", {"pname", "country"}),
      Constraint::ForeignKey("editor", {"pname", "country"}, "publisher",
                             {"pname", "country"})};
  Result<RelationalImport> imported =
      ImportRelational(doc.value().tree, *doc.value().dtd, sigma);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ(imported.value().rows.at("publisher")[0],
            (RelationalTuple{"MK", "USA", "a"}));
}

TEST(ImportXml, AttributesActAsFields) {
  const char* text = R"(<!DOCTYPE db [
    <!ELEMENT db (item*)>
    <!ELEMENT item EMPTY>
    <!ATTLIST item sku CDATA #REQUIRED price CDATA #REQUIRED>
  ]>
  <db><item sku="s1" price="10"/><item sku="s2" price="20"/></db>)";
  Result<XmlDocument> doc = ParseXml(text);
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma;
  sigma.language = Language::kL;
  sigma.constraints = {Constraint::Key("item", {"sku"})};
  Result<RelationalImport> imported =
      ImportRelational(doc.value().tree, *doc.value().dtd, sigma);
  ASSERT_TRUE(imported.ok()) << imported.status();
  ASSERT_NE(imported.value().schema.Find("item"), nullptr);
  EXPECT_EQ(imported.value().schema.Find("item")->attributes,
            (std::vector<std::string>{"price", "sku"}));
  EXPECT_EQ(imported.value().rows.at("item").size(), 2u);
}

TEST(ImportXml, RejectsNonFlatShapes) {
  // Recursive / nested structure is not relational.
  DtdStructure dtd;
  ASSERT_TRUE(dtd.AddElement("db", "(section*)").ok());
  ASSERT_TRUE(dtd.AddElement("section", "(title, section*)").ok());
  ASSERT_TRUE(dtd.AddElement("title", "(#PCDATA)").ok());
  ASSERT_TRUE(dtd.SetRoot("db").ok());
  ConstraintSet sigma;
  sigma.language = Language::kL;
  EXPECT_EQ(ImportRelationalSchema(dtd, sigma).status().code(),
            StatusCode::kNotSupported);

  // Set-valued attributes have no single-row counterpart.
  DtdStructure dtd2;
  ASSERT_TRUE(dtd2.AddElement("db", "(r*)").ok());
  ASSERT_TRUE(dtd2.AddElement("r", "EMPTY").ok());
  ASSERT_TRUE(dtd2.AddAttribute("r", "tags", AttrCardinality::kSet).ok());
  ASSERT_TRUE(dtd2.SetRoot("db").ok());
  EXPECT_EQ(ImportRelationalSchema(dtd2, sigma).status().code(),
            StatusCode::kNotSupported);

  // Optional fields (choice content) are not flat either.
  DtdStructure dtd3;
  ASSERT_TRUE(dtd3.AddElement("db", "(r*)").ok());
  ASSERT_TRUE(dtd3.AddElement("r", "(a | b)").ok());
  ASSERT_TRUE(dtd3.AddElement("a", "(#PCDATA)").ok());
  ASSERT_TRUE(dtd3.AddElement("b", "(#PCDATA)").ok());
  ASSERT_TRUE(dtd3.SetRoot("db").ok());
  EXPECT_EQ(ImportRelationalSchema(dtd3, sigma).status().code(),
            StatusCode::kNotSupported);

  // Wrong constraint language.
  ConstraintSet lu;
  lu.language = Language::kLu;
  DtdStructure flat;
  ASSERT_TRUE(flat.AddElement("db", "(r*)").ok());
  ASSERT_TRUE(flat.AddElement("r", "EMPTY").ok());
  ASSERT_TRUE(flat.SetRoot("db").ok());
  EXPECT_FALSE(ImportRelationalSchema(flat, lu).ok());
}

TEST(ImportXml, ValidationErrorsOnBadRows) {
  const char* text = R"(<!DOCTYPE db [
    <!ELEMENT db (r*)>
    <!ELEMENT r (a)>
    <!ELEMENT a (#PCDATA)>
  ]>
  <db><r><a>1</a></r><r></r></db>)";
  Result<XmlDocument> doc = ParseXml(text);
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma;
  sigma.language = Language::kL;
  Result<RelationalImport> imported =
      ImportRelational(doc.value().tree, *doc.value().dtd, sigma);
  EXPECT_EQ(imported.status().code(), StatusCode::kValidationError);
}

}  // namespace
}  // namespace xic
