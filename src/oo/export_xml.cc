#include "oo/export_xml.h"

namespace xic {

Result<OdlExport> ExportOdl(const OdlInstance& instance,
                            const OdlExportOptions& options) {
  const OdlSchema& schema = instance.schema();
  XIC_RETURN_IF_ERROR(schema.Validate());

  OdlExport out;
  out.sigma.language = Language::kLid;

  // Structure.
  std::vector<RegexPtr> root_parts;
  for (const OdlClass& cls : schema.classes()) {
    root_parts.push_back(Regex::Star(Regex::Symbol(cls.name)));
    std::vector<RegexPtr> fields;
    for (const std::string& attr : cls.attributes) {
      fields.push_back(Regex::Symbol(attr));
      if (!out.dtd.HasElement(attr)) {
        XIC_RETURN_IF_ERROR(out.dtd.AddElement(attr, Regex::String()));
      }
    }
    XIC_RETURN_IF_ERROR(
        out.dtd.AddElement(cls.name, Regex::Sequence(std::move(fields))));
    XIC_RETURN_IF_ERROR(out.dtd.AddAttribute(cls.name, options.oid_attribute,
                                             AttrCardinality::kSingle));
    XIC_RETURN_IF_ERROR(
        out.dtd.SetKind(cls.name, options.oid_attribute, AttrKind::kId));
    for (const OdlRelationship& rel : cls.relationships) {
      bool set_valued = rel.cardinality == RelationshipCardinality::kMany;
      XIC_RETURN_IF_ERROR(out.dtd.AddAttribute(
          cls.name, rel.name,
          set_valued ? AttrCardinality::kSet : AttrCardinality::kSingle));
      XIC_RETURN_IF_ERROR(out.dtd.SetKind(cls.name, rel.name,
                                          AttrKind::kIdref));
    }
  }
  XIC_RETURN_IF_ERROR(
      out.dtd.AddElement(options.root, Regex::Sequence(root_parts)));
  XIC_RETURN_IF_ERROR(out.dtd.SetRoot(options.root));
  XIC_RETURN_IF_ERROR(out.dtd.Validate());

  // Constraints.
  for (const OdlClass& cls : schema.classes()) {
    out.sigma.constraints.push_back(
        Constraint::Id(cls.name, options.oid_attribute));
    for (const std::string& key : cls.keys) {
      out.sigma.constraints.push_back(Constraint::UnaryKey(cls.name, key));
    }
  }
  for (const OdlClass& cls : schema.classes()) {
    for (const OdlRelationship& rel : cls.relationships) {
      bool set_valued = rel.cardinality == RelationshipCardinality::kMany;
      if (set_valued) {
        out.sigma.constraints.push_back(Constraint::SetForeignKey(
            cls.name, rel.name, rel.target_class, options.oid_attribute));
      } else {
        out.sigma.constraints.push_back(Constraint::UnaryForeignKey(
            cls.name, rel.name, rel.target_class, options.oid_attribute));
      }
      if (rel.inverse.has_value() && set_valued) {
        const OdlClass* target = schema.Find(rel.target_class);
        const OdlRelationship* partner = nullptr;
        for (const OdlRelationship& r : target->relationships) {
          if (r.name == *rel.inverse) partner = &r;
        }
        if (partner != nullptr &&
            partner->cardinality == RelationshipCardinality::kMany) {
          // Emit each inverse pair once (ordered by class/name).
          Constraint inv = Constraint::InverseId(
              cls.name, rel.name, rel.target_class, partner->name);
          Constraint flipped = Constraint::InverseId(
              rel.target_class, partner->name, cls.name, rel.name);
          bool already = false;
          for (const Constraint& c : out.sigma.constraints) {
            if (c == inv || c == flipped) already = true;
          }
          if (!already) out.sigma.constraints.push_back(std::move(inv));
        }
      }
    }
  }

  // Data.
  VertexId root = out.tree.AddVertex(options.root);
  for (const OdlClass& cls : schema.classes()) {
    for (const OdlObject& obj : instance.objects()) {
      if (obj.class_name != cls.name) continue;
      VertexId v = out.tree.AddVertex(cls.name);
      XIC_RETURN_IF_ERROR(out.tree.AddChildVertex(root, v));
      out.tree.SetAttribute(v, options.oid_attribute, obj.oid);
      for (const std::string& attr : cls.attributes) {
        VertexId field = out.tree.AddVertex(attr);
        XIC_RETURN_IF_ERROR(out.tree.AddChildVertex(v, field));
        auto it = obj.attributes.find(attr);
        out.tree.AddChildText(field,
                              it != obj.attributes.end() ? it->second : "");
      }
      for (const OdlRelationship& rel : cls.relationships) {
        auto it = obj.relationships.find(rel.name);
        AttrValue value =
            it != obj.relationships.end() ? it->second : AttrValue{};
        out.tree.SetAttribute(v, rel.name, std::move(value));
      }
    }
  }
  return out;
}

}  // namespace xic
