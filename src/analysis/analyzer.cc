#include "analysis/analyzer.h"

#include <algorithm>
#include <tuple>

namespace xic {

AnalysisReport Analyzer::Analyze(const DtdStructure& dtd,
                                 const ConstraintSet& sigma,
                                 const AnalysisOptions& options) const {
  AnalysisReport report;
  report.language = LanguageToString(sigma.language);

  AnalysisInput input{dtd, sigma, options.locations, options.limits,
                      options.deadline};

  for (const auto& rule : registry_.rules()) {
    if (!options.rules.empty() &&
        std::find(options.rules.begin(), options.rules.end(), rule->name()) ==
            options.rules.end()) {
      continue;
    }
    if (Status expired = options.deadline.Check("static analysis");
        !expired.ok()) {
      report.status = expired;
      break;
    }
    report.rules_run.push_back(rule->name());
    if (Status s = rule->Run(input, &report.diagnostics); !s.ok()) {
      report.status = s;
      break;
    }
  }

  std::stable_sort(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        // Constraint-anchored findings first, in source order; grammar
        // findings after, grouped per element type.
        auto key = [](const Diagnostic& d) {
          return std::make_tuple(d.location.constraint_index < 0 ? 1 : 0,
                                 d.location.constraint_index,
                                 std::cref(d.location.element),
                                 std::cref(d.code), std::cref(d.message));
        };
        return key(a) < key(b);
      });
  return report;
}

}  // namespace xic
