#include "relational/schema.h"

#include <algorithm>
#include <set>

namespace xic {

const RelationDef* RelationalSchema::Find(const std::string& name) const {
  for (const RelationDef& r : relations_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

Status RelationalSchema::AddRelation(std::string name,
                                     std::vector<std::string> attributes) {
  if (Find(name) != nullptr) {
    return Status::InvalidArgument("relation redeclared: " + name);
  }
  std::set<std::string> seen;
  for (const std::string& a : attributes) {
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("duplicate attribute " + a +
                                     " in relation " + name);
    }
  }
  relations_.push_back({std::move(name), std::move(attributes), {}});
  return Status::OK();
}

Status RelationalSchema::AddKey(const std::string& relation,
                                std::vector<std::string> attrs) {
  for (RelationDef& r : relations_) {
    if (r.name != relation) continue;
    for (const std::string& a : attrs) {
      if (std::find(r.attributes.begin(), r.attributes.end(), a) ==
          r.attributes.end()) {
        return Status::InvalidArgument("key attribute " + a +
                                       " not in relation " + relation);
      }
    }
    std::sort(attrs.begin(), attrs.end());
    r.keys.push_back(std::move(attrs));
    return Status::OK();
  }
  return Status::InvalidArgument("unknown relation: " + relation);
}

Status RelationalSchema::AddForeignKey(RelationalForeignKey fk) {
  if (fk.attrs.size() != fk.ref_attrs.size() || fk.attrs.empty()) {
    return Status::InvalidArgument(
        "foreign key attribute lists empty or of different lengths");
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

Status RelationalSchema::Validate() const {
  for (const RelationalForeignKey& fk : foreign_keys_) {
    const RelationDef* from = Find(fk.relation);
    const RelationDef* to = Find(fk.ref_relation);
    if (from == nullptr || to == nullptr) {
      return Status::InvalidArgument("foreign key references unknown "
                                     "relation");
    }
    for (const std::string& a : fk.attrs) {
      if (std::find(from->attributes.begin(), from->attributes.end(), a) ==
          from->attributes.end()) {
        return Status::InvalidArgument("foreign-key attribute " + a +
                                       " not in " + fk.relation);
      }
    }
    std::vector<std::string> target = fk.ref_attrs;
    std::sort(target.begin(), target.end());
    if (std::find(to->keys.begin(), to->keys.end(), target) ==
        to->keys.end()) {
      return Status::InvalidArgument(
          "foreign key into " + fk.ref_relation +
          " does not target a declared key");
    }
  }
  return Status::OK();
}

}  // namespace xic
