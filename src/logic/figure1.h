// The Figure 1 family: pairs (G, G') of structures over one binary
// relation l that are FO^2-equivalent yet separated by the unary key
// constraint tau.l -> tau.
//
// The paper's figure is a drawing (not recoverable from the text); we
// reconstruct a family with exactly the stated properties and certify
// them mechanically (tests run the EF-game solver to a fixpoint and the
// key evaluator on both structures):
//   * G(n): a perfect matching s_i -> t_i, i = 1..n  (key holds);
//   * G'(n): n+1 sources and n targets where s_1 and s_2 both point to
//     t_1 and s_{i+1} -> t_i for i >= 2  (t_1 has two predecessors, so
//     the key fails).
// For n >= 2 both structures have >= 2 sources and >= 2 targets of every
// realized 1-type, and with only two pebbles the spoiler can never
// exhibit two predecessors of one target simultaneously, so duplicator
// wins every round.

#ifndef XIC_LOGIC_FIGURE1_H_
#define XIC_LOGIC_FIGURE1_H_

#include <string>

#include "logic/structure.h"

namespace xic {

inline constexpr const char* kFigure1Relation = "l";

/// G(n): perfect matching with n edges (2n elements).
FoStructure MakeFigure1Matching(size_t n);

/// G'(n): one shared target (2n + 1 elements, n + 1 edges).
FoStructure MakeFigure1Shared(size_t n);

}  // namespace xic

#endif  // XIC_LOGIC_FIGURE1_H_
