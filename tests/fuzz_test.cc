// Failure-injection / fuzz-lite suites: random mutations must produce
// clean errors (never crashes), and serialize/parse must be idempotent
// on randomly generated trees.

#include <gtest/gtest.h>

#include <random>

#include "constraints/constraint_parser.h"
#include "xml/dtd_parser.h"
#include "xml/dtdc_io.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xic {
namespace {

const char* kSeedDocument = R"(<?xml version="1.0"?>
<!DOCTYPE catalog [
  <!ELEMENT catalog (book*)>
  <!ELEMENT book (entry, author*)>
  <!ELEMENT entry (title)>
  <!ATTLIST entry isbn CDATA #REQUIRED>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
]>
<catalog>
  <book><entry isbn="i&amp;1"><title>T &lt;1&gt;</title></entry>
  <author>A</author></book>
  <!-- comment --><book><entry isbn="i2"><title><![CDATA[x]]></title></entry></book>
</catalog>
)";

class XmlFuzz : public ::testing::TestWithParam<int> {};

TEST_P(XmlFuzz, MutatedDocumentsNeverCrashTheParser) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2147483647u);
  std::string seed = kSeedDocument;
  int parsed_ok = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string text = seed;
    int mutations = 1 + static_cast<int>(rng() % 4);
    for (int m = 0; m < mutations; ++m) {
      if (text.empty()) break;
      size_t pos = rng() % text.size();
      switch (rng() % 3) {
        case 0:  // replace
          text[pos] = static_cast<char>(rng() % 127 + 1);
          break;
        case 1:  // delete
          text.erase(pos, 1 + rng() % 5);
          break;
        case 2:  // insert
          text.insert(pos, 1, static_cast<char>("<>&\"'[]!-"[rng() % 9]));
          break;
      }
    }
    Result<XmlDocument> doc = ParseXml(text);  // must not crash
    if (doc.ok()) ++parsed_ok;
  }
  // Some mutations (e.g. inside text content) still parse; most do not.
  // The property under test is only "no crash, structured error".
  SUCCEED() << parsed_ok << " mutated documents still parsed";
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz, ::testing::Values(1, 2, 3));

class DtdFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DtdFuzz, MutatedDtdsNeverCrashTheParser) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 69069u);
  std::string seed = R"(
    <!ELEMENT db (person*, dept*)>
    <!ELEMENT person (name, address)>
    <!ATTLIST person oid ID #REQUIRED in_dept IDREFS #IMPLIED>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT address (#PCDATA)>
    <!ELEMENT dept EMPTY>
    <!ATTLIST dept oid ID #REQUIRED>
  )";
  for (int trial = 0; trial < 400; ++trial) {
    std::string text = seed;
    size_t pos = rng() % text.size();
    switch (rng() % 3) {
      case 0:
        text[pos] = static_cast<char>(rng() % 127 + 1);
        break;
      case 1:
        text.erase(pos, 1 + rng() % 8);
        break;
      case 2:
        text.insert(pos, 1, static_cast<char>("<>()|,*+?#%"[rng() % 11]));
        break;
    }
    Result<DtdStructure> dtd = ParseDtd(text, "db");  // must not crash
    (void)dtd;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtdFuzz, ::testing::Values(1, 2));

class ConstraintFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ConstraintFuzz, MutatedStatementsNeverCrashTheParser) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 1664525u);
  std::string seed =
      "key entry.isbn; fk a[x, y] -> b[u, v]; sfk r.to -> e.k\n"
      "inverse a(k).r <-> b(k2).s; id person.oid";
  for (int trial = 0; trial < 400; ++trial) {
    std::string text = seed;
    size_t pos = rng() % text.size();
    switch (rng() % 3) {
      case 0:
        text[pos] = static_cast<char>(rng() % 127 + 1);
        break;
      case 1:
        text.erase(pos, 1 + rng() % 6);
        break;
      case 2:
        text.insert(pos, 1, static_cast<char>(".,;()[]<->#"[rng() % 11]));
        break;
    }
    Result<std::vector<Constraint>> parsed = ParseConstraints(text);
    (void)parsed;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintFuzz, ::testing::Values(1, 2));

// Random tree -> serialize -> parse -> serialize must be a fixpoint.
class RoundTripFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripFuzz, SerializeParseIsIdempotent) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 22695477u);
  const std::vector<std::string> labels = {"a", "b", "c", "data"};
  const std::vector<std::string> texts = {"plain", "a<b&c>\"d'",
                                          "  spaced  ", "1&amp;2"};
  for (int trial = 0; trial < 60; ++trial) {
    DataTree tree;
    VertexId root = tree.AddVertex("root");
    std::vector<VertexId> nodes{root};
    int n = 1 + static_cast<int>(rng() % 12);
    for (int i = 0; i < n; ++i) {
      VertexId parent = nodes[rng() % nodes.size()];
      VertexId v = tree.AddVertex(labels[rng() % labels.size()]);
      ASSERT_TRUE(tree.AddChildVertex(parent, v).ok());
      nodes.push_back(v);
      if (rng() % 2 == 0) {
        tree.SetAttribute(v, "x", texts[rng() % texts.size()]);
      }
      if (rng() % 3 == 0) {
        tree.AddChildText(v, texts[rng() % texts.size()]);
      }
    }
    // Non-pretty output adds no whitespace, so the round trip must be
    // byte-identical (pretty printing intentionally reformats mixed
    // content and is exercised elsewhere).
    std::string once = SerializeXml(tree, {.pretty = false});
    Result<XmlDocument> parsed =
        ParseXml(once, {.skip_ignorable_whitespace = false});
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << once;
    std::string twice =
        SerializeXml(parsed.value().tree, {.pretty = false});
    EXPECT_EQ(once, twice);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz, ::testing::Values(1, 2, 3));

// Random constraints -> statement text -> parse -> equal constraint.
class ConstraintRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ConstraintRoundTrip, StatementsRoundTrip) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 1013904223u);
  const std::vector<std::string> names = {"alpha", "b2", "c_c", "d-d",
                                          "e.not"};
  auto name = [&] {
    // '.' is not legal inside constraint-syntax names; strip it.
    std::string n = names[rng() % names.size()];
    size_t dot = n.find('.');
    return dot == std::string::npos ? n : n.substr(0, dot);
  };
  for (int trial = 0; trial < 200; ++trial) {
    Constraint c;
    switch (rng() % 5) {
      case 0:
        c = rng() % 2 == 0
                ? Constraint::UnaryKey(name(), name())
                : Constraint::Key(name(), {"a1", "a2", "a3"});
        break;
      case 1:
        c = Constraint::Id(name(), name());
        break;
      case 2:
        c = rng() % 2 == 0
                ? Constraint::UnaryForeignKey(name(), name(), name(), name())
                : Constraint::ForeignKey(name(), {"x", "y"}, name(),
                                         {"u", "v"});
        break;
      case 3:
        c = Constraint::SetForeignKey(name(), name(), name(), name());
        break;
      case 4:
        c = rng() % 2 == 0
                ? Constraint::InverseId(name(), name(), name(), name())
                : Constraint::InverseU(name(), name(), name(), name(),
                                       name(), name());
        break;
    }
    std::string statement = WriteConstraintStatement(c);
    Result<std::vector<Constraint>> parsed = ParseConstraints(statement);
    ASSERT_TRUE(parsed.ok()) << statement << ": " << parsed.status();
    ASSERT_EQ(parsed.value().size(), 1u);
    EXPECT_EQ(parsed.value()[0], c) << statement;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintRoundTrip,
                         ::testing::Values(1, 2));

}  // namespace
}  // namespace xic
