#include "relational/reduction.h"

#include <algorithm>
#include <set>

namespace xic {

Result<ConstraintSet> EncodeSchemaAsL(const RelationalSchema& schema) {
  XIC_RETURN_IF_ERROR(schema.Validate());
  ConstraintSet out;
  out.language = Language::kL;
  for (const RelationDef& rel : schema.relations()) {
    for (const std::vector<std::string>& key : rel.keys) {
      out.constraints.push_back(Constraint::Key(rel.name, key));
    }
  }
  for (const RelationalForeignKey& fk : schema.foreign_keys()) {
    out.constraints.push_back(Constraint::ForeignKey(
        fk.relation, fk.attrs, fk.ref_relation, fk.ref_attrs));
  }
  return out;
}

Result<Constraint> EncodeDependencyAsL(const Dependency& dep,
                                       const RelationalSchema& schema) {
  if (const auto* fd = std::get_if<FunctionalDependency>(&dep)) {
    const RelationDef* rel = schema.Find(fd->relation);
    if (rel == nullptr) {
      return Status::InvalidArgument("unknown relation: " + fd->relation);
    }
    // Key-shaped FD: lhs determines every attribute of the relation.
    std::set<std::string> determined(fd->lhs.begin(), fd->lhs.end());
    determined.insert(fd->rhs.begin(), fd->rhs.end());
    for (const std::string& a : rel->attributes) {
      if (determined.count(a) == 0) {
        return Status::NotSupported(
            "FD " + fd->ToString() +
            " is not key-shaped (attribute " + a +
            " undetermined); the general FD+IND reduction is the "
            "undecidability gadget and is out of scope (DESIGN.md)");
      }
    }
    return Constraint::Key(fd->relation, fd->lhs);
  }
  const auto& ind = std::get<InclusionDependency>(dep);
  const RelationDef* target = schema.Find(ind.ref_relation);
  if (target == nullptr) {
    return Status::InvalidArgument("unknown relation: " + ind.ref_relation);
  }
  std::vector<std::string> sorted = ind.ref_attrs;
  std::sort(sorted.begin(), sorted.end());
  if (std::find(target->keys.begin(), target->keys.end(), sorted) ==
      target->keys.end()) {
    return Status::NotSupported(
        "IND " + ind.ToString() +
        " does not target a declared key; L foreign keys require key "
        "targets");
  }
  return Constraint::ForeignKey(ind.relation, ind.attrs, ind.ref_relation,
                                ind.ref_attrs);
}

Result<ConstraintSet> EncodeDependenciesAsL(
    const std::vector<Dependency>& deps, const RelationalSchema& schema) {
  ConstraintSet out;
  out.language = Language::kL;
  for (const Dependency& dep : deps) {
    XIC_ASSIGN_OR_RETURN(Constraint c, EncodeDependencyAsL(dep, schema));
    out.constraints.push_back(std::move(c));
  }
  return out;
}

}  // namespace xic
