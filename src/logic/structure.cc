#include "logic/structure.h"

namespace xic {

void FoStructure::AddUnary(const std::string& relation, size_t element) {
  unary_[relation].insert(element);
}

void FoStructure::AddEdge(const std::string& relation, size_t from,
                          size_t to) {
  binary_[relation].insert({from, to});
}

bool FoStructure::HasUnary(const std::string& relation,
                           size_t element) const {
  auto it = unary_.find(relation);
  return it != unary_.end() && it->second.count(element) > 0;
}

bool FoStructure::HasEdge(const std::string& relation, size_t from,
                          size_t to) const {
  auto it = binary_.find(relation);
  return it != binary_.end() && it->second.count({from, to}) > 0;
}

bool FoStructure::SatisfiesUnaryKey(const std::string& relation) const {
  auto it = binary_.find(relation);
  if (it == binary_.end()) return true;
  // successor -> first predecessor seen; a second distinct predecessor
  // falsifies the key.
  std::map<size_t, size_t> pred;
  for (const auto& [from, to] : it->second) {
    auto [entry, inserted] = pred.emplace(to, from);
    if (!inserted && entry->second != from) return false;
  }
  return true;
}

}  // namespace xic
