#include "logic/figure1.h"

namespace xic {

FoStructure MakeFigure1Matching(size_t n) {
  // Elements 0..n-1 are sources, n..2n-1 targets; edges s_i -> t_i.
  FoStructure g(2 * n);
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(kFigure1Relation, i, n + i);
  }
  return g;
}

FoStructure MakeFigure1Shared(size_t n) {
  // Elements 0..n are sources, n+1..2n targets.
  // Edges: s_0 -> t_0, s_1 -> t_0 (the shared target), s_{i+1} -> t_i for
  // i = 1..n-1.
  FoStructure g(2 * n + 1);
  const size_t target_base = n + 1;
  g.AddEdge(kFigure1Relation, 0, target_base);
  g.AddEdge(kFigure1Relation, 1, target_base);
  for (size_t i = 1; i < n; ++i) {
    g.AddEdge(kFigure1Relation, i + 1, target_base + i);
  }
  return g;
}

}  // namespace xic
