// Focused tests for corner paths not exercised by the main suites.

#include <gtest/gtest.h>

#include "xic.h"

namespace xic {
namespace {

TEST(Coverage, FieldValueRejectsNonUniqueSubElements) {
  // Two <name> children: the Section 3.4 field is undefined.
  DtdStructure dtd;
  ASSERT_TRUE(dtd.AddElement("p", "(name, name)").ok());
  ASSERT_TRUE(dtd.AddElement("name", "(#PCDATA)").ok());
  ASSERT_TRUE(dtd.SetRoot("p").ok());
  DataTree t;
  VertexId p = t.AddVertex("p");
  for (const char* text : {"a", "b"}) {
    VertexId n = t.AddVertex("name");
    ASSERT_TRUE(t.AddChildVertex(p, n).ok());
    t.AddChildText(n, text);
  }
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  ConstraintChecker checker(dtd, sigma);
  Result<AttrValue> value = checker.FieldValue(t, p, "name");
  ASSERT_FALSE(value.ok());
  EXPECT_NE(value.status().message().find("not unique"), std::string::npos);
}

TEST(Coverage, PathEvaluatorPcdataStep) {
  DtdStructure dtd;
  ASSERT_TRUE(dtd.AddElement("r", "(t)").ok());
  ASSERT_TRUE(dtd.AddElement("t", "(#PCDATA)").ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  ConstraintSet sigma;
  sigma.language = Language::kLid;
  PathContext context(dtd, sigma);
  ASSERT_TRUE(context.status().ok());
  DataTree tree;
  VertexId r = tree.AddVertex("r");
  VertexId t = tree.AddVertex("t");
  ASSERT_TRUE(tree.AddChildVertex(r, t).ok());
  tree.AddChildText(t, "hello");
  PathEvaluator eval(context, tree);
  std::set<PathNode> nodes =
      eval.Nodes(r, Path::Parse("t.#PCDATA").value());
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(std::get<std::string>(*nodes.begin()), "hello");
  // And the type function agrees.
  EXPECT_EQ(context.TypeOf("r", Path::Parse("t.#PCDATA").value()).value(),
            kStringSymbol);
}

TEST(Coverage, RegexToStringPrecedence) {
  // ((a | b), c)* needs parentheses around the union but not the concat.
  RegexPtr re = Regex::Star(
      Regex::Concat(Regex::Union(Regex::Symbol("a"), Regex::Symbol("b")),
                    Regex::Symbol("c")));
  EXPECT_EQ(re->ToString(), "((a | b), c)*");
  // Round trip.
  Result<RegexPtr> back = ParseContentModel("(" + re->ToString() + ")");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(RegexLanguageEquivalent(re, back.value()));
}

TEST(Coverage, DefinitionSizeGrowsWithSchema) {
  DtdStructure small;
  ASSERT_TRUE(small.AddElement("a", "EMPTY").ok());
  ASSERT_TRUE(small.SetRoot("a").ok());
  DtdStructure big;
  ASSERT_TRUE(big.AddElement("a", "(b, c, d)").ok());
  for (const char* e : {"b", "c", "d"}) {
    ASSERT_TRUE(big.AddElement(e, "(#PCDATA)").ok());
    ASSERT_TRUE(big.AddAttribute(e, "x", AttrCardinality::kSingle).ok());
  }
  ASSERT_TRUE(big.SetRoot("a").ok());
  EXPECT_LT(small.DefinitionSize(), big.DefinitionSize());
}

TEST(Coverage, ProofTableExplainsMissingAndDeep) {
  ProofTable table;
  EXPECT_FALSE(table.Explain(Constraint::UnaryKey("a", "x")).has_value());
  // A premise that was never added renders as [missing].
  Constraint a = Constraint::UnaryKey("a", "x");
  Constraint ghost = Constraint::UnaryKey("ghost", "g");
  ASSERT_TRUE(table.Add(a, "rule", {ghost}));
  std::optional<std::string> proof = table.Explain(a);
  ASSERT_TRUE(proof.has_value());
  EXPECT_NE(proof->find("[missing]"), std::string::npos);
  // Re-adding an existing fact is a no-op.
  EXPECT_FALSE(table.Add(a, "other-rule"));
  EXPECT_EQ(table.facts().at(a).rule, "rule");
}

TEST(Coverage, EnumerateCountermodelWithLidDtd) {
  // L_id enumeration uses the DTD to resolve ID attributes: the ID
  // constraint on `a` admits no countermodel claiming non-implication of
  // the derived per-type key.
  Result<DtdStructure> dtd = InferDtdForSigma(
      ParseConstraintSet("id a.oid", Language::kLid).value());
  ASSERT_TRUE(dtd.ok());
  ConstraintSet sigma;
  sigma.language = Language::kLid;
  sigma.constraints = {Constraint::Id("a", "oid")};
  EXPECT_FALSE(EnumerateCountermodel(sigma,
                                     Constraint::UnaryKey("a", "oid"), {},
                                     &dtd.value())
                   .has_value());
  // But the unrelated attribute is refutable.
  EXPECT_TRUE(EnumerateCountermodel(sigma, Constraint::UnaryKey("a", "x"),
                                    {}, &dtd.value())
                  .has_value());
}

TEST(Coverage, SerializerHandlesEmptyAndAttributeOnlyTrees) {
  DataTree empty;
  EXPECT_EQ(SerializeXml(empty), "<?xml version=\"1.0\"?>\n");
  DataTree one;
  VertexId v = one.AddVertex("solo");
  one.SetAttribute(v, "multi", AttrValue{"b", "a"});
  std::string out = SerializeXml(one, {.pretty = false});
  // Set values joined in sorted order.
  EXPECT_NE(out.find("multi=\"a b\""), std::string::npos) << out;
  EXPECT_NE(out.find("<solo"), std::string::npos);
}

TEST(Coverage, LuSolverExplainSetForeignKeyChains) {
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    key b.y; key c.z
    sfk a.r -> b.y
    fk b.y -> c.z
  )", Language::kLu);
  LuSolver solver(sigma.value());
  Constraint phi = Constraint::SetForeignKey("a", "r", "c", "z");
  ASSERT_TRUE(solver.Implies(phi));
  std::optional<std::string> proof = solver.Explain(phi);
  ASSERT_TRUE(proof.has_value());
  EXPECT_NE(proof->find("USFK-trans"), std::string::npos);
  EXPECT_NE(proof->find("a.r <=S b.y"), std::string::npos);
}

TEST(Coverage, CheckerReportsWellFormednessViaToString) {
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  sigma.constraints = {Constraint::UnaryKey("entry", "isbn")};
  ConstraintReport report;
  EXPECT_EQ(report.ToString(sigma), "all constraints satisfied");
  report.violations.push_back({0, "boom", {}, {}});
  EXPECT_NE(report.ToString(sigma).find("entry.isbn -> entry: boom"),
            std::string::npos);
}

TEST(Coverage, MappingAppliedToEmptyDocument) {
  DataTree empty;
  DtdStructure dtd;
  ASSERT_TRUE(dtd.AddElement("a", "EMPTY").ok());
  ASSERT_TRUE(dtd.SetRoot("a").ok());
  Mapping m;
  m.Rename("a", "b");
  Result<DataTree> out = m.ApplyToDocument(empty, dtd);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

}  // namespace
}  // namespace xic
