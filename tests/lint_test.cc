// Tests for the static-analysis engine behind xiclint: every diagnostic
// code fires at least once, the paper's book example lints clean, and the
// JSON rendering is byte-stable.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "analysis/rule.h"
#include "constraints/constraint_parser.h"
#include "xml/dtd_parser.h"

namespace xic {
namespace {

// The book DTD of Section 2 with the paper's constraints: the canonical
// "clean" input.
constexpr char kBookDtd[] = R"(
<!ELEMENT book (entry, author*, section*, ref)>
<!ELEMENT entry (title, publisher)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT section (text | section)*>
<!ELEMENT text (#PCDATA)>
<!ELEMENT ref EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED>
<!ATTLIST section sid CDATA #REQUIRED>
<!ATTLIST ref to IDREFS #REQUIRED>
)";

constexpr char kBookConstraints[] =
    "key entry.isbn\nkey section.sid\nsfk ref.to -> entry.isbn\n";

DtdStructure MustParseDtd(const std::string& text, const std::string& root) {
  Result<DtdStructure> dtd = ParseDtd(text, root);
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  return dtd.value();
}

ConstraintSet MustParseSigma(const std::string& text, Language lang) {
  Result<ConstraintSet> sigma = ParseConstraintSet(text, lang);
  EXPECT_TRUE(sigma.ok()) << sigma.status();
  return sigma.value();
}

AnalysisReport Lint(const std::string& dtd_text, const std::string& root,
                    const std::string& sigma_text, Language lang,
                    AnalysisOptions options = {}) {
  DtdStructure dtd = MustParseDtd(dtd_text, root);
  ConstraintSet sigma = MustParseSigma(sigma_text, lang);
  return Analyzer().Analyze(dtd, sigma, options);
}

std::vector<std::string> Codes(const AnalysisReport& report) {
  std::vector<std::string> out;
  for (const Diagnostic& d : report.diagnostics) out.push_back(d.code);
  return out;
}

bool HasCode(const AnalysisReport& report, const std::string& code) {
  const std::vector<std::string> codes = Codes(report);
  return std::find(codes.begin(), codes.end(), code) != codes.end();
}

const Diagnostic& FindCode(const AnalysisReport& report,
                           const std::string& code) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) return d;
  }
  ADD_FAILURE() << "no diagnostic with code " << code << " in\n"
                << report.ToString();
  static Diagnostic missing;
  return missing;
}

// ---------------------------------------------------------------------------
// The canonical clean input

TEST(Lint, BookExampleIsClean) {
  AnalysisReport report =
      Lint(kBookDtd, "book", kBookConstraints, Language::kLu);
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.ExitCode(), 0);
  // All built-in rules ran.
  EXPECT_EQ(report.rules_run.size(), RuleRegistry::Builtin().rules().size());
}

TEST(Lint, EmptySigmaOnCleanDtdIsClean) {
  AnalysisReport report = Lint(kBookDtd, "book", "", Language::kLu);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

// ---------------------------------------------------------------------------
// XIC0xx: reference / kind / shape / duplicate findings

TEST(Lint, Xic001UnknownElementType) {
  AnalysisReport report =
      Lint(kBookDtd, "book", "key chapter.num", Language::kLu);
  const Diagnostic& d = FindCode(report, "XIC001");
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_NE(d.message.find("undeclared element type \"chapter\""),
            std::string::npos)
      << d.message;
  EXPECT_EQ(d.location.constraint_index, 0);
  EXPECT_EQ(report.ExitCode(), 2);
}

TEST(Lint, Xic001ReportsBothSidesOfForeignKey) {
  AnalysisReport report =
      Lint(kBookDtd, "book", "sfk ghost.to -> phantom.id", Language::kLu);
  size_t count = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == "XIC001") ++count;
  }
  EXPECT_EQ(count, 2u) << report.ToString();
}

TEST(Lint, Xic002UnknownField) {
  AnalysisReport report =
      Lint(kBookDtd, "book", "key entry.issn", Language::kLu);
  const Diagnostic& d = FindCode(report, "XIC002");
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_NE(d.message.find("no attribute or unique sub-element \"issn\""),
            std::string::npos)
      << d.message;
  // The unknown field does not *also* produce a shape finding: one root
  // cause, one diagnostic.
  EXPECT_FALSE(HasCode(report, "XIC004")) << report.ToString();
}

TEST(Lint, Xic003LidKindContradictionIsError) {
  // In L_id the named ID attribute must be the declared one.
  const char* dtd = R"(
<!ELEMENT db (person*)>
<!ELEMENT person (#PCDATA)>
<!ATTLIST person oid ID #REQUIRED name CDATA #REQUIRED>
)";
  AnalysisReport report = Lint(dtd, "db", "id person.name", Language::kLid);
  const Diagnostic& d = FindCode(report, "XIC003");
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_NE(d.message.find("not the ID attribute"), std::string::npos)
      << d.message;
}

TEST(Lint, Xic003AdvisoryKindMismatchIsWarningOutsideLid) {
  // A key over an IDREFS attribute is legal in L_u but contradicts the
  // L_id reading of the same ATTLIST: advisory warning, not error.
  AnalysisReport report = Lint(kBookDtd, "book",
                               "key entry.isbn\nkey ref.to\n"
                               "sfk ref.to -> entry.isbn",
                               Language::kLu);
  bool found = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code != "XIC003") continue;
    found = true;
    EXPECT_EQ(d.severity, DiagSeverity::kWarning);
    EXPECT_NE(d.message.find("declared IDREF"), std::string::npos)
        << d.message;
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST(Lint, Xic004ShapeViolation) {
  // Multi-attribute keys are outside L_u: element and fields resolve
  // fine, so the residual shape check reports what the targeted
  // reference checks cannot.
  const char* dtd = R"(
<!ELEMENT db (publisher*)>
<!ELEMENT publisher (#PCDATA)>
<!ATTLIST publisher pname CDATA #REQUIRED country CDATA #REQUIRED>
)";
  AnalysisReport report = Lint(
      dtd, "db", "key publisher[pname]\nkey publisher[pname, country]",
      Language::kLu);
  // publisher[pname] normalizes to a unary key; the two-attribute key
  // does not fit L_u.
  const Diagnostic& d = FindCode(report, "XIC004");
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_EQ(d.location.constraint_index, 1);
}

TEST(Lint, Xic005DuplicateConstraint) {
  AnalysisReport report = Lint(
      kBookDtd, "book", "key entry.isbn\nkey section.sid\nkey entry.isbn",
      Language::kLu);
  const Diagnostic& d = FindCode(report, "XIC005");
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.location.constraint_index, 2);
  EXPECT_NE(d.message.find("first defined as constraint #0"),
            std::string::npos)
      << d.message;
  EXPECT_EQ(report.ExitCode(), 1);  // warnings only
}

// ---------------------------------------------------------------------------
// XIC1xx: grammar hygiene

TEST(Lint, Xic101UnreachableElementType) {
  const char* dtd = R"(
<!ELEMENT book (entry*)>
<!ELEMENT entry (#PCDATA)>
<!ELEMENT appendix (#PCDATA)>
)";
  AnalysisReport report = Lint(dtd, "book", "", Language::kLu);
  const Diagnostic& d = FindCode(report, "XIC101");
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.location.element, "appendix");
  EXPECT_EQ(d.location.constraint_index, -1);
}

TEST(Lint, Xic102NonProductiveRootIsError) {
  // Every expansion of `node` requires another `node`: no finite
  // document exists at all.
  const char* dtd = "<!ELEMENT node (node)>";
  AnalysisReport report = Lint(dtd, "node", "", Language::kLu);
  const Diagnostic& d = FindCode(report, "XIC102");
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_NE(d.message.find("no valid document"), std::string::npos)
      << d.message;
  EXPECT_EQ(report.ExitCode(), 2);
}

TEST(Lint, Xic102NonProductiveNonRootIsWarning) {
  const char* dtd = R"(
<!ELEMENT book (entry | bad)>
<!ELEMENT entry (#PCDATA)>
<!ELEMENT bad (bad)>
)";
  AnalysisReport report = Lint(dtd, "book", "", Language::kLu);
  const Diagnostic& d = FindCode(report, "XIC102");
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.location.element, "bad");
}

TEST(Lint, Xic103NonDeterministicContentModel) {
  // ((a,b)|(a,c)) is the textbook 1-ambiguous model: after reading "a"
  // the matcher cannot tell which branch it is in.
  const char* dtd = R"(
<!ELEMENT r ((a, b) | (a, c))>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
)";
  AnalysisReport report = Lint(dtd, "r", "", Language::kLu);
  const Diagnostic& d = FindCode(report, "XIC103");
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.location.element, "r");
  // The witness names the two competing occurrences of "a".
  EXPECT_NE(d.message.find("occurrences #0 and #2 of \"a\""),
            std::string::npos)
      << d.message;
  ASSERT_FALSE(d.notes.empty());
  EXPECT_NE(d.notes[0].find("content model:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// XIC2xx: solver-backed constraint-set analysis

TEST(Lint, Xic201InconsistentSet) {
  // The DTD forces two `a` elements but at most one `b`; the tight
  // foreign key a.x -> b.y (a.x is a key of a) caps ext(a) at ext(b):
  // no document can satisfy both, so the pair is unsatisfiable.
  const char* dtd = R"(
<!ELEMENT r (a, a, b)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ATTLIST a x CDATA #REQUIRED>
<!ATTLIST b y CDATA #REQUIRED>
)";
  AnalysisReport report = Lint(
      dtd, "r", "key a.x\nkey b.y\nfk a.x -> b.y", Language::kLu);
  const Diagnostic& d = FindCode(report, "XIC201");
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_NE(d.message.find("unsatisfiable"), std::string::npos) << d.message;
  // The notes reconstruct the cardinality argument.
  ASSERT_GE(d.notes.size(), 2u);
  EXPECT_NE(d.notes[0].find("ext(a) <= ext(b)"), std::string::npos)
      << d.notes[0];
  EXPECT_NE(d.notes.back().find("at least 2"), std::string::npos)
      << d.notes.back();
  EXPECT_EQ(report.ExitCode(), 2);
}

TEST(Lint, Xic201SilentWhenExtentsFit) {
  // Same constraints, but the DTD allows arbitrarily many b elements.
  const char* dtd = R"(
<!ELEMENT r (a, a, b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ATTLIST a x CDATA #REQUIRED>
<!ATTLIST b y CDATA #REQUIRED>
)";
  AnalysisReport report = Lint(
      dtd, "r", "key a.x\nkey b.y\nfk a.x -> b.y", Language::kLu);
  EXPECT_FALSE(HasCode(report, "XIC201")) << report.ToString();
}

TEST(Lint, Xic202RedundantConstraintWithDerivation) {
  // ID-Key: document-wide uniqueness implies per-type uniqueness, so the
  // explicit key adds nothing over the ID constraint.
  const char* dtd = R"(
<!ELEMENT db (person*)>
<!ELEMENT person (#PCDATA)>
<!ATTLIST person oid ID #REQUIRED>
)";
  AnalysisReport report = Lint(
      dtd, "db", "id person.oid\nkey person.oid", Language::kLid);
  const Diagnostic& d = FindCode(report, "XIC202");
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.location.constraint_index, 1);
  EXPECT_NE(d.message.find("redundant"), std::string::npos) << d.message;
  // The derivation from the solver rides along as notes.
  EXPECT_FALSE(d.notes.empty()) << d.ToString();
}

TEST(Lint, Xic202NotFiredWhenRemovalBreaksWellFormedness) {
  // `key entry.isbn` is derivable from the set foreign key via SFK-K,
  // but removing it leaves the sfk without its target key: that is a
  // structural dependency, not redundancy.
  AnalysisReport report =
      Lint(kBookDtd, "book", kBookConstraints, Language::kLu);
  EXPECT_FALSE(HasCode(report, "XIC202")) << report.ToString();
}

TEST(Lint, Xic203KeySubsumedBySubsetKey) {
  const char* dtd = R"(
<!ELEMENT db (publisher*)>
<!ELEMENT publisher (#PCDATA)>
<!ATTLIST publisher pname CDATA #REQUIRED country CDATA #REQUIRED>
)";
  AnalysisReport report = Lint(
      dtd, "db", "key publisher[pname]\nkey publisher[pname, country]",
      Language::kL);
  const Diagnostic& d = FindCode(report, "XIC203");
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.location.constraint_index, 1);
  EXPECT_NE(d.message.find("every superset of a key is a key"),
            std::string::npos)
      << d.message;
}

TEST(Lint, Xic204ForeignKeyWithoutTargetKey) {
  AnalysisReport report =
      Lint(kBookDtd, "book", "sfk ref.to -> entry.isbn", Language::kLu);
  const Diagnostic& d = FindCode(report, "XIC204");
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_NE(d.message.find("lacks the target key"), std::string::npos)
      << d.message;
}

// ---------------------------------------------------------------------------
// XIC3xx: finite vs unrestricted implication divergence

TEST(Lint, Xic301FiniteUnrestrictedDivergence) {
  // b carries two key attributes and the tight foreign keys close a
  // cycle a -> b -> a through *different* attributes of b. In finite
  // documents the cycle forces |ext(a)| = |ext(b)| and every tight
  // inclusion becomes an equality (cycle rules C_k), so the reversals
  // are finitely implied -- but not implied over unrestricted models.
  const char* dtd = R"(
<!ELEMENT r (a*, b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ATTLIST a x CDATA #REQUIRED>
<!ATTLIST b k1 CDATA #REQUIRED k2 CDATA #REQUIRED>
)";
  AnalysisReport report = Lint(dtd, "r",
                               "key a.x\nkey b.k1\nkey b.k2\n"
                               "fk a.x -> b.k1\nfk b.k2 -> a.x",
                               Language::kLu);
  const Diagnostic& d = FindCode(report, "XIC301");
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_NE(d.message.find("finite and unrestricted implication diverge"),
            std::string::npos)
      << d.message;
  EXPECT_FALSE(d.notes.empty()) << d.ToString();
}

TEST(Lint, Xic301SilentUnderPrimaryKeyRestriction) {
  // One key per element type: Theorem 3.4 -- implication and finite
  // implication coincide, so there is nothing to warn about even though
  // the foreign keys form a cycle.
  const char* dtd = R"(
<!ELEMENT r (a*, b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ATTLIST a x CDATA #REQUIRED>
<!ATTLIST b y CDATA #REQUIRED>
)";
  AnalysisReport report = Lint(dtd, "r",
                               "key a.x\nkey b.y\n"
                               "fk a.x -> b.y\nfk b.y -> a.x",
                               Language::kLu);
  EXPECT_FALSE(HasCode(report, "XIC301")) << report.ToString();
}

// ---------------------------------------------------------------------------
// Engine mechanics: locations, rule selection, determinism, governance

TEST(Lint, LocationsFromParserSurfaceInDiagnostics) {
  Result<std::vector<LocatedConstraint>> located = ParseConstraintsLocated(
      "key entry.isbn\n  key chapter.num\n");
  ASSERT_TRUE(located.ok()) << located.status();
  AnalysisOptions options;
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  for (const LocatedConstraint& lc : located.value()) {
    sigma.constraints.push_back(lc.constraint);
    DiagLocation loc;
    loc.line = lc.line;
    loc.column = lc.column;
    options.locations.push_back(loc);
  }
  DtdStructure dtd = MustParseDtd(kBookDtd, "book");
  AnalysisReport report = Analyzer().Analyze(dtd, sigma, options);
  const Diagnostic& d = FindCode(report, "XIC001");
  EXPECT_EQ(d.location.constraint_index, 1);
  EXPECT_EQ(d.location.line, 2u);
  EXPECT_EQ(d.location.column, 3u);
  EXPECT_NE(d.ToString().find("at 2:3"), std::string::npos) << d.ToString();
}

TEST(Lint, RuleFilterRunsOnlySelectedRules) {
  AnalysisOptions options;
  options.rules = {"references"};
  // The sfk's missing target key (XIC204, rule "targets") must not be
  // reported when only "references" is selected.
  AnalysisReport report = Lint(kBookDtd, "book", "sfk ref.to -> entry.isbn",
                               Language::kLu, options);
  EXPECT_EQ(report.rules_run, std::vector<std::string>{"references"});
  EXPECT_FALSE(HasCode(report, "XIC204"));
}

TEST(Lint, ExpiredDeadlineIsInfrastructureFailure) {
  AnalysisOptions options;
  options.deadline = Deadline::AfterMillis(0);
  AnalysisReport report =
      Lint(kBookDtd, "book", kBookConstraints, Language::kLu, options);
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.ExitCode(), 3);
}

TEST(Lint, BuiltinRegistryIsStable) {
  const RuleRegistry& registry = RuleRegistry::Builtin();
  std::vector<std::string> names;
  for (const auto& rule : registry.rules()) {
    names.push_back(rule->name());
    EXPECT_FALSE(rule->description().empty());
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"references", "reachability",
                                      "productivity", "determinism",
                                      "targets", "consistency", "redundancy",
                                      "key-subsumption", "divergence"}));
  EXPECT_EQ(registry.Find("redundancy")->name(), "redundancy");
  EXPECT_EQ(registry.Find("nonexistent"), nullptr);
}

TEST(Lint, ReportsAreDeterministic) {
  const char* sigma =
      "key chapter.num\nkey entry.issn\nsfk ref.to -> entry.isbn";
  AnalysisReport a = Lint(kBookDtd, "book", sigma, Language::kLu);
  AnalysisReport b = Lint(kBookDtd, "book", sigma, Language::kLu);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.ToJson(), b.ToJson());
  // Constraint-anchored diagnostics come first, in source order.
  ASSERT_GE(a.diagnostics.size(), 3u);
  EXPECT_LE(a.diagnostics[0].location.constraint_index,
            a.diagnostics[1].location.constraint_index);
}

// ---------------------------------------------------------------------------
// JSON rendering

TEST(Lint, JsonGoldenCleanReport) {
  AnalysisReport report =
      Lint(kBookDtd, "book", kBookConstraints, Language::kLu);
  EXPECT_EQ(report.ToJson(),
            "{\n"
            "  \"version\": 1,\n"
            "  \"language\": \"L_u\",\n"
            "  \"status\": \"OK\",\n"
            "  \"rules\": [\"references\", \"reachability\", "
            "\"productivity\", \"determinism\", \"targets\", "
            "\"consistency\", \"redundancy\", \"key-subsumption\", "
            "\"divergence\"],\n"
            "  \"summary\": {\"errors\": 0, \"warnings\": 0, \"infos\": 0},\n"
            "  \"diagnostics\": [],\n"
            "  \"exit_code\": 0\n"
            "}\n");
}

TEST(Lint, JsonGoldenSingleDiagnostic) {
  AnalysisOptions options;
  options.rules = {"references"};
  Result<std::vector<LocatedConstraint>> located =
      ParseConstraintsLocated("key chapter.num");
  ASSERT_TRUE(located.ok());
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  sigma.constraints.push_back(located.value()[0].constraint);
  DiagLocation loc;
  loc.line = located.value()[0].line;
  loc.column = located.value()[0].column;
  options.locations.push_back(loc);
  DtdStructure dtd = MustParseDtd(kBookDtd, "book");
  AnalysisReport report = Analyzer().Analyze(dtd, sigma, options);
  EXPECT_EQ(report.ToJson(),
            "{\n"
            "  \"version\": 1,\n"
            "  \"language\": \"L_u\",\n"
            "  \"status\": \"OK\",\n"
            "  \"rules\": [\"references\"],\n"
            "  \"summary\": {\"errors\": 1, \"warnings\": 0, \"infos\": 0},\n"
            "  \"diagnostics\": [\n"
            "    {\n"
            "      \"code\": \"XIC001\",\n"
            "      \"rule\": \"references\",\n"
            "      \"severity\": \"error\",\n"
            "      \"message\": \"constraint \\\"chapter.num -> chapter\\\" "
            "names undeclared element type \\\"chapter\\\"\",\n"
            "      \"constraint\": 0,\n"
            "      \"line\": 1,\n"
            "      \"column\": 1\n"
            "    }\n"
            "  ],\n"
            "  \"exit_code\": 2\n"
            "}\n");
}

TEST(Lint, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("say \"hi\"\n\tdone\\"),
            "say \\\"hi\\\"\\n\\tdone\\\\");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

// ---------------------------------------------------------------------------
// Constraint-parser error paths (structured messages with positions)

TEST(ConstraintParserErrors, UnknownKeywordNamesItAndThePosition) {
  Result<std::vector<Constraint>> r = ParseConstraints("foo entry.isbn");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown constraint keyword \"foo\""),
            std::string::npos)
      << r.status();
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos)
      << r.status();
}

TEST(ConstraintParserErrors, MissingAttributeAfterDot) {
  Result<std::vector<Constraint>> r = ParseConstraints("key entry.");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expected name"), std::string::npos)
      << r.status();
}

TEST(ConstraintParserErrors, MissingArrowInForeignKey) {
  Result<std::vector<Constraint>> r =
      ParseConstraints("fk ref.to entry.isbn");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expected \"->\""), std::string::npos)
      << r.status();
}

TEST(ConstraintParserErrors, PositionsAreOneBasedAndLineAware) {
  // The error is on line 3, after two good statements.
  Result<std::vector<Constraint>> r = ParseConstraints(
      "key entry.isbn\nkey section.sid\nkey entry[\n");
  ASSERT_FALSE(r.ok());
  const std::string& message = r.status().message();
  EXPECT_NE(message.find("line 4"), std::string::npos) << message;
  EXPECT_NE(message.find("column 1"), std::string::npos) << message;
}

TEST(ConstraintParserErrors, NonUnaryIdRejected) {
  Result<std::vector<Constraint>> r = ParseConstraints("id person[a, b]");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("id constraints are unary"),
            std::string::npos)
      << r.status();
}

TEST(ConstraintParserErrors, ForeignKeyArityMismatchRejected) {
  Result<std::vector<Constraint>> r =
      ParseConstraints("fk editor[pname, country] -> publisher[pname]");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(
      r.status().message().find("attribute lists differ in length"),
      std::string::npos)
      << r.status();
}

TEST(ConstraintParserErrors, LocatedStatementsRecordStartPositions) {
  Result<std::vector<LocatedConstraint>> r = ParseConstraintsLocated(
      "# leading comment\nkey entry.isbn;  key section.sid\n");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0].line, 2u);
  EXPECT_EQ(r.value()[0].column, 1u);
  EXPECT_EQ(r.value()[1].line, 2u);
  EXPECT_EQ(r.value()[1].column, 18u);
}

// Duplicate definitions are not a *parse* error (the linter reports them
// as XIC005 with both indices); the parser must keep both.
TEST(ConstraintParserErrors, DuplicatesSurviveParsingForTheLinter) {
  Result<std::vector<Constraint>> r =
      ParseConstraints("key entry.isbn\nkey entry.isbn");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), 2u);
}

}  // namespace
}  // namespace xic
