#include "obs/flight_recorder.h"

#include <algorithm>

namespace xic::obs {

FlightRecorder::FlightRecorder(const Config& config) : config_(config) {
  if (config_.capacity == 0) return;
  size_t stripes = std::clamp<size_t>(config_.stripes, 1, config_.capacity);
  per_stripe_ = config_.capacity / stripes;
  if (per_stripe_ == 0) per_stripe_ = 1;
  capacity_ = per_stripe_ * stripes;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    auto stripe = std::make_unique<Stripe>();
    {
      util::MutexLock lock(&stripe->mutex);
      stripe->ring.reserve(per_stripe_);
    }
    stripes_.push_back(std::move(stripe));
  }
}

void FlightRecorder::Add(Record record) {
  if (stripes_.empty()) return;
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.seq = seq;
  Stripe& stripe = *stripes_[seq % stripes_.size()];
  if (!stripe.mutex.TryLock()) {
    // Contended stripe (another request, or a Snapshot in progress):
    // drop the record rather than block the request thread.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (stripe.ring.size() < per_stripe_) {
    stripe.ring.push_back(std::move(record));
  } else {
    // Overwrite the oldest slot in place; the slot's strings keep their
    // capacity, so a warm ring stops allocating.
    stripe.ring[stripe.next] = std::move(record);
    stripe.next = (stripe.next + 1) % per_stripe_;
  }
  stripe.mutex.Unlock();
}

std::vector<FlightRecorder::Record> FlightRecorder::Snapshot() const {
  std::vector<Record> records;
  records.reserve(capacity_);
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    util::MutexLock lock(&stripe->mutex);
    records.insert(records.end(), stripe->ring.begin(), stripe->ring.end());
  }
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.seq < b.seq; });
  return records;
}

std::string FlightRecorder::DebugString() const {
  std::vector<Record> records = Snapshot();
  std::string out = "flightrec capacity=" + std::to_string(capacity_) +
                    " recorded=" + std::to_string(recorded()) +
                    " dropped=" + std::to_string(dropped()) +
                    " slow_threshold_us=" +
                    std::to_string(config_.slow_threshold_us) + "\n";
  for (const Record& r : records) {
    out += "#" + std::to_string(r.seq) + " verb=" + r.verb +
           " trace=" + r.trace_id + " status=" + r.status +
           " dur_us=" + std::to_string(r.duration_us) +
           " shed=" + (r.shed ? "1" : "0") +
           " fault=" + (r.fault ? "1" : "0");
    if (!r.detail.empty()) {
      out += " ";
      out += r.detail;
    }
    out += "\n";
  }
  return out;
}

}  // namespace xic::obs
