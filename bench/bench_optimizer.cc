// Experiment B6: constraint-driven path-query optimization (the Section
// 4 motivation). Compares naive execution (scan the root extent, walk
// the full path, dedup into a set) against the optimized plan
// (promoted scan root, shorter path, dedup eliminated) on growing
// catalogs.

#include <benchmark/benchmark.h>

#include "constraints/constraint_parser.h"
#include "paths/optimizer.h"

namespace {

using namespace xic;

struct World {
  DtdStructure dtd;
  ConstraintSet sigma;
  DataTree tree;
};

World MakeWorld(int books) {
  World w;
  (void)w.dtd.AddElement("catalog", "(book*)");
  (void)w.dtd.AddElement("book", "(entry, author*)");
  (void)w.dtd.AddElement("entry", "(title)");
  (void)w.dtd.AddElement("title", "(#PCDATA)");
  (void)w.dtd.AddElement("author", "(#PCDATA)");
  (void)w.dtd.AddAttribute("entry", "isbn", AttrCardinality::kSingle);
  (void)w.dtd.SetKind("entry", "isbn", AttrKind::kId);
  (void)w.dtd.SetRoot("catalog");
  w.sigma = ParseConstraintSet("id entry.isbn", Language::kLid).value();

  VertexId root = w.tree.AddVertex("catalog");
  for (int i = 0; i < books; ++i) {
    VertexId book = w.tree.AddVertex("book");
    (void)w.tree.AddChildVertex(root, book);
    VertexId entry = w.tree.AddVertex("entry");
    (void)w.tree.AddChildVertex(book, entry);
    w.tree.SetAttribute(entry, "isbn", "i" + std::to_string(i));
    VertexId title = w.tree.AddVertex("title");
    (void)w.tree.AddChildVertex(entry, title);
    w.tree.AddChildText(title, "T" + std::to_string(i));
    for (int a = 0; a < 3; ++a) {
      VertexId author = w.tree.AddVertex("author");
      (void)w.tree.AddChildVertex(book, author);
      w.tree.AddChildText(author, "A");
    }
  }
  return w;
}

void BM_QueryNaive(benchmark::State& state) {
  World w = MakeWorld(static_cast<int>(state.range(0)));
  PathContext context(w.dtd, w.sigma);
  PathEvaluator evaluator(context, w.tree);
  ExtentIndex extents(w.tree);
  PathQuery query{"catalog", Path::Parse("book.entry.title").value()};
  PathPlan plan = NaivePlan(context, query);
  for (auto _ : state) {
    std::vector<PathNode> results =
        ExecutePlan(evaluator, extents, plan);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_QueryNaive)
    ->RangeMultiplier(8)
    ->Range(8, 8192)
    ->Complexity();

void BM_QueryOptimized(benchmark::State& state) {
  World w = MakeWorld(static_cast<int>(state.range(0)));
  PathContext context(w.dtd, w.sigma);
  PathEvaluator evaluator(context, w.tree);
  ExtentIndex extents(w.tree);
  PathOptimizer optimizer(context);
  PathPlan plan =
      optimizer.Optimize({"catalog", Path::Parse("book.entry.title").value()})
          .value();
  for (auto _ : state) {
    std::vector<PathNode> results =
        ExecutePlan(evaluator, extents, plan);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_QueryOptimized)
    ->RangeMultiplier(8)
    ->Range(8, 8192)
    ->Complexity();

void BM_OptimizeCost(benchmark::State& state) {
  // Planning itself is cheap (schema-sized, not data-sized).
  World w = MakeWorld(4);
  PathContext context(w.dtd, w.sigma);
  PathOptimizer optimizer(context);
  PathQuery query{"catalog", Path::Parse("book.entry.title").value()};
  for (auto _ : state) {
    Result<PathPlan> plan = optimizer.Optimize(query);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_OptimizeCost);

}  // namespace
