// Inference of a minimal DTD structure from a constraint set.
//
// The implication problems of Section 3 quantify over "any DTD^C with the
// set Sigma of constraints": the structure is secondary, but the API
// needs one (L_id resolves `.id` through the kind function, checkers need
// cardinalities). This helper synthesizes the least structure consistent
// with Sigma's usage:
//   * every mentioned element type is declared (EMPTY content) under a
//     fresh root db -> (t1*, ..., tn*);
//   * fields used as keys / foreign-key components become single-valued
//     attributes; set foreign-key and inverse sources become set-valued;
//   * for L_id, ID-constraint attributes get kind ID and reference
//     sources kind IDREF.
// Useful for tools that receive bare constraint text (the implication
// explorer, quick tests).

#ifndef XIC_CONSTRAINTS_INFER_DTD_H_
#define XIC_CONSTRAINTS_INFER_DTD_H_

#include "constraints/constraint.h"
#include "model/dtd_structure.h"
#include "util/status.h"

namespace xic {

/// Synthesizes the minimal structure for `sigma`. `root` must not
/// collide with a mentioned element type. Fails on contradictory usage
/// (e.g. one attribute used both single- and set-valued, or two
/// different ID attributes forced on one type).
Result<DtdStructure> InferDtdForSigma(const ConstraintSet& sigma,
                                      const std::string& root = "db");

}  // namespace xic

#endif  // XIC_CONSTRAINTS_INFER_DTD_H_
