#include "paths/path_solver.h"

#include <set>

namespace xic {

std::string PathFunctionalConstraint::ToString() const {
  return element + "." + lhs.ToString() + " -> " + element + "." +
         rhs.ToString();
}

std::string PathInclusionConstraint::ToString() const {
  return lhs_element + "." + lhs.ToString() + " <= " + rhs_element + "." +
         rhs.ToString();
}

std::string PathInverseConstraint::ToString() const {
  return lhs_element + "." + lhs.ToString() + " <-> " + rhs_element + "." +
         rhs.ToString();
}

Result<bool> PathSolver::ImpliesFunctional(
    const PathFunctionalConstraint& phi) const {
  XIC_RETURN_IF_ERROR(deadline_.Check("path implication"));
  XIC_RETURN_IF_ERROR(context_.status());
  XIC_ASSIGN_OR_RETURN(std::string lhs_type,
                       context_.TypeOf(phi.element, phi.lhs));
  (void)lhs_type;
  XIC_ASSIGN_OR_RETURN(std::string rhs_type,
                       context_.TypeOf(phi.element, phi.rhs));
  (void)rhs_type;
  // Trivial direction: rhs is an extension of lhs, so nodes(x.rhs) is a
  // function of nodes(x.lhs).
  if (phi.rhs.StartsWith(phi.lhs)) return true;
  // Main criterion (Proposition 4.1): lhs is a key path of tau.
  return context_.IsKeyPath(phi.element, phi.lhs);
}

Result<bool> PathSolver::ImpliesInclusion(
    const PathInclusionConstraint& phi) const {
  XIC_RETURN_IF_ERROR(deadline_.Check("path implication"));
  XIC_RETURN_IF_ERROR(context_.status());
  XIC_RETURN_IF_ERROR(context_.TypeOf(phi.lhs_element, phi.lhs).status());
  XIC_RETURN_IF_ERROR(context_.TypeOf(phi.rhs_element, phi.rhs).status());
  // Proposition 4.2: implied iff lhs = theta.rhs with
  // type(lhs_element.theta) = rhs_element.
  if (phi.rhs.size() > phi.lhs.size()) return false;
  size_t split = phi.lhs.size() - phi.rhs.size();
  if (phi.lhs.Suffix(split) != phi.rhs) return false;
  Path theta = phi.lhs.Prefix(split);
  Result<std::string> theta_type = context_.TypeOf(phi.lhs_element, theta);
  return theta_type.ok() && theta_type.value() == phi.rhs_element;
}

Result<bool> PathSolver::ImpliesInverse(
    const PathInverseConstraint& phi) const {
  XIC_RETURN_IF_ERROR(deadline_.Check("path implication"));
  XIC_RETURN_IF_ERROR(context_.status());
  XIC_RETURN_IF_ERROR(context_.TypeOf(phi.lhs_element, phi.lhs).status());
  XIC_RETURN_IF_ERROR(context_.TypeOf(phi.rhs_element, phi.rhs).status());
  size_t k = phi.lhs.size();
  if (k == 0 || phi.rhs.size() != k) return false;
  // Basic inverses (with symmetry) from the L_id closure.
  std::vector<Constraint> inverses;
  for (const auto& [c, just] : context_.solver().facts()) {
    if (c.kind == ConstraintKind::kInverse) inverses.push_back(c);
  }
  // Chain matching: types t_1 .. t_{k+1} with t_i.a_i <-> t_{i+1}.b_i,
  // a_i = lhs[i], b_i = rhs[k-1-i] (rhs is the reversed b-sequence).
  // Dynamic programming over the set of possible t_i.
  std::set<std::string> current{phi.lhs_element};
  for (size_t i = 0; i < k; ++i) {
    const std::string& a = phi.lhs.steps[i];
    const std::string& b = phi.rhs.steps[k - 1 - i];
    std::set<std::string> next;
    for (const Constraint& inv : inverses) {
      if (inv.attr() == a && inv.ref_attr() == b &&
          current.count(inv.element) > 0) {
        next.insert(inv.ref_element);
      }
    }
    current = std::move(next);
    if (current.empty()) return false;
  }
  return current.count(phi.rhs_element) > 0;
}

}  // namespace xic
