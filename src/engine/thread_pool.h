// A work-stealing thread pool for the batch-validation engine.
//
// Each worker owns a deque: it pushes and pops its own work LIFO (good
// locality for tasks that spawn subtasks) and steals FIFO from the other
// workers when its deque runs dry, so a batch of unevenly sized documents
// still keeps every core busy. Submission round-robins across the worker
// deques to seed the initial spread.
//
// The pool is deliberately mutex-based (one mutex per deque plus a small
// amount of global bookkeeping) rather than lock-free: tasks here are
// whole-document pipelines, so claim contention is negligible and the
// simple protocol is easy to keep TSan-clean.
//
// Exception safety: an exception escaping a task never reaches the worker
// thread's top level (which would std::terminate the process). Submit()ed
// tasks have their exception captured and handed back via
// TakeTaskErrors(); ParallelFor captures the first exception thrown by
// `fn`, keeps the remaining iterations running, and rethrows it in the
// calling thread once all iterations finished.

#ifndef XIC_ENGINE_THREAD_POOL_H_
#define XIC_ENGINE_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace xic {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = std::thread::hardware_concurrency,
  /// with a minimum of 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. Safe to call from any thread, including from
  /// inside a running task.
  void Submit(std::function<void()> task) XIC_EXCLUDES(state_mutex_);

  /// Blocks until every task submitted so far (by any thread) finished.
  void Wait() XIC_EXCLUDES(state_mutex_);

  /// Runs fn(0) ... fn(n-1) across the pool and returns when all are
  /// done. Independent of other in-flight tasks; reentrant. If any
  /// iteration throws, the remaining iterations still run and the first
  /// exception (by completion order) is rethrown here.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      XIC_EXCLUDES(state_mutex_);

  /// Exceptions that escaped Submit()ed tasks since the last call, in
  /// completion order. ParallelFor exceptions are not included (they are
  /// rethrown by ParallelFor itself).
  std::vector<std::exception_ptr> TakeTaskErrors() XIC_EXCLUDES(state_mutex_);

  /// Largest number of tasks that were ever queued (submitted but not
  /// yet claimed by a worker) at once. Also published to the metrics
  /// registry as `engine.pool.queue_high_water`.
  size_t queue_high_water() XIC_EXCLUDES(state_mutex_);

  /// Index of the pool worker running the calling thread, or -1 when
  /// called from outside any pool's workers (e.g. the submitting
  /// thread). Used to tag per-document spans with their worker.
  static int current_worker();

 private:
  struct WorkerQueue {
    util::Mutex mutex;
    std::deque<std::function<void()>> tasks XIC_GUARDED_BY(mutex);
  };

  void WorkerLoop(size_t worker) XIC_EXCLUDES(state_mutex_);
  /// Pops from the worker's own deque (LIFO) or steals from a sibling
  /// (FIFO); null when every deque is empty. Takes the per-queue leaf
  /// locks one at a time; never called with state_mutex_ held.
  std::function<void()> Take(size_t worker) XIC_EXCLUDES(state_mutex_);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // state_mutex_ and the per-queue mutexes are all leaf locks: Submit
  // and WorkerLoop drop state_mutex_ before touching any WorkerQueue.
  util::Mutex state_mutex_;
  util::CondVar work_available_;
  util::CondVar all_done_;
  // Tasks sitting in a deque, not yet claimed by a worker.
  size_t queued_ XIC_GUARDED_BY(state_mutex_) = 0;
  // Max value queued_ ever reached.
  size_t queue_high_water_ XIC_GUARDED_BY(state_mutex_) = 0;
  // Tasks submitted and not yet finished.
  size_t pending_ XIC_GUARDED_BY(state_mutex_) = 0;
  // Round-robin submission cursor.
  size_t next_queue_ XIC_GUARDED_BY(state_mutex_) = 0;
  bool shutdown_ XIC_GUARDED_BY(state_mutex_) = false;
  std::vector<std::exception_ptr> task_errors_ XIC_GUARDED_BY(state_mutex_);
};

}  // namespace xic

#endif  // XIC_ENGINE_THREAD_POOL_H_
