// Well-formedness of constraint sets against a DTD structure.
//
// Each language imposes side conditions on its constraints (Section 2.2):
// e.g. a foreign key's target must be a key that is itself in Sigma, an
// L_id foreign key's source must be an IDREF attribute and its target the
// ID attribute, inverse constraints need set-valued attributes, and so on.
// Section 3.4 extends key/foreign-key positions to *unique sub-elements*
// (sub-elements occurring exactly once in every word of the content
// model); we accept those wherever the paper does.

#ifndef XIC_CONSTRAINTS_WELL_FORMED_H_
#define XIC_CONSTRAINTS_WELL_FORMED_H_

#include "constraints/constraint.h"
#include "model/dtd_structure.h"
#include "util/status.h"

namespace xic {

/// How a name used in a constraint position resolves against the DTD.
enum class FieldKind {
  kSingleAttribute,   // R(tau, l) = S
  kSetAttribute,      // R(tau, l) = S*
  kUniqueSubElement,  // l occurs exactly once in every word of L(P(tau))
  kUnknown,
};

/// Resolves `name` on element type `tau`. Attributes shadow sub-elements
/// (XML keeps the two namespaces separate; collisions are rejected by
/// CheckWellFormed).
FieldKind ResolveField(const DtdStructure& dtd, const std::string& tau,
                       const std::string& name);

/// True if `name` may serve as a key / foreign-key component of `tau`:
/// a single-valued attribute or a unique sub-element.
bool IsKeyField(const DtdStructure& dtd, const std::string& tau,
                const std::string& name);

/// Checks one constraint's own side conditions (not the "target key is in
/// Sigma" conditions, which need the whole set).
Status CheckConstraintShape(const Constraint& c, Language lang,
                            const DtdStructure& dtd);

/// Checks the whole set: every constraint's shape, plus the cross-
/// constraint conditions (foreign-key targets are keys of Sigma; L_id
/// references target ID-constrained types).
Status CheckWellFormed(const ConstraintSet& sigma, const DtdStructure& dtd);

}  // namespace xic

#endif  // XIC_CONSTRAINTS_WELL_FORMED_H_
