#include "xml/stream_tokenizer.h"

#include <sys/stat.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "util/strings.h"
#include "xml/xml_parser.h"

namespace xic {

// ---------------------------------------------------------------------------
// Byte sources

Result<size_t> StringSource::Read(char* buf, size_t max) {
  size_t n = std::min(max, text_.size() - pos_);
  if (n > 0) std::memcpy(buf, text_.data() + pos_, n);
  pos_ += n;
  return n;
}

Result<FileSource> FileSource::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Result<FileSource>(Status::InvalidArgument(
        "cannot open " + path + ": " + ErrnoMessage(errno)));
  }
  std::optional<uint64_t> size;
  struct stat st{};
  if (fstat(fileno(f), &st) == 0 && S_ISREG(st.st_mode)) {
    size = static_cast<uint64_t>(st.st_size);
  }
  return FileSource(f, size);
}

FileSource::FileSource(FileSource&& other) noexcept
    : file_(other.file_), size_(other.size_) {
  other.file_ = nullptr;
}

FileSource& FileSource::operator=(FileSource&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    size_ = other.size_;
    other.file_ = nullptr;
  }
  return *this;
}

FileSource::~FileSource() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<size_t> FileSource::Read(char* buf, size_t max) {
  if (file_ == nullptr || max == 0) return static_cast<size_t>(0);
  size_t n = std::fread(buf, 1, max, file_);
  if (n == 0 && std::ferror(file_) != 0) {
    return Result<size_t>(
        Status::Unavailable("file read error: " + ErrnoMessage(errno)));
  }
  return n;
}

// ---------------------------------------------------------------------------
// Buffer management

StreamTokenizer::StreamTokenizer(ByteSource& source,
                                 StreamTokenizerOptions options)
    : source_(source), options_(std::move(options)) {
  if (options_.chunk_bytes < 256) options_.chunk_bytes = 256;
  buf_.resize(options_.chunk_bytes * 2);
}

Status StreamTokenizer::Fill() {
  if (start_ > 0) {
    std::memmove(buf_.data(), buf_.data() + start_, end_ - start_);
    base_ += start_;
    end_ -= start_;
    start_ = 0;
  }
  return FillPinned();
}

Status StreamTokenizer::FillPinned() {
  if (eof_) return Status::OK();
  if (end_ == buf_.size()) buf_.resize(buf_.size() * 2);
  Result<size_t> n = source_.Read(buf_.data() + end_, buf_.size() - end_);
  if (!n.ok()) return n.status();
  if (n.value() == 0) {
    eof_ = true;
    return Status::OK();
  }
  end_ += n.value();
  total_read_ += n.value();
  // Sources with an unknown total size are bounded progressively; known
  // sizes were checked upfront in Next() with the exact total (matching
  // the DOM parser's message).
  if (!source_.size().has_value()) {
    XIC_RETURN_IF_ERROR(CheckLimit(total_read_,
                                   options_.limits.max_document_bytes,
                                   "max_document_bytes", "document size"));
  }
  return Status::OK();
}

Status StreamTokenizer::Ensure(size_t want, size_t* have) {
  while (available() < want && !eof_) {
    XIC_RETURN_IF_ERROR(Fill());
  }
  *have = available();
  return Status::OK();
}

bool StreamTokenizer::Peek(std::string_view token) const {
  if (available() < token.size()) return false;
  return std::memcmp(buf_.data() + start_, token.data(), token.size()) == 0;
}

void StreamTokenizer::Consume(size_t n) {
  const char* p = buf_.data() + start_;
  const char* lim = p + n;
  const char* q = p;
  while (q < lim) {
    const char* nl = static_cast<const char*>(
        std::memchr(q, '\n', static_cast<size_t>(lim - q)));
    if (nl == nullptr) break;
    ++line_;
    line_start_ = base_ + static_cast<uint64_t>(nl - buf_.data()) + 1;
    q = nl + 1;
  }
  start_ += n;
}

StreamTokenizer::Mark StreamTokenizer::Here() const {
  return Mark{base_ + start_, line_, line_start_};
}

Status StreamTokenizer::ErrorAt(const Mark& mark,
                                const std::string& what) const {
  uint64_t col = mark.abs - mark.line_start + 1;
  return Status::ParseError("XML: " + what + " at line " +
                            std::to_string(mark.line) + ", column " +
                            std::to_string(col));
}

Status StreamTokenizer::Error(const std::string& what) const {
  return ErrorAt(Here(), what);
}

// ---------------------------------------------------------------------------
// Shared scanners

Status StreamTokenizer::SkipSpace() {
  while (true) {
    while (available() > 0 && IsXmlSpace(at(0))) Consume(1);
    if (available() > 0 || eof_) return Status::OK();
    XIC_RETURN_IF_ERROR(Fill());
  }
}

Result<bool> StreamTokenizer::PeekXmlDecl() {
  size_t have = 0;
  XIC_RETURN_IF_ERROR(Ensure(6, &have));
  if (have < 5 || at(0) != '<' || at(1) != '?') return false;
  auto low = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  if (low(at(2)) != 'x' || low(at(3)) != 'm' || low(at(4)) != 'l') {
    return false;
  }
  // The target must be exactly three characters: "<?xml-stylesheet" and
  // friends are ordinary PIs.
  if (have >= 6 && IsNameChar(at(5))) return false;
  return true;
}

Status StreamTokenizer::SkipMisc() {
  while (true) {
    XIC_RETURN_IF_ERROR(SkipSpace());
    size_t have = 0;
    XIC_RETURN_IF_ERROR(Ensure(4, &have));
    if (Peek("<!--")) {
      Consume(4);
      XIC_RETURN_IF_ERROR(SkipUntil("-->", "", Mark{}));
    } else if (have >= 2 && at(0) == '<' && at(1) == '?') {
      XIC_ASSIGN_OR_RETURN(bool decl, PeekXmlDecl());
      if (decl) return Status::OK();
      Consume(2);
      XIC_RETURN_IF_ERROR(SkipUntil("?>", "", Mark{}));
    } else {
      return Status::OK();
    }
  }
}

Status StreamTokenizer::SkipUntil(std::string_view terminator,
                                  const std::string& what, const Mark& mark) {
  while (true) {
    if (available() >= terminator.size()) {
      std::string_view hay(buf_.data() + start_, available());
      size_t found = hay.find(terminator);
      if (found != std::string_view::npos) {
        Consume(found + terminator.size());
        return Status::OK();
      }
      Consume(available() - (terminator.size() - 1));
    }
    if (eof_) {
      if (what.empty()) {
        // Prolog/epilog SkipMisc semantics: an unterminated trailing
        // comment/PI silently consumes to EOF (the DOM parser does the
        // same; any follow-up error then points at EOF).
        Consume(available());
        return Status::OK();
      }
      return ErrorAt(mark, what);
    }
    XIC_RETURN_IF_ERROR(Fill());
  }
}

void StreamTokenizer::AppendText(char c) {
  if (!IsXmlSpace(c)) text_all_space_ = false;
  text_buf_.push_back(c);
}

void StreamTokenizer::AppendTextRun(const char* data, size_t n) {
  if (text_all_space_) {
    for (size_t i = 0; i < n; ++i) {
      if (!IsXmlSpace(data[i])) {
        text_all_space_ = false;
        break;
      }
    }
  }
  text_buf_.append(data, n);
}

void StreamTokenizer::EmitText(StreamEvent* event) {
  emit_buf_.swap(text_buf_);
  text_buf_.clear();
  event->kind = StreamEventKind::kText;
  event->text = emit_buf_;
  event->text_all_space = text_all_space_;
  text_all_space_ = true;
}

Status StreamTokenizer::ParseReference(std::string* out) {
  // Mirrors the DOM parser: the ';' must lie within 12 bytes of the '&'
  // or the reference is malformed (reported at the '&').
  while (available() < 14 && !eof_) {
    XIC_RETURN_IF_ERROR(FillPinned());
  }
  std::string_view hay(buf_.data() + start_, std::min<size_t>(available(), 14));
  size_t semi = hay.find(';');
  if (semi == std::string_view::npos || semi > 12) {
    return Error("malformed entity reference");
  }
  std::string_view ref = hay.substr(1, semi - 1);
  Consume(semi + 1);  // through ';' -- decode errors point after it
  Result<std::string> expanded = ExpandXmlEntity(ref);
  if (!expanded.ok()) return Error(expanded.status().message());
  expanded_bytes_ += expanded.value().size();
  XIC_RETURN_IF_ERROR(CheckLimit(expanded_bytes_,
                                 options_.limits.max_expansion_bytes,
                                 "max_expansion_bytes",
                                 "reference expansion output"));
  *out = std::move(expanded).value();
  return Status::OK();
}

Status StreamTokenizer::ScanCdata(StreamEvent* event, bool* emitted) {
  while (true) {
    if (available() >= 3) {
      std::string_view hay(buf_.data() + start_, available());
      size_t found = hay.find("]]>");
      size_t safe = found != std::string_view::npos ? found : available() - 2;
      for (size_t i = 0; i < safe; ++i) {
        char c = at(i);
        if (cdata_cr_ && c == '\n') {
          cdata_cr_ = false;
          continue;  // \r\n already emitted as one '\n'
        }
        cdata_cr_ = c == '\r';
        AppendText(c == '\r' ? '\n' : c);
      }
      Consume(safe);
      if (found != std::string_view::npos) {
        Consume(3);
        in_cdata_ = false;
        cdata_cr_ = false;
        return Status::OK();
      }
    }
    if (text_buf_.size() >= options_.chunk_bytes) {
      EmitText(event);
      *emitted = true;
      return Status::OK();
    }
    if (eof_) {
      // Trailing 1-2 bytes can no longer form "]]>"; in the DOM parser
      // the whole section fails before any content lands.
      return ErrorAt(cdata_mark_, "unterminated CDATA");
    }
    XIC_RETURN_IF_ERROR(Fill());
  }
}

// ---------------------------------------------------------------------------
// Grammar

Status StreamTokenizer::Next(StreamEvent* event) {
  event->kind = StreamEventKind::kEndDocument;
  event->name = {};
  event->text = {};
  event->text_all_space = true;
  event->attrs.clear();
  event->internal_subset = {};
  event->has_internal_subset = false;
  if (pending_end_) {
    pending_end_ = false;
    last_name_ = std::move(stack_.back());
    stack_.pop_back();
    event->kind = StreamEventKind::kEndElement;
    event->name = last_name_;
    if (stack_.empty()) state_ = State::kEpilog;
    return Status::OK();
  }
  if (!started_) {
    started_ = true;
    if (std::optional<uint64_t> total = source_.size()) {
      XIC_RETURN_IF_ERROR(CheckLimit(*total,
                                     options_.limits.max_document_bytes,
                                     "max_document_bytes", "document size"));
    }
  }
  switch (state_) {
    case State::kProlog: {
      bool emitted = false;
      XIC_RETURN_IF_ERROR(NextProlog(event, &emitted));
      if (emitted) return Status::OK();
      return NextContent(event);
    }
    case State::kDoctypeClose:
      XIC_RETURN_IF_ERROR(FinishDoctypeClose());
      state_ = State::kContent;
      return NextContent(event);
    case State::kContent:
      return NextContent(event);
    case State::kEpilog:
      return NextEpilog(event);
    case State::kDone:
      return Status::OK();
  }
  return Status::Internal("unreachable tokenizer state");
}

Status StreamTokenizer::NextProlog(StreamEvent* event, bool* emitted) {
  XIC_RETURN_IF_ERROR(SkipMisc());
  XIC_ASSIGN_OR_RETURN(bool decl, PeekXmlDecl());
  if (decl) {
    Mark mark = Here();
    XIC_RETURN_IF_ERROR(SkipUntil("?>", "unterminated XML declaration", mark));
  }
  XIC_RETURN_IF_ERROR(SkipMisc());
  size_t have = 0;
  XIC_RETURN_IF_ERROR(Ensure(9, &have));
  if (Peek("<!DOCTYPE")) {
    XIC_RETURN_IF_ERROR(ParseDoctype(event));
    state_ = State::kDoctypeClose;
    *emitted = true;
    return Status::OK();
  }
  XIC_RETURN_IF_ERROR(SkipMisc());
  state_ = State::kContent;
  return Status::OK();
}

Status StreamTokenizer::ParseDoctype(StreamEvent* event) {
  Consume(9);  // "<!DOCTYPE"
  XIC_RETURN_IF_ERROR(SkipSpace());
  // DOCTYPE name. Pinned scan: FillPinned never shifts offsets.
  size_t n = 0;
  while (true) {
    while (n < available() &&
           (n == 0 ? IsNameStartChar(at(n)) : IsNameChar(at(n)))) {
      ++n;
    }
    if (n < available() || eof_) break;
    XIC_RETURN_IF_ERROR(FillPinned());
  }
  if (n == 0) return Error("expected name");
  doctype_name_.assign(buf_.data() + start_, n);
  Consume(n);
  XIC_RETURN_IF_ERROR(SkipSpace());
  // External id (SYSTEM/PUBLIC) -- skipped; only the internal subset is
  // read, exactly like the DOM parser.
  size_t have = 0;
  XIC_RETURN_IF_ERROR(Ensure(6, &have));
  if (Peek("SYSTEM") || Peek("PUBLIC")) {
    while (true) {
      if (available() == 0) {
        if (eof_) break;
        XIC_RETURN_IF_ERROR(Fill());
        continue;
      }
      char c = at(0);
      if (c == '[' || c == '>') break;
      if (c == '"' || c == '\'') {
        Mark mark = Here();
        Consume(1);
        while (true) {
          std::string_view hay(buf_.data() + start_, available());
          size_t f = hay.find(c);
          if (f != std::string_view::npos) {
            Consume(f + 1);
            break;
          }
          Consume(available());
          if (eof_) return ErrorAt(mark, "unterminated literal in DOCTYPE");
          XIC_RETURN_IF_ERROR(Fill());
        }
      } else {
        Consume(1);
      }
    }
  }
  XIC_RETURN_IF_ERROR(SkipSpace());
  doctype_subset_.clear();
  bool has_subset = false;
  if (available() > 0 && at(0) == '[') {
    has_subset = true;
    Consume(1);
    Mark mark = Here();  // errors point just past '[', like the DOM scan
    // The subset ends at the first ']' outside comments, PIs and quoted
    // literals. Streamed with a mode machine; all scanned bytes are
    // accumulated verbatim into doctype_subset_.
    enum class Mode { kPlain, kComment, kPi, kQuote };
    Mode mode = Mode::kPlain;
    char quote = 0;
    bool done = false;
    auto flush = [&](size_t count) {
      doctype_subset_.append(buf_.data() + start_, count);
      Consume(count);
    };
    while (!done) {
      if (mode != Mode::kPlain) {
        std::string_view term = mode == Mode::kComment ? "-->"
                                : mode == Mode::kPi    ? "?>"
                                                       : std::string_view();
        char qterm[2] = {quote, 0};
        if (term.empty()) term = std::string_view(qterm, 1);
        if (available() >= term.size()) {
          std::string_view hay(buf_.data() + start_, available());
          size_t f = hay.find(term);
          if (f != std::string_view::npos) {
            flush(f + term.size());
            mode = Mode::kPlain;
            continue;
          }
          if (term.size() > 1) flush(available() - (term.size() - 1));
          else flush(available());
        }
        if (eof_) return ErrorAt(mark, "unterminated internal subset");
        XIC_RETURN_IF_ERROR(Fill());
        continue;
      }
      if (available() == 0) {
        if (eof_) return ErrorAt(mark, "unterminated internal subset");
        XIC_RETURN_IF_ERROR(Fill());
        continue;
      }
      size_t i = 0;
      bool need_fill = false;
      while (i < available()) {
        char c = at(i);
        if (c == ']') {
          flush(i);
          Consume(1);  // the ']' itself is not part of the subset
          done = true;
          break;
        }
        if (c == '"' || c == '\'') {
          quote = c;
          flush(i + 1);
          mode = Mode::kQuote;
          break;
        }
        if (c == '<') {
          size_t rem = available() - i;
          if (rem < 4 && !eof_) {
            flush(i);
            need_fill = true;
            break;
          }
          if (rem >= 4 && at(i + 1) == '!' && at(i + 2) == '-' &&
              at(i + 3) == '-') {
            flush(i + 4);
            mode = Mode::kComment;
            break;
          }
          if (rem >= 2 && at(i + 1) == '?') {
            flush(i + 2);
            mode = Mode::kPi;
            break;
          }
        }
        ++i;
      }
      if (done || mode != Mode::kPlain) continue;
      if (need_fill) {
        XIC_RETURN_IF_ERROR(Fill());
        continue;
      }
      flush(i);
      if (eof_) return ErrorAt(mark, "unterminated internal subset");
      XIC_RETURN_IF_ERROR(Fill());
    }
  }
  event->kind = StreamEventKind::kDoctype;
  event->name = doctype_name_;
  event->internal_subset = doctype_subset_;
  event->has_internal_subset = has_subset;
  return Status::OK();
}

Status StreamTokenizer::FinishDoctypeClose() {
  XIC_RETURN_IF_ERROR(SkipSpace());
  if (available() == 0 || at(0) != '>') {
    return Error("expected '>' closing DOCTYPE");
  }
  Consume(1);
  return SkipMisc();
}

Status StreamTokenizer::NextContent(StreamEvent* event) {
  if (stack_.empty()) {
    // Root position: the prolog ended and no element is open yet.
    return ParseStartTag(event);
  }
  while (true) {
    if (in_cdata_) {
      bool emitted = false;
      XIC_RETURN_IF_ERROR(ScanCdata(event, &emitted));
      if (emitted) return Status::OK();
      continue;
    }
    size_t have = 0;
    XIC_RETURN_IF_ERROR(Ensure(9, &have));  // longest opener "<![CDATA["
    if (have == 0) {
      return Error("unterminated element " + stack_.back());
    }
    char c = at(0);
    if (c == '<') {
      if (Peek("</")) {
        if (!text_buf_.empty()) {
          EmitText(event);
          return Status::OK();
        }
        return ParseEndTag(event);
      }
      if (Peek("<!--")) {
        Mark mark = Here();
        Consume(4);
        XIC_RETURN_IF_ERROR(SkipUntil("-->", "unterminated comment", mark));
        continue;
      }
      if (Peek("<![CDATA[")) {
        cdata_mark_ = Here();
        Consume(9);
        in_cdata_ = true;
        cdata_cr_ = false;
        continue;
      }
      if (Peek("<?")) {
        Mark mark = Here();
        Consume(2);
        XIC_RETURN_IF_ERROR(SkipUntil("?>", "unterminated PI", mark));
        continue;
      }
      if (!text_buf_.empty()) {
        EmitText(event);
        return Status::OK();
      }
      return ParseStartTag(event);
    }
    if (c == '&') {
      std::string expanded;
      XIC_RETURN_IF_ERROR(ParseReference(&expanded));
      AppendTextRun(expanded.data(), expanded.size());
    } else if (c == ']' && Peek("]]>")) {
      // XML 1.0 section 2.4: "]]>" must not appear in content except as
      // the end of a CDATA section.
      return Error("']]>' not allowed in content");
    } else if (c == '\r') {
      // Section 2.11 line-end normalization: \r\n and bare \r both become
      // a single \n.
      AppendText('\n');
      Consume(1);
      if (available() == 0 && !eof_) XIC_RETURN_IF_ERROR(Fill());
      if (available() > 0 && at(0) == '\n') Consume(1);
    } else if (c == ']') {
      AppendText(']');  // lone ']' not starting "]]>"
      Consume(1);
    } else {
      // Copy the whole plain-text run at once.
      size_t run = 0;
      while (run < available()) {
        char rc = at(run);
        if (rc == '<' || rc == '&' || rc == ']' || rc == '\r') break;
        ++run;
      }
      AppendTextRun(buf_.data() + start_, run);
      Consume(run);
    }
    if (text_buf_.size() >= options_.chunk_bytes) {
      EmitText(event);
      return Status::OK();
    }
  }
}

Status StreamTokenizer::ParseStartTag(StreamEvent* event) {
  XIC_RETURN_IF_ERROR(CheckLimit(stack_.size() + 1,
                                 options_.limits.max_tree_depth,
                                 "max_tree_depth", "element nesting depth"));
  XIC_RETURN_IF_ERROR(options_.deadline.Check("XML parse"));
  size_t have = 0;
  XIC_RETURN_IF_ERROR(Ensure(1, &have));
  if (have == 0 || at(0) != '<') return Error("expected '<'");
  // Prescan: buffer the whole tag (through the '>' outside quoted
  // values) so every offset below stays stable -- FillPinned grows the
  // buffer without compacting.
  {
    size_t i = 1;
    char quote = 0;
    bool closed = false;
    while (!closed) {
      while (i < available()) {
        char c = at(i);
        if (quote != 0) {
          if (c == quote) quote = 0;
        } else if (c == '"' || c == '\'') {
          quote = c;
        } else if (c == '>') {
          closed = true;
          break;
        }
        ++i;
      }
      if (closed || eof_) break;
      XIC_RETURN_IF_ERROR(FillPinned());
    }
  }
  Consume(1);  // '<'
  // Element name: offsets into buf_, materialized as views at the end.
  size_t name_off = start_;
  size_t name_len = 0;
  if (available() > 0 && IsNameStartChar(at(0))) {
    name_len = 1;
    while (name_len < available() && IsNameChar(at(name_len))) ++name_len;
  }
  if (name_len == 0) return Error("expected name");
  std::string_view name(buf_.data() + name_off, name_len);
  Consume(name_len);
  // Attributes. Values are views into buf_ (fast path) or indexes into
  // attr_store_ (slow path: normalization / expansion).
  struct RawAttr {
    size_t name_off, name_len;
    bool from_store;
    size_t value_off_or_index, value_len;
  };
  std::vector<RawAttr> raw_attrs;
  size_t store_used = 0;
  auto skip_space_here = [&]() -> Status {
    // Space inside a tag; pinned so earlier offsets survive (only
    // reachable past the prescan when the tag hit EOF unclosed).
    while (true) {
      while (available() > 0 && IsXmlSpace(at(0))) Consume(1);
      if (available() > 0 || eof_) return Status::OK();
      XIC_RETURN_IF_ERROR(FillPinned());
    }
  };
  auto parse_quoted = [&](RawAttr* attr) -> Status {
    if (available() == 0 || (at(0) != '"' && at(0) != '\'')) {
      return Error("expected quoted value");
    }
    char quote = at(0);
    Consume(1);
    // Fast scan: a value without '&', '<' and literal whitespace controls
    // is already in normalized form -- keep it as a view.
    size_t n = 0;
    while (n < available()) {
      char c = at(n);
      if (c == quote || c == '&' || c == '<' || c == '\t' || c == '\n' ||
          c == '\r') {
        break;
      }
      ++n;
    }
    if (n < available() && at(n) == quote) {
      attr->from_store = false;
      attr->value_off_or_index = start_;
      attr->value_len = n;
      Consume(n + 1);
      return Status::OK();
    }
    // Slow path: normalization or expansion needed.
    if (attr_store_.size() <= store_used) attr_store_.emplace_back();
    std::string& out = attr_store_[store_used];
    out.assign(buf_.data() + start_, n);
    Consume(n);
    while (available() > 0 && at(0) != quote) {
      char c = at(0);
      if (c == '&') {
        // Characters that come in via references escape normalization
        // (Section 3.3.3), so &#10; stays a literal newline.
        std::string expanded;
        XIC_RETURN_IF_ERROR(ParseReference(&expanded));
        out += expanded;
      } else if (c == '<') {
        return Error("'<' not allowed in attribute value");
      } else if (c == '\t' || c == '\n') {
        // Attribute-value normalization (Section 3.3.3): literal
        // whitespace becomes a space.
        out += ' ';
        Consume(1);
      } else if (c == '\r') {
        // \r\n is one line end (Section 2.11), hence one space.
        out += ' ';
        Consume(1);
        if (available() == 0 && !eof_) XIC_RETURN_IF_ERROR(FillPinned());
        if (available() > 0 && at(0) == '\n') Consume(1);
      } else {
        out += c;
        Consume(1);
      }
    }
    if (available() == 0) return Error("unterminated attribute value");
    Consume(1);
    attr->from_store = true;
    attr->value_off_or_index = store_used;
    attr->value_len = out.size();
    ++store_used;
    return Status::OK();
  };
  bool self_closing = false;
  size_t num_attrs = 0;
  while (true) {
    XIC_RETURN_IF_ERROR(skip_space_here());
    if (available() == 0) return Error("unterminated start tag");
    if (at(0) == '>') {
      Consume(1);
      break;
    }
    if (Peek("/>")) {
      Consume(2);
      self_closing = true;
      break;
    }
    XIC_RETURN_IF_ERROR(CheckLimit(
        ++num_attrs, options_.limits.max_attributes_per_element,
        "max_attributes_per_element",
        "attributes on element " + std::string(name)));
    size_t aoff = start_;
    size_t alen = 0;
    if (available() > 0 && IsNameStartChar(at(0))) {
      alen = 1;
      while (alen < available() && IsNameChar(at(alen))) ++alen;
    }
    if (alen == 0) return Error("expected name");
    Consume(alen);
    XIC_RETURN_IF_ERROR(skip_space_here());
    if (available() == 0 || at(0) != '=') {
      return Error("expected '=' after attribute name");
    }
    Consume(1);
    XIC_RETURN_IF_ERROR(skip_space_here());
    RawAttr attr{aoff, alen, false, 0, 0};
    XIC_RETURN_IF_ERROR(parse_quoted(&attr));
    raw_attrs.push_back(attr);
  }
  // Materialize views (offsets are stable: no compaction happened since
  // the prescan). A repeated attribute name keeps the last value in the
  // first-seen position -- DataTree::SetAttribute semantics.
  event->kind = StreamEventKind::kStartElement;
  event->name = name;
  for (const RawAttr& raw : raw_attrs) {
    std::string_view aname(buf_.data() + raw.name_off, raw.name_len);
    std::string_view avalue =
        raw.from_store
            ? std::string_view(attr_store_[raw.value_off_or_index])
            : std::string_view(buf_.data() + raw.value_off_or_index,
                               raw.value_len);
    bool replaced = false;
    for (StreamEvent::Attr& existing : event->attrs) {
      if (existing.name == aname) {
        existing.value = avalue;
        replaced = true;
        break;
      }
    }
    if (!replaced) event->attrs.push_back(StreamEvent::Attr{aname, avalue});
  }
  stack_.emplace_back(name);
  if (self_closing) pending_end_ = true;
  return Status::OK();
}

Status StreamTokenizer::ParseEndTag(StreamEvent* event) {
  Consume(2);  // "</"
  size_t n = 0;
  while (true) {
    while (n < available() &&
           (n == 0 ? IsNameStartChar(at(n)) : IsNameChar(at(n)))) {
      ++n;
    }
    if (n < available() || eof_) break;
    XIC_RETURN_IF_ERROR(FillPinned());
  }
  if (n == 0) return Error("expected name");
  std::string_view close(buf_.data() + start_, n);
  Consume(n);
  if (close != stack_.back()) {
    return Error("mismatched end tag </" + std::string(close) + "> for <" +
                 stack_.back() + ">");
  }
  XIC_RETURN_IF_ERROR(SkipSpace());
  if (available() == 0 || at(0) != '>') {
    return Error("expected '>' in end tag");
  }
  Consume(1);
  last_name_ = std::move(stack_.back());
  stack_.pop_back();
  event->kind = StreamEventKind::kEndElement;
  event->name = last_name_;
  if (stack_.empty()) state_ = State::kEpilog;
  return Status::OK();
}

Status StreamTokenizer::NextEpilog(StreamEvent* event) {
  XIC_RETURN_IF_ERROR(SkipMisc());
  size_t have = 0;
  XIC_RETURN_IF_ERROR(Ensure(1, &have));
  if (have > 0) return Error("content after document element");
  state_ = State::kDone;
  event->kind = StreamEventKind::kEndDocument;
  return Status::OK();
}

}  // namespace xic
