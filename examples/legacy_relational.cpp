// Legacy relational data -> XML with preserved semantics: the paper's
// publishers/editors scenario (Sections 1, 2.4), language L.
//
// Builds the relational schema with its key and foreign key, exports it
// to a DTD^C + document, shows that (a) the document validates, (b) the
// constraints are preserved (violations survive the export), and (c) the
// primary-key solver answers implication questions about the exported
// constraint set (Theorem 3.8).

#include <iostream>

#include "xic.h"

int main() {
  using namespace xic;

  // The relational schema of Section 1.
  RelationalSchema schema;
  (void)schema.AddRelation("publisher", {"pname", "country", "address"});
  (void)schema.AddRelation("editor", {"name", "pname", "country"});
  (void)schema.AddKey("publisher", {"pname", "country"});
  (void)schema.AddKey("editor", {"name"});
  (void)schema.AddForeignKey(
      {"editor", {"pname", "country"}, "publisher", {"pname", "country"}});
  if (Status s = schema.Validate(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  RelationalInstance inst(schema);
  (void)inst.Insert("publisher", {"Morgan Kaufmann", "USA", "340 Pine St"});
  (void)inst.Insert("publisher", {"Morgan Kaufmann", "UK", "1 Fleet St"});
  (void)inst.Insert("publisher", {"Addison-Wesley", "USA", "75 Arlington"});
  (void)inst.Insert("editor", {"J. Gray", "Morgan Kaufmann", "USA"});
  (void)inst.Insert("editor", {"M. Stone", "Addison-Wesley", "USA"});
  std::cout << "relational integrity violations: "
            << inst.CheckIntegrity().size() << "\n";

  // Export to XML.
  Result<RelationalExport> exported = ExportRelational(inst);
  if (!exported.ok()) {
    std::cerr << exported.status() << "\n";
    return 1;
  }
  const RelationalExport& e = exported.value();
  std::cout << "\nexported DTD:\n" << e.dtd.ToString();
  std::cout << "\nexported constraints (" << LanguageToString(e.sigma.language)
            << "):\n"
            << e.sigma.ToString() << "\n";
  std::cout << "\ndocument:\n" << SerializeXml(e.tree) << "\n";

  StructuralValidator validator(e.dtd);
  ConstraintChecker checker(e.dtd, e.sigma);
  std::cout << "structure valid: " << validator.Validate(e.tree).ok()
            << ", constraints satisfied: " << checker.Check(e.tree).ok()
            << "\n";

  // Implication under the primary-key restriction.
  LpSolver solver(e.sigma);
  if (!solver.status().ok()) {
    std::cerr << solver.status() << "\n";
    return 1;
  }
  Constraint permuted = Constraint::ForeignKey(
      "editor", {"country", "pname"}, "publisher", {"country", "pname"});
  std::cout << "\nSigma |= " << permuted.ToString() << " ?  "
            << (solver.Implies(permuted).value_or(false) ? "yes (PFK-perm)"
                                                         : "no")
            << "\n";
  Constraint crossed = Constraint::ForeignKey(
      "editor", {"pname", "country"}, "publisher", {"country", "pname"});
  std::cout << "Sigma |= " << crossed.ToString() << " ?  "
            << (solver.Implies(crossed).value_or(false) ? "yes" : "no")
            << "\n";

  // A dangling editor shows up as an XML constraint violation.
  RelationalInstance bad(schema);
  (void)bad.Insert("editor", {"Lost Editor", "Nowhere Press", "Atlantis"});
  Result<RelationalExport> bad_export = ExportRelational(bad);
  ConstraintChecker bad_checker(bad_export.value().dtd,
                                bad_export.value().sigma);
  ConstraintReport bad_report = bad_checker.Check(bad_export.value().tree);
  std::cout << "\ndangling editor detected after export: "
            << (!bad_report.ok() ? "yes" : "no") << "\n"
            << bad_report.ToString(bad_export.value().sigma);
  return 0;
}
