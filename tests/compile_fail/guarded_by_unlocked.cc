// expect-fail (Clang -Wthread-safety): writing a GUARDED_BY member
// without holding its mutex must be rejected.

#include "util/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BUG: mutex_ not held
  }

 private:
  xic::util::Mutex mutex_;
  int value_ XIC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
