// Batch-validation engine throughput: a fixed corpus of catalog documents
// pushed through parse -> structure -> constraints at 1..8 worker
// threads. The interesting numbers are docs/s scaling vs the
// single-threaded baseline (the engine's report is byte-identical at any
// thread count, so the speedup is free of semantic drift).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "constraints/constraint_parser.h"
#include "engine/batch_validator.h"

namespace {

using namespace xic;

DtdStructure MakeDtd() {
  DtdStructure dtd;
  (void)dtd.AddElement("catalog", "(book*)");
  (void)dtd.AddElement("book", "(entry, author*, section*, ref)");
  (void)dtd.AddElement("entry", "(title, publisher)");
  (void)dtd.AddElement("title", "(#PCDATA)");
  (void)dtd.AddElement("publisher", "(#PCDATA)");
  (void)dtd.AddElement("author", "(#PCDATA)");
  (void)dtd.AddElement("text", "(#PCDATA)");
  (void)dtd.AddElement("section", "(title, (text|section)*)");
  (void)dtd.AddElement("ref", "EMPTY");
  (void)dtd.AddAttribute("entry", "isbn", AttrCardinality::kSingle);
  (void)dtd.AddAttribute("section", "sid", AttrCardinality::kSingle);
  (void)dtd.AddAttribute("ref", "to", AttrCardinality::kSet);
  (void)dtd.SetRoot("catalog");
  return dtd;
}

// One catalog of `books` books; every ref resolves, every key is unique.
std::string MakeDoc(int id, int books) {
  std::string xml = "<catalog>";
  for (int b = 0; b < books; ++b) {
    std::string isbn =
        "i" + std::to_string(id) + "-" + std::to_string(b);
    xml += "<book><entry isbn=\"" + isbn +
           "\"><title>Title " + std::to_string(b) +
           "</title><publisher>P</publisher></entry>";
    xml += "<author>Author One</author><author>Author Two</author>";
    xml += "<section sid=\"s" + std::to_string(id) + "-" +
           std::to_string(b) + "\"><title>S</title><text>body</text>"
           "</section>";
    xml += "<ref to=\"" + isbn + " i" + std::to_string(id) + "-" +
           std::to_string((b + 1) % books) + "\"/></book>";
  }
  xml += "</catalog>";
  return xml;
}

const std::vector<BatchDocument>& Corpus() {
  static const std::vector<BatchDocument>* corpus = [] {
    auto* docs = new std::vector<BatchDocument>;
    const int kDocs = 256;  // >= 200-document corpus per EXPERIMENTS.md
    const int kBooksPerDoc = 32;
    for (int i = 0; i < kDocs; ++i) {
      docs->push_back({"doc" + std::to_string(i), MakeDoc(i, kBooksPerDoc)});
    }
    return docs;
  }();
  return *corpus;
}

void BM_BatchValidate(benchmark::State& state) {
  static const DtdStructure dtd = MakeDtd();
  static const ConstraintSet sigma =
      ParseConstraintSet(
          "key entry.isbn; key section.sid; sfk ref.to -> entry.isbn",
          Language::kLu)
          .value();
  const std::vector<BatchDocument>& corpus = Corpus();
  BatchOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  BatchValidator validator(dtd, sigma, options);
  // Accumulate instead of DoNotOptimize(lvalue): GCC's "+m,r" constraint
  // in the non-const overload miscompiles at -O2 (google/benchmark#1340)
  // and leaves the local holding garbage after the loop.
  size_t violations = 0;
  for (auto _ : state) {
    BatchReport report = validator.Run(corpus);
    violations += report.stats.total_violations;
    benchmark::ClobberMemory();
  }
  if (violations != 0) state.SkipWithError("corpus unexpectedly invalid");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
// MinTime keeps the per-arg run from collapsing to a single iteration:
// one batch over the 256-document corpus takes ~100 ms, and benchmark's
// default budget was satisfied by the very first timing sample, so the
// published docs/s was a one-shot measurement (noisy, and blind to
// steady-state effects like arena reuse). Two seconds buys a double-digit
// iteration count at every thread setting.
BENCHMARK(BM_BatchValidate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->MinTime(2.0)
    ->Unit(benchmark::kMillisecond);

}  // namespace
