// Experiments T3.6 / B4: the cost of deciding general-L implication with
// the chase, and of exhaustive small-model search. Shows (a) chase cost
// growing with the foreign-key chain length, (b) bound exhaustion on
// cyclic inputs (the undecidability frontier), (c) enumeration cost vs
// bounds.

#include <benchmark/benchmark.h>

#include "constraints/constraint.h"
#include "implication/countermodel.h"
#include "implication/l_general_solver.h"

namespace {

using namespace xic;

ConstraintSet ChainSigma(int n) {
  ConstraintSet sigma;
  sigma.language = Language::kL;
  for (int i = 0; i < n; ++i) {
    sigma.constraints.push_back(
        Constraint::Key("r" + std::to_string(i), {"k"}));
  }
  for (int i = 1; i < n; ++i) {
    sigma.constraints.push_back(Constraint::ForeignKey(
        "r" + std::to_string(i), {"f"}, "r" + std::to_string(i - 1), {"k"}));
  }
  return sigma;
}

void BM_ChaseChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ConstraintSet sigma = ChainSigma(n);
  // Not implied: the chase terminates after materializing the chain.
  Constraint phi = Constraint::ForeignKey(
      "r" + std::to_string(n - 1), {"f"}, "r0", {"k"});
  GeneralResult last;
  for (auto _ : state) {
    last = ChaseImplication(sigma, phi);
    benchmark::DoNotOptimize(static_cast<int>(last.outcome));
  }
  state.counters["chase_steps"] = static_cast<double>(last.chase_steps);
  state.SetComplexityN(n);
}
BENCHMARK(BM_ChaseChain)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

void BM_ChaseUnknownOnCycle(benchmark::State& state) {
  // Cyclic key/foreign-key interaction: the chase runs to its bound.
  ConstraintSet sigma;
  sigma.language = Language::kL;
  sigma.constraints = {Constraint::Key("r", {"a"}),
                       Constraint::ForeignKey("r", {"b"}, "r", {"a"})};
  Constraint phi = Constraint::ForeignKey("r", {"a"}, "r", {"b"});
  GeneralOptions options;
  options.max_chase_rows = static_cast<size_t>(state.range(0));
  options.max_chase_steps = 1u << 20;
  GeneralResult last;
  for (auto _ : state) {
    last = ChaseImplication(sigma, phi, options);
    benchmark::DoNotOptimize(static_cast<int>(last.outcome));
  }
  state.counters["outcome_unknown"] =
      last.outcome == ImplicationOutcome::kUnknown ? 1 : 0;
}
BENCHMARK(BM_ChaseUnknownOnCycle)
    ->RangeMultiplier(4)
    ->Range(16, 1024);

void BM_EnumerationByValueDomain(benchmark::State& state) {
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  sigma.constraints = {
      Constraint::UnaryKey("t0", "a"),
      Constraint::UnaryKey("t1", "a"),
      Constraint::UnaryForeignKey("t0", "b", "t1", "a")};
  // Implied (UFK-K target key): full space is searched without a hit.
  Constraint phi = Constraint::UnaryKey("t1", "a");
  EnumerationBounds bounds;
  bounds.num_values = static_cast<size_t>(state.range(0));
  bounds.max_rows_per_type = 2;
  bounds.max_instances = 0;
  for (auto _ : state) {
    std::optional<TableInstance> cm =
        EnumerateCountermodel(sigma, phi, bounds);
    benchmark::DoNotOptimize(cm.has_value());
  }
}
BENCHMARK(BM_EnumerationByValueDomain)->DenseRange(1, 4, 1);

void BM_EnumerationByRowBound(benchmark::State& state) {
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  sigma.constraints = {Constraint::UnaryKey("t0", "a")};
  Constraint phi = Constraint::UnaryForeignKey("t0", "a", "t1", "a");
  EnumerationBounds bounds;
  bounds.num_values = 2;
  bounds.max_rows_per_type = static_cast<size_t>(state.range(0));
  bounds.max_instances = 0;
  for (auto _ : state) {
    std::optional<TableInstance> cm =
        EnumerateCountermodel(sigma, phi, bounds);
    benchmark::DoNotOptimize(cm.has_value());
  }
}
BENCHMARK(BM_EnumerationByRowBound)->DenseRange(1, 4, 1);

}  // namespace
