#include "paths/path_eval.h"

#include <map>

namespace xic {

PathEvaluator::PathEvaluator(const PathContext& context, const DataTree& tree)
    : context_(context), tree_(tree), extents_(tree) {
  const DtdStructure& dtd = context_.dtd();
  for (VertexId v = 0; v < tree_.size(); ++v) {
    std::optional<std::string> id_attr = dtd.IdAttribute(tree_.label(v));
    if (!id_attr.has_value()) continue;
    Result<std::string> value = tree_.SingleAttribute(v, *id_attr);
    if (value.ok()) ids_[value.value()].push_back(v);
  }
}

std::set<PathNode> PathEvaluator::Nodes(VertexId x, const Path& rho) const {
  const DtdStructure& dtd = context_.dtd();
  std::set<PathNode> frontier{PathNode{x}};
  for (const std::string& step : rho.steps) {
    std::set<PathNode> next;
    for (const PathNode& node : frontier) {
      const VertexId* y = std::get_if<VertexId>(&node);
      if (y == nullptr) continue;  // atomic values have no further steps
      const std::string& tau1 = tree_.label(*y);
      if (dtd.HasAttribute(tau1, step)) {
        Result<AttrValue> values = tree_.Attribute(*y, step);
        if (!values.ok()) continue;
        std::optional<std::string> target =
            context_.ReferenceTarget(tau1, step);
        for (const std::string& value : values.value()) {
          if (target.has_value()) {
            // Dereference: vertices labeled tau2 whose id equals the value.
            auto it = ids_.find(value);
            if (it == ids_.end()) continue;
            for (VertexId z : it->second) {
              if (tree_.label(z) == *target) next.insert(PathNode{z});
            }
          } else {
            next.insert(PathNode{value});
          }
        }
        continue;
      }
      // Element (or #PCDATA) child step.
      for (const Child& child : tree_.children(*y)) {
        if (const VertexId* z = std::get_if<VertexId>(&child)) {
          if (tree_.label(*z) == step) next.insert(PathNode{*z});
        } else if (step == kStringSymbol) {
          next.insert(PathNode{std::get<std::string>(child)});
        }
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

std::set<PathNode> PathEvaluator::Extent(const std::string& tau,
                                         const Path& rho) const {
  std::set<PathNode> out;
  for (VertexId x : extents_.Extent(tau)) {
    std::set<PathNode> nodes = Nodes(x, rho);
    out.insert(nodes.begin(), nodes.end());
  }
  return out;
}

bool PathEvaluator::SatisfiesFunctional(const std::string& tau,
                                        const Path& lhs,
                                        const Path& rhs) const {
  std::map<std::set<PathNode>, std::set<PathNode>> groups;
  for (VertexId x : extents_.Extent(tau)) {
    std::set<PathNode> key = Nodes(x, lhs);
    std::set<PathNode> value = Nodes(x, rhs);
    auto [it, inserted] = groups.emplace(std::move(key), value);
    if (!inserted && it->second != value) return false;
  }
  return true;
}

bool PathEvaluator::SatisfiesInclusion(const std::string& tau1,
                                       const Path& rho1,
                                       const std::string& tau2,
                                       const Path& rho2) const {
  std::set<PathNode> lhs = Extent(tau1, rho1);
  std::set<PathNode> rhs = Extent(tau2, rho2);
  for (const PathNode& node : lhs) {
    if (rhs.count(node) == 0) return false;
  }
  return true;
}

bool PathEvaluator::SatisfiesInverse(const std::string& tau1,
                                     const Path& rho1,
                                     const std::string& tau2,
                                     const Path& rho2) const {
  for (VertexId x : extents_.Extent(tau1)) {
    std::set<PathNode> forward = Nodes(x, rho1);
    for (VertexId y : extents_.Extent(tau2)) {
      bool y_from_x = forward.count(PathNode{y}) > 0;
      bool x_from_y = Nodes(y, rho2).count(PathNode{x}) > 0;
      if (y_from_x != x_from_y) return false;
    }
  }
  return true;
}

}  // namespace xic
