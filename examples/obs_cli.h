// Shared observability CLI plumbing for the xic* binaries.
//
// Every tool accepts the same three flags:
//   --trace-out FILE    record a span trace and write Chrome trace_event
//                       JSON (load in Perfetto / chrome://tracing)
//   --metrics-out FILE  write the metrics registry as flat JSON
//   --stats             print the metrics table to stderr on exit
//
// Usage pattern in a main():
//   ObsCliOptions obs;
//   ... if (ObsParseFlag(argc, argv, &i, &obs)) continue; ...
//   ObsCliSession session(obs);      // starts tracing if requested
//   ... do the work ...
//   if (!session.Finish()) return 2; // writes files, prints --stats
//
// With XIC_OBS=OFF the flags still parse; traces come out empty and the
// table says so, rather than the flags becoming hard errors.

#ifndef XIC_EXAMPLES_OBS_CLI_H_
#define XIC_EXAMPLES_OBS_CLI_H_

#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.h"

namespace xic {

struct ObsCliOptions {
  std::string trace_out;
  std::string metrics_out;
  bool stats = false;
};

/// Consumes one argv slot (plus its value) if it is an observability
/// flag; leaves *index on the flag's last consumed slot. Returns true
/// when the flag was recognized, false to let the caller handle it.
/// Sets *error on a recognized flag with a missing value.
inline bool ObsParseFlag(int argc, char** argv, int* index,
                         ObsCliOptions* options, bool* error) {
  std::string arg = argv[*index];
  if (arg == "--stats") {
    options->stats = true;
    return true;
  }
  if (arg == "--trace-out" || arg == "--metrics-out") {
    if (*index + 1 >= argc) {
      std::cerr << arg << ": missing file argument\n";
      *error = true;
      return true;
    }
    std::string value = argv[++*index];
    (arg == "--trace-out" ? options->trace_out : options->metrics_out) =
        std::move(value);
    return true;
  }
  return false;
}

/// RAII wrapper: starts a trace session when --trace-out was given and
/// writes every requested artifact in Finish().
class ObsCliSession {
 public:
  explicit ObsCliSession(ObsCliOptions options)
      : options_(std::move(options)) {
    obs::Tracer::SetCurrentThreadName("main");
    if (!options_.trace_out.empty()) obs::Tracer::Global().Start();
  }

  /// Writes the current --trace-out / --metrics-out artifacts WITHOUT
  /// ending the session: tracing keeps recording and counters keep
  /// counting. This is the export path for long-lived processes (xicd
  /// flushes on SIGUSR1) -- Finish() remains the shutdown path. Spans
  /// still open at flush time are exported with their not-yet-final end
  /// timestamp; a later flush or Finish() rewrites the file complete.
  /// Returns false when an output file could not be written.
  bool Flush() {
    bool ok = true;
    if (!options_.trace_out.empty()) {
      obs::TraceSnapshot snapshot = obs::Tracer::Global().Collect();
      ok &= WriteFile(options_.trace_out, obs::ToChromeTraceJson(snapshot));
    }
    if (!options_.metrics_out.empty()) {
      ok &= WriteFile(options_.metrics_out, obs::MetricsToJson());
    }
    if (options_.stats) std::cerr << obs::MetricsToTable();
    return ok;
  }

  /// Stops tracing and writes --trace-out / --metrics-out / --stats.
  /// Returns false when an output file could not be written.
  bool Finish() {
    if (!options_.trace_out.empty()) obs::Tracer::Global().Stop();
    return Flush();
  }

 private:
  static bool WriteFile(const std::string& path,
                        const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::cerr << path << ": cannot write\n";
      return false;
    }
    out << content;
    out.flush();
    if (!out) {
      std::cerr << path << ": write failed\n";
      return false;
    }
    return true;
  }

  ObsCliOptions options_;
};

}  // namespace xic

#endif  // XIC_EXAMPLES_OBS_CLI_H_
