#include <gtest/gtest.h>

#include "logic/ef_game.h"
#include "logic/figure1.h"
#include "logic/fo_sentence.h"

namespace xic {
namespace {

using F = FoFormula;

TEST(FoSentence, VariableCounting) {
  // The key constraint needs three variable names.
  FoPtr key = UnaryKeySentence("l");
  EXPECT_EQ(key->VariableCount(), 3u);
  EXPECT_FALSE(key->IsFo2());
  // Degree-one is two-variable.
  FoPtr has_succ = F::Exists(
      "x", F::Exists("y", F::Atom("l", "x", "y")));
  EXPECT_EQ(has_succ->VariableCount(), 2u);
  EXPECT_TRUE(has_succ->IsFo2());
  // Variable reuse keeps the count at two.
  FoPtr reuse = F::Exists(
      "x", F::Exists("y", F::And(F::Atom("l", "x", "y"),
                                 F::Exists("x", F::Atom("l", "y", "x")))));
  EXPECT_TRUE(reuse->IsFo2());
}

TEST(FoSentence, EvaluatesBasicSentences) {
  FoStructure g(3);
  g.AddEdge("l", 0, 2);
  g.AddEdge("l", 1, 2);
  // Exists an edge.
  FoPtr edge = F::Exists("x", F::Exists("y", F::Atom("l", "x", "y")));
  EXPECT_TRUE(edge->Evaluate(g));
  EXPECT_FALSE(edge->Evaluate(FoStructure(2)));
  // Forall x exists y edge(x,y) fails (2 has no successor).
  FoPtr total = F::Forall("x", F::Exists("y", F::Atom("l", "x", "y")));
  EXPECT_FALSE(total->Evaluate(g));
  // Equality and negation.
  FoPtr two = AtLeastTwo("x", "y", F::True(), F::True());
  EXPECT_TRUE(two->Evaluate(g));
  EXPECT_FALSE(two->Evaluate(FoStructure(1)));
}

TEST(FoSentence, KeySentenceMatchesStructureEvaluator) {
  FoPtr key = UnaryKeySentence(kFigure1Relation);
  for (size_t n = 1; n <= 5; ++n) {
    FoStructure match = MakeFigure1Matching(n);
    FoStructure shared = MakeFigure1Shared(n);
    EXPECT_EQ(key->Evaluate(match),
              match.SatisfiesUnaryKey(kFigure1Relation));
    EXPECT_EQ(key->Evaluate(shared),
              shared.SatisfiesUnaryKey(kFigure1Relation));
  }
}

TEST(FoSentence, Fo2SentencesAgreeOnFigure1Pair) {
  // A panel of FO^2 sentences; each must agree on G and G' (which the
  // EF-game solver certifies are FO^2-equivalent), while the 3-variable
  // key sentence disagrees -- the Figure 1 argument, sentence by
  // sentence.
  FoStructure g = MakeFigure1Matching(3);
  FoStructure g2 = MakeFigure1Shared(3);
  ASSERT_TRUE(EfGame2(g, g2).DecideFo2Equivalence().equivalent);

  const char* l = kFigure1Relation;
  FoPtr has_succ_x = F::Exists("y", F::Atom(l, "x", "y"));
  FoPtr has_pred_x = F::Exists("y", F::Atom(l, "y", "x"));
  std::vector<FoPtr> fo2_sentences = {
      // There is an edge.
      F::Exists("x", F::Exists("y", F::Atom(l, "x", "y"))),
      // Some element has no successor.
      F::Exists("x", F::Not(has_succ_x)),
      // Every element with a predecessor has no successor (bipartite-ish).
      F::Forall("x", F::Implies(has_pred_x, F::Not(has_succ_x))),
      // At least two sources.
      AtLeastTwo("x", "y", F::Exists("y", F::Atom(l, "x", "y")),
                 F::Exists("x", F::Atom(l, "y", "x"))),
      // No self loops.
      F::Forall("x", F::Not(F::Atom(l, "x", "x"))),
  };
  for (const FoPtr& sentence : fo2_sentences) {
    ASSERT_TRUE(sentence->IsFo2()) << sentence->ToString();
    EXPECT_EQ(sentence->Evaluate(g), sentence->Evaluate(g2))
        << sentence->ToString();
  }
  FoPtr key = UnaryKeySentence(l);
  EXPECT_NE(key->Evaluate(g), key->Evaluate(g2));
}

TEST(FoSentence, ToStringIsReadable) {
  FoPtr key = UnaryKeySentence("l");
  std::string text = key->ToString();
  EXPECT_NE(text.find("Ax."), std::string::npos);
  EXPECT_NE(text.find("l(x,z)"), std::string::npos);
  EXPECT_NE(text.find("x=y"), std::string::npos);
}

}  // namespace
}  // namespace xic
