// Deadline plumbing: an already-expired deadline must make every stage of
// the parse -> validate -> solve pipeline return kDeadlineExceeded
// promptly, with no partial-result crashes. The tests use
// Deadline::Expired() (deterministic -- no sleeping) and only assert a
// generous wall-clock ceiling, so they stay green under sanitizers and on
// loaded machines.

#include <chrono>
#include <string>

#include <gtest/gtest.h>

#include "constraints/checker.h"
#include "constraints/constraint.h"
#include "implication/countermodel.h"
#include "implication/l_general_solver.h"
#include "implication/lp_solver.h"
#include "model/structural_validator.h"
#include "paths/path_solver.h"
#include "regex/content_model.h"
#include "regex/inclusion.h"
#include "util/limits.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace {

using namespace xic;

// Fails the test if `fn` takes absurdly long (a stuck loop would
// otherwise only die at the ctest timeout). 10s is orders of magnitude
// above what an expired deadline should cost, even under TSan.
template <typename Fn>
void ExpectFast(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

// -- Deadline / CancellationToken basics ------------------------------------

TEST(Deadline, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.Check("anything").ok());
}

TEST(Deadline, ExpiredReportsDeadlineExceeded) {
  Deadline d = Deadline::Expired();
  EXPECT_TRUE(d.expired());
  Status s = d.Check("unit test");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("unit test"), std::string::npos);
}

TEST(Deadline, GenerousBudgetDoesNotExpire) {
  Deadline d = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.Check("slack").ok());
}

TEST(Deadline, CancellationTokenTripsInfiniteDeadline) {
  CancellationToken token;
  Deadline d = Deadline::Infinite().WithToken(&token);
  EXPECT_FALSE(d.expired());
  token.Cancel();
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.Check("cancelled op").code(), StatusCode::kDeadlineExceeded);
}

// -- Parsers -----------------------------------------------------------------

TEST(DeadlinePlumbing, XmlParser) {
  ExpectFast([] {
    XmlParseOptions options;
    options.deadline = Deadline::Expired();
    Result<XmlDocument> r = ParseXml("<a><b/><b/></a>", options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  });
}

TEST(DeadlinePlumbing, DtdParser) {
  ExpectFast([] {
    DtdParseOptions options;
    options.deadline = Deadline::Expired();
    Result<DtdStructure> r =
        ParseDtd("<!ELEMENT r (a*)>\n<!ELEMENT a EMPTY>", "r", options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  });
}

// -- Validation --------------------------------------------------------------

TEST(DeadlinePlumbing, StructuralValidator) {
  ExpectFast([] {
    DtdStructure dtd;
    ASSERT_TRUE(dtd.AddElement("r", "(a*)").ok());
    ASSERT_TRUE(dtd.AddElement("a", "EMPTY").ok());
    ASSERT_TRUE(dtd.SetRoot("r").ok());
    StructuralValidator validator(dtd);
    ASSERT_TRUE(validator.status().ok());
    DataTree tree;
    VertexId root = tree.AddVertex("r");
    ASSERT_TRUE(tree.AddChildVertex(root, tree.AddVertex("a")).ok());
    ValidationReport report = validator.Validate(tree, Deadline::Expired());
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.status.code(), StatusCode::kDeadlineExceeded);
  });
}

TEST(DeadlinePlumbing, ConstraintChecker) {
  ExpectFast([] {
    DtdStructure dtd;
    ASSERT_TRUE(dtd.AddElement("r", "(a*)").ok());
    ASSERT_TRUE(dtd.AddElement("a", "EMPTY").ok());
    ASSERT_TRUE(dtd.AddAttribute("a", "k", AttrCardinality::kSingle).ok());
    ASSERT_TRUE(dtd.SetRoot("r").ok());
    ConstraintSet sigma;
    sigma.language = Language::kLu;
    sigma.constraints.push_back(Constraint::Key("a", {"k"}));
    ConstraintChecker checker(dtd, sigma);
    DataTree tree;
    VertexId root = tree.AddVertex("r");
    VertexId a = tree.AddVertex("a");
    ASSERT_TRUE(tree.AddChildVertex(root, a).ok());
    tree.SetAttribute(a, "k", std::string("1"));
    ConstraintReport report = checker.Check(tree, Deadline::Expired());
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.status.code(), StatusCode::kDeadlineExceeded);
  });
}

// -- Decision procedures -----------------------------------------------------

TEST(DeadlinePlumbing, CountermodelEnumeration) {
  ExpectFast([] {
    ConstraintSet sigma;
    sigma.language = Language::kLu;
    sigma.constraints.push_back(Constraint::Key("a", {"x"}));
    Constraint phi = Constraint::Key("a", {"y"});
    EnumerationBounds bounds;
    bounds.deadline = Deadline::Expired();
    EnumerationOutcome outcome =
        EnumerateCountermodelBounded(sigma, phi, bounds);
    EXPECT_FALSE(outcome.countermodel.has_value());
    EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(outcome.inspected, 0u);
  });
}

TEST(DeadlinePlumbing, RegexInclusion) {
  ExpectFast([] {
    RegexPtr a = ParseContentModel("(a, b*)").value();
    RegexPtr b = ParseContentModel("(a | b)*").value();
    InclusionBounds bounds;
    bounds.deadline = Deadline::Expired();
    Result<bool> r = RegexLanguageIncludedBounded(a, b, bounds);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  });
}

TEST(DeadlinePlumbing, Chase) {
  ExpectFast([] {
    ConstraintSet sigma;
    sigma.language = Language::kL;
    sigma.constraints.push_back(
        Constraint::ForeignKey("a", {"x"}, "b", {"k"}));
    Constraint phi = Constraint::Key("a", {"x"});
    GeneralOptions options;
    options.deadline = Deadline::Expired();
    GeneralResult result = ChaseImplication(sigma, phi, options);
    EXPECT_EQ(result.outcome, ImplicationOutcome::kUnknown);
    EXPECT_EQ(result.decided_by, "deadline");
    EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  });
}

TEST(DeadlinePlumbing, LpClosure) {
  ExpectFast([] {
    ConstraintSet sigma;
    sigma.language = Language::kL;
    sigma.constraints.push_back(
        Constraint::ForeignKey("a", {"x"}, "b", {"k"}));
    LpOptions options;
    options.deadline = Deadline::Expired();
    LpSolver solver(sigma, options);
    ASSERT_FALSE(solver.status().ok());
    EXPECT_EQ(solver.status().code(), StatusCode::kDeadlineExceeded);
  });
}

TEST(DeadlinePlumbing, PathSolver) {
  ExpectFast([] {
    DtdStructure dtd;
    ASSERT_TRUE(dtd.AddElement("r", "(a*)").ok());
    ASSERT_TRUE(dtd.AddElement("a", "EMPTY").ok());
    ASSERT_TRUE(
        dtd.AddAttribute("a", "k", AttrCardinality::kSingle).ok());
    ASSERT_TRUE(dtd.SetKind("a", "k", AttrKind::kId).ok());
    ASSERT_TRUE(dtd.SetRoot("r").ok());
    ConstraintSet sigma;
    sigma.language = Language::kLid;
    sigma.constraints.push_back(Constraint::Id("a", "k"));
    PathContext context(dtd, sigma);
    ASSERT_TRUE(context.status().ok());
    PathSolver solver(context, Deadline::Expired());

    PathFunctionalConstraint fc{"a", Path::Parse("k").value(),
                                Path::Parse("k").value()};
    Result<bool> f = solver.ImpliesFunctional(fc);
    ASSERT_FALSE(f.ok());
    EXPECT_EQ(f.status().code(), StatusCode::kDeadlineExceeded);

    PathInclusionConstraint ic{"a", Path::Parse("k").value(), "a",
                               Path::Parse("k").value()};
    Result<bool> i = solver.ImpliesInclusion(ic);
    ASSERT_FALSE(i.ok());
    EXPECT_EQ(i.status().code(), StatusCode::kDeadlineExceeded);

    PathInverseConstraint vc{"a", Path::Parse("k").value(), "a",
                             Path::Parse("k").value()};
    Result<bool> v = solver.ImpliesInverse(vc);
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::kDeadlineExceeded);
  });
}

// A near-zero (but not pre-expired) budget must also terminate promptly:
// the amortized polls fire within a bounded amount of work.
TEST(DeadlinePlumbing, TinyBudgetTerminatesLargeEnumeration) {
  ExpectFast([] {
    ConstraintSet sigma;
    sigma.language = Language::kLu;
    sigma.constraints.push_back(Constraint::Key("a", {"x"}));
    // No countermodel search bound tight enough to finish fast: force the
    // deadline to be what stops it.
    Constraint phi = Constraint::Key("b", {"y"});
    EnumerationBounds bounds;
    bounds.max_rows_per_type = 3;
    bounds.num_values = 3;
    bounds.max_instances = 0;  // unlimited -- only the deadline can stop it
    bounds.deadline = Deadline::AfterMillis(1);
    EnumerationOutcome outcome =
        EnumerateCountermodelBounded(sigma, phi, bounds);
    // Either it found the (easy) countermodel quickly or the deadline cut
    // it off -- both are fine; the test is that it returns at all, fast.
    if (!outcome.status.ok()) {
      EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
    }
  });
}

}  // namespace
