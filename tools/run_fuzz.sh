#!/usr/bin/env bash
# Deterministic differential-fuzzing smoke run: replays the committed
# corpus and then runs every oracle family over a fixed seed range.
#
#   tools/run_fuzz.sh [build-dir] [trials] [first-seed]
#     build-dir   default: build        (use build-asan for sanitizer runs)
#     trials      default: 500          trials per oracle family
#     first-seed  default: 1            seeds are first-seed..first-seed+trials-1
#
# Exit codes mirror xicfuzz: 0 all oracles clean and corpus replays
# clean, 1 a mismatch was found (reproducer printed), 2 usage/setup
# error. Identical inputs always produce identical outcomes, so this is
# safe as a CI gate.
set -euo pipefail

build_dir="${1:-build}"
trials="${2:-500}"
first_seed="${3:-1}"
root="$(cd "$(dirname "$0")/.." && pwd)"

fuzzer="${root}/${build_dir}/examples/xicfuzz"
if [ ! -x "${fuzzer}" ]; then
  fuzzer="${build_dir}/examples/xicfuzz"
fi
if [ ! -x "${fuzzer}" ]; then
  echo "error: xicfuzz not found under ${build_dir} (build the project first)" >&2
  exit 2
fi

status=0

echo "== corpus replay (tests/corpus/*.corpus)" >&2
corpus=("${root}"/tests/corpus/*.corpus)
if [ ! -e "${corpus[0]}" ]; then
  echo "error: no committed corpus entries under tests/corpus" >&2
  exit 2
fi
"${fuzzer}" "${corpus[@]}" || status=$?

for oracle in checker incremental implication roundtrip lint stream; do
  echo "== oracle ${oracle}: seeds ${first_seed}..$((first_seed + trials - 1))" >&2
  rc=0
  "${fuzzer}" --oracle "${oracle}" --seeds "${first_seed}" --trials "${trials}" || rc=$?
  if [ "${rc}" -gt "${status}" ]; then
    status="${rc}"
  fi
done

if [ "${status}" -eq 0 ]; then
  echo "run_fuzz: all oracles clean" >&2
else
  echo "run_fuzz: FAILED (exit ${status})" >&2
fi
exit "${status}"
