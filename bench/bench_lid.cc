// Experiment P3.1 (Proposition 3.1): implication of L_id constraints is
// decidable in linear time. Sweeps |Sigma| and reports the fitted
// complexity of closure construction + a fixed batch of queries.

#include <benchmark/benchmark.h>

#include "implication/lid_solver.h"
#include "model/dtd_structure.h"

namespace {

using namespace xic;

struct LidWorkload {
  DtdStructure dtd;
  ConstraintSet sigma;
};

// n element types in a reference chain: t_i.refs <=S t_{i-1}.oid, every
// type with an ID constraint; one third of the types also get an inverse
// partner to exercise every rule.
LidWorkload MakeLidWorkload(int n) {
  LidWorkload w;
  w.sigma.language = Language::kLid;
  (void)w.dtd.AddElement("db", "EMPTY");
  (void)w.dtd.SetRoot("db");
  for (int i = 0; i < n; ++i) {
    std::string t = "t" + std::to_string(i);
    (void)w.dtd.AddElement(t, "EMPTY");
    (void)w.dtd.AddAttribute(t, "oid", AttrCardinality::kSingle);
    (void)w.dtd.SetKind(t, "oid", AttrKind::kId);
    (void)w.dtd.AddAttribute(t, "refs", AttrCardinality::kSet);
    (void)w.dtd.SetKind(t, "refs", AttrKind::kIdref);
    w.sigma.constraints.push_back(Constraint::Id(t, "oid"));
    if (i > 0) {
      w.sigma.constraints.push_back(Constraint::SetForeignKey(
          t, "refs", "t" + std::to_string(i - 1), "oid"));
    }
    if (i % 3 == 2) {
      w.sigma.constraints.push_back(Constraint::InverseId(
          t, "refs", "t" + std::to_string(i - 1), "refs"));
    }
  }
  return w;
}

void BM_LidClosureConstruction(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  LidWorkload w = MakeLidWorkload(n);
  for (auto _ : state) {
    LidSolver solver(w.dtd, w.sigma);
    benchmark::DoNotOptimize(solver.closure_size());
  }
  state.SetComplexityN(static_cast<int64_t>(w.sigma.constraints.size()));
}
BENCHMARK(BM_LidClosureConstruction)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Complexity(benchmark::oN);

void BM_LidQueries(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  LidWorkload w = MakeLidWorkload(n);
  LidSolver solver(w.dtd, w.sigma);
  // A fixed batch of 64 queries spread over the chain.
  std::vector<Constraint> queries;
  for (int i = 0; i < 64; ++i) {
    std::string t = "t" + std::to_string((i * 997) % n);
    queries.push_back(Constraint::UnaryKey(t, "oid"));
    queries.push_back(Constraint::Id(t, "oid"));
  }
  for (auto _ : state) {
    int implied = 0;
    for (const Constraint& q : queries) {
      implied += solver.Implies(q) ? 1 : 0;
    }
    benchmark::DoNotOptimize(implied + 0);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LidQueries)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Complexity(benchmark::o1);

}  // namespace
