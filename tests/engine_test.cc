// The batch-validation engine: work-stealing pool correctness, and the
// determinism contract -- a batch validated on N threads must produce a
// byte-identical violation report to the sequential run.

#include <atomic>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "engine/batch_validator.h"
#include "engine/thread_pool.h"
#include "model/doc_generator.h"

namespace {

using namespace xic;

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, SingleThreadStillDrains) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  pool.ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
      pool.Submit(
          [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, TracksQueueHighWaterMark) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queue_high_water(), 0u);
  // Block the only worker so further submissions pile up in the deque.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.Submit([gate] { gate.wait(); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([] {});
  }
  release.set_value();
  pool.Wait();
  EXPECT_GE(pool.queue_high_water(), 10u);
  EXPECT_LE(pool.queue_high_water(), 11u);
}

TEST(ThreadPool, CurrentWorkerIsSetInsideTasksOnly) {
  EXPECT_EQ(ThreadPool::current_worker(), -1);
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  pool.ParallelFor(64, [&](size_t) {
    int worker = ThreadPool::current_worker();
    if (worker < 0 || worker >= 3) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(ThreadPool::current_worker(), -1);
}

// -- Batch validation corpus ------------------------------------------------

DtdStructure CatalogDtd() {
  DtdStructure dtd;
  EXPECT_TRUE(dtd.AddElement("catalog", "(book*)").ok());
  EXPECT_TRUE(dtd.AddElement("book", "(entry, author*, section*, ref)").ok());
  EXPECT_TRUE(dtd.AddElement("entry", "(title, publisher)").ok());
  EXPECT_TRUE(dtd.AddElement("title", "(#PCDATA)").ok());
  EXPECT_TRUE(dtd.AddElement("publisher", "(#PCDATA)").ok());
  EXPECT_TRUE(dtd.AddElement("author", "(#PCDATA)").ok());
  EXPECT_TRUE(dtd.AddElement("text", "(#PCDATA)").ok());
  EXPECT_TRUE(dtd.AddElement("section", "(title, (text|section)*)").ok());
  EXPECT_TRUE(dtd.AddElement("ref", "EMPTY").ok());
  EXPECT_TRUE(
      dtd.AddAttribute("entry", "isbn", AttrCardinality::kSingle).ok());
  EXPECT_TRUE(
      dtd.AddAttribute("section", "sid", AttrCardinality::kSingle).ok());
  EXPECT_TRUE(dtd.AddAttribute("ref", "to", AttrCardinality::kSet).ok());
  EXPECT_TRUE(dtd.SetRoot("catalog").ok());
  return dtd;
}

ConstraintSet CatalogSigma() {
  return ParseConstraintSet(
             "key entry.isbn; key section.sid; sfk ref.to -> entry.isbn",
             Language::kLu)
      .value();
}

BatchOptions Threads(size_t n) {
  BatchOptions options;
  options.num_threads = n;
  return options;
}

// One synthetic catalog document. The flags inject one defect each:
// duplicate entry key, dangling ref.to value, structural violation
// (stray child under <catalog>), or an XML syntax error.
std::string MakeDoc(int id, bool dup_key, bool dangling, bool structural,
                    bool parse_error) {
  std::string xml = "<catalog>";
  const int kBooks = 4;
  for (int b = 0; b < kBooks; ++b) {
    std::string isbn = "i" + std::to_string(id) + "-" +
                       std::to_string(dup_key && b == kBooks - 1 ? 0 : b);
    xml += "<book><entry isbn=\"" + isbn +
           "\"><title>T</title><publisher>P</publisher></entry>";
    xml += "<author>A</author>";
    xml += "<section sid=\"s" + std::to_string(id) + "-" + std::to_string(b) +
           "\"><title>S</title></section>";
    std::string to = "i" + std::to_string(id) + "-0";
    if (dangling && b == 0) to = "ghost";
    xml += "<ref to=\"" + to + "\"/></book>";
  }
  if (structural) xml += "<author>stray</author>";
  xml += "</catalog>";
  if (parse_error) xml += "<trailing/>";
  return xml;
}

std::vector<BatchDocument> MakeCorpus(int docs) {
  std::vector<BatchDocument> corpus;
  for (int i = 0; i < docs; ++i) {
    corpus.push_back({"doc" + std::to_string(i),
                      MakeDoc(i, /*dup_key=*/i % 7 == 3,
                              /*dangling=*/i % 5 == 2,
                              /*structural=*/i % 11 == 6,
                              /*parse_error=*/i % 13 == 9)});
  }
  return corpus;
}

TEST(BatchValidator, CountsDefectsInInputOrder) {
  DtdStructure dtd = CatalogDtd();
  ConstraintSet sigma = CatalogSigma();
  BatchValidator validator(dtd, sigma, Threads(1));
  std::vector<BatchDocument> corpus = MakeCorpus(60);
  BatchReport report = validator.Run(corpus);
  ASSERT_EQ(report.outcomes.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(report.outcomes[i].name, corpus[i].name);
    EXPECT_EQ(report.outcomes[i].parse.ok(), i % 13 != 9) << i;
    if (report.outcomes[i].parse.ok()) {
      EXPECT_EQ(report.outcomes[i].structure.ok(), i % 11 != 6) << i;
      EXPECT_EQ(report.outcomes[i].constraints.ok(),
                i % 7 != 3 && i % 5 != 2)
          << i;
    }
  }
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.stats.documents, 60u);
  EXPECT_GT(report.stats.parse_failures, 0u);
  EXPECT_GT(report.stats.structurally_invalid, 0u);
  EXPECT_GT(report.stats.constraint_violating, 0u);
  EXPECT_GT(report.stats.total_vertices, 0u);
}

TEST(BatchValidator, ParallelReportIsByteIdenticalToSequential) {
  DtdStructure dtd = CatalogDtd();
  ConstraintSet sigma = CatalogSigma();
  std::vector<BatchDocument> corpus = MakeCorpus(97);

  BatchValidator sequential(dtd, sigma, Threads(1));
  BatchReport base = sequential.Run(corpus);
  std::string base_text = base.ViolationsToString(sigma);
  EXPECT_FALSE(base_text.empty());

  for (size_t threads : {2u, 4u, 8u, 16u}) {
    BatchValidator parallel(dtd, sigma, Threads(threads));
    BatchReport report = parallel.Run(corpus);
    EXPECT_EQ(report.ViolationsToString(sigma), base_text)
        << threads << " threads";
    EXPECT_EQ(report.stats.parse_failures, base.stats.parse_failures);
    EXPECT_EQ(report.stats.structurally_invalid,
              base.stats.structurally_invalid);
    EXPECT_EQ(report.stats.constraint_violating,
              base.stats.constraint_violating);
    EXPECT_EQ(report.stats.total_violations, base.stats.total_violations);
    EXPECT_EQ(report.stats.total_vertices, base.stats.total_vertices);
  }
}

TEST(BatchValidator, JsonReportIsByteIdenticalAcrossThreadCounts) {
  DtdStructure dtd = CatalogDtd();
  ConstraintSet sigma = CatalogSigma();
  std::vector<BatchDocument> corpus = MakeCorpus(60);

  auto with_faults = [](size_t threads) {
    BatchOptions options = Threads(threads);
    // Deterministic faults: some documents exhaust their retries
    // (faulted + infrastructure failure), others recover on attempt 2
    // (retries recorded); decisions depend only on (seed, site, name,
    // attempt), never on scheduling.
    options.faults.rate = 0.25;
    options.faults.seed = 7;
    options.faults.transient_attempts = 2;
    options.max_attempts = 2;
    return options;
  };

  BatchValidator sequential(dtd, sigma, with_faults(1));
  std::string base = sequential.Run(corpus).ToJson(sigma);
  EXPECT_NE(base.find("\"schema\": \"xic-batch-report-v1\""),
            std::string::npos);
  // The fault mix must actually exercise both annotation paths.
  EXPECT_NE(base.find("\"faulted\": true"), std::string::npos);
  EXPECT_NE(base.find("\"retries\": 1"), std::string::npos);
  EXPECT_NE(base.find("\"verdict\": \"infrastructure_failure\""),
            std::string::npos);

  for (size_t threads : {2u, 4u, 8u, 16u}) {
    BatchValidator parallel(dtd, sigma, with_faults(threads));
    EXPECT_EQ(parallel.Run(corpus).ToJson(sigma), base)
        << threads << " threads";
  }
}

// Regression for the "ok" count underflow: ToString derived ok as
// `documents` minus the four failure buckets, which wraps size_t the
// moment the buckets overlap (one document counted in two buckets, as
// happens when stats are merged or tallied non-exclusively). The count
// must come from the dedicated ok_documents field instead.
TEST(BatchStats, ToStringDoesNotUnderflowOnOverlappingFailureBuckets) {
  BatchStats stats;
  stats.documents = 3;
  stats.ok_documents = 1;
  // Two documents, each both structurally invalid *and* constraint-
  // violating: bucket sum (4) exceeds documents - ok (2).
  stats.structurally_invalid = 2;
  stats.constraint_violating = 2;
  std::string text = stats.ToString();
  EXPECT_NE(text.find("3 document(s), 1 ok"), std::string::npos) << text;
  // The wrapped value starts "18446744..." on 64-bit; make sure no
  // astronomically large count leaked into the rendering.
  EXPECT_EQ(text.find("18446744"), std::string::npos) << text;
}

// End-to-end: documents that fail several ways at once (structural
// violation + duplicate key + dangling ref in the same document) must
// leave stats.ok_documents equal to the number of genuinely clean
// documents at every thread count.
TEST(BatchValidator, OkDocumentsCountedDirectlyWithOverlappingFailures) {
  DtdStructure dtd = CatalogDtd();
  ConstraintSet sigma = CatalogSigma();
  std::vector<BatchDocument> corpus;
  const int kClean = 5, kOverlapping = 4;
  for (int i = 0; i < kClean; ++i) {
    corpus.push_back(
        {"ok" + std::to_string(i), MakeDoc(i, false, false, false, false)});
  }
  for (int i = 0; i < kOverlapping; ++i) {
    corpus.push_back({"multi" + std::to_string(i),
                      MakeDoc(100 + i, /*dup_key=*/true, /*dangling=*/true,
                              /*structural=*/true, /*parse_error=*/false)});
  }
  for (size_t threads : {1u, 4u}) {
    BatchValidator validator(dtd, sigma, Threads(threads));
    BatchReport report = validator.Run(corpus);
    EXPECT_EQ(report.stats.ok_documents, static_cast<size_t>(kClean))
        << threads << " threads";
    EXPECT_EQ(report.stats.documents,
              static_cast<size_t>(kClean + kOverlapping));
    std::string text = report.stats.ToString();
    EXPECT_NE(text.find(std::to_string(kClean) + " ok"), std::string::npos)
        << text;
    EXPECT_EQ(text.find("18446744"), std::string::npos) << text;
  }
}

TEST(BatchValidator, JsonReportEscapesAndClassifies) {
  DtdStructure dtd = CatalogDtd();
  ConstraintSet sigma = CatalogSigma();
  std::vector<BatchDocument> corpus;
  corpus.push_back({"quote\"name", MakeDoc(0, false, true, false, false)});
  BatchValidator validator(dtd, sigma, Threads(1));
  std::string json = validator.Run(corpus).ToJson(sigma);
  EXPECT_NE(json.find("\"quote\\\"name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"verdict\": \"constraint_violations\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"constraint_violations\": ["), std::string::npos)
      << json;
}

TEST(BatchValidator, CleanCorpusIsAllOk) {
  DtdStructure dtd = CatalogDtd();
  ConstraintSet sigma = CatalogSigma();
  BatchValidator validator(dtd, sigma, Threads(4));
  std::vector<BatchDocument> corpus;
  for (int i = 0; i < 40; ++i) {
    corpus.push_back(
        {"ok" + std::to_string(i), MakeDoc(i, false, false, false, false)});
  }
  BatchReport report = validator.Run(corpus);
  EXPECT_TRUE(report.all_ok()) << report.ViolationsToString(sigma);
  EXPECT_EQ(report.stats.total_violations, 0u);
  EXPECT_EQ(report.ViolationsToString(sigma), "");
}

TEST(BatchValidator, RunTreesValidatesGeneratedDocuments) {
  DtdStructure dtd = CatalogDtd();
  ConstraintSet sigma;  // structure only
  sigma.language = Language::kLu;
  DocGenerator generator(dtd, {.seed = 7, .max_depth = 8});
  ASSERT_TRUE(generator.status().ok()) << generator.status();
  std::vector<DataTree> trees;
  for (int i = 0; i < 24; ++i) {
    Result<DataTree> tree = generator.Generate();
    ASSERT_TRUE(tree.ok()) << tree.status();
    trees.push_back(std::move(tree).value());
  }
  std::vector<const DataTree*> pointers;
  for (const DataTree& t : trees) pointers.push_back(&t);
  BatchValidator validator(dtd, sigma, Threads(4));
  BatchReport report = validator.RunTrees(pointers);
  EXPECT_EQ(report.stats.structurally_invalid, 0u)
      << report.ViolationsToString(sigma);
  EXPECT_TRUE(report.all_ok());
}

}  // namespace
