// Streaming-validation throughput: one synthetic catalog document of
// state.range(0) MiB pushed through the bounded-memory pipeline
// (engine/stream_validator.h), against the materialized
// parse -> structure -> constraints baseline on the same bytes.
//
// The interesting numbers are bytes_per_second (the streaming pipeline
// should be within a small constant of the DOM pipeline -- it does the
// same automaton steps and constraint joins, minus tree construction)
// and peak_rss_mb: the streaming case's high-water mark is dominated by
// the spill budget, not the document, which is the whole point. The
// spill case pins the budget at 1 MiB so every extent log round-trips
// through disk; its overhead over the in-memory case is the price of
// the external sort.
//
// Document sizes are capped at 64 MiB here so the full bench suite
// stays CI-sized; the 1 GiB / RSS-ceiling acceptance run lives in CI's
// stream-smoke step (xicheck --stream on a generated file), and the
// README records an RSS-vs-size table measured the same way.

#include <benchmark/benchmark.h>

#include <fstream>
#include <map>
#include <string>

#include "constraints/checker.h"
#include "constraints/constraint_parser.h"
#include "engine/stream_validator.h"
#include "model/structural_validator.h"
#include "xml/xml_parser.h"

namespace {

using namespace xic;

DtdStructure MakeDtd() {
  DtdStructure dtd;
  (void)dtd.AddElement("catalog", "(book*)");
  (void)dtd.AddElement("book", "(title, author*, ref)");
  (void)dtd.AddElement("title", "(#PCDATA)");
  (void)dtd.AddElement("author", "(#PCDATA)");
  (void)dtd.AddElement("ref", "EMPTY");
  (void)dtd.AddAttribute("book", "isbn", AttrCardinality::kSingle);
  (void)dtd.AddAttribute("ref", "to", AttrCardinality::kSet);
  (void)dtd.SetRoot("catalog");
  return dtd;
}

const ConstraintSet& Sigma() {
  static const ConstraintSet sigma =
      ParseConstraintSet("key book.isbn; sfk ref.to -> book.isbn",
                         Language::kLu)
          .value();
  return sigma;
}

// One catalog of roughly `mib` MiB: every key unique, every ref
// resolving to the previous book, so both extent logs fill with the
// document (the worst case for the spill budget) while the verdict
// stays "valid".
const std::string& Doc(int mib) {
  static std::map<int, std::string>* cache = new std::map<int, std::string>;
  auto it = cache->find(mib);
  if (it != cache->end()) return it->second;
  const size_t target = static_cast<size_t>(mib) << 20;
  std::string xml = "<catalog>";
  xml.reserve(target + 256);
  size_t n = 0;
  while (xml.size() < target) {
    std::string id = "i" + std::to_string(n);
    std::string prev = "i" + std::to_string(n == 0 ? 0 : n - 1);
    xml += "<book isbn=\"" + id + "\"><title>Spill sort benchmark row " +
           std::to_string(n) +
           "</title><author>First Author</author><author>Second "
           "Author</author><ref to=\"" +
           prev + "\"/></book>";
    ++n;
  }
  xml += "</catalog>";
  return (*cache)[mib] = std::move(xml);
}

/// VmHWM from /proc/self/status, MiB. Process-wide and monotonic: a
/// case's reading includes every earlier case's peak, so only the first
/// registered bench (the streaming one) reports a meaningful bound.
double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "VmHWM:") {
      double kb = 0;
      status >> kb;
      return kb / 1024.0;
    }
    status.ignore(1 << 10, '\n');
  }
  return 0;
}

void RunStream(benchmark::State& state, size_t spill_budget) {
  static const DtdStructure dtd = MakeDtd();
  const std::string& doc = Doc(static_cast<int>(state.range(0)));
  StreamOptions options;
  options.spill_budget_bytes = spill_budget;
  options.limits.max_document_bytes = 0;  // the bench sets the sizes
  StreamValidator validator(dtd, Sigma(), options);
  size_t spilled = 0;
  for (auto _ : state) {
    StringSource source(doc);
    StreamOutcome outcome = validator.Run(source);
    if (!outcome.ok()) state.SkipWithError("stream verdict not ok");
    spilled = static_cast<size_t>(outcome.stats.spilled_bytes);
    benchmark::DoNotOptimize(outcome.stats.vertices);
  }
  state.SetBytesProcessed(static_cast<int64_t>(doc.size()) *
                          static_cast<int64_t>(state.iterations()));
  state.counters["peak_rss_mb"] = PeakRssMb();
  state.counters["spilled_mb"] =
      static_cast<double>(spilled) / (1 << 20);
}

void BM_StreamValidate(benchmark::State& state) {
  RunStream(state, 64u << 20);  // in-memory extents at bench sizes
}

void BM_StreamValidateSpill(benchmark::State& state) {
  RunStream(state, 1u << 20);  // force the external-sort path
}

void BM_MaterializedValidate(benchmark::State& state) {
  static const DtdStructure dtd = MakeDtd();
  const std::string& doc = Doc(static_cast<int>(state.range(0)));
  StructuralValidator validator(dtd);
  ConstraintChecker checker(dtd, Sigma());
  XmlParseOptions parse;
  parse.dtd = &dtd;
  parse.limits.max_document_bytes = 0;
  for (auto _ : state) {
    Result<XmlDocument> parsed = ParseXml(doc, parse);
    if (!parsed.ok()) state.SkipWithError("parse failed");
    ValidationReport structure =
        validator.Validate(parsed.value().tree);
    ConstraintReport constraints = checker.Check(parsed.value().tree);
    if (!structure.ok() || !constraints.ok()) {
      state.SkipWithError("materialized verdict not ok");
    }
    benchmark::DoNotOptimize(constraints.violations.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(doc.size()) *
                          static_cast<int64_t>(state.iterations()));
  state.counters["peak_rss_mb"] = PeakRssMb();
}

}  // namespace

// Streaming first: VmHWM is monotonic, so only the first family's
// peak_rss_mb isolates the streaming pipeline's footprint.
BENCHMARK(BM_StreamValidate)->Arg(1)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StreamValidateSpill)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaterializedValidate)->Arg(1)->Arg(16)
    ->Unit(benchmark::kMillisecond);
