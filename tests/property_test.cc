// Property-based cross-validation:
//   * the Glushkov matcher against a naive recursive matcher,
//   * LuSolver (finite) implication against exhaustive small-model search,
//   * Theorem 3.4 (primary restriction: implication == finite implication)
//     on random primary-restricted sets,
//   * LpSolver against the chase on random primary multi-attribute sets,
//   * chase countermodels against the table-level semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "implication/countermodel.h"
#include "implication/l_general_solver.h"
#include "implication/lp_solver.h"
#include "implication/lu_solver.h"
#include "regex/content_model.h"
#include "regex/glushkov.h"

namespace xic {
namespace {

// ---------------------------------------------------------------------------
// Glushkov vs naive matcher.
// ---------------------------------------------------------------------------

// Naive language membership by structural recursion (exponential, fine
// for tiny words).
bool NaiveMatch(const Regex& re, const std::vector<std::string>& word,
                size_t begin, size_t end);

bool NaiveMatch(const Regex& re, const std::vector<std::string>& word,
                size_t begin, size_t end) {
  switch (re.kind()) {
    case RegexKind::kEpsilon:
      return begin == end;
    case RegexKind::kSymbol:
      return end == begin + 1 && word[begin] == re.symbol();
    case RegexKind::kUnion:
      return NaiveMatch(*re.left(), word, begin, end) ||
             NaiveMatch(*re.right(), word, begin, end);
    case RegexKind::kConcat:
      for (size_t mid = begin; mid <= end; ++mid) {
        if (NaiveMatch(*re.left(), word, begin, mid) &&
            NaiveMatch(*re.right(), word, mid, end)) {
          return true;
        }
      }
      return false;
    case RegexKind::kStar:
      if (begin == end) return true;
      for (size_t mid = begin + 1; mid <= end; ++mid) {
        if (NaiveMatch(*re.inner(), word, begin, mid) &&
            NaiveMatch(re, word, mid, end)) {
          return true;
        }
      }
      return false;
  }
  return false;
}

RegexPtr RandomRegex(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth <= 0 ? 1 : 4);
  switch (kind(rng)) {
    case 0:
      return Regex::Symbol(rng() % 2 == 0 ? "a" : "b");
    case 1:
      return Regex::Epsilon();
    case 2:
      return Regex::Union(RandomRegex(rng, depth - 1),
                          RandomRegex(rng, depth - 1));
    case 3:
      return Regex::Concat(RandomRegex(rng, depth - 1),
                           RandomRegex(rng, depth - 1));
    default:
      return Regex::Star(RandomRegex(rng, depth - 1));
  }
}

class GlushkovProperty : public ::testing::TestWithParam<int> {};

TEST_P(GlushkovProperty, AgreesWithNaiveMatcher) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    RegexPtr re = RandomRegex(rng, 3);
    GlushkovAutomaton nfa(re);
    // All words over {a, b} up to length 4.
    for (int len = 0; len <= 4; ++len) {
      for (int mask = 0; mask < (1 << len); ++mask) {
        std::vector<std::string> word;
        for (int i = 0; i < len; ++i) {
          word.push_back((mask >> i) & 1 ? "b" : "a");
        }
        EXPECT_EQ(nfa.Matches(word),
                  NaiveMatch(*re, word, 0, word.size()))
            << re->ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlushkovProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// LuSolver vs exhaustive search.
// ---------------------------------------------------------------------------

// Random well-formed L_u set over 2 types x {a, b} single attributes and
// one set-valued attribute r. Foreign-key targets get their keys added
// (the language's well-formedness condition).
ConstraintSet RandomLuSigma(std::mt19937& rng) {
  const std::vector<std::string> types = {"t0", "t1"};
  const std::vector<std::string> single = {"a", "b"};
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  auto type = [&] { return types[rng() % types.size()]; };
  auto attr = [&] { return single[rng() % single.size()]; };
  auto add = [&](const Constraint& c) {
    if (!sigma.Contains(c)) sigma.constraints.push_back(c);
  };
  int n = 1 + static_cast<int>(rng() % 4);
  for (int i = 0; i < n; ++i) {
    switch (rng() % 3) {
      case 0:
        add(Constraint::UnaryKey(type(), attr()));
        break;
      case 1: {
        Constraint fk = Constraint::UnaryForeignKey(type(), attr(), type(),
                                                    attr());
        add(Constraint::UnaryKey(fk.ref_element, fk.ref_attr()));
        add(fk);
        break;
      }
      case 2: {
        Constraint sfk =
            Constraint::SetForeignKey(type(), "r", type(), attr());
        add(Constraint::UnaryKey(sfk.ref_element, sfk.ref_attr()));
        add(sfk);
        break;
      }
    }
  }
  return sigma;
}

std::vector<Constraint> AllLuQueries() {
  const std::vector<std::string> types = {"t0", "t1"};
  const std::vector<std::string> single = {"a", "b"};
  std::vector<Constraint> out;
  for (const std::string& t : types) {
    for (const std::string& l : single) {
      out.push_back(Constraint::UnaryKey(t, l));
      for (const std::string& t2 : types) {
        for (const std::string& l2 : single) {
          out.push_back(Constraint::UnaryForeignKey(t, l, t2, l2));
          out.push_back(Constraint::SetForeignKey(t, "r", t2, l2));
        }
      }
    }
  }
  return out;
}

class LuSolverProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuSolverProperty, FiniteImplicationSoundAgainstEnumeration) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u);
  EnumerationBounds bounds;
  bounds.max_rows_per_type = 2;
  bounds.num_values = 2;
  int decided_not_implied_with_witness = 0;
  std::vector<Constraint> all_queries = AllLuQueries();
  for (int trial = 0; trial < 3; ++trial) {
    ConstraintSet sigma = RandomLuSigma(rng);
    LuSolver solver(sigma);
    ASSERT_TRUE(solver.status().ok()) << sigma.ToString();
    // Sample a subset of the query space per trial; the exhaustive sweep
    // is too slow to run for every (Sigma, phi) pair on every seed.
    std::vector<Constraint> queries = all_queries;
    std::shuffle(queries.begin(), queries.end(), rng);
    queries.resize(12);
    for (const Constraint& phi : queries) {
      std::optional<TableInstance> cm =
          EnumerateCountermodel(sigma, phi, bounds);
      if (solver.FinitelyImplies(phi)) {
        // Soundness: no finite countermodel may exist.
        EXPECT_FALSE(cm.has_value())
            << sigma.ToString() << "\nphi: " << phi.ToString()
            << "\ncountermodel:\n"
            << cm->ToString();
      } else if (cm.has_value()) {
        ++decided_not_implied_with_witness;
        // The witness genuinely separates Sigma from phi.
        EXPECT_TRUE(SatisfiesAll(*cm, sigma));
        EXPECT_FALSE(Satisfies(*cm, phi));
      }
      // Unrestricted implication entails finite implication.
      if (solver.Implies(phi)) {
        EXPECT_TRUE(solver.FinitelyImplies(phi)) << phi.ToString();
      }
    }
  }
  // The sweep must exercise real refutations, not just vacuous passes.
  EXPECT_GT(decided_not_implied_with_witness, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuSolverProperty,
                         ::testing::Values(1, 2, 3, 4));

// Theorem 3.4: under the primary-key restriction, implication and finite
// implication coincide.
class PrimaryLuProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrimaryLuProperty, ImplicationCoincidesUnderRestriction) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729u);
  const std::vector<std::string> types = {"t0", "t1", "t2"};
  for (int trial = 0; trial < 30; ++trial) {
    // One key attribute per type ("a"); foreign keys from either a or b
    // into keys only.
    ConstraintSet sigma;
    sigma.language = Language::kLu;
    for (const std::string& t : types) {
      sigma.constraints.push_back(Constraint::UnaryKey(t, "a"));
    }
    int n = static_cast<int>(rng() % 5);
    for (int i = 0; i < n; ++i) {
      std::string from = types[rng() % 3];
      std::string to = types[rng() % 3];
      std::string src = rng() % 2 == 0 ? "a" : "b";
      sigma.constraints.push_back(
          Constraint::UnaryForeignKey(from, src, to, "a"));
    }
    LuSolver solver(sigma);
    ASSERT_TRUE(solver.status().ok());
    // Sources "b" are never keys here, so the restriction holds.
    ASSERT_TRUE(solver.CheckPrimaryKeyRestriction().ok())
        << sigma.ToString();
    for (const std::string& t : types) {
      for (const std::string l : {"a", "b"}) {
        for (const std::string& t2 : types) {
          Constraint fk = Constraint::UnaryForeignKey(t, l, t2, "a");
          EXPECT_EQ(solver.Implies(fk), solver.FinitelyImplies(fk))
              << sigma.ToString() << "\nphi: " << fk.ToString();
        }
        Constraint key = Constraint::UnaryKey(t, l);
        EXPECT_EQ(solver.Implies(key), solver.FinitelyImplies(key));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimaryLuProperty,
                         ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// LpSolver vs the chase (Theorem 3.8: I_p is sound and complete, and the
// chase decides the same implication problem when it terminates).
// ---------------------------------------------------------------------------

class LpChaseProperty : public ::testing::TestWithParam<int> {};

TEST_P(LpChaseProperty, AgreesWithChase) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31337u);
  const std::vector<std::string> types = {"r0", "r1", "r2"};
  for (int trial = 0; trial < 12; ++trial) {
    // Primary keys of arity 2 with fixed attribute names per type.
    ConstraintSet sigma;
    sigma.language = Language::kL;
    for (const std::string& t : types) {
      sigma.constraints.push_back(Constraint::Key(t, {"k1", "k2"}));
    }
    int n = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < n; ++i) {
      std::string from = types[rng() % 3];
      std::string to = types[rng() % 3];
      bool swap = rng() % 2 == 0;
      // Source attributes x1, x2 (or the key attributes themselves).
      std::vector<std::string> src =
          rng() % 2 == 0 ? std::vector<std::string>{"x1", "x2"}
                         : std::vector<std::string>{"k1", "k2"};
      std::vector<std::string> dst = swap
                                         ? std::vector<std::string>{"k2", "k1"}
                                         : std::vector<std::string>{"k1", "k2"};
      sigma.constraints.push_back(
          Constraint::ForeignKey(from, src, to, dst));
    }
    LpSolver solver(sigma);
    ASSERT_TRUE(solver.status().ok()) << sigma.ToString();
    for (const std::string& from : types) {
      for (const std::string& to : types) {
        for (bool swap : {false, true}) {
          std::vector<std::string> dst =
              swap ? std::vector<std::string>{"k2", "k1"}
                   : std::vector<std::string>{"k1", "k2"};
          Constraint phi =
              Constraint::ForeignKey(from, {"x1", "x2"}, to, dst);
          Result<bool> by_axioms = solver.Implies(phi);
          ASSERT_TRUE(by_axioms.ok());
          // Tight bounds: non-terminating chases (fresh-value cascades)
          // must fail fast; terminating ones finish well within these.
          GeneralOptions options;
          options.max_chase_steps = 400;
          options.max_chase_rows = 200;
          GeneralResult by_chase = ChaseImplication(sigma, phi, options);
          if (by_chase.outcome == ImplicationOutcome::kUnknown) continue;
          EXPECT_EQ(by_axioms.value(),
                    by_chase.outcome == ImplicationOutcome::kImplied)
              << sigma.ToString() << "\nphi: " << phi.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpChaseProperty,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Chase countermodels are genuine.
// ---------------------------------------------------------------------------

class ChaseWitnessProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChaseWitnessProperty, CountermodelsSeparateSigmaFromPhi) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 65537u);
  const std::vector<std::string> types = {"r0", "r1"};
  const std::vector<std::string> attrs = {"a", "b"};
  for (int trial = 0; trial < 25; ++trial) {
    ConstraintSet sigma;
    sigma.language = Language::kL;
    int n = static_cast<int>(rng() % 3);
    for (int i = 0; i < n; ++i) {
      std::string t = types[rng() % 2];
      if (rng() % 2 == 0) {
        sigma.constraints.push_back(
            Constraint::Key(t, {attrs[rng() % 2]}));
      } else {
        std::string to = types[rng() % 2];
        std::string target = attrs[rng() % 2];
        sigma.constraints.push_back(Constraint::Key(to, {target}));
        sigma.constraints.push_back(
            Constraint::ForeignKey(t, {attrs[rng() % 2]}, to, {target}));
      }
    }
    Constraint phi =
        rng() % 2 == 0
            ? Constraint::Key(types[rng() % 2], {attrs[rng() % 2]})
            : Constraint::ForeignKey(types[rng() % 2], {attrs[rng() % 2]},
                                     types[rng() % 2], {attrs[rng() % 2]});
    GeneralOptions options;
    options.max_chase_steps = 400;
    options.max_chase_rows = 200;
    GeneralResult result = ChaseImplication(sigma, phi, options);
    if (result.outcome != ImplicationOutcome::kNotImplied) continue;
    ASSERT_TRUE(result.countermodel.has_value());
    EXPECT_TRUE(SatisfiesAll(*result.countermodel, sigma))
        << sigma.ToString() << "\n"
        << result.countermodel->ToString();
    EXPECT_FALSE(Satisfies(*result.countermodel, phi))
        << sigma.ToString() << "\nphi: " << phi.ToString() << "\n"
        << result.countermodel->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseWitnessProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace xic
