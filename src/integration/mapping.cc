#include "integration/mapping.h"

#include <functional>
#include <set>

namespace xic {

std::string MappingStepToString(const MappingStep& step) {
  if (const auto* re = std::get_if<RenameElement>(&step)) {
    return "rename-element " + re->from + " -> " + re->to;
  }
  if (const auto* rf = std::get_if<RenameField>(&step)) {
    return "rename-field " + rf->element + "." + rf->from + " -> " +
           rf->element + "." + rf->to;
  }
  if (const auto* de = std::get_if<DropElement>(&step)) {
    return "drop-element " + de->element;
  }
  const auto& df = std::get<DropField>(step);
  return "drop-field " + df.element + "." + df.field;
}

Mapping& Mapping::Rename(std::string from, std::string to) {
  steps_.push_back(RenameElement{std::move(from), std::move(to)});
  return *this;
}
Mapping& Mapping::RenameFieldOf(std::string element, std::string from,
                                std::string to) {
  steps_.push_back(
      RenameField{std::move(element), std::move(from), std::move(to)});
  return *this;
}
Mapping& Mapping::Drop(std::string element) {
  steps_.push_back(DropElement{std::move(element)});
  return *this;
}
Mapping& Mapping::DropFieldOf(std::string element, std::string field) {
  steps_.push_back(DropField{std::move(element), std::move(field)});
  return *this;
}

namespace {

// Rebuilds a regex with symbols transformed: rename via `rename` (nullptr
// = identity) or erased when `drop` matches (replaced by epsilon).
RegexPtr TransformRegex(const RegexPtr& re,
                        const std::function<std::string(const std::string&)>&
                            rename,
                        const std::string& drop) {
  switch (re->kind()) {
    case RegexKind::kEpsilon:
      return re;
    case RegexKind::kSymbol: {
      if (re->symbol() == drop) return Regex::Epsilon();
      std::string renamed = rename(re->symbol());
      if (renamed == re->symbol()) return re;
      return Regex::Symbol(std::move(renamed));
    }
    case RegexKind::kUnion:
      return Regex::Union(TransformRegex(re->left(), rename, drop),
                          TransformRegex(re->right(), rename, drop));
    case RegexKind::kConcat:
      return Regex::Concat(TransformRegex(re->left(), rename, drop),
                           TransformRegex(re->right(), rename, drop));
    case RegexKind::kStar:
      return Regex::Star(TransformRegex(re->inner(), rename, drop));
  }
  return re;
}

// One step applied to a structure.
Result<DtdStructure> StepDtd(const DtdStructure& dtd,
                             const MappingStep& step) {
  auto copy_attrs = [&](const DtdStructure& source, const std::string& from,
                        const std::string& to, DtdStructure* out,
                        const std::string& rename_attr_from = "",
                        const std::string& rename_attr_to = "",
                        const std::string& drop_attr = "") -> Status {
    for (const std::string& attr : source.Attributes(from)) {
      if (attr == drop_attr) continue;
      std::string name = attr == rename_attr_from ? rename_attr_to : attr;
      XIC_ASSIGN_OR_RETURN(AttrCardinality card,
                           source.Cardinality(from, attr));
      XIC_RETURN_IF_ERROR(out->AddAttribute(to, name, card));
      if (std::optional<AttrKind> kind = source.Kind(from, attr)) {
        XIC_RETURN_IF_ERROR(out->SetKind(to, name, *kind));
      }
    }
    return Status::OK();
  };

  DtdStructure out;
  if (const auto* re = std::get_if<RenameElement>(&step)) {
    if (!dtd.HasElement(re->from)) {
      return Status::InvalidArgument("rename of undeclared element " +
                                     re->from);
    }
    if (re->from != re->to && dtd.HasElement(re->to)) {
      return Status::InvalidArgument("rename target " + re->to +
                                     " already exists");
    }
    auto rename = [&](const std::string& s) {
      return s == re->from ? re->to : s;
    };
    for (const std::string& element : dtd.Elements()) {
      std::string name = rename(element);
      XIC_ASSIGN_OR_RETURN(RegexPtr model, dtd.ContentModel(element));
      XIC_RETURN_IF_ERROR(
          out.AddElement(name, TransformRegex(model, rename, "")));
      XIC_RETURN_IF_ERROR(copy_attrs(dtd, element, name, &out));
    }
    XIC_RETURN_IF_ERROR(out.SetRoot(rename(dtd.root())));
  } else if (const auto* rf = std::get_if<RenameField>(&step)) {
    if (!dtd.HasAttribute(rf->element, rf->from)) {
      return Status::NotSupported(
          "rename-field applies to attributes only (" + rf->element + "." +
          rf->from + " is not an attribute; rename the element type "
          "instead)");
    }
    if (dtd.HasAttribute(rf->element, rf->to)) {
      return Status::InvalidArgument("attribute " + rf->to +
                                     " already exists on " + rf->element);
    }
    for (const std::string& element : dtd.Elements()) {
      XIC_ASSIGN_OR_RETURN(RegexPtr model, dtd.ContentModel(element));
      XIC_RETURN_IF_ERROR(out.AddElement(element, model));
      if (element == rf->element) {
        XIC_RETURN_IF_ERROR(
            copy_attrs(dtd, element, element, &out, rf->from, rf->to));
      } else {
        XIC_RETURN_IF_ERROR(copy_attrs(dtd, element, element, &out));
      }
    }
    XIC_RETURN_IF_ERROR(out.SetRoot(dtd.root()));
  } else if (const auto* de = std::get_if<DropElement>(&step)) {
    if (de->element == dtd.root()) {
      return Status::InvalidArgument("cannot drop the root element");
    }
    auto identity = [](const std::string& s) { return s; };
    for (const std::string& element : dtd.Elements()) {
      if (element == de->element) continue;
      XIC_ASSIGN_OR_RETURN(RegexPtr model, dtd.ContentModel(element));
      XIC_RETURN_IF_ERROR(out.AddElement(
          element, TransformRegex(model, identity, de->element)));
      XIC_RETURN_IF_ERROR(copy_attrs(dtd, element, element, &out));
    }
    XIC_RETURN_IF_ERROR(out.SetRoot(dtd.root()));
  } else {
    const auto& df = std::get<DropField>(step);
    auto identity = [](const std::string& s) { return s; };
    bool is_attr = dtd.HasAttribute(df.element, df.field);
    for (const std::string& element : dtd.Elements()) {
      XIC_ASSIGN_OR_RETURN(RegexPtr model, dtd.ContentModel(element));
      if (element == df.element && !is_attr) {
        model = TransformRegex(model, identity, df.field);
      }
      XIC_RETURN_IF_ERROR(out.AddElement(element, model));
      if (element == df.element && is_attr) {
        XIC_RETURN_IF_ERROR(
            copy_attrs(dtd, element, element, &out, "", "", df.field));
      } else {
        XIC_RETURN_IF_ERROR(copy_attrs(dtd, element, element, &out));
      }
    }
    XIC_RETURN_IF_ERROR(out.SetRoot(dtd.root()));
  }
  XIC_RETURN_IF_ERROR(out.Validate());
  return out;
}

// One step applied to a document (builds a fresh tree).
Result<DataTree> StepDocument(const DataTree& tree,
                              const MappingStep& step) {
  DataTree out;
  const auto* rename_element = std::get_if<RenameElement>(&step);
  const auto* rename_field = std::get_if<RenameField>(&step);
  const auto* drop_element = std::get_if<DropElement>(&step);
  const auto* drop_field = std::get_if<DropField>(&step);

  if (tree.empty()) return out;
  if (drop_element != nullptr &&
      tree.label(tree.root()) == drop_element->element) {
    return Status::InvalidArgument("mapping drops the document root");
  }

  std::function<Status(VertexId, VertexId)> copy =
      [&](VertexId source, VertexId parent) -> Status {
    const std::string& label = tree.label(source);
    if (drop_element != nullptr && label == drop_element->element) {
      return Status::OK();  // subtree projected away
    }
    std::string new_label = label;
    if (rename_element != nullptr && label == rename_element->from) {
      new_label = rename_element->to;
    }
    VertexId v = out.AddVertex(new_label);
    if (parent != kInvalidVertex) {
      XIC_RETURN_IF_ERROR(out.AddChildVertex(parent, v));
    }
    for (const auto& [attr, value] : tree.attributes(source)) {
      std::string name = attr;
      if (rename_field != nullptr && label == rename_field->element &&
          attr == rename_field->from) {
        name = rename_field->to;
      }
      if (drop_field != nullptr && label == drop_field->element &&
          attr == drop_field->field) {
        continue;
      }
      out.SetAttribute(v, name, value);
    }
    for (const Child& child : tree.children(source)) {
      if (const VertexId* c = std::get_if<VertexId>(&child)) {
        if (drop_field != nullptr && label == drop_field->element &&
            tree.label(*c) == drop_field->field) {
          continue;  // sub-element field projected away
        }
        XIC_RETURN_IF_ERROR(copy(*c, v));
      } else {
        out.AddChildText(v, std::get<std::string>(child));
      }
    }
    return Status::OK();
  };
  XIC_RETURN_IF_ERROR(copy(tree.root(), kInvalidVertex));
  return out;
}

// Element types whose instances can occur inside `root_type` subtrees
// (including root_type itself): reachability over content models.
std::set<std::string> Descendants(const DtdStructure& dtd,
                                  const std::string& root_type) {
  std::set<std::string> reached{root_type};
  std::vector<std::string> frontier{root_type};
  while (!frontier.empty()) {
    std::string current = std::move(frontier.back());
    frontier.pop_back();
    Result<RegexPtr> model = dtd.ContentModel(current);
    if (!model.ok()) continue;
    for (const std::string& symbol : model.value()->Symbols()) {
      if (symbol != kStringSymbol && reached.insert(symbol).second) {
        frontier.push_back(symbol);
      }
    }
  }
  return reached;
}

// One step applied to a constraint set. `dtd` is the structure *before*
// the step (used for nesting analysis).
ConstraintSet StepConstraints(const ConstraintSet& sigma,
                              const MappingStep& step,
                              const DtdStructure& dtd) {
  ConstraintSet out;
  out.language = sigma.language;
  auto uses_field = [](const Constraint& c, const std::string& element,
                       const std::string& field) {
    auto in = [&](const std::string& e,
                  const std::vector<std::string>& attrs,
                  const std::string& key) {
      if (e != element) return false;
      for (const std::string& a : attrs) {
        if (a == field) return true;
      }
      return key == field;
    };
    return in(c.element, c.attrs, c.inv_key) ||
           in(c.ref_element, c.ref_attrs, c.inv_ref_key);
  };

  for (Constraint c : sigma.constraints) {
    if (const auto* re = std::get_if<RenameElement>(&step)) {
      if (c.element == re->from) c.element = re->to;
      if (c.ref_element == re->from) c.ref_element = re->to;
      // Sub-element fields carry the old element name too.
      for (std::string& a : c.attrs) {
        if (a == re->from) a = re->to;
      }
      for (std::string& a : c.ref_attrs) {
        if (a == re->from) a = re->to;
      }
    } else if (const auto* rf = std::get_if<RenameField>(&step)) {
      if (c.element == rf->element) {
        for (std::string& a : c.attrs) {
          if (a == rf->from) a = rf->to;
        }
        if (c.inv_key == rf->from) c.inv_key = rf->to;
      }
      if (c.ref_element == rf->element) {
        for (std::string& a : c.ref_attrs) {
          if (a == rf->from) a = rf->to;
        }
        if (c.inv_ref_key == rf->from) c.inv_ref_key = rf->to;
      }
    } else if (const auto* de = std::get_if<DropElement>(&step)) {
      // Dropping e removes whole subtrees, so every type nested under e
      // loses instances. Keys and ID constraints survive extent
      // shrinkage, but reference constraints whose *target* extent may
      // shrink are no longer sound and must be dropped; so are
      // constraints stated on the dropped type itself.
      std::set<std::string> gone = Descendants(dtd, de->element);
      // Constraints on the dropped type itself are no longer stateable.
      if (c.element == de->element || c.ref_element == de->element) {
        continue;
      }
      // Keys / ID constraints survive extent shrinkage on descendants;
      // references into a (possibly) shrunken target extent do not.
      bool is_reference = c.kind == ConstraintKind::kForeignKey ||
                          c.kind == ConstraintKind::kSetForeignKey ||
                          c.kind == ConstraintKind::kInverse;
      if (is_reference && gone.count(c.ref_element) > 0) continue;
      // Inverses constrain both extents symmetrically.
      if (c.kind == ConstraintKind::kInverse &&
          gone.count(c.element) > 0) {
        continue;
      }
      // A constraint over a dropped sub-element field is gone too.
      if (uses_field(c, c.element, de->element) ||
          uses_field(c, c.ref_element, de->element)) {
        continue;
      }
    } else {
      const auto& df = std::get<DropField>(step);
      if (uses_field(c, df.element, df.field)) continue;
    }
    out.constraints.push_back(std::move(c));
  }
  return out;
}

}  // namespace

Result<DtdStructure> Mapping::ApplyToDtd(const DtdStructure& dtd) const {
  DtdStructure current = dtd;
  for (const MappingStep& step : steps_) {
    XIC_ASSIGN_OR_RETURN(current, StepDtd(current, step));
  }
  return current;
}

Result<DataTree> Mapping::ApplyToDocument(const DataTree& tree,
                                          const DtdStructure& dtd) const {
  (void)dtd;
  DataTree current = tree;
  for (const MappingStep& step : steps_) {
    XIC_ASSIGN_OR_RETURN(current, StepDocument(current, step));
  }
  return current;
}

Result<ConstraintSet> Mapping::PropagateConstraints(
    const ConstraintSet& sigma, const DtdStructure& dtd) const {
  ConstraintSet current = sigma;
  DtdStructure current_dtd = dtd;
  for (const MappingStep& step : steps_) {
    current = StepConstraints(current, step, current_dtd);
    XIC_ASSIGN_OR_RETURN(current_dtd, StepDtd(current_dtd, step));
  }
  return current;
}

}  // namespace xic
