#include "relational/instance.h"

#include <algorithm>
#include <set>

namespace xic {

namespace {

// Projects `tuple` onto the named attributes of `rel`.
std::vector<std::string> Project(const RelationDef& rel,
                                 const RelationalTuple& tuple,
                                 const std::vector<std::string>& attrs) {
  std::vector<std::string> out;
  for (const std::string& a : attrs) {
    auto it = std::find(rel.attributes.begin(), rel.attributes.end(), a);
    out.push_back(tuple[static_cast<size_t>(
        std::distance(rel.attributes.begin(), it))]);
  }
  return out;
}

}  // namespace

Status RelationalInstance::Insert(const std::string& relation,
                                  RelationalTuple tuple) {
  const RelationDef* rel = schema_.Find(relation);
  if (rel == nullptr) {
    return Status::InvalidArgument("unknown relation: " + relation);
  }
  if (tuple.size() != rel->attributes.size()) {
    return Status::InvalidArgument(
        "arity mismatch inserting into " + relation + ": got " +
        std::to_string(tuple.size()) + ", want " +
        std::to_string(rel->attributes.size()));
  }
  rows_[relation].push_back(std::move(tuple));
  return Status::OK();
}

const std::vector<RelationalTuple>& RelationalInstance::Rows(
    const std::string& relation) const {
  static const std::vector<RelationalTuple> kEmpty;
  auto it = rows_.find(relation);
  return it == rows_.end() ? kEmpty : it->second;
}

std::vector<std::string> RelationalInstance::CheckIntegrity() const {
  std::vector<std::string> violations;
  for (const RelationDef& rel : schema_.relations()) {
    for (const std::vector<std::string>& key : rel.keys) {
      std::set<std::vector<std::string>> seen;
      for (const RelationalTuple& t : Rows(rel.name)) {
        if (!seen.insert(Project(rel, t, key)).second) {
          violations.push_back("duplicate key in " + rel.name);
        }
      }
    }
  }
  for (const RelationalForeignKey& fk : schema_.foreign_keys()) {
    const RelationDef* from = schema_.Find(fk.relation);
    const RelationDef* to = schema_.Find(fk.ref_relation);
    if (from == nullptr || to == nullptr) continue;
    std::set<std::vector<std::string>> targets;
    for (const RelationalTuple& t : Rows(fk.ref_relation)) {
      targets.insert(Project(*to, t, fk.ref_attrs));
    }
    for (const RelationalTuple& t : Rows(fk.relation)) {
      if (targets.count(Project(*from, t, fk.attrs)) == 0) {
        violations.push_back("dangling foreign key from " + fk.relation +
                             " to " + fk.ref_relation);
      }
    }
  }
  return violations;
}

}  // namespace xic
