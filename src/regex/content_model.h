// Content models for element type definitions (Definition 2.2).
//
// The paper defines element type definitions P(tau) = alpha with
//   alpha ::= S | e | epsilon | alpha + alpha | alpha , alpha | alpha*
// where S is the atomic (string) type and e an element name. This module
// provides the regular-expression AST, a parser for the DTD surface syntax
// ("(entry, author*, section*, ref)", "(#PCDATA|b)*", "EMPTY", ...), and
// static analyses used elsewhere:
//   * symbol occurrence bounds (min/max occurrences of a symbol over all
//     words of L(alpha)) -- the "unique sub-element" test of Section 3.4,
//   * the set of symbols occurring in alpha (path construction, Section 4).

#ifndef XIC_REGEX_CONTENT_MODEL_H_
#define XIC_REGEX_CONTENT_MODEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace xic {

/// The reserved symbol naming the atomic string type S. Element names never
/// collide with it because '#' is not an XML name character.
inline constexpr const char* kStringSymbol = "#PCDATA";

/// AST node kinds for content-model regular expressions.
enum class RegexKind {
  kEpsilon,  // the empty word
  kSymbol,   // an element name, or kStringSymbol for S
  kUnion,    // alpha + alpha  (DTD syntax: '|')
  kConcat,   // alpha , alpha
  kStar,     // alpha*
};

/// A regular expression over element names and S. Immutable after
/// construction; shared via shared_ptr so DTD structures are cheap to copy.
class Regex;
using RegexPtr = std::shared_ptr<const Regex>;

class Regex {
 public:
  static RegexPtr Epsilon();
  static RegexPtr Symbol(std::string name);
  static RegexPtr String();  // the S terminal
  static RegexPtr Union(RegexPtr left, RegexPtr right);
  static RegexPtr Concat(RegexPtr left, RegexPtr right);
  static RegexPtr Star(RegexPtr inner);
  /// alpha+ == alpha , alpha*
  static RegexPtr Plus(RegexPtr inner);
  /// alpha? == alpha + epsilon
  static RegexPtr Optional(RegexPtr inner);
  /// Concatenation of a whole sequence (Epsilon when empty).
  static RegexPtr Sequence(std::vector<RegexPtr> parts);
  /// Union of a whole sequence; parts must be non-empty.
  static RegexPtr Choice(std::vector<RegexPtr> parts);

  RegexKind kind() const { return kind_; }
  /// Only for kSymbol nodes.
  const std::string& symbol() const { return symbol_; }
  /// Only for kUnion / kConcat nodes.
  const RegexPtr& left() const { return left_; }
  const RegexPtr& right() const { return right_; }
  /// Only for kStar nodes.
  const RegexPtr& inner() const { return left_; }

  /// True if the empty word is in L(this).
  bool Nullable() const;

  /// All symbols (element names and possibly kStringSymbol) occurring in
  /// the expression.
  std::set<std::string> Symbols() const;

  /// Occurrence bounds of `symbol` over the words of L(this):
  /// (min, max) with max == kUnbounded for unbounded.
  static constexpr int64_t kUnbounded = -1;
  struct Bounds {
    int64_t min = 0;
    int64_t max = 0;  // kUnbounded means no finite bound
  };
  Bounds OccurrenceBounds(const std::string& symbol) const;

  /// True iff `symbol` occurs exactly once in every word of L(this) --
  /// the paper's "unique sub-element" condition (Section 3.4).
  bool IsUniqueSymbol(const std::string& symbol) const;

  /// DTD-style rendering, e.g. "(entry, author*, (text | section)*)".
  std::string ToString() const;

 private:
  Regex(RegexKind kind, std::string symbol, RegexPtr left, RegexPtr right)
      : kind_(kind),
        symbol_(std::move(symbol)),
        left_(std::move(left)),
        right_(std::move(right)) {}

  RegexKind kind_;
  std::string symbol_;
  RegexPtr left_;
  RegexPtr right_;
};

/// Parses the DTD content-model surface syntax. Accepts:
///   EMPTY | ANY-free subset | "(" ... ")" with ',' '|' '*' '+' '?'
///   #PCDATA for the atomic type S.
/// "ANY" is not supported (NotSupported) -- the paper's model has no ANY.
/// `max_depth` bounds parenthesis nesting (the parser recurses per
/// level); 0 disables the bound. Exceeding it returns kResourceExhausted
/// naming max_content_model_depth.
Result<RegexPtr> ParseContentModel(const std::string& text,
                                   size_t max_depth = 0);

}  // namespace xic

#endif  // XIC_REGEX_CONTENT_MODEL_H_
