// Constraint satisfaction: does a data tree G satisfy a constraint set
// Sigma (the G |= Sigma half of Definition 2.4)?
//
// Evaluation follows the paper's semantics exactly:
//   * keys are scoped to ext(tau) (per element type),
//   * L_id ID constraints are scoped to the *whole document* (a value must
//     not recur in any vertex's ID attribute, regardless of type),
//   * foreign keys / set-valued foreign keys are value inclusions into the
//     target extent's key values,
//   * inverse constraints assert the two symmetric membership implications.
//
// Key and foreign-key positions may be unique sub-elements (Section 3.4);
// the value of a sub-element field is the concatenated character data of
// the unique child with that label.
//
// The checker builds hash indexes per (type, attribute) so a full check is
// O(|G| + |Sigma|) modulo hashing; a naive quadratic mode exists for the
// B1 ablation benchmark. Both modes report the *same* violation set in the
// same order (the differential suite in tests/checker_diff_test.cc keeps
// them honest).
//
// Thread-safety: the constructor compiles everything derived from the DTD
// and Sigma (resolved inverse key attributes, whether a document-wide ID
// table is needed) into an immutable plan; Check() allocates all
// per-document scratch on the stack. One checker can therefore validate
// many documents concurrently from different threads, as the batch engine
// (engine/batch_validator.h) does. The referenced DtdStructure and
// ConstraintSet must outlive the checker and stay unmodified.

#ifndef XIC_CONSTRAINTS_CHECKER_H_
#define XIC_CONSTRAINTS_CHECKER_H_

#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "model/data_tree.h"
#include "model/dtd_structure.h"
#include "util/arena.h"
#include "util/limits.h"
#include "util/status.h"

namespace xic {

/// One constraint violation with the witnesses that falsify the formula.
struct ConstraintViolation {
  size_t constraint_index;  // into sigma.constraints
  std::string message;
  /// Falsifying vertices. For repairable violations the vertex to edit
  /// comes first (see constraints/repair.h).
  std::vector<VertexId> witnesses;
  /// The offending values: the dangling reference value(s), duplicated
  /// key tuple, or (for inverse violations) the key missing from the
  /// first witness's reference set.
  std::vector<std::string> values;
};

struct ConstraintReport {
  std::vector<ConstraintViolation> violations;
  /// Work performed: vertex-field evaluations (index probes plus extent
  /// scans). Fed to the observability layer as the constraint stage's
  /// step count; not part of ToString(), so rendered reports stay
  /// byte-stable.
  size_t steps = 0;
  /// Not-OK when the check was cut short (deadline); the violation list
  /// is then a prefix, not a verdict.
  Status status = Status::OK();
  bool ok() const { return status.ok() && violations.empty(); }
  std::string ToString(const ConstraintSet& sigma) const;
};

struct CheckOptions {
  /// Use the O(|ext(tau)| * |ext(tau')|) nested-loop evaluation instead of
  /// hash indexes (benchmark baseline only).
  bool naive = false;
  /// Stop after this many violations (0 = collect all).
  size_t max_violations = 0;
};

class ConstraintChecker {
 public:
  ConstraintChecker(const DtdStructure& dtd, const ConstraintSet& sigma,
                    CheckOptions options = {});

  /// Evaluates G |= Sigma; the report lists every violated constraint.
  /// The deadline is polled between constraints and inside the extent
  /// scans; on expiry the report carries kDeadlineExceeded.
  ///
  /// `arena` (optional) supplies the per-document scratch memory -- key
  /// indexes, tuple encodings -- so a caller that checks many documents
  /// (the batch engine) can hand in a per-worker arena and Reset() it
  /// between documents, keeping steady-state checking off the shared
  /// allocator. Null falls back to a call-local arena.
  ConstraintReport Check(const DataTree& tree) const {
    return Check(tree, Deadline::Infinite());
  }
  ConstraintReport Check(const DataTree& tree, const Deadline& deadline,
                         Arena* arena = nullptr) const;

  /// The value of field `name` (attribute or unique sub-element) on vertex
  /// `v`, as a set of atomic values. Missing fields yield an error.
  Result<AttrValue> FieldValue(const DataTree& tree, VertexId v,
                               const std::string& name) const;

 private:
  ConstraintReport CheckImpl(const DataTree& tree, const Deadline& deadline,
                             Arena* arena) const;

  // Immutable per-constraint state compiled once in the constructor.
  struct CompiledConstraint {
    // Resolved key attributes of an inverse constraint (the named L_u keys
    // or the DTD's ID attributes in L_id); empty when unresolvable.
    std::string inv_key;
    std::string inv_ref_key;
  };

  const DtdStructure& dtd_;
  const ConstraintSet& sigma_;
  CheckOptions options_;
  std::vector<CompiledConstraint> plan_;  // parallel to sigma_.constraints
  bool needs_global_ids_ = false;
};

}  // namespace xic

#endif  // XIC_CONSTRAINTS_CHECKER_H_
