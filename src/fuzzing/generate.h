// Structured input generators for the differential fuzzer.
//
// Everything an oracle consumes is generated from one Rng stream:
//
//   * DTD structures from a fixed family: a root "db" whose content is
//     (t0*, ..., tn*), record types with single/set-valued attributes,
//     optional ID attributes, optional (#PCDATA) content, and optional
//     unique sub-element fields "k" (Section 3.4) -- including the
//     shadowing trap where a type declares *both* an attribute and a
//     child element named "k";
//   * well-formed constraint sets in L / L_u / L_id (support constraints
//     -- foreign-key target keys, ID constraints -- are added first, as
//     the languages' well-formedness conditions require), plus optional
//     "near-valid" sets that skip the pruning to exercise error paths;
//   * documents: DocGenerator output mutated toward constraint
//     violations (duplicated key tuples, dangling references, unset
//     fields) while staying parseable;
//   * update sequences for the incremental checker, mixing accepted
//     mutations with ones that must be rejected (undeclared types,
//     out-of-range parents, wrong cardinality).

#ifndef XIC_FUZZING_GENERATE_H_
#define XIC_FUZZING_GENERATE_H_

#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "fuzzing/rng.h"
#include "model/data_tree.h"
#include "model/dtd_structure.h"
#include "util/status.h"

namespace xic::fuzz {

struct GenOptions {
  /// Record types besides the root (at least 1).
  size_t max_types = 3;
  /// Distinct atomic values ("v0".."v<n-1>") shared by all fields; a
  /// small pool forces collisions (key duplicates, satisfied references).
  size_t value_pool = 4;
  /// Constraints per generated set (before support constraints).
  size_t max_constraints = 4;
  /// Operations per generated update sequence.
  size_t max_updates = 14;
  /// Mutations applied to a generated document.
  size_t max_mutations = 6;
  /// Allow unique sub-element fields (and the attribute/child shadowing
  /// trap) in DTDs.
  bool sub_element_fields = true;
};

/// A DTD from the fuzzer's family. Always passes Validate().
DtdStructure GenerateDtd(Rng& rng, const GenOptions& opt);

/// A constraint set over `dtd` in `lang`. When `well_formed` is true the
/// result passes CheckWellFormed(sigma, dtd); otherwise shape-valid
/// constraints may lack their support constraints (for lint fuzzing).
ConstraintSet GenerateSigma(Rng& rng, const DtdStructure& dtd, Language lang,
                            const GenOptions& opt, bool well_formed = true);

/// A query constraint for implication oracles: shape-valid for `lang`
/// over `dtd`, biased toward sigma's vocabulary so a useful fraction of
/// queries is actually implied.
Constraint GeneratePhi(Rng& rng, const DtdStructure& dtd,
                       const ConstraintSet& sigma, Language lang);

/// A structurally valid document for `dtd`, then `opt.max_mutations`
/// constraint-relevant mutations (attribute rewrites from the value
/// pool). Fails only when the DTD needs more depth than the generator
/// budget allows.
Result<DataTree> GenerateDocument(Rng& rng, const DtdStructure& dtd,
                                  const GenOptions& opt);

/// One update against an IncrementalChecker, in replayable form.
struct UpdateOp {
  enum class Kind { kAddElement, kSetAttribute };
  Kind kind = Kind::kAddElement;
  // kAddElement: label + parent vertex (kInvalidVertex = add the root).
  std::string label;
  VertexId parent = kInvalidVertex;
  // kSetAttribute
  VertexId vertex = 0;
  std::string attr;
  std::vector<std::string> values;  // ordered for replayable rendering

  friend bool operator==(const UpdateOp&, const UpdateOp&) = default;
};

/// "add <label> <parent|->" or "set <vertex> <attr> [value...]".
std::string FormatUpdate(const UpdateOp& op);
Result<UpdateOp> ParseUpdate(const std::string& line);

/// A sequence starting with "add <root>", mixing accepted and
/// must-be-rejected operations, with enough value reuse to produce
/// delete-then-reinsert index churn.
std::vector<UpdateOp> GenerateUpdates(Rng& rng, const DtdStructure& dtd,
                                      const GenOptions& opt);

}  // namespace xic::fuzz

#endif  // XIC_FUZZING_GENERATE_H_
