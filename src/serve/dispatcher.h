// Request dispatch for xicd: maps one parsed Request to one Response.
//
// The dispatcher is the deterministic core of the daemon -- it owns the
// hot-plan cache, the session registry, the implication memo and the
// fault-injection seam, but touches no sockets. Given the same cache /
// session state and the same request (identified by its `id` header,
// which keys fault decisions), it produces byte-identical responses at
// any thread count; serve_test pins that, and the socket server is a
// thin framing/admission shell around it.
//
// Verbs:
//   ping          liveness probe; body "pong\n"
//   schema.put    body = schema document (DOCTYPE with DTD^C); compiles
//                 (single-flight) into the plan cache; response header
//                 schema=<16-hex content hash>
//   validate      body = XML document. With header schema=<hash> the
//                 cached plan is used and the body may omit a DOCTYPE;
//                 otherwise the body must be self-describing and its
//                 internal subset is hashed into the cache. Response
//                 body = xic-batch-report-v1 JSON for the one document.
//   validate.stream
//                 same request and response shape as validate, run
//                 through the bounded-memory streaming pipeline
//                 (engine/stream_validator.h): the document is tokenized
//                 rather than materialized and field tuples spill to
//                 disk past DispatcherOptions::stream_spill_budget_bytes.
//                 Verdict bytes are identical to validate; response
//                 carries mode=stream.
//   lint          schema resolution as validate (header or
//                 self-describing body); response body = xiclint JSON.
//   imply         body = "<sigma statements> \n ? \n <query statements>";
//                 headers lang=lid|lu|lu-finite|lp (lid needs schema=).
//                 Response body: one "implied true|false <stmt>" line
//                 per query. Memoized.
//   session.open / session.apply / session.close
//                 incremental sessions (serve/session_registry.h);
//                 headers session=<name>, schema=<hash>.
//   stats         cache/session/flight-recorder counters as JSON.
//   stats.prom    the same registry in Prometheus text format
//                 (obs/prom.h) for scraping; see tools/xictop.py.
//   debugz        flight-recorder dump (obs/flight_recorder.h): the last
//                 N requests with verb / trace-id / status / duration /
//                 shed+fault flags, oldest first.
//
// Common request headers: id=<key> (fault key + echo), trace-id=<token>
// (echoed; server-derived from the id when absent), deadline-ms=N,
// retries=N, max-bytes=N, max-depth=N. Transient (kUnavailable)
// dispatch failures are retried with the shared exponential-backoff
// schedule (util/backoff.h), mirroring the batch engine's per-document
// retry loop.
//
// Tracing: every response carries a trace-id header -- the client's
// token (sanitized) or ContentHash(id) when the client sent none, so it
// is a pure function of the request and responses stay byte-stable.
// Handle() installs the id as the thread's ambient obs::ScopedTraceId,
// which tags each span the request opens (serve.request, serve.admit,
// serve.compile, serve.run, and the engine spans underneath via
// RunOverrides::trace_id) with a trace_id attribute; one request's spans
// are therefore joinable end-to-end in a trace export.
//
// Byte-stability caveat: stats, stats.prom and debugz report live
// counters and timings and are exempt from the byte-identical-responses
// invariant (everything else is pinned by serve_test at 1/4/16 threads).

#ifndef XIC_SERVE_DISPATCHER_H_
#define XIC_SERVE_DISPATCHER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "obs/flight_recorder.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/session_registry.h"
#include "util/backoff.h"
#include "util/fault_injector.h"
#include "util/limits.h"
#include "util/sync.h"

namespace xic::serve {

struct DispatcherOptions {
  /// Per-request input bounds (parse stage); requests may lower but not
  /// raise them via max-bytes / max-depth headers.
  ResourceLimits limits;
  /// Default and ceiling for the per-request deadline-ms header
  /// (0 = none).
  uint64_t default_deadline_ms = 10000;
  uint64_t max_deadline_ms = 60000;
  /// Default and ceiling for attempts per request (retries header + 1).
  size_t default_attempts = 1;
  size_t max_attempts = 5;
  /// Requests with larger bodies are refused with `limit` before any
  /// parsing.
  size_t max_request_bytes = 16u << 20;
  /// Retry-After hint (milliseconds) attached to every load-shed /
  /// transient-failure response.
  uint64_t retry_after_ms = 100;
  /// Backoff schedule for transient dispatch retries; shared with the
  /// engine's per-document retry loop (BatchOptions::backoff).
  BackoffConfig backoff;
  /// Bounded memo of imply responses (entries, not bytes).
  size_t imply_memo_entries = 1024;
  /// Extent-log bytes per validate.stream request before the streaming
  /// pipeline spills field tuples to disk (0 = never spill).
  size_t stream_spill_budget_bytes = 64u << 20;
  /// Deterministic fault injection for the serve sites ("serve.admit",
  /// "serve.compile", "serve.dispatch", "serve.session"), keyed by
  /// request id.
  FaultConfig faults;
  PlanCache::Config cache;
  SessionRegistry::Config sessions;
  /// Flight recorder sizing (capacity 0 disables). Always on -- the
  /// recorder is protocol surface (debugz, SIGQUIT dump), not an XIC_OBS
  /// probe.
  obs::FlightRecorder::Config flight_recorder;
};

class Dispatcher {
 public:
  /// Phase breakdown of one request, accumulated along the handling path
  /// (retries sum). queue_us comes in via Request::queue_us; the rest is
  /// measured here. Feeds the latency histograms and the flight
  /// recorder's slow-request detail line.
  struct RequestTiming {
    uint64_t queue_us = 0;
    uint64_t compile_us = 0;
    uint64_t run_us = 0;
    /// An injected fault fired on this request (admission, dispatch or
    /// compile site).
    bool fault = false;
  };

  explicit Dispatcher(DispatcherOptions options = {});

  /// Handles one request: admission -> (retried) dispatch. Thread-safe.
  Response Handle(const Request& request);

  PlanCache& cache() { return cache_; }
  SessionRegistry& sessions() { return sessions_; }
  const DispatcherOptions& options() const { return options_; }

  /// The always-on flight recorder behind the debugz verb. The socket
  /// layer records its own sheds here (records the dispatcher never
  /// sees); xicd dumps it on SIGQUIT.
  obs::FlightRecorder& flight_recorder() { return recorder_; }

  /// Prometheus text rendering of the metrics registry plus the
  /// dispatcher's own cache / session / flight-recorder state (layered as
  /// synthesized counters and gauges, so stats.prom is complete even
  /// under -DXIC_OBS=OFF where the registry is empty). Backs the
  /// stats.prom verb and xicd's --prom-out exporter.
  std::string StatsProm();

  /// Load-shed response used by both the dispatcher (admission faults,
  /// full session registry) and the socket layer (queue overflow, byte
  /// budget): kUnavailable + retry-after-ms hint.
  Response ShedResponse(const std::string& reason) const;

  /// Compiles `schema_text` into the plan cache (single-flight) and
  /// returns the plan. Exposed for benches and tests that want to warm
  /// the cache without a request. `timing`, when given, accumulates the
  /// compile phase (cache hits add ~nothing) and the fault flag.
  Result<PlanPtr> CompileIntoCache(const std::string& schema_text,
                                   const std::string& fault_key,
                                   bool* cache_hit = nullptr,
                                   RequestTiming* timing = nullptr);

 private:
  Response HandleOnce(const Request& request, const std::string& id,
                      size_t attempt, RequestTiming* timing);
  Response DoValidate(const Request& request, const std::string& id,
                      size_t attempt, RequestTiming* timing, bool stream);
  Response DoLint(const Request& request, const std::string& id,
                  RequestTiming* timing);
  Response DoImply(const Request& request, const std::string& id,
                   RequestTiming* timing) XIC_EXCLUDES(memo_mutex_);
  Response DoSchemaPut(const Request& request, const std::string& id,
                       RequestTiming* timing);
  Response DoSession(const Request& request, const std::string& id,
                     RequestTiming* timing);
  Response DoStats(const Request& request);
  Response DoStatsProm(const Request& request);
  Response DoDebugz(const Request& request);

  /// Resolves the plan for a request: schema=<hash> header lookup, or
  /// compile-from-body internal subset. Sets *cache_hit accordingly.
  Result<PlanPtr> ResolvePlan(const Request& request, const std::string& id,
                              bool* cache_hit, RequestTiming* timing);

  /// Effective per-request knobs (header layered over options ceiling).
  RunOverrides OverridesFor(const Request& request) const;

  /// Per-verb + breakdown latency histograms for one finished request
  /// (no-op probe under -DXIC_OBS=OFF).
  static void ObserveLatency(const std::string& verb, uint64_t total_us,
                             const RequestTiming& timing);

  /// Appends the request's record to the flight recorder, promoting the
  /// phase breakdown into Record::detail for slow requests.
  void RecordFlight(const Request& request, const Response& response,
                    const std::string& trace_id, uint64_t total_us,
                    const RequestTiming& timing);

  DispatcherOptions options_;
  PlanCache cache_;
  SessionRegistry sessions_;
  FaultInjector injector_;
  obs::FlightRecorder recorder_;
  std::atomic<uint64_t> next_request_id_{1};

  // Bounded imply memo: LRU list of (key, response body) with an index.
  util::Mutex memo_mutex_;
  /// Front = MRU.
  std::list<std::pair<std::string, std::string>> memo_lru_
      XIC_GUARDED_BY(memo_mutex_);
  std::map<std::string,
           std::list<std::pair<std::string, std::string>>::iterator>
      memo_index_ XIC_GUARDED_BY(memo_mutex_);
};

}  // namespace xic::serve

#endif  // XIC_SERVE_DISPATCHER_H_
