// Constraint-driven optimization of path queries.
//
// Section 4 motivates path constraints with query optimization; this
// module implements three rewrite rules an optimizer can justify with
// the DTD^C and the Section 4 machinery:
//
//   1. *Dedup elimination* -- a query's results need no distinct-set if
//      the path uses only child steps (subtrees of distinct extent roots
//      are disjoint in a tree) -- and the plan records when key paths
//      (Prop 4.1) additionally make results unique per root.
//   2. *Scan-root promotion* (Prop 4.2 inclusions with equality) -- when
//      the query path starts with a chain of child steps tau.e1...ek
//      such that each step's element type occurs in no other content
//      model and tau is the document root, ext(tau.e1...ek) = ext(ek),
//      so the scan can start at ext(ek) with the shorter remaining path.
//   3. *Result typing* (Prop 4.2 with rho2 = epsilon) -- the plan
//      records the element type of the results, letting consumers prune
//      type checks (the paper's typed-reference improvement).
//
// ExecutePlan runs plans over a PathEvaluator with instrumentation, so
// tests and bench_optimizer can verify both equivalence and savings.

#ifndef XIC_PATHS_OPTIMIZER_H_
#define XIC_PATHS_OPTIMIZER_H_

#include <string>
#include <vector>

#include "paths/path_eval.h"
#include "paths/path_typing.h"

namespace xic {

/// "Collect ext(element . path)" with distinct results.
struct PathQuery {
  std::string element;
  Path path;
  std::string ToString() const;
};

struct PathPlan {
  std::string scan_element;  // extent to scan (possibly promoted)
  Path path;                 // remaining navigation
  bool needs_dedup = true;   // false when disjointness is proven
  bool unique_per_root = false;  // key-path: <= 1 result set collision
  std::string result_type;   // element type of results, or "#PCDATA"
  std::vector<std::string> rewrites;  // applied rules, human-readable
};

class PathOptimizer {
 public:
  explicit PathOptimizer(const PathContext& context) : context_(context) {}

  /// Produces an optimized plan; errors if the path is invalid.
  Result<PathPlan> Optimize(const PathQuery& query) const;

 private:
  // True iff e occurs in the content model of exactly one element type,
  // namely `parent` (so every e vertex sits under a parent vertex).
  bool OccursOnlyUnder(const std::string& element,
                       const std::string& parent) const;

  const PathContext& context_;
};

struct ExecutionStats {
  size_t roots_scanned = 0;
  size_t steps_walked = 0;  // total path steps navigated
  size_t results = 0;
};

/// Executes a plan over a prebuilt extent index; results are
/// deduplicated iff the plan requires it (callers can compare against
/// the naive always-dedup execution).
std::vector<PathNode> ExecutePlan(const PathEvaluator& evaluator,
                                  const ExtentIndex& extents,
                                  const PathPlan& plan,
                                  ExecutionStats* stats = nullptr);

/// The naive plan for a query (scan `element`, full path, dedup).
PathPlan NaivePlan(const PathContext& context, const PathQuery& query);

}  // namespace xic

#endif  // XIC_PATHS_OPTIMIZER_H_
