// Reference and kind diagnostics (XIC0xx): constraints naming element
// types or fields absent from the DTD, ATTLIST kinds (ID / IDREF vs
// CDATA) contradicting the constraint's role, residual shape errors, and
// duplicate constraint definitions.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/rule.h"
#include "constraints/well_formed.h"

namespace xic {

namespace {

constexpr char kCodeUnknownElement[] = "XIC001";
constexpr char kCodeUnknownField[] = "XIC002";
constexpr char kCodeKindMismatch[] = "XIC003";
constexpr char kCodeShape[] = "XIC004";
constexpr char kCodeDuplicate[] = "XIC005";

class ReferenceRule final : public LintRule {
 public:
  std::string name() const override { return "references"; }
  std::string description() const override {
    return "constraints must name declared element types and fields whose "
           "ATTLIST kind matches their role";
  }

  Status Run(const AnalysisInput& input,
             std::vector<Diagnostic>* out) const override {
    std::map<Constraint, int> first_seen;
    for (size_t i = 0; i < input.sigma.constraints.size(); ++i) {
      const Constraint& c = input.sigma.constraints[i];
      size_t before = out->size();
      CheckOne(input, static_cast<int>(i), c, out);
      // Shape fallback: anything the targeted checks above did not
      // explain (set-valued attributes in key positions, arity
      // mismatches, language violations, ...) surfaces via the
      // well-formedness checker with its message.
      if (out->size() == before) {
        if (Status shape =
                CheckConstraintShape(c, input.sigma.language, input.dtd);
            !shape.ok()) {
          Emit(input, static_cast<int>(i), kCodeShape, DiagSeverity::kError,
               shape.message(), out);
        }
      }
      auto [it, inserted] = first_seen.emplace(c, static_cast<int>(i));
      if (!inserted) {
        Emit(input, static_cast<int>(i), kCodeDuplicate,
             DiagSeverity::kWarning,
             "duplicate constraint \"" + c.ToString() +
                 "\" (first defined as constraint #" +
                 std::to_string(it->second) + ")",
             out);
      }
    }
    return Status::OK();
  }

 private:
  void Emit(const AnalysisInput& input, int index, const char* code,
            DiagSeverity severity, std::string message,
            std::vector<Diagnostic>* out) const {
    Diagnostic d;
    d.code = code;
    d.rule = name();
    d.severity = severity;
    d.message = std::move(message);
    d.location = input.LocationOf(index);
    out->push_back(std::move(d));
  }

  // Emits XIC001/002/003 findings for one constraint. Later checks are
  // skipped once an earlier layer (element, then field, then kind) has
  // failed, so a single root cause yields a single diagnostic.
  void CheckOne(const AnalysisInput& input, int index, const Constraint& c,
                std::vector<Diagnostic>* out) const {
    const DtdStructure& dtd = input.dtd;
    bool has_ref = c.kind == ConstraintKind::kForeignKey ||
                   c.kind == ConstraintKind::kSetForeignKey ||
                   c.kind == ConstraintKind::kInverse;

    bool elements_ok = true;
    for (const std::string& tau :
         has_ref ? std::vector<std::string>{c.element, c.ref_element}
                 : std::vector<std::string>{c.element}) {
      if (!dtd.HasElement(tau)) {
        Emit(input, index, kCodeUnknownElement, DiagSeverity::kError,
             "constraint \"" + c.ToString() +
                 "\" names undeclared element type \"" + tau + "\"",
             out);
        elements_ok = false;
      }
    }
    if (!elements_ok) return;

    bool fields_ok = true;
    auto check_fields = [&](const std::string& tau,
                            const std::vector<std::string>& fields) {
      for (const std::string& field : fields) {
        if (field.empty()) continue;
        if (ResolveField(dtd, tau, field) == FieldKind::kUnknown) {
          Emit(input, index, kCodeUnknownField, DiagSeverity::kError,
               "constraint \"" + c.ToString() + "\": \"" + tau +
                   "\" has no attribute or unique sub-element \"" + field +
                   "\"",
               out);
          fields_ok = false;
        }
      }
    };
    check_fields(c.element, c.attrs);
    if (has_ref) check_fields(c.ref_element, c.ref_attrs);
    if (c.kind == ConstraintKind::kInverse) {
      check_fields(c.element, {c.inv_key});
      check_fields(c.ref_element, {c.inv_ref_key});
    }
    if (!fields_ok) return;

    if (input.sigma.language == Language::kLid) {
      CheckLidKinds(input, index, c, out);
    } else {
      CheckAdvisoryKinds(input, index, c, out);
    }
  }

  // L_id semantics bind constraint roles to ATTLIST kinds: ID constraints
  // name the declared ID attribute, reference sources are IDREF, and
  // reference targets are the target type's ID attribute (errors).
  void CheckLidKinds(const AnalysisInput& input, int index,
                     const Constraint& c, std::vector<Diagnostic>* out) const {
    const DtdStructure& dtd = input.dtd;
    auto mismatch = [&](std::string message) {
      Emit(input, index, kCodeKindMismatch, DiagSeverity::kError,
           "constraint \"" + c.ToString() + "\": " + std::move(message), out);
    };
    switch (c.kind) {
      case ConstraintKind::kId: {
        std::optional<std::string> id = dtd.IdAttribute(c.element);
        if (!id.has_value()) {
          mismatch("element type \"" + c.element +
                   "\" declares no ID attribute");
        } else if (*id != c.attr()) {
          mismatch("\"" + c.attr() + "\" is not the ID attribute of \"" +
                   c.element + "\" (which is \"" + *id + "\")");
        }
        break;
      }
      case ConstraintKind::kForeignKey:
      case ConstraintKind::kSetForeignKey: {
        if (!c.IsUnary()) break;  // shape fallback reports this
        if (dtd.HasAttribute(c.element, c.attr()) &&
            dtd.Kind(c.element, c.attr()) != AttrKind::kIdref) {
          mismatch("source attribute \"" + c.element + "." + c.attr() +
                   "\" must be declared IDREF" +
                   (c.kind == ConstraintKind::kSetForeignKey ? "S" : "") +
                   " in L_id");
        }
        std::optional<std::string> id = dtd.IdAttribute(c.ref_element);
        if (!id.has_value()) {
          mismatch("target type \"" + c.ref_element +
                   "\" declares no ID attribute");
        } else if (!c.ref_attrs.empty() && c.ref_attr() != *id) {
          mismatch("target \"" + c.ref_element + "." + c.ref_attr() +
                   "\" is not the ID attribute of \"" + c.ref_element +
                   "\" (which is \"" + *id + "\")");
        }
        break;
      }
      case ConstraintKind::kInverse: {
        for (const auto& [tau, attr] :
             {std::pair{c.element, c.attr()},
              std::pair{c.ref_element, c.ref_attr()}}) {
          if (dtd.HasAttribute(tau, attr) &&
              dtd.Kind(tau, attr) != AttrKind::kIdref) {
            mismatch("inverse attribute \"" + tau + "." + attr +
                     "\" must be declared IDREFS in L_id");
          }
          if (!dtd.IdAttribute(tau).has_value()) {
            mismatch("element type \"" + tau +
                     "\" declares no ID attribute for the inverse to "
                     "dereference");
          }
        }
        break;
      }
      case ConstraintKind::kKey:
        break;
    }
  }

  // In L / L_u, kinds are advisory: the languages ignore ID/IDREF, but a
  // key over a declared reference attribute, or a foreign-key source over
  // a declared ID attribute, contradicts the L_id reading of the same
  // schema and is almost always a schema bug (warnings).
  void CheckAdvisoryKinds(const AnalysisInput& input, int index,
                          const Constraint& c,
                          std::vector<Diagnostic>* out) const {
    const DtdStructure& dtd = input.dtd;
    if (c.kind == ConstraintKind::kKey) {
      for (const std::string& attr : c.attrs) {
        if (dtd.Kind(c.element, attr) == AttrKind::kIdref) {
          Emit(input, index, kCodeKindMismatch, DiagSeverity::kWarning,
               "constraint \"" + c.ToString() + "\": key component \"" +
                   c.element + "." + attr +
                   "\" is declared IDREF; reference attributes are rarely "
                   "keys (contradicts the L_id reading)",
               out);
        }
      }
    }
    if (c.kind == ConstraintKind::kForeignKey ||
        c.kind == ConstraintKind::kSetForeignKey) {
      for (const std::string& attr : c.attrs) {
        if (dtd.Kind(c.element, attr) == AttrKind::kId) {
          Emit(input, index, kCodeKindMismatch, DiagSeverity::kWarning,
               "constraint \"" + c.ToString() +
                   "\": foreign-key source \"" + c.element + "." + attr +
                   "\" is declared ID; document-wide unique values cannot "
                   "also reference another type's key (contradicts the "
                   "L_id reading)",
               out);
        }
      }
    }
  }
};

}  // namespace

void RegisterReferenceRules(RuleRegistry* registry) {
  registry->Register(std::make_unique<ReferenceRule>());
}

}  // namespace xic
