// Parallel batch validation: the paper's single-document check
// (Definition 2.4 structure + G |= Sigma) turned into a throughput-
// oriented pipeline.
//
// A BatchValidator compiles the expensive shared state once -- the DTD's
// Glushkov automata (StructuralValidator) and the constraint checker's
// plan -- and then fans a corpus of documents out across a work-stealing
// thread pool (engine/thread_pool.h). Per document the pipeline runs
// parse -> structural validation -> constraint check, all against the
// shared read-only compiled state; every mutable intermediate lives on
// the worker's stack.
//
// Determinism: outcomes are stored at the document's input index, and the
// per-document pipeline is sequential, so the violation report is
// byte-identical no matter how many threads ran the batch (timings and
// throughput are reported separately in BatchStats).
//
// Fault isolation: a document that trips a resource limit, blows its
// per-document deadline, hits an injected fault, or throws is recorded as
// that document's outcome -- the batch always completes and reports every
// other document normally. Transient failures (kUnavailable, e.g. from
// the FaultInjector seam) are retried up to BatchOptions::max_attempts
// times; everything else fails fast. Injected fault decisions depend only
// on (seed, site, document name, attempt), so a faulted run's report is
// still byte-identical across thread counts.

#ifndef XIC_ENGINE_BATCH_VALIDATOR_H_
#define XIC_ENGINE_BATCH_VALIDATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "constraints/checker.h"
#include "engine/stream_validator.h"
#include "model/structural_validator.h"
#include "util/backoff.h"
#include "util/fault_injector.h"
#include "util/limits.h"
#include "util/status.h"
#include "xml/xml_parser.h"

namespace xic {

/// One unit of batch input: a named raw XML document.
struct BatchDocument {
  std::string name;  // file name or synthetic id, echoed in reports
  std::string text;  // complete XML document
};

/// Everything the pipeline produced for one document.
struct DocumentOutcome {
  std::string name;
  Status parse = Status::OK();  // a parse failure ends the pipeline early
  ValidationReport structure;
  ConstraintReport constraints;
  /// Pipeline-level failure: an injected fault that exhausted its
  /// retries (kUnavailable), or an exception caught escaping a stage
  /// (kInternal). Distinct from the document merely being invalid.
  Status error = Status::OK();
  /// Attempts taken; > 1 when transient failures were retried.
  size_t attempts = 1;
  size_t vertices = 0;
  double parse_seconds = 0;
  double structure_seconds = 0;
  double constraints_seconds = 0;
  /// Delay between batch fan-out and this document's pipeline starting
  /// (approximates time spent waiting in the pool's queues). Timing-only
  /// diagnostics: excluded from ToJson/ViolationsToString.
  double queue_wait_seconds = 0;
  /// Pool worker that ran the (final) attempt, -1 on the inline path.
  /// Scheduling-dependent; excluded from deterministic reports.
  int worker = -1;

  bool ok() const {
    return error.ok() && parse.ok() && structure.ok() && constraints.ok();
  }

  /// True when the pipeline could not run to a verdict: a fault/exception,
  /// a resource limit, or a deadline -- as opposed to the document being
  /// well-understood and invalid.
  bool infrastructure_failure() const;
};

/// Aggregate counters and timings for one batch run.
struct BatchStats {
  size_t documents = 0;
  /// Documents whose pipeline reached a fully-OK verdict. Counted
  /// directly from the outcomes, NOT derived by subtracting the failure
  /// counters from `documents`: a document can fail several ways at once
  /// (e.g. structurally invalid *and* constraint-violating after a
  /// deadline), so the subtraction underflows size_t.
  size_t ok_documents = 0;
  size_t parse_failures = 0;
  size_t structurally_invalid = 0;
  size_t constraint_violating = 0;
  /// Documents whose pipeline was cut short (limit, deadline, fault,
  /// exception) rather than reaching a verdict.
  size_t resource_failures = 0;
  /// Extra attempts beyond the first, summed over the batch.
  size_t retries = 0;
  size_t total_vertices = 0;
  size_t total_violations = 0;  // structural + constraint
  size_t threads = 1;
  double wall_seconds = 0;
  /// Per-stage times summed across workers (CPU-ish, exceeds wall time
  /// when the pool overlaps documents).
  double parse_seconds = 0;
  double structure_seconds = 0;
  double constraints_seconds = 0;

  /// Human-readable stats block (counts, wall time, docs/s, stage times).
  std::string ToString() const;
};

struct BatchReport {
  std::vector<DocumentOutcome> outcomes;  // in input order
  BatchStats stats;

  bool all_ok() const;

  /// True when any document hit a limit, deadline, fault or exception --
  /// the batch's verdict on those documents is "could not check", not
  /// "invalid" (xicbatch maps this to exit code 2).
  bool any_infrastructure_failure() const;

  /// Every failure in input order: pipeline errors, parse errors,
  /// structural violations, constraint violations. Byte-identical across
  /// thread counts (absent per-document deadlines, whose expiry is
  /// inherently timing-dependent).
  std::string ViolationsToString(const ConstraintSet& sigma) const;

  /// Machine-readable batch report: one entry per document, in input
  /// order, with verdict, attempts/retries, fault/timeout classification
  /// and violation details, plus the aggregate counters. Deliberately
  /// excludes every timing and the worker assignment so the bytes are
  /// identical across thread counts (the batch engine's determinism
  /// guarantee, pinned by engine_test).
  std::string ToJson(const ConstraintSet& sigma) const;
};

struct BatchOptions {
  /// Worker threads; 0 picks hardware_concurrency, 1 runs the batch
  /// inline on the calling thread (the sequential baseline).
  size_t num_threads = 0;
  ValidationOptions validation;
  CheckOptions check;
  /// Parse options for the corpus; the `dtd` field is overridden with the
  /// engine's DTD so set-valued attributes tokenize consistently.
  XmlParseOptions parse;
  /// Hard input/search limits, copied over `parse.limits` and
  /// `validation.limits` (single knob for the whole pipeline).
  ResourceLimits limits;
  /// Wall-clock budget per document attempt, 0 = none. Covers parse,
  /// structural validation and the constraint check.
  uint64_t document_timeout_ms = 0;
  /// Attempts per document; transient (kUnavailable) failures are
  /// retried until this many attempts were made.
  size_t max_attempts = 1;
  /// Run each document through the streaming pipeline (StreamValidator)
  /// instead of parse -> tree -> validate -> check. Verdicts are
  /// byte-identical; peak memory per worker is bounded by the spill
  /// budget instead of the largest document's tree.
  bool stream = false;
  /// Extent-log bytes per document before spilling to disk (0 = never
  /// spill). Only meaningful with `stream`.
  size_t stream_spill_budget_bytes = 64u << 20;
  /// Deterministic fault injection (off by default; see
  /// util/fault_injector.h).
  FaultConfig faults;
  /// Wait schedule between transient-failure retries. The default
  /// (initial_delay_ms == 0) retries immediately, preserving the
  /// pre-backoff behavior; services set an exponential schedule so
  /// retries do not stampede. Jitter is deterministic per (key, attempt),
  /// keeping faulted reports byte-identical across thread counts.
  BackoffConfig backoff;
};

/// Per-call overrides for a compiled validator. A long-lived service
/// (xicd) compiles one BatchValidator per schema and then threads each
/// request's deadline / retry budget / input limits through Run without
/// recompiling; absent fields fall back to the construction-time
/// BatchOptions.
struct RunOverrides {
  /// Per-document wall-clock budget for this call, milliseconds (0 =
  /// none). Overrides BatchOptions::document_timeout_ms.
  std::optional<uint64_t> document_timeout_ms;
  /// Attempts per document for this call (>= 1). Overrides
  /// BatchOptions::max_attempts.
  std::optional<size_t> max_attempts;
  /// Starting attempt index for fault-injection numbering. A caller that
  /// owns the retry loop itself (xicd's dispatcher) runs each call with
  /// max_attempts = 1 and threads its outer attempt index here, so
  /// injected transient faults clear at the configured
  /// transient_attempts without a second retry layer multiplying
  /// attempts underneath it.
  size_t attempt_base = 0;
  /// Input bounds for the parse stage of this call (document bytes,
  /// nesting depth, expansion budget). Compiled-plan search bounds
  /// (automaton states etc.) stay at their construction-time values.
  std::optional<ResourceLimits> limits;
  /// Cooperative cancellation: when cancelled, per-document deadlines
  /// report expiry at the next check. Must outlive the Run call.
  const CancellationToken* cancellation = nullptr;
  /// Request trace id to install on the worker thread for the duration of
  /// each document (obs::ScopedTraceId), so fanned-out engine spans stay
  /// joinable to the originating request even when the pool executes them
  /// on a different thread than the caller's. Empty = keep the worker's
  /// ambient id (i.e. the caller's id on the inline single-document path,
  /// none on the pool path).
  std::string trace_id;
};

class BatchValidator {
 public:
  /// Compiles the DTD's content models and the constraint plan once. The
  /// DTD and Sigma must outlive the validator and stay unmodified.
  BatchValidator(const DtdStructure& dtd, const ConstraintSet& sigma,
                 BatchOptions options = {});

  /// Parses and validates the whole corpus.
  BatchReport Run(const std::vector<BatchDocument>& corpus) const;

  /// Run with per-call overrides (request deadline, retry budget, input
  /// limits, cancellation) layered over the compiled options.
  BatchReport Run(const std::vector<BatchDocument>& corpus,
                  const RunOverrides& overrides) const;

  /// Validates already-parsed trees (no parse stage). The trees must stay
  /// alive and unmodified for the duration of the call.
  BatchReport RunTrees(const std::vector<const DataTree*>& corpus) const;

 private:
  DocumentOutcome CheckOne(const BatchDocument& doc,
                           const RunOverrides& overrides) const;
  DocumentOutcome CheckOneAttempt(const BatchDocument& doc, size_t attempt,
                                  const RunOverrides& overrides) const;
  Deadline DocumentDeadline(const RunOverrides& overrides) const;

  const DtdStructure& dtd_;
  const ConstraintSet& sigma_;
  BatchOptions options_;
  StructuralValidator validator_;  // shared read-only after construction
  ConstraintChecker checker_;      // shared read-only after construction
  /// Compiled streaming plan, present when options_.stream; like the two
  /// above it is read-only after construction (Run keeps per-document
  /// state on the worker's stack).
  std::optional<StreamValidator> streamer_;
  FaultInjector injector_;
};

}  // namespace xic

#endif  // XIC_ENGINE_BATCH_VALIDATOR_H_
