// Solver-backed constraint-set diagnostics (XIC2xx / XIC3xx):
//
//   targets          foreign keys whose target key is missing from Sigma
//   consistency      sets with no finite valid document: the DTD's extent
//                    cardinalities contradict a chain of tight foreign
//                    keys (the cardinality argument behind the paper's
//                    cycle rules C_k, run as a refutation)
//   redundancy       constraints implied by the rest of Sigma, reported
//                    with the derivation from the implication solvers
//   key-subsumption  keys weakened by a stronger (subset or ID) key
//   divergence       finite vs unrestricted implication disagreement
//                    (portability: Theorem 3.4's cycle rules firing)
//
// The solver rules deliberately stay silent on sets with reference or
// shape errors (the `references` rule reports those): running implication
// over a broken Sigma produces cascading noise, not insight.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/rule.h"
#include "constraints/well_formed.h"
#include "implication/lid_solver.h"
#include "implication/lp_solver.h"
#include "implication/lu_solver.h"
#include "util/strings.h"

namespace xic {

namespace {

constexpr char kCodeInconsistent[] = "XIC201";
constexpr char kCodeRedundant[] = "XIC202";
constexpr char kCodeSubsumedKey[] = "XIC203";
constexpr char kCodeMissingTarget[] = "XIC204";
constexpr char kCodeDivergence[] = "XIC301";

bool ShapeClean(const AnalysisInput& input) {
  for (const Constraint& c : input.sigma.constraints) {
    if (!CheckConstraintShape(c, input.sigma.language, input.dtd).ok()) {
      return false;
    }
  }
  return true;
}

bool HasKeyInSigma(const ConstraintSet& sigma, const std::string& tau,
                   const std::vector<std::string>& attrs) {
  std::vector<std::string> sorted = attrs;
  std::sort(sorted.begin(), sorted.end());
  for (const Constraint& k : sigma.constraints) {
    if (k.kind == ConstraintKind::kKey && k.element == tau &&
        k.attrs == sorted) {
      return true;
    }
  }
  return false;
}

bool HasIdInSigma(const ConstraintSet& sigma, const std::string& tau) {
  for (const Constraint& k : sigma.constraints) {
    if (k.kind == ConstraintKind::kId && k.element == tau) return true;
  }
  return false;
}

Diagnostic ConstraintDiag(const AnalysisInput& input, int index,
                          const char* code, const std::string& rule,
                          DiagSeverity severity, std::string message) {
  Diagnostic d;
  d.code = code;
  d.rule = rule;
  d.severity = severity;
  d.message = std::move(message);
  d.location = input.LocationOf(index);
  return d;
}

// ---------------------------------------------------------------------------
// targets (XIC204)

class TargetRule final : public LintRule {
 public:
  std::string name() const override { return "targets"; }
  std::string description() const override {
    return "every reference must target a key (or ID constraint) that is "
           "itself in Sigma";
  }

  Status Run(const AnalysisInput& input,
             std::vector<Diagnostic>* out) const override {
    const ConstraintSet& sigma = input.sigma;
    for (size_t i = 0; i < sigma.constraints.size(); ++i) {
      const Constraint& c = sigma.constraints[i];
      // Broken shapes are the `references` rule's findings.
      if (!CheckConstraintShape(c, sigma.language, input.dtd).ok()) continue;
      auto missing = [&](std::string what) {
        out->push_back(ConstraintDiag(
            input, static_cast<int>(i), kCodeMissingTarget, name(),
            DiagSeverity::kError,
            "constraint \"" + c.ToString() + "\": " + std::move(what)));
      };
      switch (c.kind) {
        case ConstraintKind::kForeignKey:
        case ConstraintKind::kSetForeignKey:
          if (sigma.language == Language::kLid) {
            if (!HasIdInSigma(sigma, c.ref_element)) {
              missing("Sigma lacks the target ID constraint \"" +
                      c.ref_element + ".id ->id " + c.ref_element + "\"");
            }
          } else if (!HasKeyInSigma(sigma, c.ref_element, c.ref_attrs)) {
            missing("Sigma lacks the target key \"" +
                    Constraint::Key(c.ref_element, c.ref_attrs).ToString() +
                    "\"");
          }
          break;
        case ConstraintKind::kInverse:
          if (sigma.language == Language::kLu) {
            if (!HasKeyInSigma(sigma, c.element, {c.inv_key}) ||
                !HasKeyInSigma(sigma, c.ref_element, {c.inv_ref_key})) {
              missing("Sigma lacks one of the named keys \"" + c.element +
                      "." + c.inv_key + "\" / \"" + c.ref_element + "." +
                      c.inv_ref_key + "\"");
            }
          } else if (!HasIdInSigma(sigma, c.element) ||
                     !HasIdInSigma(sigma, c.ref_element)) {
            missing("Sigma lacks the ID constraints of \"" + c.element +
                    "\" / \"" + c.ref_element + "\"");
          }
          break;
        default:
          break;
      }
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// consistency (XIC201)

constexpr uint64_t kUnboundedCount = std::numeric_limits<uint64_t>::max();
// Lower bounds saturate here (stays a valid lower bound); upper bounds
// that reach it are promoted to "unbounded" (stays a valid upper bound).
constexpr uint64_t kCountCap = uint64_t{1} << 40;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a == kUnboundedCount || b == kUnboundedCount) return kUnboundedCount;
  uint64_t sum = a + b;
  return sum >= kCountCap ? kCountCap : sum;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnboundedCount || b == kUnboundedCount) return kUnboundedCount;
  if (a > kCountCap / b) return kCountCap;
  return a * b;
}

/// Per element type, bounds on how many tau-labeled nodes a document
/// valid for the DTD can contain: forced <= |nodes(tau)| <= upper.
struct ExtentBounds {
  std::map<std::string, uint64_t> forced;
  std::map<std::string, uint64_t> upper;  // kUnboundedCount when unbounded
  bool valid = false;
};

ExtentBounds ComputeExtentBounds(const DtdStructure& dtd) {
  ExtentBounds out;
  const std::string& root = dtd.root();
  if (root.empty() || !dtd.HasElement(root)) return out;
  std::vector<std::string> elements = dtd.Elements();

  // Occurrence bounds of each child symbol per parent's content model.
  struct Occ {
    std::string child;
    uint64_t min;
    uint64_t max;  // kUnboundedCount for unbounded
  };
  std::map<std::string, std::vector<Occ>> occ;
  for (const std::string& tau : elements) {
    Result<RegexPtr> content = dtd.ContentModel(tau);
    if (!content.ok()) return out;
    std::set<std::string> symbols = content.value()->Symbols();
    symbols.erase(kStringSymbol);
    for (const std::string& child : symbols) {
      Regex::Bounds b = content.value()->OccurrenceBounds(child);
      occ[tau].push_back(
          {child, static_cast<uint64_t>(b.min),
           b.max == Regex::kUnbounded ? kUnboundedCount
                                      : static_cast<uint64_t>(b.max)});
    }
  }

  auto relax = [&](const std::map<std::string, uint64_t>& cur, bool use_max) {
    std::map<std::string, uint64_t> next;
    for (const std::string& tau : elements) next[tau] = tau == root ? 1 : 0;
    for (const auto& [parent, children] : occ) {
      uint64_t count = cur.at(parent);
      if (count == 0) continue;
      for (const Occ& o : children) {
        auto it = next.find(o.child);
        if (it == next.end()) continue;  // undeclared symbol
        it->second = SatAdd(
            it->second, SatMul(count, use_max ? o.max : o.min));
      }
    }
    return next;
  };

  std::map<std::string, uint64_t> forced;
  for (const std::string& tau : elements) forced[tau] = tau == root ? 1 : 0;
  bool converged = false;
  for (size_t round = 0; round <= elements.size() + 1; ++round) {
    std::map<std::string, uint64_t> next = relax(forced, /*use_max=*/false);
    if (next == forced) {
      converged = true;
      break;
    }
    forced = std::move(next);
  }
  // Non-convergence means a cycle of forced occurrences: the grammar is
  // non-productive, which the productivity rule reports; nothing sound to
  // say about cardinalities here.
  if (!converged) return out;

  std::map<std::string, uint64_t> upper;
  for (const std::string& tau : elements) upper[tau] = tau == root ? 1 : 0;
  for (size_t round = 0; round <= elements.size(); ++round) {
    upper = relax(upper, /*use_max=*/true);
  }
  // Anything still growing sits on (or below) a cycle: promote to
  // unbounded and re-relax until stable.
  for (size_t round = 0; round <= elements.size() + 1; ++round) {
    std::map<std::string, uint64_t> next = relax(upper, /*use_max=*/true);
    bool changed = false;
    for (auto& [tau, value] : next) {
      if (value != upper.at(tau)) {
        value = kUnboundedCount;
        changed = true;
      }
    }
    upper = std::move(next);
    if (!changed) break;
  }
  for (auto& [tau, value] : upper) {
    if (value >= kCountCap && value != kUnboundedCount) {
      value = kUnboundedCount;
    }
  }

  out.forced = std::move(forced);
  out.upper = std::move(upper);
  out.valid = true;
  return out;
}

/// A foreign key tau[X] <= tau'[Y] whose source attributes form a key of
/// tau forces |ext(tau)| <= |ext(tau')| in every document (both sides
/// project injectively onto the shared value tuples).
struct TightEdge {
  std::string from;
  std::string to;
  int constraint_index;
};

std::vector<TightEdge> CollectTightEdges(const AnalysisInput& input) {
  const ConstraintSet& sigma = input.sigma;
  std::optional<LuSolver> lu;
  std::optional<LidSolver> lid;
  bool all_unary = true;
  for (const Constraint& c : sigma.constraints) {
    if (!c.attrs.empty() && !c.IsUnary()) all_unary = false;
  }
  auto source_is_key = [&](const Constraint& c) {
    if (sigma.language == Language::kLid) {
      if (!lid.has_value()) lid.emplace(input.dtd, sigma);
      return lid->status().ok() &&
             lid->Implies(Constraint::UnaryKey(c.element, c.attr()));
    }
    if (sigma.language == Language::kLu || all_unary) {
      if (!lu.has_value()) lu.emplace(sigma);
      return lu->status().ok() &&
             lu->Implies(Constraint::Key(c.element, c.attrs));
    }
    return HasKeyInSigma(sigma, c.element, c.attrs);
  };

  std::vector<TightEdge> edges;
  for (size_t i = 0; i < sigma.constraints.size(); ++i) {
    const Constraint& c = sigma.constraints[i];
    if (c.kind != ConstraintKind::kForeignKey) continue;
    if (c.element == c.ref_element) continue;
    if (source_is_key(c)) {
      edges.push_back({c.element, c.ref_element, static_cast<int>(i)});
    }
  }
  return edges;
}

class ConsistencyRule final : public LintRule {
 public:
  std::string name() const override { return "consistency"; }
  std::string description() const override {
    return "the DTD's extent cardinalities must not contradict tight "
           "foreign-key chains (finite satisfiability)";
  }

  Status Run(const AnalysisInput& input,
             std::vector<Diagnostic>* out) const override {
    if (!CheckWellFormed(input.sigma, input.dtd).ok()) return Status::OK();
    ExtentBounds bounds = ComputeExtentBounds(input.dtd);
    if (!bounds.valid) return Status::OK();
    std::vector<TightEdge> edges = CollectTightEdges(input);
    if (edges.empty()) return Status::OK();

    // eff[tau] = min over tight-reachable tau' of upper[tau'].
    std::map<std::string, uint64_t> eff = bounds.upper;
    std::map<std::string, std::pair<int, std::string>> succ;
    for (size_t round = 0; round < eff.size(); ++round) {
      bool changed = false;
      for (const TightEdge& e : edges) {
        auto from = eff.find(e.from);
        auto to = eff.find(e.to);
        if (from == eff.end() || to == eff.end()) continue;
        if (to->second < from->second) {
          from->second = to->second;
          succ[e.from] = {e.constraint_index, e.to};
          changed = true;
        }
      }
      if (!changed) break;
    }

    for (const auto& [tau, forced] : bounds.forced) {
      auto it = eff.find(tau);
      if (it == eff.end() || forced <= it->second) continue;
      // Reconstruct the tight chain that caps ext(tau).
      std::vector<std::string> notes;
      int anchor = -1;
      std::string cur = tau;
      while (true) {
        auto s = succ.find(cur);
        if (s == succ.end()) break;
        const Constraint& fk =
            input.sigma.constraints[static_cast<size_t>(s->second.first)];
        if (anchor < 0) anchor = s->second.first;
        notes.push_back("ext(" + cur + ") <= ext(" + s->second.second +
                        ")  [tight foreign key \"" + fk.ToString() +
                        "\", constraint #" +
                        std::to_string(s->second.first) + ": " + fk.element +
                        "[" + Join(fk.attrs, ",") + "] is a key of " +
                        fk.element + "]");
        cur = s->second.second;
      }
      notes.push_back(
          "the DTD forces at least " + std::to_string(forced) + " \"" + tau +
          "\" element(s) but allows at most " +
          std::to_string(bounds.upper.at(cur)) + " \"" + cur +
          "\" element(s)");
      Diagnostic d = ConstraintDiag(
          input, anchor, kCodeInconsistent, name(), DiagSeverity::kError,
          "constraint set is unsatisfiable over documents valid for the "
          "DTD: a tight foreign-key chain caps ext(" + tau + ") at " +
              std::to_string(it->second) + ", but the DTD forces " +
              std::to_string(forced) + " \"" + tau + "\" element(s)");
      d.notes = std::move(notes);
      out->push_back(std::move(d));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// redundancy (XIC202)

std::vector<std::string> DerivationNotes(const std::string& explain) {
  std::vector<std::string> notes;
  for (const std::string& line : Split(explain, '\n')) {
    if (!line.empty()) notes.push_back(line);
  }
  return notes;
}

class RedundancyRule final : public LintRule {
 public:
  std::string name() const override { return "redundancy"; }
  std::string description() const override {
    return "constraints implied by the rest of Sigma, with the derivation";
  }

  Status Run(const AnalysisInput& input,
             std::vector<Diagnostic>* out) const override {
    const ConstraintSet& sigma = input.sigma;
    if (!CheckWellFormed(sigma, input.dtd).ok()) return Status::OK();
    for (size_t i = 0; i < sigma.constraints.size(); ++i) {
      XIC_RETURN_IF_ERROR(input.deadline.Check("redundancy lint"));
      const Constraint& phi = sigma.constraints[i];
      ConstraintSet rest = sigma;
      rest.constraints.erase(rest.constraints.begin() +
                             static_cast<std::ptrdiff_t>(i));
      // Removing a constraint the rest of Sigma structurally depends on
      // (e.g. the target key of a foreign key) is not a redundancy
      // question: the remainder is no longer well-formed.
      if (!CheckWellFormed(rest, input.dtd).ok()) continue;
      std::optional<std::pair<bool, std::string>> verdict =
          Implied(input, rest, phi);
      if (!verdict.has_value()) continue;
      if (!verdict->first) continue;
      Diagnostic d = ConstraintDiag(
          input, static_cast<int>(i), kCodeRedundant, name(),
          DiagSeverity::kWarning,
          "constraint \"" + phi.ToString() +
              "\" is redundant: implied by the rest of Sigma");
      d.notes = DerivationNotes(verdict->second);
      out->push_back(std::move(d));
    }
    return Status::OK();
  }

 private:
  // (implied?, derivation) for rest |= phi, or nullopt when no solver
  // decides the fragment.
  std::optional<std::pair<bool, std::string>> Implied(
      const AnalysisInput& input, const ConstraintSet& rest,
      const Constraint& phi) const {
    if (rest.language == Language::kLid) {
      LidSolver solver(input.dtd, rest);
      if (!solver.status().ok()) return std::nullopt;
      if (!solver.Implies(phi)) return std::make_pair(false, std::string());
      return std::make_pair(true, solver.Explain(phi).value_or(""));
    }
    bool all_unary = true;
    for (const Constraint& c : rest.constraints) {
      if (!c.attrs.empty() && !c.IsUnary()) all_unary = false;
    }
    if (rest.language == Language::kLu || (all_unary && phi.IsUnary())) {
      LuSolver solver(rest);
      if (!solver.status().ok()) return std::nullopt;
      if (!solver.Implies(phi)) return std::make_pair(false, std::string());
      return std::make_pair(true, solver.Explain(phi).value_or(""));
    }
    LpOptions options;
    options.max_closure = input.limits.max_solver_steps;
    options.deadline = input.deadline;
    LpSolver solver(rest, options);
    if (!solver.status().ok()) return std::nullopt;  // outside I_p
    Result<bool> implied = solver.Implies(phi);
    if (!implied.ok() || !implied.value()) {
      return std::make_pair(false, std::string());
    }
    return std::make_pair(true, solver.Explain(phi).value_or(""));
  }
};

// ---------------------------------------------------------------------------
// key-subsumption (XIC203)

class KeySubsumptionRule final : public LintRule {
 public:
  std::string name() const override { return "key-subsumption"; }
  std::string description() const override {
    return "keys weakened by a stronger key over fewer attributes (or by "
           "an ID constraint)";
  }

  Status Run(const AnalysisInput& input,
             std::vector<Diagnostic>* out) const override {
    const ConstraintSet& sigma = input.sigma;
    for (size_t i = 0; i < sigma.constraints.size(); ++i) {
      const Constraint& weak = sigma.constraints[i];
      if (weak.kind != ConstraintKind::kKey) continue;
      for (size_t j = 0; j < sigma.constraints.size(); ++j) {
        if (i == j) continue;
        const Constraint& strong = sigma.constraints[j];
        if (strong.element != weak.element) continue;
        if (strong.kind == ConstraintKind::kKey &&
            strong.attrs.size() < weak.attrs.size() &&
            std::includes(weak.attrs.begin(), weak.attrs.end(),
                          strong.attrs.begin(), strong.attrs.end())) {
          out->push_back(ConstraintDiag(
              input, static_cast<int>(i), kCodeSubsumedKey, name(),
              DiagSeverity::kWarning,
              "key \"" + weak.ToString() +
                  "\" is weakened by the stronger key \"" +
                  strong.ToString() + "\" (constraint #" +
                  std::to_string(j) +
                  "): every superset of a key is a key"));
          break;
        }
        if (strong.kind == ConstraintKind::kId && weak.IsUnary() &&
            strong.attr() == weak.attr()) {
          out->push_back(ConstraintDiag(
              input, static_cast<int>(i), kCodeSubsumedKey, name(),
              DiagSeverity::kWarning,
              "key \"" + weak.ToString() +
                  "\" is subsumed by the ID constraint \"" +
                  strong.ToString() + "\" (constraint #" +
                  std::to_string(j) +
                  "): document-wide uniqueness implies per-type "
                  "uniqueness (ID-Key)"));
          break;
        }
      }
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// divergence (XIC301)

class DivergenceRule final : public LintRule {
 public:
  std::string name() const override { return "divergence"; }
  std::string description() const override {
    return "finite and unrestricted implication disagree (cycle rules "
           "C_k fire): a portability hazard";
  }

  Status Run(const AnalysisInput& input,
             std::vector<Diagnostic>* out) const override {
    const ConstraintSet& sigma = input.sigma;
    // L_id and primary-key-restricted fragments have no divergence
    // (Proposition 3.1, Theorem 3.4 / Corollary 3.9).
    if (sigma.language == Language::kLid) return Status::OK();
    if (!ShapeClean(input)) return Status::OK();
    LuSolver solver(sigma);
    if (!solver.status().ok()) return Status::OK();
    if (solver.CheckPrimaryKeyRestriction().ok()) return Status::OK();
    for (size_t i = 0; i < sigma.constraints.size(); ++i) {
      const Constraint& c = sigma.constraints[i];
      if (c.kind != ConstraintKind::kForeignKey || !c.IsUnary()) continue;
      if (c.element == c.ref_element && c.attr() == c.ref_attr()) continue;
      Constraint reverse = Constraint::UnaryForeignKey(
          c.ref_element, c.ref_attr(), c.element, c.attr());
      if (!solver.FinitelyImplies(reverse) || solver.Implies(reverse)) {
        continue;
      }
      Diagnostic d = ConstraintDiag(
          input, static_cast<int>(i), kCodeDivergence, name(),
          DiagSeverity::kWarning,
          "finite and unrestricted implication diverge: \"" +
              reverse.ToString() +
              "\" holds in every finite document satisfying Sigma (cycle "
              "rule C_k) but not in unrestricted models");
      if (std::optional<std::string> why =
              solver.Explain(reverse, /*finite=*/true);
          why.has_value()) {
        d.notes = DerivationNotes(*why);
      }
      d.notes.push_back(
          "schemas relying on the reversal are not portable to consumers "
          "reasoning with unrestricted implication");
      out->push_back(std::move(d));
    }
    return Status::OK();
  }
};

}  // namespace

void RegisterConsistencyRules(RuleRegistry* registry) {
  registry->Register(std::make_unique<TargetRule>());
  registry->Register(std::make_unique<ConsistencyRule>());
  registry->Register(std::make_unique<RedundancyRule>());
  registry->Register(std::make_unique<KeySubsumptionRule>());
  registry->Register(std::make_unique<DivergenceRule>());
}

}  // namespace xic
