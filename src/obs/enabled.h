// Compile-time kill switch for the observability layer.
//
// The build defines XIC_OBS_DISABLED (cmake -DXIC_OBS=OFF) to compile
// every probe -- spans, counters, histograms -- down to a no-op: the stub
// classes in metrics.h / trace.h have empty inline bodies, so the
// optimizer deletes the call sites and the argument expressions are
// never evaluated (the macros below wrap them in sizeof). The default
// build (XIC_OBS=ON) keeps the probes live; their steady-state cost is
// one relaxed atomic add per counter hit and nothing at all for spans
// while no trace session is active.

#ifndef XIC_OBS_ENABLED_H_
#define XIC_OBS_ENABLED_H_

#if defined(XIC_OBS_DISABLED)
#define XIC_OBS_ENABLED 0
#else
#define XIC_OBS_ENABLED 1
#endif

#endif  // XIC_OBS_ENABLED_H_
