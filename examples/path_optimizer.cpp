// Path-constraint reasoning for query optimization (Section 4).
//
// Given the book DTD^C, the optimizer asks three kinds of questions:
//   * path functional constraints -- "does book.entry.isbn determine
//     book.author?" (if yes, a per-isbn cache of author lists is sound);
//   * path inclusion constraints -- "is every node reached by
//     book.ref.to an entry?" (if yes, a scan can be restricted to the
//     entry extent);
//   * path inverse constraints -- "are taking/taken_by mutual through
//     composition?" (if yes, a join can be replaced by a back-pointer
//     traversal).
// Each positive answer is double-checked against document semantics with
// the path evaluator.

#include <iostream>

#include "xic.h"

namespace {

xic::Path P(const std::string& text) {
  return xic::Path::Parse(text).value();
}

}  // namespace

int main() {
  using namespace xic;

  // Book DTD^C (L_id flavour: isbn and sid are IDs).
  DtdStructure dtd;
  (void)dtd.AddElement("book", "(entry, author*, section*, ref)");
  (void)dtd.AddElement("entry", "(title, publisher)");
  (void)dtd.AddElement("author", "(#PCDATA)");
  (void)dtd.AddElement("title", "(#PCDATA)");
  (void)dtd.AddElement("publisher", "(#PCDATA)");
  (void)dtd.AddElement("text", "(#PCDATA)");
  (void)dtd.AddElement("section", "(title, (text|section)*)");
  (void)dtd.AddElement("ref", "EMPTY");
  (void)dtd.AddAttribute("entry", "isbn", AttrCardinality::kSingle);
  (void)dtd.SetKind("entry", "isbn", AttrKind::kId);
  (void)dtd.AddAttribute("section", "sid", AttrCardinality::kSingle);
  (void)dtd.SetKind("section", "sid", AttrKind::kId);
  (void)dtd.AddAttribute("ref", "to", AttrCardinality::kSet);
  (void)dtd.SetKind("ref", "to", AttrKind::kIdref);
  (void)dtd.SetRoot("book");
  if (Status s = dtd.Validate(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    id entry.isbn
    id section.sid
    sfk ref.to -> entry.isbn
  )", Language::kLid);
  PathContext context(dtd, sigma.value());
  if (!context.status().ok()) {
    std::cerr << context.status() << "\n";
    return 1;
  }
  PathSolver solver(context);

  std::cout << "== typing ==\n";
  for (const char* path : {"entry.isbn", "ref.to", "ref.to.title",
                           "section.section.sid"}) {
    Result<std::string> type = context.TypeOf("book", P(path));
    std::cout << "  type(book." << path << ") = "
              << (type.ok() ? type.value() : type.status().ToString())
              << "\n";
  }

  std::cout << "\n== path functional constraints (Prop 4.1) ==\n";
  struct FunQ {
    const char* lhs;
    const char* rhs;
  };
  for (const FunQ& q : {FunQ{"entry.isbn", "author"},
                        FunQ{"entry.isbn", "section.title"},
                        FunQ{"author", "entry.isbn"},
                        FunQ{"section.sid", "author"}}) {
    Result<bool> implied = solver.ImpliesFunctional(
        {"book", P(q.lhs), P(q.rhs)});
    std::cout << "  book." << q.lhs << " -> book." << q.rhs << " : "
              << (implied.ok() ? (implied.value() ? "implied" : "not implied")
                               : implied.status().ToString())
              << "\n";
  }

  std::cout << "\n== path inclusion constraints (Prop 4.2) ==\n";
  struct IncQ {
    const char* lhs;
    const char* rhs_elem;
    const char* rhs;
  };
  for (const IncQ& q : {IncQ{"ref.to", "entry", ""},
                        IncQ{"ref.to.title", "entry", "title"},
                        IncQ{"author", "entry", ""},
                        IncQ{"section.section", "section", "section"}}) {
    Result<bool> implied = solver.ImpliesInclusion(
        {"book", P(q.lhs), q.rhs_elem, P(q.rhs)});
    std::cout << "  book." << q.lhs << " <= " << q.rhs_elem
              << (q.rhs[0] ? "." : "") << q.rhs << " : "
              << (implied.ok() ? (implied.value() ? "implied" : "not implied")
                               : implied.status().ToString())
              << "\n";
  }

  // Verify one positive answer against an actual document.
  const char* doc_text = R"(<book>
    <entry isbn="i1"><title>T</title><publisher>P</publisher></entry>
    <author>A</author>
    <section sid="s1"><title>S</title></section>
    <ref to="i1"/>
  </book>)";
  Result<XmlDocument> doc = ParseXml(doc_text, {.dtd = &dtd});
  PathEvaluator eval(context, doc.value().tree);
  std::cout << "\nsemantic double-check on a document: "
            << "book.ref.to <= entry holds = "
            << eval.SatisfiesInclusion("book", P("ref.to"), "entry", P(""))
            << "\n";

  // The course/student/teacher inverse composition (Section 4.2).
  DtdStructure uni;
  (void)uni.AddElement("db", "(student*, teacher*, course*)");
  for (const char* e : {"student", "teacher", "course"}) {
    (void)uni.AddElement(e, "EMPTY");
    (void)uni.AddAttribute(e, "oid", AttrCardinality::kSingle);
    (void)uni.SetKind(e, "oid", AttrKind::kId);
  }
  for (const auto& [elem, attr] :
       std::vector<std::pair<const char*, const char*>>{
           {"student", "taking"},
           {"teacher", "teaching"},
           {"course", "taken_by"},
           {"course", "taught_by"}}) {
    (void)uni.AddAttribute(elem, attr, AttrCardinality::kSet);
    (void)uni.SetKind(elem, attr, AttrKind::kIdref);
  }
  (void)uni.SetRoot("db");
  Result<ConstraintSet> uni_sigma = ParseConstraintSet(R"(
    id student.oid
    id teacher.oid
    id course.oid
    inverse student.taking <-> course.taken_by
    inverse teacher.teaching <-> course.taught_by
  )", Language::kLid);
  PathContext uni_context(uni, uni_sigma.value());
  PathSolver uni_solver(uni_context);
  Result<bool> composed = uni_solver.ImpliesInverse(
      {"student", P("taking.taught_by"), "teacher", P("teaching.taken_by")});
  std::cout << "\n== path inverse constraints (Prop 4.3) ==\n"
            << "  student.taking.taught_by <-> teacher.teaching.taken_by : "
            << (composed.ok()
                    ? (composed.value() ? "implied (composition rule)"
                                        : "not implied")
                    : composed.status().ToString())
            << "\n";
  return 0;
}
