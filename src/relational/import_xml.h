// Shredding XML back into relations: the inverse of relational/export_xml.
//
// Applies to "flat" DTD^Cs of the shape the exporter produces (and that
// the paper's publishers/editors example has): a root whose content is a
// sequence of starred relation elements, each relation element holding
// its fields as unique sub-elements with string content and/or
// single-valued attributes. Keys and foreign keys are recovered from the
// L constraint set, completing the round trip
//   relational -> DTD^C + document -> relational
// with both data and semantics preserved.

#ifndef XIC_RELATIONAL_IMPORT_XML_H_
#define XIC_RELATIONAL_IMPORT_XML_H_

#include <map>
#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "model/data_tree.h"
#include "model/dtd_structure.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "util/status.h"

namespace xic {

struct RelationalImport {
  RelationalSchema schema;
  // relation name -> shredded tuples (attribute order as in the schema).
  std::map<std::string, std::vector<RelationalTuple>> rows;
};

/// Recovers the relational schema from a flat DTD^C. Fails with
/// NotSupported when the structure is not flat (nested relations,
/// recursive content, set-valued attributes).
Result<RelationalSchema> ImportRelationalSchema(const DtdStructure& dtd,
                                                const ConstraintSet& sigma);

/// Recovers schema and data from a document conforming to the DTD^C.
Result<RelationalImport> ImportRelational(const DataTree& tree,
                                          const DtdStructure& dtd,
                                          const ConstraintSet& sigma);

/// Loads the shredded rows into an instance over `import.schema`.
Status PopulateInstance(const RelationalImport& import,
                        RelationalInstance* instance);

}  // namespace xic

#endif  // XIC_RELATIONAL_IMPORT_XML_H_
