#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares a fresh xic-bench-suite-v1 file against the committed baseline
(BENCH_RESULTS.json) and fails when any shared case got slower than
threshold x baseline. The default threshold (8x) only catches
order-of-magnitude regressions (CI machines vary wildly); benches whose
noise floor is known to be low carry tighter per-bench thresholds in
PER_BENCH_THRESHOLDS -- bench_batch and bench_xml run long enough per
iteration (the batch bench pins MinTime) that a 3x slowdown is a real
regression, not scheduler jitter.

--scaling-min-ratio R additionally asserts that the fresh
BM_BatchValidate/8 items_per_second is at least R x the /1 case -- the
guard against the flat batch-scaling curve coming back. The check is
hardware-gated: it only runs when the machine actually has >= 8 CPUs
(os.cpu_count()), since thread scaling is physically meaningless on
fewer cores; skipping prints a notice but exits 0.

Usage: check_bench_regression.py baseline.json fresh.json
         [--threshold X] [--bench-threshold NAME=X ...]
         [--scaling-min-ratio R]
Exit: 0 ok, 1 regression/scaling failure, 2 usage/parse error.
"""

import argparse
import json
import os
import sys

# Tighter-than-default gates for benches with a low noise floor.
PER_BENCH_THRESHOLDS = {
    "bench_batch": 3.0,
    "bench_xml": 3.0,
}

SCALING_BENCH = "bench_batch"
# Prefix, not exact name: benchmark appends modifiers such as
# "min_time:2.000/real_time" after the thread-count argument.
SCALING_CASE_PREFIX = "BM_BatchValidate/{threads}/"
SCALING_LO = 1
SCALING_HI = 8


def load_suite(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_cases(data):
    """{(bench, case): ns_per_op} for every timed case in the suite."""
    cases = {}
    for bench in data.get("benches", []):
        name = bench.get("bench", "?")
        for result in bench.get("results", []):
            ns = result.get("ns_per_op", 0)
            if ns > 0:
                cases[(name, result.get("case", "?"))] = ns
    return cases


def items_per_second(data, bench_name, case_prefix):
    for bench in data.get("benches", []):
        if bench.get("bench") != bench_name:
            continue
        for result in bench.get("results", []):
            if result.get("case", "").startswith(case_prefix):
                return result.get("metrics", {}).get("items_per_second")
    return None


def check_scaling(fresh_data, min_ratio):
    """0 on pass/skip, 1 on a scaling failure."""
    cores = os.cpu_count() or 1
    if cores < SCALING_HI:
        print(f"scaling check skipped: {cores} CPU(s) < {SCALING_HI} "
              f"(thread scaling is not measurable on this machine)")
        return 0
    lo = items_per_second(fresh_data, SCALING_BENCH,
                          SCALING_CASE_PREFIX.format(threads=SCALING_LO))
    hi = items_per_second(fresh_data, SCALING_BENCH,
                          SCALING_CASE_PREFIX.format(threads=SCALING_HI))
    if not lo or not hi:
        print(f"scaling check: {SCALING_BENCH} cases missing from fresh run",
              file=sys.stderr)
        return 1
    ratio = hi / lo
    print(f"scaling: {SCALING_HI}-thread {hi:.0f} docs/s vs "
          f"{SCALING_LO}-thread {lo:.0f} docs/s = {ratio:.2f}x "
          f"(required {min_ratio}x)")
    if ratio < min_ratio:
        print(f"SCALING FAILURE: {ratio:.2f}x < {min_ratio}x -- the batch "
              f"curve went flat again", file=sys.stderr)
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=8.0)
    parser.add_argument("--bench-threshold", action="append", default=[],
                        metavar="NAME=X",
                        help="per-bench threshold override, repeatable")
    # Ignore sub-microsecond cases: timer noise dominates them.
    parser.add_argument("--min-ns", type=float, default=1000.0)
    parser.add_argument("--scaling-min-ratio", type=float, default=0.0,
                        help="require BM_BatchValidate/8 >= R x /1 docs/s "
                             "(skipped on machines with < 8 CPUs)")
    args = parser.parse_args()

    per_bench = dict(PER_BENCH_THRESHOLDS)
    for override in args.bench_threshold:
        name, _, value = override.partition("=")
        try:
            per_bench[name] = float(value)
        except ValueError:
            print(f"bad --bench-threshold: {override}", file=sys.stderr)
            sys.exit(2)

    baseline_data = load_suite(args.baseline)
    fresh_data = load_suite(args.fresh)
    baseline = load_cases(baseline_data)
    fresh = load_cases(fresh_data)
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("no shared bench cases between baseline and fresh run",
              file=sys.stderr)
        sys.exit(2)

    regressions = []
    for bench, case in shared:
        old, new = baseline[(bench, case)], fresh[(bench, case)]
        if old < args.min_ns:
            continue
        threshold = per_bench.get(bench, args.threshold)
        if new > old * threshold:
            regressions.append((f"{bench}/{case}", old, new, threshold))

    print(f"compared {len(shared)} shared cases "
          f"(default threshold {args.threshold}x, "
          f"per-bench {per_bench}, min {args.min_ns} ns)")
    for case, old, new, threshold in regressions:
        print(f"REGRESSION {case}: {old:.0f} ns -> {new:.0f} ns "
              f"({new / old:.1f}x, allowed {threshold}x)")

    failed = bool(regressions)
    if args.scaling_min_ratio > 0:
        failed |= bool(check_scaling(fresh_data, args.scaling_min_ratio))
    if failed:
        sys.exit(1)
    print("ok")


if __name__ == "__main__":
    main()
