#include "relational/export_xml.h"

#include "relational/reduction.h"

namespace xic {

Result<RelationalExport> ExportRelational(
    const RelationalInstance& instance,
    const RelationalExportOptions& options) {
  const RelationalSchema& schema = instance.schema();
  XIC_RETURN_IF_ERROR(schema.Validate());

  RelationalExport out;
  // DTD: root -> (R1*, ..., Rn*); each relation element holds its
  // attributes as unique sub-elements with string content.
  std::vector<RegexPtr> root_parts;
  for (const RelationDef& rel : schema.relations()) {
    root_parts.push_back(Regex::Star(Regex::Symbol(rel.name)));
    std::vector<RegexPtr> fields;
    for (const std::string& attr : rel.attributes) {
      fields.push_back(Regex::Symbol(attr));
      if (!out.dtd.HasElement(attr)) {
        XIC_RETURN_IF_ERROR(out.dtd.AddElement(attr, Regex::String()));
      }
    }
    XIC_RETURN_IF_ERROR(
        out.dtd.AddElement(rel.name, Regex::Sequence(std::move(fields))));
  }
  XIC_RETURN_IF_ERROR(
      out.dtd.AddElement(options.root, Regex::Sequence(root_parts)));
  XIC_RETURN_IF_ERROR(out.dtd.SetRoot(options.root));
  XIC_RETURN_IF_ERROR(out.dtd.Validate());

  // Constraints: keys and foreign keys in L over sub-element fields.
  XIC_ASSIGN_OR_RETURN(out.sigma, EncodeSchemaAsL(schema));

  // Data.
  VertexId root = out.tree.AddVertex(options.root);
  for (const RelationDef& rel : schema.relations()) {
    for (const RelationalTuple& tuple : instance.Rows(rel.name)) {
      VertexId row = out.tree.AddVertex(rel.name);
      XIC_RETURN_IF_ERROR(out.tree.AddChildVertex(root, row));
      for (size_t i = 0; i < rel.attributes.size(); ++i) {
        VertexId field = out.tree.AddVertex(rel.attributes[i]);
        XIC_RETURN_IF_ERROR(out.tree.AddChildVertex(row, field));
        out.tree.AddChildText(field, tuple[i]);
      }
    }
  }
  return out;
}

}  // namespace xic
