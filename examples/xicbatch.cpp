// xicbatch: parallel batch validation of a document corpus.
//
// Usage:
//   xicbatch [options] schema.xml [more.xml ...]
//   xicbatch [options] --generate COUNT
//
// Options: --threads N, --max-depth N, --max-bytes N, --timeout-ms N
// (per-document wall-clock budget), --retries N (extra attempts for
// transient failures). Builds configured with -DXIC_FAULT_INJECTION=ON
// additionally accept --fault-rate P and --fault-seed S (deterministic
// fault injection; see util/fault_injector.h).
//
// The first file must be self-describing (DOCTYPE internal subset, plus
// an optional "<!-- xic:constraints ... -->" block); its DTD^C becomes
// the shared schema the whole corpus is validated against. --generate
// synthesizes COUNT person/dept documents (a fraction carry injected
// violations) and validates those instead.
//
// Per-document failures print in input order -- byte-identical no matter
// how many threads ran -- followed by the batch stats block. Exit code:
// 0 all valid; 1 the batch ran and some documents are invalid; 2 an
// infrastructure failure (usage/schema error, or any document hitting a
// resource limit, deadline, injected fault or exception -- "could not
// check" rather than "invalid").

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "engine/batch_validator.h"
#include "obs_cli.h"
#include "xic.h"

namespace {

using namespace xic;

const char* kGeneratedSchema = R"(<?xml version="1.0"?>
<!DOCTYPE db [
<!ELEMENT db (person*, dept*)>
<!ELEMENT person EMPTY>
<!ATTLIST person oid ID #REQUIRED name CDATA #REQUIRED
          in_dept IDREFS #REQUIRED>
<!ELEMENT dept EMPTY>
<!ATTLIST dept oid ID #REQUIRED has_staff IDREFS #REQUIRED>
<!-- xic:constraints language=L_id
  id person.oid
  id dept.oid
  key person.name
  sfk person.in_dept -> dept.oid
  sfk dept.has_staff -> person.oid
  inverse person.in_dept <-> dept.has_staff
-->
]>
<db/>
)";

// A small synthetic db document; every 9th document has a dangling
// in_dept reference and every 13th duplicates a person name.
std::string GenerateDoc(int id) {
  std::string p = std::to_string(id);
  bool dangling = id % 9 == 4;
  bool dup_name = id % 13 == 6;
  std::string xml = "<db>";
  for (int i = 0; i < 8; ++i) {
    std::string oid = "p" + p + "-" + std::to_string(i);
    std::string name =
        dup_name && i == 7 ? "n" + p + "-0" : "n" + p + "-" + std::to_string(i);
    std::string dept =
        dangling && i == 0 ? "ghost" : "d" + p + "-" + std::to_string(i % 2);
    xml += "<person oid=\"" + oid + "\" name=\"" + name + "\" in_dept=\"" +
           dept + "\"/>";
  }
  for (int d = 0; d < 2; ++d) {
    std::string staff;
    for (int i = 0; i < 8; ++i) {
      if (i % 2 != d) continue;
      if (dangling && i == 0) continue;  // keep the inverse consistent
      if (!staff.empty()) staff += " ";
      staff += "p" + p + "-" + std::to_string(i);
    }
    xml += "<dept oid=\"d" + p + "-" + std::to_string(d) + "\" has_staff=\"" +
           staff + "\"/>";
  }
  xml += "</db>";
  return xml;
}

int Usage() {
  std::cout
      << "usage: xicbatch [options] schema.xml [more.xml ...]\n"
         "       xicbatch [options] --generate COUNT\n"
         "options:\n"
         "  --threads N     worker threads (0 = hardware concurrency)\n"
         "  --max-depth N   element nesting limit (0 = unlimited)\n"
         "  --max-bytes N   per-document size limit (0 = unlimited)\n"
         "  --timeout-ms N  per-document wall-clock budget (0 = none)\n"
         "  --retries N     extra attempts for transient failures\n"
         "  --stream        bounded-memory streaming pipeline per document\n"
         "  --spill-mb N    extent-log budget before spilling (MiB, with "
         "--stream)\n"
         "  --json FILE     write the batch report as JSON\n"
         "  --trace-out FILE    write a Chrome/Perfetto trace of the run\n"
         "  --metrics-out FILE  write the metrics registry as JSON\n"
         "  --stats             print the metrics table to stderr\n"
#ifdef XIC_FAULT_INJECTION
         "  --fault-rate P  inject faults on fraction P of (site, doc)\n"
         "  --fault-seed S  seed for deterministic fault decisions\n"
#endif
         "exit: 0 all valid, 1 some documents invalid, 2 infrastructure/"
         "limit failure\n";
  return 2;
}

bool ParseCount(const char* text, unsigned long* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long value = std::strtoul(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t threads = 0;  // hardware concurrency
  int generate = 0;
  BatchOptions options;
  ObsCliOptions obs_options;
  std::string json_out;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    unsigned long count = 0;
    bool obs_error = false;
    if (ObsParseFlag(argc, argv, &i, &obs_options, &obs_error)) {
      if (obs_error) return Usage();
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) {
        std::cerr << "--threads: not a number: " << argv[i] << "\n";
        return Usage();
      }
      threads = count;
    } else if (arg == "--max-depth" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) {
        std::cerr << "--max-depth: not a number: " << argv[i] << "\n";
        return Usage();
      }
      options.limits.max_tree_depth = count;
    } else if (arg == "--max-bytes" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) {
        std::cerr << "--max-bytes: not a number: " << argv[i] << "\n";
        return Usage();
      }
      options.limits.max_document_bytes = count;
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) {
        std::cerr << "--timeout-ms: not a number: " << argv[i] << "\n";
        return Usage();
      }
      options.document_timeout_ms = count;
    } else if (arg == "--retries" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) {
        std::cerr << "--retries: not a number: " << argv[i] << "\n";
        return Usage();
      }
      options.max_attempts = count + 1;
    } else if (arg == "--stream") {
      options.stream = true;
    } else if (arg == "--spill-mb" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) {
        std::cerr << "--spill-mb: not a number: " << argv[i] << "\n";
        return Usage();
      }
      options.stream_spill_budget_bytes = static_cast<size_t>(count) << 20;
#ifdef XIC_FAULT_INJECTION
    } else if (arg == "--fault-rate" && i + 1 < argc) {
      char* end = nullptr;
      double rate = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || rate < 0 || rate > 1) {
        std::cerr << "--fault-rate: not a probability: " << argv[i] << "\n";
        return Usage();
      }
      options.faults.rate = rate;
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count)) {
        std::cerr << "--fault-seed: not a number: " << argv[i] << "\n";
        return Usage();
      }
      options.faults.seed = count;
#else
    } else if (arg == "--fault-rate" || arg == "--fault-seed") {
      std::cerr << arg << ": fault injection is disabled in this build "
                          "(configure with -DXIC_FAULT_INJECTION=ON)\n";
      return 2;
#endif
    } else if (arg == "--generate" && i + 1 < argc) {
      if (!ParseCount(argv[++i], &count) || count > 10'000'000) {
        std::cerr << "--generate: not a valid count: " << argv[i] << "\n";
        return Usage();
      }
      generate = static_cast<int>(count);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(std::move(arg));
    }
  }
  if ((generate > 0) == !files.empty()) return Usage();

  // The schema document: first file, or the built-in one for --generate.
  std::string schema_text;
  std::string schema_name;
  if (generate > 0) {
    schema_text = kGeneratedSchema;
    schema_name = "<generated>";
  } else {
    std::ifstream in(files[0]);
    if (!in) {
      std::cerr << files[0] << ": cannot open\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    schema_text = buffer.str();
    schema_name = files[0];
  }
  XmlParseOptions schema_parse;
  schema_parse.limits = options.limits;
  Result<SelfDescribingDocument> schema =
      ParseDocumentWithDtdC(schema_text, schema_parse);
  if (!schema.ok()) {
    std::cerr << schema_name << ": " << schema.status() << "\n";
    return 2;
  }
  if (!schema.value().document.dtd.has_value()) {
    std::cerr << schema_name << ": no DTD in the DOCTYPE\n";
    return 2;
  }
  const DtdStructure& dtd = *schema.value().document.dtd;
  ConstraintSet sigma;
  if (schema.value().sigma.has_value()) {
    sigma = *schema.value().sigma;
    if (Status wf = CheckWellFormed(sigma, dtd); !wf.ok()) {
      std::cerr << schema_name << ": constraint block ill-formed: " << wf
                << "\n";
      return 2;
    }
  }

  std::vector<BatchDocument> corpus;
  if (generate > 0) {
    for (int i = 0; i < generate; ++i) {
      corpus.push_back({"gen" + std::to_string(i), GenerateDoc(i)});
    }
  } else {
    for (const std::string& file : files) {
      std::ifstream in(file);
      if (!in) {
        std::cerr << file << ": cannot open\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      corpus.push_back({file, buffer.str()});
    }
  }

  options.num_threads = threads;
  options.validation.allow_missing_attributes = true;
  ObsCliSession obs_session(obs_options);
  BatchValidator validator(dtd, sigma, options);
  BatchReport report = validator.Run(corpus);
  std::cout << report.ViolationsToString(sigma);
  std::cout << report.stats.ToString();
  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::cerr << json_out << ": cannot write\n";
      return 2;
    }
    out << report.ToJson(sigma);
  }
  if (!obs_session.Finish()) return 2;
  if (report.any_infrastructure_failure()) return 2;
  return report.all_ok() ? 0 : 1;
}
