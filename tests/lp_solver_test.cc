#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "implication/lp_solver.h"

namespace xic {
namespace {

ConstraintSet Sigma(const std::string& text) {
  Result<ConstraintSet> sigma = ParseConstraintSet(text, Language::kL);
  EXPECT_TRUE(sigma.ok()) << sigma.status();
  return sigma.value();
}

TEST(LpSolver, PaperPublisherExample) {
  LpSolver solver(Sigma(R"(
    key publisher[pname, country]
    fk editor[pname, country] -> publisher[pname, country]
  )"));
  ASSERT_TRUE(solver.status().ok()) << solver.status();
  EXPECT_TRUE(solver
                  .Implies(Constraint::Key("publisher",
                                           {"pname", "country"}))
                  .value());
  EXPECT_TRUE(solver
                  .Implies(Constraint::ForeignKey(
                      "editor", {"pname", "country"}, "publisher",
                      {"pname", "country"}))
                  .value());
  EXPECT_EQ(solver.PrimaryKey("publisher"),
            (std::set<std::string>{"country", "pname"}));
}

TEST(LpSolver, PfkPermReordersBothSides) {
  LpSolver solver(Sigma(R"(
    key p[a, b]
    fk e[x, y] -> p[a, b]
  )"));
  ASSERT_TRUE(solver.status().ok());
  // Simultaneous permutation is implied...
  EXPECT_TRUE(solver
                  .Implies(Constraint::ForeignKey("e", {"y", "x"}, "p",
                                                  {"b", "a"}))
                  .value());
  // ...but crossing the correspondence is not.
  EXPECT_FALSE(solver
                   .Implies(Constraint::ForeignKey("e", {"x", "y"}, "p",
                                                   {"b", "a"}))
                   .value());
}

TEST(LpSolver, PfkTransComposesAlongTypePaths) {
  LpSolver solver(Sigma(R"(
    key b[u, v]
    key c[s, t]
    fk a[x, y] -> b[u, v]
    fk b[u, v] -> c[s, t]
  )"));
  ASSERT_TRUE(solver.status().ok());
  EXPECT_TRUE(solver
                  .Implies(Constraint::ForeignKey("a", {"x", "y"}, "c",
                                                  {"s", "t"}))
                  .value());
  // Composition respects the attribute correspondence even when the
  // middle foreign key is written permuted.
  LpSolver permuted(Sigma(R"(
    key b[u, v]
    key c[s, t]
    fk a[x, y] -> b[u, v]
    fk b[v, u] -> c[t, s]
  )"));
  ASSERT_TRUE(permuted.status().ok());
  EXPECT_TRUE(permuted
                  .Implies(Constraint::ForeignKey("a", {"x", "y"}, "c",
                                                  {"s", "t"}))
                  .value());
  EXPECT_FALSE(permuted
                   .Implies(Constraint::ForeignKey("a", {"x", "y"}, "c",
                                                   {"t", "s"}))
                   .value());
}

TEST(LpSolver, PkFkIdentity) {
  LpSolver solver(Sigma("key r[a, b]"));
  ASSERT_TRUE(solver.status().ok());
  // PK-FK: r[a,b] <= r[a,b].
  EXPECT_TRUE(solver
                  .Implies(Constraint::ForeignKey("r", {"a", "b"}, "r",
                                                  {"a", "b"}))
                  .value());
  // FK-refl covers reflexive inclusions on non-key sequences too.
  EXPECT_TRUE(solver
                  .Implies(Constraint::ForeignKey("r", {"z", "w"}, "r",
                                                  {"z", "w"}))
                  .value());
  // Identity with a twist is not implied.
  EXPECT_FALSE(solver
                   .Implies(Constraint::ForeignKey("r", {"a", "b"}, "r",
                                                   {"b", "a"}))
                   .value());
}

TEST(LpSolver, CyclesCompose) {
  // Under the primary restriction a foreign-key cycle composes to the
  // identity; the reverse inclusion is implied exactly when composition
  // produces it (implication == finite implication, Theorem 3.8).
  LpSolver solver(Sigma(R"(
    key a[x]
    key b[y]
    fk a[x] -> b[y]
    fk b[y] -> a[x]
  )"));
  ASSERT_TRUE(solver.status().ok());
  EXPECT_TRUE(
      solver.Implies(Constraint::ForeignKey("a", {"x"}, "b", {"y"})).value());
  EXPECT_TRUE(
      solver.Implies(Constraint::ForeignKey("b", {"y"}, "a", {"x"})).value());
}

TEST(LpSolver, RestrictionViolationsRejected) {
  // Two distinct keys for one type.
  LpSolver two_keys(Sigma("key r[a]; key r[b]"));
  EXPECT_FALSE(two_keys.status().ok());
  // A foreign key targeting a non-key.
  ConstraintSet sigma;
  sigma.language = Language::kL;
  sigma.constraints = {
      Constraint::Key("p", {"k"}),
      Constraint::ForeignKey("e", {"x"}, "p", {"other"})};
  LpSolver bad_target(sigma);
  EXPECT_FALSE(bad_target.status().ok());
  // Wrong language.
  ConstraintSet lu;
  lu.language = Language::kLu;
  EXPECT_FALSE(LpSolver(lu).status().ok());
}

TEST(LpSolver, RestrictedQueriesRejected) {
  LpSolver solver(Sigma("key r[a, b]"));
  ASSERT_TRUE(solver.status().ok());
  // Asking about a different key for r is outside the restricted problem.
  Result<bool> other = solver.Implies(Constraint::Key("r", {"a"}));
  EXPECT_FALSE(other.ok());
  Result<bool> superkey = solver.Implies(Constraint::Key("r", {"a", "b", "c"}));
  EXPECT_FALSE(superkey.ok());
  // A type with no known key: plain false, not an error.
  EXPECT_FALSE(solver.Implies(Constraint::Key("s", {"z"})).value());
}

TEST(LpSolver, NonImplications) {
  LpSolver solver(Sigma(R"(
    key b[u]
    key c[s]
    fk a[x] -> b[u]
  )"));
  ASSERT_TRUE(solver.status().ok());
  EXPECT_FALSE(
      solver.Implies(Constraint::ForeignKey("a", {"x"}, "c", {"s"})).value());
  EXPECT_FALSE(
      solver.Implies(Constraint::ForeignKey("b", {"u"}, "a", {"x"})).value());
}

TEST(LpSolver, ExplainCompositions) {
  LpSolver solver(Sigma(R"(
    key b[u]
    key c[s]
    fk a[x] -> b[u]
    fk b[u] -> c[s]
  )"));
  std::optional<std::string> proof = solver.Explain(
      Constraint::ForeignKey("a", {"x"}, "c", {"s"}));
  ASSERT_TRUE(proof.has_value());
  EXPECT_NE(proof->find("PFK-trans"), std::string::npos);
  EXPECT_NE(proof->find("hypothesis"), std::string::npos);
  EXPECT_FALSE(solver.Explain(Constraint::ForeignKey("c", {"s"}, "a", {"x"}))
                   .has_value());
}

TEST(LpSolver, ClosureSizeGrowsWithArity) {
  // The mapping closure can be exponential in key arity; at small sizes
  // it stays modest and the solver remains exact.
  for (size_t arity : {1u, 2u, 3u}) {
    std::vector<std::string> attrs;
    for (size_t i = 0; i < arity; ++i) attrs.push_back("k" + std::to_string(i));
    ConstraintSet sigma;
    sigma.language = Language::kL;
    sigma.constraints.push_back(Constraint::Key("r", attrs));
    // A self-referencing rotated foreign key generates the rotation group.
    std::vector<std::string> rotated = attrs;
    std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
    sigma.constraints.push_back(
        Constraint::ForeignKey("r", attrs, "r", rotated));
    LpSolver solver(sigma);
    ASSERT_TRUE(solver.status().ok());
    // The rotation generates the full cyclic group of order `arity`.
    EXPECT_GE(solver.closure_size(), arity);
    std::vector<std::string> twice = attrs;
    std::rotate(twice.begin(), twice.begin() + 2 % arity, twice.end());
    EXPECT_TRUE(
        solver.Implies(Constraint::ForeignKey("r", attrs, "r", twice))
            .value());
  }
}

}  // namespace
}  // namespace xic
