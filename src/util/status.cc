#include "util/status.h"

namespace xic {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kValidationError:
      return "ValidationError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xic
