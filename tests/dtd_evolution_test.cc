#include <gtest/gtest.h>

#include "integration/dtd_evolution.h"
#include "model/doc_generator.h"
#include "model/structural_validator.h"
#include "xml/dtd_parser.h"

namespace xic {
namespace {

Result<DtdStructure> Parse(const std::string& text) {
  return ParseDtd(text, "book");
}

const char* kOriginal = R"(
  <!ELEMENT book (entry, author*, ref)>
  <!ELEMENT entry (title)>
  <!ATTLIST entry isbn CDATA #REQUIRED>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT ref EMPTY>
  <!ATTLIST ref to NMTOKENS #REQUIRED>
)";

TEST(DtdEvolution, IdenticalDtdsAreCompatible) {
  Result<DtdStructure> a = Parse(kOriginal);
  Result<DtdStructure> b = Parse(kOriginal);
  ASSERT_TRUE(a.ok() && b.ok());
  DtdEvolutionReport report = CompareDtds(a.value(), b.value());
  EXPECT_TRUE(report.backward_compatible) << report.ToString();
  EXPECT_TRUE(report.changes.empty());
}

TEST(DtdEvolution, WideningIsCompatible) {
  Result<DtdStructure> a = Parse(kOriginal);
  // ref may now repeat; a new optional element type appears.
  Result<DtdStructure> b = Parse(R"(
    <!ELEMENT book (entry, author*, ref+, appendix?)>
    <!ELEMENT entry (title)>
    <!ATTLIST entry isbn CDATA #REQUIRED>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT ref EMPTY>
    <!ATTLIST ref to NMTOKENS #REQUIRED>
    <!ELEMENT appendix (#PCDATA)>
  )");
  ASSERT_TRUE(a.ok() && b.ok());
  DtdEvolutionReport report = CompareDtds(a.value(), b.value());
  EXPECT_TRUE(report.backward_compatible) << report.ToString();
  EXPECT_FALSE(report.changes.empty());  // widening + addition noted
}

TEST(DtdEvolution, NarrowingBreaks) {
  Result<DtdStructure> a = Parse(kOriginal);
  Result<DtdStructure> b = Parse(R"(
    <!ELEMENT book (entry, author+, ref)>
    <!ELEMENT entry (title)>
    <!ATTLIST entry isbn CDATA #REQUIRED>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT ref EMPTY>
    <!ATTLIST ref to NMTOKENS #REQUIRED>
  )");
  ASSERT_TRUE(a.ok() && b.ok());
  DtdEvolutionReport report = CompareDtds(a.value(), b.value());
  EXPECT_FALSE(report.backward_compatible);
  EXPECT_NE(report.ToString().find("narrowing"), std::string::npos)
      << report.ToString();
}

TEST(DtdEvolution, AttributeChangesBreak) {
  Result<DtdStructure> a = Parse(kOriginal);
  Result<DtdStructure> removed = Parse(R"(
    <!ELEMENT book (entry, author*, ref)>
    <!ELEMENT entry (title)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT ref EMPTY>
    <!ATTLIST ref to NMTOKENS #REQUIRED>
  )");
  ASSERT_TRUE(a.ok() && removed.ok());
  EXPECT_FALSE(CompareDtds(a.value(), removed.value()).backward_compatible);

  Result<DtdStructure> added = Parse(R"(
    <!ELEMENT book (entry, author*, ref)>
    <!ELEMENT entry (title)>
    <!ATTLIST entry isbn CDATA #REQUIRED year CDATA #REQUIRED>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT ref EMPTY>
    <!ATTLIST ref to NMTOKENS #REQUIRED>
  )");
  ASSERT_TRUE(added.ok());
  EXPECT_FALSE(CompareDtds(a.value(), added.value()).backward_compatible);
}

TEST(DtdEvolution, RemovedElementBreaks) {
  Result<DtdStructure> a = Parse(kOriginal);
  Result<DtdStructure> b = Parse(R"(
    <!ELEMENT book (entry, ref)>
    <!ELEMENT entry (title)>
    <!ATTLIST entry isbn CDATA #REQUIRED>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT ref EMPTY>
    <!ATTLIST ref to NMTOKENS #REQUIRED>
  )");
  ASSERT_TRUE(a.ok() && b.ok());
  DtdEvolutionReport report = CompareDtds(a.value(), b.value());
  EXPECT_FALSE(report.backward_compatible);
  EXPECT_NE(report.ToString().find("author removed"), std::string::npos);
}

TEST(DtdEvolution, CompatibleVerdictHoldsOnGeneratedDocuments) {
  // The semantic guarantee behind the verdict: when CompareDtds says
  // compatible, every generated old-valid document validates under the
  // new structure.
  Result<DtdStructure> a = Parse(kOriginal);
  Result<DtdStructure> b = Parse(R"(
    <!ELEMENT book (entry, author*, ref+)>
    <!ELEMENT entry (title)>
    <!ATTLIST entry isbn CDATA #REQUIRED>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT ref EMPTY>
    <!ATTLIST ref to NMTOKENS #REQUIRED>
  )");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(CompareDtds(a.value(), b.value()).backward_compatible);
  StructuralValidator new_validator(b.value());
  for (uint32_t seed = 1; seed <= 15; ++seed) {
    DocGenerator gen(a.value(), {.seed = seed});
    Result<DataTree> tree = gen.Generate();
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE(new_validator.Validate(tree.value()).ok())
        << new_validator.Validate(tree.value()).ToString();
  }
}

}  // namespace
}  // namespace xic
