#include "engine/thread_pool.h"

#include <atomic>

#include "obs/obs.h"

namespace xic {

namespace {
// Worker index of the calling thread; -1 outside any pool's workers.
thread_local int tl_worker_index = -1;
}  // namespace

int ThreadPool::current_worker() { return tl_worker_index; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(&state_mutex_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t target;
  {
    util::MutexLock lock(&state_mutex_);
    target = next_queue_++ % queues_.size();
    ++queued_;
    ++pending_;
    if (queued_ > queue_high_water_) {
      queue_high_water_ = queued_;
      XIC_COUNTER_MAX("engine.pool.queue_high_water", queued_);
    }
  }
  XIC_COUNTER_ADD("engine.pool.tasks", 1);
  {
    util::MutexLock lock(&queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

std::function<void()> ThreadPool::Take(size_t worker) {
  {
    WorkerQueue& own = *queues_[worker];
    util::MutexLock lock(&own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim = *queues_[(worker + offset) % queues_.size()];
    util::MutexLock lock(&victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(size_t worker) {
  tl_worker_index = static_cast<int>(worker);
  obs::Tracer::SetCurrentThreadName("pool-" + std::to_string(worker));
  // The worker's long-lived span becomes the parent of every document
  // span the worker executes; it is only recorded when a trace session
  // is already active when the pool spins up.
  obs::ScopedSpan worker_span("engine.worker", "engine");
  worker_span.SetSeq(static_cast<int64_t>(worker));
  worker_span.AddInt("worker", static_cast<int64_t>(worker));
  util::MutexLock lock(&state_mutex_);
  while (true) {
    while (!shutdown_ && queued_ == 0) work_available_.Wait(&state_mutex_);
    if (queued_ == 0) {
      if (shutdown_) return;
      continue;
    }
    lock.Unlock();
    std::function<void()> task = Take(worker);
    lock.Lock();
    if (task == nullptr) continue;  // a sibling claimed it first
    --queued_;
    lock.Unlock();
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      // Letting the exception reach the thread's top level would
      // std::terminate the whole process; capture it instead.
      error = std::current_exception();
    }
    lock.Lock();
    if (error != nullptr) task_errors_.push_back(std::move(error));
    if (--pending_ == 0) all_done_.NotifyAll();
  }
}

size_t ThreadPool::queue_high_water() {
  util::MutexLock lock(&state_mutex_);
  return queue_high_water_;
}

std::vector<std::exception_ptr> ThreadPool::TakeTaskErrors() {
  util::MutexLock lock(&state_mutex_);
  std::vector<std::exception_ptr> out;
  out.swap(task_errors_);
  return out;
}

void ThreadPool::Wait() {
  util::MutexLock lock(&state_mutex_);
  while (pending_ != 0) all_done_.Wait(&state_mutex_);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // One driver task per worker, all claiming indexes from a shared atomic
  // cursor. Submitting n individual tasks made every iteration pay the
  // global state_mutex_ + condition-variable round-trips (three per task),
  // which serialized whole-document pipelines behind one lock and showed
  // up as the flat batch-scaling curve; with drivers the pool traffic is
  // O(num_threads) per call regardless of n, and per-iteration claim cost
  // is one uncontended fetch_add.
  struct Shared {
    std::atomic<size_t> next{0};     // iteration claim cursor
    std::atomic<size_t> remaining;   // driver tasks still running
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    util::Mutex mutex;
    util::CondVar done;
    std::exception_ptr first_error XIC_GUARDED_BY(mutex);
  };
  auto shared = std::make_shared<Shared>();
  shared->n = n;
  shared->fn = &fn;  // valid: this frame outlives every driver
  const size_t drivers = std::min(num_threads(), n);
  shared->remaining.store(drivers, std::memory_order_relaxed);
  for (size_t d = 0; d < drivers; ++d) {
    Submit([shared] {
      for (;;) {
        const size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= shared->n) break;
        // Each iteration is caught individually: one throwing iteration
        // must not stop the remaining ones, and the first exception (by
        // completion order) is what the caller sees.
        try {
          (*shared->fn)(i);
        } catch (...) {
          util::MutexLock lock(&shared->mutex);
          if (shared->first_error == nullptr) {
            shared->first_error = std::current_exception();
          }
        }
      }
      // The decrement runs strictly after this driver's last iteration:
      // a skipped decrement would leave the caller waiting forever.
      if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        util::MutexLock lock(&shared->mutex);
        shared->done.NotifyAll();
      }
    });
  }
  util::MutexLock lock(&shared->mutex);
  while (shared->remaining.load(std::memory_order_acquire) != 0) {
    shared->done.Wait(&shared->mutex);
  }
  if (shared->first_error != nullptr) {
    std::rethrow_exception(shared->first_error);
  }
}

}  // namespace xic
