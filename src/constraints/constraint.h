// Basic XML constraints: the languages L, L_u and L_id of Section 2.2.
//
// One Constraint value represents a constraint of any of the three
// languages; which combinations are legal for a given language (and
// against a given DTD structure) is decided by well_formed.h. The kinds:
//
//   kKey            tau[X] -> tau            (L; unary in L_u / L_id)
//   kForeignKey     tau[X] <= tau'[Y]        (L; unary in L_u / L_id)
//   kSetForeignKey  tau.l <=S tau'.l'        (L_u; l' = id attr in L_id)
//   kId             tau.id ->id tau          (L_id only)
//   kInverse        tau(lk).l <-> tau'(lk').l'
//                   (L_u names the keys lk / lk' explicitly; in L_id the
//                    keys are the ID attributes and lk / lk' stay empty.)

#ifndef XIC_CONSTRAINTS_CONSTRAINT_H_
#define XIC_CONSTRAINTS_CONSTRAINT_H_

#include <compare>
#include <string>
#include <vector>

namespace xic {

enum class Language {
  kL,    // multi-attribute keys and foreign keys (relational legacy)
  kLu,   // unary constraints + set-valued FKs + inverses (native XML)
  kLid,  // object-identity style: ID constraints scoped to the document
};

const char* LanguageToString(Language lang);

enum class ConstraintKind {
  kKey,
  kForeignKey,
  kSetForeignKey,
  kId,
  kInverse,
};

struct Constraint {
  ConstraintKind kind = ConstraintKind::kKey;
  std::string element;                  // tau
  std::vector<std::string> attrs;       // X (singleton for unary forms)
  std::string ref_element;              // tau'
  std::vector<std::string> ref_attrs;   // Y
  std::string inv_key;                  // l_k  (L_u inverse only)
  std::string inv_ref_key;              // l_k' (L_u inverse only)

  // -- Factories -----------------------------------------------------------

  /// tau[X] -> tau
  static Constraint Key(std::string tau, std::vector<std::string> x);
  /// tau.l -> tau
  static Constraint UnaryKey(std::string tau, std::string l);
  /// tau.id ->id tau (l must be tau's ID attribute)
  static Constraint Id(std::string tau, std::string l);
  /// tau[X] <= tau'[Y]
  static Constraint ForeignKey(std::string tau, std::vector<std::string> x,
                               std::string tau2, std::vector<std::string> y);
  /// tau.l <= tau'.l'
  static Constraint UnaryForeignKey(std::string tau, std::string l,
                                    std::string tau2, std::string l2);
  /// tau.l <=S tau'.l'
  static Constraint SetForeignKey(std::string tau, std::string l,
                                  std::string tau2, std::string l2);
  /// L_u inverse: tau(lk).l <-> tau'(lk').l'
  static Constraint InverseU(std::string tau, std::string lk, std::string l,
                             std::string tau2, std::string lk2,
                             std::string l2);
  /// L_id inverse: tau.l <-> tau'.l' (keys are the ID attributes)
  static Constraint InverseId(std::string tau, std::string l,
                              std::string tau2, std::string l2);

  // -- Introspection -------------------------------------------------------

  bool IsUnary() const { return attrs.size() == 1; }
  /// The single attribute of a unary constraint.
  const std::string& attr() const { return attrs.front(); }
  const std::string& ref_attr() const { return ref_attrs.front(); }

  /// Paper-style ASCII rendering, e.g. "entry.isbn -> entry",
  /// "editor[pname,country] <= publisher[pname,country]",
  /// "ref.to <=S entry.isbn", "person.oid ->id person",
  /// "dept(oid).has_staff <-> person(oid).in_dept".
  std::string ToString() const;

  friend bool operator==(const Constraint&, const Constraint&) = default;
  friend std::strong_ordering operator<=>(const Constraint&,
                                          const Constraint&) = default;
};

/// A constraint set Sigma with its language; the Sigma of a DTD^C
/// (Definition 2.3) together with a DtdStructure.
struct ConstraintSet {
  Language language = Language::kLu;
  std::vector<Constraint> constraints;

  bool Contains(const Constraint& c) const;
  std::string ToString() const;
};

}  // namespace xic

#endif  // XIC_CONSTRAINTS_CONSTRAINT_H_
