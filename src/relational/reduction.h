// The bridge between relational dependency theory and L (Section 3.3,
// Theorem 3.6 / Corollaries 3.7 and 3.9).
//
// Two encodings:
//
//   * EncodeSchemaAsL: a RelationalSchema's keys and foreign keys map
//     verbatim to L key / foreign-key constraints over element types (one
//     type per relation, one field per attribute). This is the faithful
//     fragment the paper's corollaries speak about: implication questions
//     about relational keys/foreign keys and about their L images have
//     the same answers, which the tests verify by running the FD/IND
//     chase and the L chase side by side.
//
//   * EncodeDependenciesAsL: maps a set of FDs + INDs into L when every
//     FD is a key dependency (X -> all attributes) and every IND targets
//     a declared key. General FDs/INDs are rejected with NotSupported:
//     the paper's full reduction (which shows undecidability) requires
//     gadget constructions from its technical report; the undecidability
//     itself is demonstrated here by chase non-termination on cyclic
//     inputs (see tests and DESIGN.md).

#ifndef XIC_RELATIONAL_REDUCTION_H_
#define XIC_RELATIONAL_REDUCTION_H_

#include <vector>

#include "constraints/constraint.h"
#include "relational/dependencies.h"
#include "relational/schema.h"
#include "util/status.h"

namespace xic {

/// Keys and foreign keys of `schema` as an L constraint set.
Result<ConstraintSet> EncodeSchemaAsL(const RelationalSchema& schema);

/// FDs/INDs as L constraints (key-shaped fragment only; see above).
/// `relation_attrs` supplies each relation's full attribute list so key
/// FDs can be recognized.
Result<ConstraintSet> EncodeDependenciesAsL(
    const std::vector<Dependency>& deps, const RelationalSchema& schema);

/// The L image of a single dependency (same fragment restrictions).
Result<Constraint> EncodeDependencyAsL(const Dependency& dep,
                                       const RelationalSchema& schema);

}  // namespace xic

#endif  // XIC_RELATIONAL_REDUCTION_H_
