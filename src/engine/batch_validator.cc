#include "engine/batch_validator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>

#include "engine/thread_pool.h"

namespace xic {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::string Fmt(const char* format, double a, double b = 0, double c = 0) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), format, a, b, c);
  return buffer;
}

// Status codes that mean "the pipeline could not finish", as opposed to a
// verdict about the document itself.
bool IsInfrastructureStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool DocumentOutcome::infrastructure_failure() const {
  return !error.ok() || IsInfrastructureStatus(parse) ||
         IsInfrastructureStatus(structure.status) ||
         IsInfrastructureStatus(constraints.status);
}

std::string BatchStats::ToString() const {
  size_t ok = documents - parse_failures - structurally_invalid -
              constraint_violating - resource_failures;
  std::string out;
  out += "batch: " + std::to_string(documents) + " document(s), " +
         std::to_string(ok) + " ok, " + std::to_string(parse_failures) +
         " parse failure(s), " + std::to_string(structurally_invalid) +
         " structurally invalid, " + std::to_string(constraint_violating) +
         " with constraint violations, " +
         std::to_string(resource_failures) +
         " resource/fault failure(s), " + std::to_string(retries) +
         " retry(ies)\n";
  out += "       " + std::to_string(total_vertices) + " vertices, " +
         std::to_string(total_violations) + " violation(s)\n";
  double docs_per_sec = wall_seconds > 0 ? documents / wall_seconds : 0;
  out += Fmt("wall:  %.3f s (%.1f docs/s) on ", wall_seconds, docs_per_sec) +
         std::to_string(threads) + " thread(s)\n";
  out += Fmt("stage: parse %.3f s, structure %.3f s, constraints %.3f s\n",
             parse_seconds, structure_seconds, constraints_seconds);
  return out;
}

bool BatchReport::all_ok() const {
  for (const DocumentOutcome& outcome : outcomes) {
    if (!outcome.ok()) return false;
  }
  return true;
}

bool BatchReport::any_infrastructure_failure() const {
  for (const DocumentOutcome& outcome : outcomes) {
    if (outcome.infrastructure_failure()) return true;
  }
  return false;
}

std::string BatchReport::ViolationsToString(const ConstraintSet& sigma) const {
  std::string out;
  for (const DocumentOutcome& o : outcomes) {
    if (o.ok()) continue;
    if (!o.error.ok()) {
      out += o.name + ": " + o.error.ToString() + "\n";
      continue;
    }
    if (!o.parse.ok()) {
      out += o.name + ": " + o.parse.ToString() + "\n";
      continue;
    }
    if (!o.structure.status.ok()) {
      out += o.name + ": structure: " + o.structure.status.ToString() + "\n";
    }
    for (const Violation& v : o.structure.violations) {
      out += o.name + ": structure: vertex " + std::to_string(v.vertex) +
             ": " + v.message + "\n";
    }
    if (!o.constraints.status.ok()) {
      out += o.name + ": constraints: " + o.constraints.status.ToString() +
             "\n";
    }
    for (const ConstraintViolation& v : o.constraints.violations) {
      out += o.name + ": " +
             sigma.constraints[v.constraint_index].ToString() + ": " +
             v.message + "\n";
    }
  }
  return out;
}

namespace {

// The single limits knob wins over whatever the per-stage option structs
// carried (the CLI and tests set BatchOptions::limits only).
BatchOptions NormalizeOptions(BatchOptions options) {
  options.parse.limits = options.limits;
  options.validation.limits = options.limits;
  return options;
}

}  // namespace

BatchValidator::BatchValidator(const DtdStructure& dtd,
                               const ConstraintSet& sigma,
                               BatchOptions options)
    : dtd_(dtd),
      sigma_(sigma),
      options_(NormalizeOptions(std::move(options))),
      validator_(dtd, options_.validation),
      checker_(dtd, sigma, options_.check),
      injector_(options_.faults) {
  options_.parse.dtd = &dtd_;
}

Deadline BatchValidator::DocumentDeadline() const {
  return options_.document_timeout_ms == 0
             ? Deadline::Infinite()
             : Deadline::AfterMillis(options_.document_timeout_ms);
}

DocumentOutcome BatchValidator::CheckOne(const BatchDocument& doc) const {
  size_t max_attempts = std::max<size_t>(1, options_.max_attempts);
  DocumentOutcome outcome;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    outcome = CheckOneAttempt(doc, attempt);
    outcome.attempts = attempt + 1;
    // Only transient failures are worth retrying; limits and deadlines
    // would trip identically on the next attempt.
    if (outcome.error.code() != StatusCode::kUnavailable) break;
  }
  return outcome;
}

DocumentOutcome BatchValidator::CheckOneAttempt(const BatchDocument& doc,
                                                size_t attempt) const {
  DocumentOutcome outcome;
  outcome.name = doc.name;
  // The whole attempt runs under one try: anything a stage (or the fault
  // injector in throwing mode) throws becomes this document's outcome
  // instead of tearing down the batch.
  try {
    Deadline deadline = DocumentDeadline();
    int n = static_cast<int>(attempt);
    Clock::time_point t0 = Clock::now();
    if (Status s = injector_.MaybeFail("parse", doc.name, n); !s.ok()) {
      outcome.error = std::move(s);
      return outcome;
    }
    XmlParseOptions parse_options = options_.parse;
    parse_options.deadline = deadline;
    Result<XmlDocument> parsed = ParseXml(doc.text, parse_options);
    Clock::time_point t1 = Clock::now();
    outcome.parse_seconds = Seconds(t0, t1);
    if (!parsed.ok()) {
      outcome.parse = parsed.status();
      return outcome;
    }
    const DataTree& tree = parsed.value().tree;
    outcome.vertices = tree.size();
    if (Status s = injector_.MaybeFail("structure", doc.name, n); !s.ok()) {
      outcome.error = std::move(s);
      return outcome;
    }
    outcome.structure = validator_.Validate(tree, deadline);
    Clock::time_point t2 = Clock::now();
    outcome.structure_seconds = Seconds(t1, t2);
    if (Status s = injector_.MaybeFail("constraints", doc.name, n); !s.ok()) {
      outcome.error = std::move(s);
      return outcome;
    }
    outcome.constraints = checker_.Check(tree, deadline);
    outcome.constraints_seconds = Seconds(t2, Clock::now());
  } catch (const std::exception& e) {
    outcome.error =
        Status::Internal(std::string("uncaught exception: ") + e.what());
  } catch (...) {
    outcome.error = Status::Internal("uncaught exception");
  }
  return outcome;
}

BatchReport BatchValidator::Run(const std::vector<BatchDocument>& corpus) const {
  BatchReport report;
  report.outcomes.resize(corpus.size());
  Clock::time_point start = Clock::now();
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads <= 1 || corpus.size() <= 1) {
    threads = 1;
    for (size_t i = 0; i < corpus.size(); ++i) {
      report.outcomes[i] = CheckOne(corpus[i]);
    }
  } else {
    ThreadPool pool(threads);
    // Each worker writes only its own outcome slot; the Wait() inside
    // ParallelFor publishes them to this thread.
    pool.ParallelFor(corpus.size(), [&](size_t i) {
      report.outcomes[i] = CheckOne(corpus[i]);
    });
  }
  report.stats.wall_seconds = Seconds(start, Clock::now());
  report.stats.threads = threads;
  report.stats.documents = corpus.size();
  for (const DocumentOutcome& o : report.outcomes) {
    if (o.attempts > 1) report.stats.retries += o.attempts - 1;
    if (o.infrastructure_failure()) {
      ++report.stats.resource_failures;
    } else if (!o.parse.ok()) {
      ++report.stats.parse_failures;
    } else if (!o.structure.ok()) {
      ++report.stats.structurally_invalid;
    } else if (!o.constraints.ok()) {
      ++report.stats.constraint_violating;
    }
    report.stats.total_vertices += o.vertices;
    report.stats.total_violations +=
        o.structure.violations.size() + o.constraints.violations.size();
    report.stats.parse_seconds += o.parse_seconds;
    report.stats.structure_seconds += o.structure_seconds;
    report.stats.constraints_seconds += o.constraints_seconds;
  }
  return report;
}

BatchReport BatchValidator::RunTrees(
    const std::vector<const DataTree*>& corpus) const {
  // Reuse Run()'s fan-out by expressing a tree as a pre-parsed document;
  // the pipeline stages after parse are identical.
  BatchReport report;
  report.outcomes.resize(corpus.size());
  Clock::time_point start = Clock::now();
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  auto check_tree = [&](size_t i) {
    DocumentOutcome& outcome = report.outcomes[i];
    outcome.name = "tree[" + std::to_string(i) + "]";
    try {
      Deadline deadline = DocumentDeadline();
      const DataTree& tree = *corpus[i];
      outcome.vertices = tree.size();
      if (Status s = injector_.MaybeFail("structure", outcome.name);
          !s.ok()) {
        outcome.error = std::move(s);
        return;
      }
      Clock::time_point t1 = Clock::now();
      outcome.structure = validator_.Validate(tree, deadline);
      Clock::time_point t2 = Clock::now();
      outcome.structure_seconds = Seconds(t1, t2);
      if (Status s = injector_.MaybeFail("constraints", outcome.name);
          !s.ok()) {
        outcome.error = std::move(s);
        return;
      }
      outcome.constraints = checker_.Check(tree, deadline);
      outcome.constraints_seconds = Seconds(t2, Clock::now());
    } catch (const std::exception& e) {
      outcome.error =
          Status::Internal(std::string("uncaught exception: ") + e.what());
    } catch (...) {
      outcome.error = Status::Internal("uncaught exception");
    }
  };
  if (threads <= 1 || corpus.size() <= 1) {
    threads = 1;
    for (size_t i = 0; i < corpus.size(); ++i) check_tree(i);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(corpus.size(), check_tree);
  }
  report.stats.wall_seconds = Seconds(start, Clock::now());
  report.stats.threads = threads;
  report.stats.documents = corpus.size();
  for (const DocumentOutcome& o : report.outcomes) {
    if (o.infrastructure_failure()) {
      ++report.stats.resource_failures;
    } else if (!o.structure.ok()) {
      ++report.stats.structurally_invalid;
    } else if (!o.constraints.ok()) {
      ++report.stats.constraint_violating;
    }
    report.stats.total_vertices += o.vertices;
    report.stats.total_violations +=
        o.structure.violations.size() + o.constraints.violations.size();
    report.stats.structure_seconds += o.structure_seconds;
    report.stats.constraints_seconds += o.constraints_seconds;
  }
  return report;
}

}  // namespace xic
