// xicd serving-path latency and throughput: the cost of a cold schema
// compile vs a hot-plan cache hit, dispatcher request latency by verb,
// and end-to-end requests/s over real sockets at 1/4/8 concurrent
// clients. The cold/hot gap is the daemon's reason to exist -- a CLI
// pays the cold bar on every invocation.

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/dispatcher.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace xic;
using namespace xic::serve;

std::string MakeSchema(int elements) {
  std::string subset =
      "<!ELEMENT catalog (entry*)>\n"
      "<!ELEMENT entry EMPTY>\n"
      "<!ATTLIST entry isbn CDATA #REQUIRED>\n";
  // Padding declarations scale the compile cost (and the plan bytes).
  for (int i = 0; i < elements; ++i) {
    subset += "<!ELEMENT pad" + std::to_string(i) + " EMPTY>\n";
  }
  subset +=
      "<!-- xic:constraints\n"
      "key entry.isbn\n"
      "-->\n";
  return "<?xml version=\"1.0\"?>\n<!DOCTYPE catalog [\n" + subset +
         "]>\n<catalog/>\n";
}

std::string MakeDoc(int entries, int salt) {
  std::string xml = "<catalog>";
  for (int i = 0; i < entries; ++i) {
    xml += "<entry isbn=\"i" + std::to_string(salt) + "-" +
           std::to_string(i) + "\"/>";
  }
  xml += "</catalog>";
  return xml;
}

Request MakeRequest(const std::string& verb, const std::string& body,
                    std::map<std::string, std::string> headers = {}) {
  Request request;
  request.verb = verb;
  request.body = body;
  request.body_length = body.size();
  request.headers = std::move(headers);
  return request;
}

// --------------------------------------------------------------------------
// Cold compile vs cache hit

void BM_ServeColdCompile(benchmark::State& state) {
  const std::string schema = MakeSchema(static_cast<int>(state.range(0)));
  int salt = 0;
  for (auto _ : state) {
    Dispatcher dispatcher;  // fresh cache every iteration
    // Distinct fault key per iteration; the schema text (and hash) stay
    // constant so this measures compile, not hashing variance.
    Result<PlanPtr> plan = dispatcher.CompileIntoCache(
        schema, "cold-" + std::to_string(salt++));
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeColdCompile)->Arg(0)->Arg(64)->Arg(256);

void BM_ServeCacheHit(benchmark::State& state) {
  const std::string schema = MakeSchema(static_cast<int>(state.range(0)));
  Dispatcher dispatcher;
  Result<PlanPtr> warm = dispatcher.CompileIntoCache(schema, "warm");
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    bool hit = false;
    Result<PlanPtr> plan = dispatcher.CompileIntoCache(schema, "hot", &hit);
    benchmark::DoNotOptimize(plan);
    if (!hit) state.SkipWithError("expected a cache hit");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeCacheHit)->Arg(0)->Arg(64)->Arg(256);

// --------------------------------------------------------------------------
// Dispatcher request latency (no sockets)

void BM_ServeDispatchValidate(benchmark::State& state) {
  Dispatcher dispatcher;
  Response put = dispatcher.Handle(MakeRequest("schema.put", MakeSchema(0)));
  const std::string schema = put.headers.at("schema");
  const std::string doc = MakeDoc(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    Response response = dispatcher.Handle(
        MakeRequest("validate", doc, {{"schema", schema}, {"id", "b"}}));
    benchmark::DoNotOptimize(response);
    if (!response.status.ok()) {
      state.SkipWithError(response.status.ToString().c_str());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeDispatchValidate)->Arg(10)->Arg(100)->Arg(1000);

// Observability overhead on the hot path: the same cache-hit validate
// with the flight recorder disabled (capacity 0) vs at its default
// size. The delta is the per-request cost of recording -- one striped
// try-lock plus a handful of string assignments -- and is the number
// the "within 5% of the non-observed baseline" acceptance gate watches.
void BM_ServeDispatchObsOverhead(benchmark::State& state) {
  DispatcherOptions options;
  options.flight_recorder.capacity =
      static_cast<size_t>(state.range(0)) == 0 ? 0 : 1024;
  Dispatcher dispatcher(options);
  Response put = dispatcher.Handle(MakeRequest("schema.put", MakeSchema(0)));
  const std::string schema = put.headers.at("schema");
  const std::string doc = MakeDoc(100, 2);
  for (auto _ : state) {
    Response response = dispatcher.Handle(
        MakeRequest("validate", doc, {{"schema", schema}, {"id", "o"}}));
    benchmark::DoNotOptimize(response);
    if (!response.status.ok()) {
      state.SkipWithError(response.status.ToString().c_str());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeDispatchObsOverhead)->Arg(0)->Arg(1)
    ->ArgName("recorder");

// --------------------------------------------------------------------------
// End-to-end sockets: requests/s at N concurrent clients

class BenchClient {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Rpc(const std::string& wire, std::string* body) {
    size_t off = 0;
    while (off < wire.size()) {
      ssize_t n = ::write(fd_, wire.data() + off, wire.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    std::string line;
    char c;
    for (;;) {
      ssize_t n = ::read(fd_, &c, 1);
      if (n <= 0) return false;
      if (c == '\n') break;
      line.push_back(c);
    }
    Result<ResponseHead> head = ParseResponseLine(line);
    if (!head.ok()) return false;
    body->resize(head.value().body_length);
    off = 0;
    while (off < body->size()) {
      ssize_t n = ::read(fd_, body->data() + off, body->size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

 private:
  int fd_ = -1;
};

void BM_ServeSocketRoundtrip(benchmark::State& state) {
  const int kClients = static_cast<int>(state.range(0));
  ServerOptions options;
  options.num_threads = static_cast<size_t>(kClients);
  options.read_timeout_ms = 10000;
  Server server(options);
  if (!server.Start().ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  // Warm the plan through one client so the measured loop is all hits.
  const std::string schema_doc = MakeSchema(0);
  std::string schema;
  {
    BenchClient warm;
    if (!warm.Connect(server.port())) {
      state.SkipWithError("connect failed");
      return;
    }
    std::string body;
    if (!warm.Rpc(FormatRequest(MakeRequest("schema.put", schema_doc)),
                  &body)) {
      state.SkipWithError("schema.put failed");
      return;
    }
    Dispatcher& dispatcher = server.dispatcher();
    schema = dispatcher.cache().stats().misses > 0 && !body.empty()
                 ? body.substr(7, 16)  // "schema <hash>\n"
                 : "";
  }
  if (schema.size() != 16) {
    state.SkipWithError("no schema hash");
    return;
  }
  const std::string wire = FormatRequest(MakeRequest(
      "validate", MakeDoc(50, 7), {{"schema", schema}, {"id", "bench"}}));

  for (auto _ : state) {
    std::atomic<uint64_t> completed{0};
    std::atomic<bool> failed{false};
    const int kPerClient = 50;
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&] {
        BenchClient client;
        if (!client.Connect(server.port())) {
          failed.store(true);
          return;
        }
        std::string body;
        for (int r = 0; r < kPerClient; ++r) {
          if (!client.Rpc(wire, &body)) {
            failed.store(true);
            return;
          }
          completed.fetch_add(1);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    if (failed.load()) state.SkipWithError("client rpc failed");
    benchmark::DoNotOptimize(completed.load());
  }
  state.SetItemsProcessed(state.iterations() * kClients * 50);
  server.Shutdown(/*drain=*/false);
}
BENCHMARK(BM_ServeSocketRoundtrip)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
