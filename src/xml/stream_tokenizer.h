// Pull tokenizer for streaming XML: the DOM parser's grammar re-cast as
// an event source over a chunked reader, so a document can be validated
// without ever materializing its DataTree.
//
// The tokenizer keeps an explicit open-element stack (no recursion -- the
// depth limit can be raised arbitrarily) and a sliding byte buffer that
// holds only the construct currently being tokenized: start tags, end
// tags and the DOCTYPE are buffered whole (they are small), while text
// runs, CDATA sections, comments and PIs stream through in bounded
// chunks. Peak memory is O(open-element depth + largest single tag +
// chunk size), independent of document size.
//
// Conformance matches xml/xml_parser.cc byte-for-byte: the same XML 1.0
// subset (prolog, DOCTYPE with internal subset, elements, attributes,
// character data, comments, CDATA, character/predefined entity
// references; PIs skipped), the same Section 2.11 line-end and Section
// 3.3.3 attribute-value normalization, the same "]]>"-in-content and
// character-reference checks, the same expansion budget, and the same
// error messages with the same line/column positions -- the streaming
// oracle in src/fuzzing/ and tests/stream_test.cc pin this equivalence.
//
// Event order for one document:
//   [Doctype]? StartElement (Text | StartElement | EndElement)* EndElement
//   EndDocument
// Self-closing tags produce a StartElement immediately followed by a
// synthesized EndElement. Text between two structural events may arrive
// as SEVERAL Text events (one run split into chunks); consumers that
// care about whole runs (ignorable-whitespace skipping) aggregate until
// the next non-Text event.

#ifndef XIC_XML_STREAM_TOKENIZER_H_
#define XIC_XML_STREAM_TOKENIZER_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/limits.h"
#include "util/status.h"

namespace xic {

/// A pull source of raw document bytes. Implementations are single-pass:
/// the tokenizer reads each byte exactly once.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Reads up to `max` bytes into `buf`; returns the count read, 0 at
  /// end of input.
  virtual Result<size_t> Read(char* buf, size_t max) = 0;

  /// Total input size when known upfront (strings, regular files) --
  /// lets the tokenizer enforce max_document_bytes with the same value
  /// the DOM parser reports. Nullopt for unbounded streams.
  virtual std::optional<uint64_t> size() const { return std::nullopt; }
};

/// Serves a string_view; the viewed bytes must outlive the source.
class StringSource : public ByteSource {
 public:
  explicit StringSource(std::string_view text) : text_(text) {}
  Result<size_t> Read(char* buf, size_t max) override;
  std::optional<uint64_t> size() const override { return text_.size(); }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

/// Reads a file in chunks; never holds more than one read's worth.
class FileSource : public ByteSource {
 public:
  /// Opens `path`; kInvalidArgument with the errno detail on failure.
  static Result<FileSource> Open(const std::string& path);
  FileSource(FileSource&& other) noexcept;
  FileSource& operator=(FileSource&& other) noexcept;
  ~FileSource() override;

  Result<size_t> Read(char* buf, size_t max) override;
  std::optional<uint64_t> size() const override { return size_; }

 private:
  FileSource(std::FILE* file, std::optional<uint64_t> size)
      : file_(file), size_(size) {}
  std::FILE* file_ = nullptr;
  std::optional<uint64_t> size_;
};

enum class StreamEventKind {
  kDoctype,       // DOCTYPE seen: name + raw internal subset
  kStartElement,  // start tag (attributes normalized + attached)
  kEndElement,    // end tag, or synthesized for a self-closing tag
  kText,          // one chunk of character data (normalized, expanded)
  kEndDocument,   // input fully consumed; terminal
};

/// One tokenizer event. All views are valid only until the next Next()
/// call (they point into the tokenizer's internal buffers).
struct StreamEvent {
  StreamEventKind kind = StreamEventKind::kEndDocument;
  /// Element name (start/end), or DOCTYPE name.
  std::string_view name;
  /// kText: one chunk of character data.
  std::string_view text;
  /// kText: the chunk consists solely of XML S whitespace. A whole run
  /// is ignorable iff every chunk of the run has this set.
  bool text_all_space = true;
  /// kStartElement: attributes in document order; a repeated name keeps
  /// the last value (DOM SetAttribute semantics), in first-seen position.
  struct Attr {
    std::string_view name;
    std::string_view value;  // normalized (Section 3.3.3), expanded
  };
  std::vector<Attr> attrs;
  /// kDoctype: raw text between '[' and ']' (empty when absent).
  std::string_view internal_subset;
  /// kDoctype: a '[' was present, even if the subset is empty (the DOM
  /// parser parses "[]" as an empty DTD but no-'[' as no DTD at all).
  bool has_internal_subset = false;
};

struct StreamTokenizerOptions {
  /// Hard input bounds; the same fields the DOM parser enforces
  /// (document bytes, nesting depth, attributes per element, expansion
  /// output), with the same kResourceExhausted messages.
  ResourceLimits limits;
  /// Checked once per start tag, like the DOM parser.
  Deadline deadline;
  /// Read granularity and the rough ceiling for one kText chunk.
  size_t chunk_bytes = 64 * 1024;
};

class StreamTokenizer {
 public:
  StreamTokenizer(ByteSource& source, StreamTokenizerOptions options = {});

  /// Pulls the next event. After kEndDocument (terminal), further calls
  /// keep returning kEndDocument. An error status is also terminal and
  /// matches the DOM parser's rendering ("XML: <what> at line L, column
  /// C" / limit / deadline statuses).
  Status Next(StreamEvent* event);

  /// Open-element depth (root start tag => 1 while open).
  size_t depth() const { return stack_.size(); }

  /// Bytes of input consumed so far (diagnostics).
  uint64_t consumed_bytes() const { return base_ + start_; }

 private:
  enum class State {
    kProlog,        // before the root element
    kDoctypeClose,  // kDoctype emitted; "]...>" not yet consumed
    kContent,       // inside the document element
    kEpilog,        // after the root element closed
    kDone,
  };

  // -- Buffer management ----------------------------------------------------
  // buf_[start_, end_) is unread input; base_ counts bytes consumed
  // before buf_[0]. Fill() reads more (compacting first), FillPinned()
  // grows without compacting so offsets stay stable while one construct
  // (tag / DOCTYPE) is being scanned.
  Status Fill();
  Status FillPinned();
  /// Makes >= want bytes available if the input has them; sets *have to
  /// the available count (may be < want at EOF).
  Status Ensure(size_t want, size_t* have);
  size_t available() const { return end_ - start_; }
  char at(size_t i) const { return buf_[start_ + i]; }
  bool Peek(std::string_view token) const;
  /// Consumes n bytes, maintaining line/column.
  void Consume(size_t n);

  struct Mark {
    uint64_t abs = 0, line = 1, line_start = 0;
  };

  // -- Grammar --------------------------------------------------------------
  Status NextProlog(StreamEvent* event, bool* emitted);
  Status ParseDoctype(StreamEvent* event);
  Status FinishDoctypeClose();
  Status NextContent(StreamEvent* event);
  Status ParseStartTag(StreamEvent* event);
  Status ParseEndTag(StreamEvent* event);
  Status NextEpilog(StreamEvent* event);
  /// Skips whitespace / comments / non-xml-decl PIs (prolog + epilog).
  Status SkipMisc();
  Status SkipSpace();
  /// True when positioned on "<?xml" with a complete reserved target
  /// (may Fill to see the byte after the target).
  Result<bool> PeekXmlDecl();
  /// Skips a construct ending at `terminator` (comment body, PI, XML
  /// declaration), streaming through the buffer. `what` names the
  /// unterminated error, reported at `mark`; empty `what` consumes
  /// silently to EOF (SkipMisc semantics).
  Status SkipUntil(std::string_view terminator, const std::string& what,
                   const Mark& mark);
  /// Streams CDATA content into text_buf_ until "]]>"; sets *emitted
  /// when a full chunk was flushed into `event` mid-section.
  Status ScanCdata(StreamEvent* event, bool* emitted);
  /// Expands "&...;" at the cursor.
  Status ParseReference(std::string* out);
  void AppendText(char c);
  void AppendTextRun(const char* data, size_t n);
  /// Emits the buffered text as one kText chunk (swaps into emit_buf_).
  void EmitText(StreamEvent* event);

  Mark Here() const;
  Status ErrorAt(const Mark& mark, const std::string& what) const;
  Status Error(const std::string& what) const;

  ByteSource& source_;
  StreamTokenizerOptions options_;

  std::string buf_;
  size_t start_ = 0, end_ = 0;
  uint64_t base_ = 0;        // bytes consumed before buf_[0]
  bool eof_ = false;         // source exhausted
  uint64_t total_read_ = 0;  // all bytes pulled from the source
  bool started_ = false;     // first Next() ran the upfront size check

  uint64_t line_ = 1;        // 1-based line of the cursor
  uint64_t line_start_ = 0;  // absolute offset just after the last '\n'

  State state_ = State::kProlog;
  std::vector<std::string> stack_;  // open element names
  bool pending_end_ = false;        // synthesized EndElement (self-closing)
  std::string last_name_;           // backs kEndElement name views
  std::string doctype_name_;
  std::string doctype_subset_;

  bool in_cdata_ = false;   // mid-CDATA across Next() calls
  bool cdata_cr_ = false;   // CDATA normalizer saw '\r' last
  Mark cdata_mark_;         // section start, for "unterminated CDATA"
  std::string text_buf_;    // pending character data
  std::string emit_buf_;    // backs the previous kText event's view
  bool text_all_space_ = true;
  std::vector<std::string> attr_store_;  // slow-path attr values (reused)
  uint64_t expanded_bytes_ = 0;          // shared expansion budget
};

}  // namespace xic

#endif  // XIC_XML_STREAM_TOKENIZER_H_
