// Implication and finite implication of L_u constraints
// (Section 3.2: Theorem 3.2, Corollary 3.3, Theorem 3.4).
//
// Unrestricted implication is decided by the axiom system I_u:
//   UK-FK        tau.l -> tau                      |- tau.l <= tau.l
//   UFK-K        tau.l <= tau'.l'                  |- tau'.l' -> tau'
//   SFK-K        tau.l <=S tau'.l'                 |- tau'.l' -> tau'
//   UFK-trans    p <= q, q <= r                    |- p <= r
//   USFK-trans   p <=S q, q <= r                   |- p <=S r
//   Inv-SFK      tau(lk).l <-> tau'(lk').l' + keys |- tau.l <=S tau'.lk',
//                                                     tau'.l' <=S tau.lk
// plus Inv-Symm (inverse symmetry) and FK-refl (tau.l <= tau.l is valid in
// every document; see DESIGN.md).
//
// Finite implication adds the cycle rules C_k (I_u^f). The paper's display
// of C_k is reconstructed from the cardinality argument (DESIGN.md): call
// a foreign key tau.m <= tau'.k *tight* when m is a key of tau (k is a key
// by well-formedness); a tight edge forces |ext(tau)| <= |ext(tau')| in
// finite documents. Within a strongly connected component of the
// type-level tight graph all extents have equal cardinality, so every
// tight inclusion inside an SCC is an equality and its reverse inclusion
// is finitely implied.
//
// Under the primary-key restriction (at most one key attribute per type)
// a tight cycle necessarily chains each type's unique key attribute, so
// every reversal is already implied by transitivity around the cycle:
// implication and finite implication coincide (Theorem 3.4).
//
// Complexities: closure construction is O(|Sigma|) (plus SCC computation,
// linear in the graph); each query is a BFS, linear in |Sigma|.

#ifndef XIC_IMPLICATION_LU_SOLVER_H_
#define XIC_IMPLICATION_LU_SOLVER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "constraints/constraint.h"
#include "implication/derivation.h"
#include "util/status.h"

namespace xic {

class LuSolver {
 public:
  /// Builds closures for `sigma`; accepts L_u sets, and also plain unary
  /// L sets (keys + unary foreign keys), which Corollary 3.5 maps to the
  /// same machinery.
  explicit LuSolver(const ConstraintSet& sigma);

  const Status& status() const { return status_; }

  /// Sigma |= phi (unrestricted implication, I_u).
  bool Implies(const Constraint& phi) const;

  /// Sigma |=_f phi (finite implication, I_u + cycle rules).
  bool FinitelyImplies(const Constraint& phi) const;

  /// OK iff Sigma's key closure assigns at most one key attribute to each
  /// element type (the primary-key restriction of Theorem 3.4).
  Status CheckPrimaryKeyRestriction() const;

  /// Human-readable justification for an implied constraint (chain of
  /// rule applications), or nullopt when not implied.
  std::optional<std::string> Explain(const Constraint& phi,
                                     bool finite = false) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  // An attribute pair (tau, l) interned to an index.
  using Node = std::pair<std::string, std::string>;

  int Intern(const std::string& tau, const std::string& attr);
  std::optional<int> Lookup(const std::string& tau,
                            const std::string& attr) const;
  Constraint NodeFk(int from, int to) const;

  Status Build(const ConstraintSet& sigma);
  void BuildFiniteEdges();

  // BFS from `from` to `to` over unary FK edges; returns the node path if
  // reachable. `finite` additionally uses cycle-rule reversals.
  std::optional<std::vector<int>> FindPath(int from, int to,
                                           bool finite) const;
  bool ImpliesInternal(const Constraint& phi, bool finite) const;

  Status status_;
  std::vector<Node> nodes_;
  std::map<Node, int> node_ids_;

  std::vector<std::vector<int>> unary_adj_;         // Sigma's unary FKs
  std::vector<std::vector<int>> unary_adj_finite_;  // + cycle reversals
  std::vector<std::vector<int>> set_adj_;  // Sigma's set FKs + Inv-SFK
  std::set<int> keys_;                     // key closure
  ProofTable base_;  // keys, inverses (with symmetry), derived set FKs
};

}  // namespace xic

#endif  // XIC_IMPLICATION_LU_SOLVER_H_
