#include "model/structural_validator.h"

#include "obs/obs.h"
#include "regex/glushkov.h"
#include "util/strings.h"

namespace xic {

std::string ValidationReport::ToString() const {
  if (ok()) return "valid";
  std::string out;
  if (!status.ok()) out += status.ToString() + "\n";
  for (const Violation& v : violations) {
    out += "vertex " + std::to_string(v.vertex) + ": " + v.message + "\n";
  }
  return out;
}

StructuralValidator::StructuralValidator(const DtdStructure& dtd,
                                         ValidationOptions options)
    : dtd_(dtd), options_(options) {
  for (const std::string& element : dtd_.Elements()) {
    Result<RegexPtr> content = dtd_.ContentModel(element);
    if (content.ok()) {
      GlushkovAutomaton automaton(content.value());
      if (status_.ok()) {
        status_ = CheckLimit(automaton.num_positions(),
                             options_.limits.max_automaton_states,
                             "max_automaton_states",
                             "content model of " + element);
      }
      automata_.emplace(element, std::move(automaton));
    }
  }
}

ValidationReport StructuralValidator::Validate(
    const DataTree& tree, const Deadline& deadline) const {
  obs::ScopedSpan span("validate.structure", "model");
  ValidationReport report = ValidateImpl(tree, deadline);
  span.AddInt("vertices", static_cast<int64_t>(tree.size()));
  span.AddInt("steps", static_cast<int64_t>(report.steps));
  span.AddInt("violations", static_cast<int64_t>(report.violations.size()));
  XIC_COUNTER_ADD("validate.documents", 1);
  XIC_COUNTER_ADD("validate.steps", report.steps);
  XIC_COUNTER_ADD("validate.violations", report.violations.size());
  return report;
}

ValidationReport StructuralValidator::ValidateImpl(
    const DataTree& tree, const Deadline& deadline) const {
  ValidationReport report;
  if (!status_.ok()) {
    report.status = status_;
    return report;
  }
  auto add = [&](VertexId v, std::string msg) {
    if (options_.max_violations == 0 ||
        report.violations.size() < options_.max_violations) {
      report.violations.push_back({v, std::move(msg)});
    }
  };
  auto full = [&] {
    return options_.max_violations != 0 &&
           report.violations.size() >= options_.max_violations;
  };

  if (tree.empty()) {
    add(kInvalidVertex, "empty document");
    return report;
  }
  if (tree.label(tree.root()) != dtd_.root()) {
    add(tree.root(), "root labeled " + tree.label(tree.root()) +
                         ", expected " + dtd_.root());
  }

  for (VertexId v = 0; v < tree.size() && !full(); ++v) {
    if ((v & 0x3F) == 0) {
      if (Status s = deadline.Check("structural validation"); !s.ok()) {
        report.status = std::move(s);
        return report;
      }
    }
    ++report.steps;
    const std::string& tau = tree.label(v);
    if (!dtd_.HasElement(tau)) {
      add(v, "undeclared element type " + tau);
      continue;
    }
    // Children against L(P(tau)).
    auto automaton = automata_.find(tau);
    if (automaton != automata_.end() &&
        !automaton->second.Matches(tree.ChildWord(v))) {
      std::string word = Join(tree.ChildWord(v), " ");
      add(v, "children [" + word + "] do not match content model of " + tau);
    }
    // Attributes: declared <-> present, single-valued are singletons.
    for (const auto& [name, value] : tree.attributes(v)) {
      if (!dtd_.HasAttribute(tau, name)) {
        add(v, "undeclared attribute " + tau + "." + name);
        continue;
      }
      if (dtd_.IsSingleValued(tau, name) && value.size() != 1) {
        add(v, "single-valued attribute " + tau + "." + name + " holds " +
                   std::to_string(value.size()) + " values");
      }
    }
    if (!options_.allow_missing_attributes) {
      for (const std::string& name : dtd_.Attributes(tau)) {
        if (!tree.HasAttribute(v, name)) {
          add(v, "missing declared attribute " + tau + "." + name);
        }
      }
    }
  }
  return report;
}

bool StructuralValidator::AllContentModelsDeterministic() const {
  for (const auto& [element, automaton] : automata_) {
    if (!automaton.IsOneUnambiguous()) return false;
  }
  return true;
}

}  // namespace xic
