// Implication of L constraints under the primary-key restriction
// (Section 3.3, Theorem 3.8 / Corollary 3.9).
//
// The restriction: each element type tau has at most one key
// tau[X] -> tau (its *primary key*), no proper subset of which is a key,
// and every foreign key targets the primary key of its referenced type.
// Under it, implication and finite implication coincide and are decided
// by the axiom system I_p:
//   PK-FK      tau[X] -> tau               |- tau[X] <= tau[X]
//   PFK-K      tau[X] <= tau'[Y]           |- tau'[Y] -> tau'
//   PFK-perm   simultaneous reordering of both sides of a foreign key
//   PFK-trans  tau1[X] <= tau2[Y], tau2[Y] <= tau3[Z] |- tau1[X] <= tau3[Z]
//
// Decision procedure: modulo PFK-perm, a foreign key tau[X] <= tau'[Y] is
// an attribute *bijection* set(X) -> set(Y); since every foreign key into
// tau' targets exactly its primary-key attribute set, PFK-trans is
// composition of bijections along paths in the type graph. The set of
// derivable mappings between any two types is finite (at most |X|!), so a
// worklist fixpoint terminates; queries are closure lookups. The closure
// can be exponential in the key arity (the paper leaves sub-PSPACE
// decision open); bench_lp sweeps the arity to exhibit this.

#ifndef XIC_IMPLICATION_LP_SOLVER_H_
#define XIC_IMPLICATION_LP_SOLVER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "util/limits.h"
#include "util/status.h"

namespace xic {

struct LpOptions {
  /// Maximum mappings in the I_p closure (0 = unlimited). The closure can
  /// be exponential in the key arity; exceeding the cap surfaces as
  /// kResourceExhausted in status().
  size_t max_closure = 0;
  /// Time budget for the closure fixpoint; polled per worklist item.
  Deadline deadline;
};

class LpSolver {
 public:
  /// Builds the I_p closure. `sigma` must be an L set satisfying the
  /// primary-key restriction; violations surface in status().
  explicit LpSolver(const ConstraintSet& sigma, const LpOptions& options = {});

  const Status& status() const { return status_; }

  /// Sigma |= phi (== Sigma |=_f phi under the restriction). Returns an
  /// error if phi itself violates the primary-key restriction relative to
  /// Sigma (e.g. asks about a second key for a type) -- such queries are
  /// outside the restricted implication problem (DESIGN.md discusses the
  /// superkey subtlety).
  Result<bool> Implies(const Constraint& phi) const;

  /// The primary key attribute set of `tau` known to Sigma's closure.
  std::optional<std::set<std::string>> PrimaryKey(
      const std::string& tau) const;

  /// Number of distinct foreign-key mappings in the closure.
  size_t closure_size() const { return mappings_.size(); }

  /// Chain of composed foreign keys justifying an implied inclusion.
  std::optional<std::string> Explain(const Constraint& phi) const;

 private:
  // A foreign-key fact modulo PFK-perm: source type, target type, and the
  // attribute bijection (keyed by source attribute, sorted).
  struct Mapping {
    std::string from_type;
    std::string to_type;
    std::map<std::string, std::string> attr_map;
    auto operator<=>(const Mapping&) const = default;
  };

  Status Build(const ConstraintSet& sigma, const LpOptions& options);
  static std::optional<Mapping> ToMapping(const Constraint& fk);
  Constraint FromMapping(const Mapping& m) const;

  Status status_;
  std::map<std::string, std::set<std::string>> primary_keys_;
  std::set<Mapping> mappings_;
  // Provenance: how each mapping was obtained ("hypothesis", "PK-FK", or
  // "PFK-trans" with the two parents).
  std::map<Mapping, std::pair<std::optional<Mapping>, std::optional<Mapping>>>
      parents_;
};

}  // namespace xic

#endif  // XIC_IMPLICATION_LP_SOLVER_H_
