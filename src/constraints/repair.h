// Constraint repair: turning an inconsistent document into a consistent
// one with minimal, explainable edits (the paper's Section 1 motivates
// constraints for "update anomaly prevention"; this is the mechanical
// half of that story).
//
// Strategies, applied to a violation report in rounds until a fixpoint:
//   * dangling set-valued foreign-key members -> drop the member value;
//   * dangling unary/multi-attribute foreign keys -> optionally create
//     the missing target element (under the root; off by default since
//     it can violate the content model);
//   * missing inverse back-references -> insert the partner's key into
//     the referencing set;
//   * key duplicates and ID conflicts are *not* auto-repaired (no safe
//     canonical choice); they are reported as unrepaired.
//
// Every edit is recorded as a human-readable action.

#ifndef XIC_CONSTRAINTS_REPAIR_H_
#define XIC_CONSTRAINTS_REPAIR_H_

#include <string>
#include <vector>

#include "constraints/checker.h"
#include "constraints/constraint.h"
#include "model/data_tree.h"
#include "model/dtd_structure.h"
#include "util/status.h"

namespace xic {

struct RepairOptions {
  /// Create missing foreign-key targets as new elements under the root.
  bool create_missing_targets = false;
  /// Maximum repair rounds (edits can cascade).
  size_t max_rounds = 8;
};

struct RepairReport {
  /// Human-readable description of each edit, in order.
  std::vector<std::string> actions;
  /// Violations that remain after repair (duplicates, ID conflicts, ...).
  ConstraintReport remaining;
  bool fully_repaired() const { return remaining.ok(); }
};

/// Repairs `tree` in place against (dtd, sigma).
Result<RepairReport> RepairDocument(DataTree* tree, const DtdStructure& dtd,
                                    const ConstraintSet& sigma,
                                    const RepairOptions& options = {});

}  // namespace xic

#endif  // XIC_CONSTRAINTS_REPAIR_H_
