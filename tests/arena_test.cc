// The memory-layout primitives behind the batch pipeline: the Arena bump
// allocator (per-worker scratch, Reset() between documents) and the
// SymbolTable (interned element/attribute names -> dense uint32 ids).
//
// The properties pinned here are the ones the engine's determinism and
// steady-state-allocation guarantees rest on:
//   * arena Reset() reuses blocks instead of growing (no per-document
//     shared-allocator traffic once warm),
//   * symbol ids depend only on the Intern() call sequence, never on
//     which thread runs it,
//   * copying a table rebuilds its string_view index over the copied
//     strings (regression: the defaulted copy kept views into the
//     source's storage, so lookups on the copy dangled).

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "util/arena.h"
#include "util/symbol_table.h"

namespace {

using namespace xic;

// -- Arena -------------------------------------------------------------------

TEST(Arena, AllocateRespectsAlignment) {
  Arena arena;
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void* p = arena.Allocate(3, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(Arena, AllocationsDoNotOverlap) {
  Arena arena;
  std::vector<char*> chunks;
  for (int i = 0; i < 200; ++i) {
    char* p = static_cast<char*>(arena.Allocate(17, 1));
    std::memset(p, i & 0xFF, 17);
    chunks.push_back(p);
  }
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j < 17; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(chunks[i][j]), i & 0xFF)
          << "chunk " << i << " byte " << j;
    }
  }
}

TEST(Arena, CopyStringRoundTripsAndStaysStable) {
  Arena arena;
  std::string original = "a value long enough to defeat any SSO buffer";
  std::string_view copy = arena.CopyString(original);
  EXPECT_EQ(copy, original);
  EXPECT_NE(copy.data(), original.data());
  // Later allocations must not clobber earlier copies.
  for (int i = 0; i < 1000; ++i) arena.CopyString("filler-filler-filler");
  EXPECT_EQ(copy, original);
  EXPECT_TRUE(arena.CopyString("").empty());
}

TEST(Arena, ResetReusesBlocksInsteadOfGrowing) {
  Arena arena;
  // Warm up: ~100 KB across doubling blocks.
  auto churn = [&] {
    for (int i = 0; i < 100; ++i) arena.Allocate(1024, 8);
  };
  churn();
  EXPECT_GT(arena.num_blocks(), 1u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Steady state: Reset() keeps the largest block, which fits the whole
  // per-document working set, so repeating the same workload never asks
  // the shared allocator for another block.
  arena.Reset();
  size_t steady = arena.num_blocks();
  for (int round = 0; round < 10; ++round) {
    churn();
    arena.Reset();
    EXPECT_LE(arena.num_blocks(), steady) << "round " << round;
  }
}

TEST(Arena, OversizedAllocationGetsDedicatedBlock) {
  Arena arena;
  size_t big = Arena::kMaxBlockBytes + 4096;
  char* p = static_cast<char*>(arena.Allocate(big, 8));
  ASSERT_NE(p, nullptr);
  p[0] = 'x';
  p[big - 1] = 'y';  // the whole range must be addressable
  EXPECT_EQ(p[0], 'x');
  EXPECT_EQ(p[big - 1], 'y');
}

TEST(Arena, ArenaVectorAndHashMapWork) {
  Arena arena;
  ArenaVector<int> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i);

  std::unordered_map<int, int, std::hash<int>, std::equal_to<int>,
                     ArenaAllocator<std::pair<const int, int>>>
      m(8, ArenaAllocator<std::pair<const int, int>>(&arena));
  for (int i = 0; i < 1000; ++i) m[i] = i * i;
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(m.at(i), i * i);
}

// -- SymbolTable ---------------------------------------------------------

TEST(SymbolTable, InternAssignsDenseIdsInFirstInternOrder) {
  SymbolTable table;
  EXPECT_EQ(table.Intern("catalog"), 0u);
  EXPECT_EQ(table.Intern("book"), 1u);
  EXPECT_EQ(table.Intern("catalog"), 0u);  // repeat: same id
  EXPECT_EQ(table.Intern("isbn"), 2u);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.name(0), "catalog");
  EXPECT_EQ(table.name(1), "book");
  EXPECT_EQ(table.name(2), "isbn");
}

TEST(SymbolTable, FindNeverInterns) {
  SymbolTable table;
  table.Intern("present");
  EXPECT_EQ(table.Find("present"), 0u);
  EXPECT_EQ(table.Find("absent"), kInvalidSymbol);
  EXPECT_EQ(table.size(), 1u);  // Find("absent") must not have interned
}

TEST(SymbolTable, NameReferencesStayStableAcrossGrowth) {
  SymbolTable table;
  table.Intern("anchor-name-long-enough-to-defeat-sso");
  const std::string* anchor = &table.name(0);
  for (int i = 0; i < 5000; ++i) {
    table.Intern("grow-" + std::to_string(i));
  }
  EXPECT_EQ(&table.name(0), anchor);  // deque storage: no relocation
  EXPECT_EQ(table.Find("anchor-name-long-enough-to-defeat-sso"), 0u);
}

// Regression: the implicitly-defaulted copy left the copy's index keyed
// by string_views into the *source* table's storage, so lookups on the
// copy read freed memory once the source was gone.
TEST(SymbolTable, CopyOutlivesSourceWithWorkingLookups) {
  SymbolTable copy;
  {
    SymbolTable original;
    for (int i = 0; i < 64; ++i) {
      original.Intern("element-name-longer-than-sso-" + std::to_string(i));
    }
    copy = original;
  }  // original (and its strings) destroyed here
  EXPECT_EQ(copy.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    std::string name = "element-name-longer-than-sso-" + std::to_string(i);
    EXPECT_EQ(copy.Find(name), static_cast<Symbol>(i)) << name;
    EXPECT_EQ(copy.name(static_cast<Symbol>(i)), name);
  }
  // The copy must also keep working after further interning.
  EXPECT_EQ(copy.Intern("fresh"), 64u);
  EXPECT_EQ(copy.Find("element-name-longer-than-sso-7"), 7u);
}

TEST(SymbolTable, MoveTransfersLookupsAndEmptiesSource) {
  SymbolTable source;
  source.Intern("alpha-long-enough-to-defeat-sso");
  source.Intern("beta-long-enough-to-defeat-sso");
  SymbolTable moved(std::move(source));
  EXPECT_EQ(moved.Find("alpha-long-enough-to-defeat-sso"), 0u);
  EXPECT_EQ(moved.Find("beta-long-enough-to-defeat-sso"), 1u);
  EXPECT_TRUE(source.empty());  // NOLINT(bugprone-use-after-move): pinned
  EXPECT_EQ(source.Find("alpha-long-enough-to-defeat-sso"), kInvalidSymbol);
}

// The engine's determinism contract depends on this: a table built from a
// document's parse order gets the same ids no matter which pool worker
// built it. 16 threads each intern the same sequence (with duplicates)
// into their own table; every table must be identical.
TEST(SymbolTable, InterningIsDeterministicAcrossThreads) {
  std::vector<std::string> sequence;
  for (int i = 0; i < 500; ++i) {
    sequence.push_back("name-" + std::to_string(i % 37));  // duplicates
  }
  const int kThreads = 16;
  std::vector<SymbolTable> tables(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (const std::string& name : sequence) tables[t].Intern(name);
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_EQ(tables[0].size(), 37u);
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(tables[t].size(), tables[0].size()) << "thread " << t;
    for (Symbol s = 0; s < tables[0].size(); ++s) {
      ASSERT_EQ(tables[t].name(s), tables[0].name(s))
          << "thread " << t << " symbol " << s;
    }
  }
}

}  // namespace
