// Persistence for DTDs *with constraints* (DTD^C, Definition 2.3).
//
// Plain DTDs have no syntax for the paper's constraint languages; this
// module round-trips a DTD^C through standard DTD text by embedding the
// constraint set in a structured comment that any other processor will
// ignore:
//
//   <!ELEMENT entry (title, publisher)>
//   <!ATTLIST entry isbn CDATA #REQUIRED>
//   <!-- xic:constraints language=L_u
//     key entry.isbn
//     sfk ref.to -> entry.isbn
//   -->
//
// The comment body uses the textual constraint syntax of
// constraints/constraint_parser.h. A document whose internal subset
// carries such a block is fully self-describing: structure and
// semantics travel together, which is the paper's practical goal.

#ifndef XIC_XML_DTDC_IO_H_
#define XIC_XML_DTDC_IO_H_

#include <optional>
#include <string>

#include "constraints/constraint.h"
#include "model/dtd_structure.h"
#include "util/status.h"
#include "xml/xml_parser.h"

namespace xic {

/// A parsed DTD^C: structure plus (optionally) its constraint set.
struct DtdC {
  DtdStructure dtd;
  std::optional<ConstraintSet> sigma;
};

/// Renders a constraint in the textual statement syntax ("key entry.isbn",
/// "fk a[x,y] -> b[u,v]", "inverse a(k).r <-> b(k2).s", ...).
std::string WriteConstraintStatement(const Constraint& c);

/// The "<!-- xic:constraints ... -->" block for `sigma`.
std::string WriteConstraintBlock(const ConstraintSet& sigma);

/// DTD declarations followed by the constraint block.
std::string WriteDtdC(const DtdStructure& dtd, const ConstraintSet& sigma);

/// Parses DTD text, recovering an embedded constraint block if present.
Result<DtdC> ParseDtdC(const std::string& text, const std::string& root);

/// A complete self-describing document: XML with a DOCTYPE internal
/// subset carrying declarations and the constraint block.
std::string WriteDocumentWithDtdC(const DataTree& tree,
                                  const DtdStructure& dtd,
                                  const ConstraintSet& sigma);

/// Parses a document and recovers the constraint set from its internal
/// subset (sigma is nullopt when the subset has no xic block).
struct SelfDescribingDocument {
  XmlDocument document;
  std::optional<ConstraintSet> sigma;
};
Result<SelfDescribingDocument> ParseDocumentWithDtdC(
    const std::string& text, const XmlParseOptions& options = {});

}  // namespace xic

#endif  // XIC_XML_DTDC_IO_H_
