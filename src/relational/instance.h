// Relational instances: bags of tuples per relation, with integrity
// checking against a RelationalSchema (keys and foreign keys) -- the
// relational counterpart of the XML ConstraintChecker, used to verify
// that XML export preserves constraint satisfaction.

#ifndef XIC_RELATIONAL_INSTANCE_H_
#define XIC_RELATIONAL_INSTANCE_H_

#include <map>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "util/status.h"

namespace xic {

using RelationalTuple = std::vector<std::string>;

class RelationalInstance {
 public:
  explicit RelationalInstance(const RelationalSchema& schema)
      : schema_(schema) {}

  /// Appends a tuple; fails on arity mismatch or unknown relation.
  Status Insert(const std::string& relation, RelationalTuple tuple);

  const std::vector<RelationalTuple>& Rows(const std::string& relation) const;

  /// Checks every key and foreign key of the schema; returns the list of
  /// violation messages (empty = consistent).
  std::vector<std::string> CheckIntegrity() const;

  const RelationalSchema& schema() const { return schema_; }

 private:
  const RelationalSchema& schema_;
  std::map<std::string, std::vector<RelationalTuple>> rows_;
};

}  // namespace xic

#endif  // XIC_RELATIONAL_INSTANCE_H_
