#include "implication/l_general_solver.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "obs/obs.h"

namespace xic {

const char* ImplicationOutcomeToString(ImplicationOutcome outcome) {
  switch (outcome) {
    case ImplicationOutcome::kImplied:
      return "implied";
    case ImplicationOutcome::kNotImplied:
      return "not implied";
    case ImplicationOutcome::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

Status ValidateL(const ConstraintSet& sigma) {
  if (sigma.language != Language::kL) {
    return Status::InvalidArgument("LGeneralSolver requires L constraints");
  }
  for (const Constraint& c : sigma.constraints) {
    if (c.kind != ConstraintKind::kKey &&
        c.kind != ConstraintKind::kForeignKey) {
      return Status::InvalidArgument("constraint kind not in L: " +
                                     c.ToString());
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// The chase.
// ---------------------------------------------------------------------------

class Chase {
 public:
  Chase(const ConstraintSet& sigma, const Constraint& phi,
        const GeneralOptions& options)
      : sigma_(sigma), phi_(phi), options_(options) {}

  GeneralResult Run() {
    CollectSchema();
    SeedTableau();
    GeneralResult result;
    bool changed = true;
    while (changed) {
      if (Status s = options_.deadline.Check("chase"); !s.ok()) {
        result.outcome = ImplicationOutcome::kUnknown;
        result.chase_steps = steps_;
        result.decided_by = "deadline";
        result.status = std::move(s);
        return result;
      }
      if (steps_ > options_.max_chase_steps ||
          TotalRows() > options_.max_chase_rows) {
        result.outcome = ImplicationOutcome::kUnknown;
        result.chase_steps = steps_;
        result.decided_by = "bounds";
        // Not CheckLimit: these are plain budgets where 0 is a valid
        // (tiny) bound, not "unlimited".
        result.status =
            steps_ > options_.max_chase_steps
                ? Status::LimitExceeded(
                      "max_chase_steps",
                      "chase rule applications (" + std::to_string(steps_) +
                          " exceeds limit " +
                          std::to_string(options_.max_chase_steps) + ")")
                : Status::LimitExceeded(
                      "max_chase_rows",
                      "chase tableau rows (" + std::to_string(TotalRows()) +
                          " exceeds limit " +
                          std::to_string(options_.max_chase_rows) + ")");
        return result;
      }
      changed = false;
      for (const Constraint& c : sigma_.constraints) {
        if (c.kind == ConstraintKind::kKey) {
          changed |= ApplyKey(c);
        } else {
          changed |= ApplyForeignKey(c);
        }
      }
    }
    result.chase_steps = steps_;
    result.decided_by = "chase";
    // The chase instance is universal: phi is implied iff it holds here.
    if (phi_.kind == ConstraintKind::kKey) {
      // Implied iff the two designated rows merged.
      bool merged = !alive_[d1_.first][d1_.second] ||
                    !alive_[d2_.first][d2_.second] || d1_ == d2_;
      result.outcome = merged ? ImplicationOutcome::kImplied
                              : ImplicationOutcome::kNotImplied;
    } else {
      std::vector<int> want = Tuple(d1_.first, d1_.second, phi_.attrs);
      bool found = FindMatch(phi_.ref_element, phi_.ref_attrs, want) >= 0;
      result.outcome = found ? ImplicationOutcome::kImplied
                             : ImplicationOutcome::kNotImplied;
    }
    if (result.outcome == ImplicationOutcome::kNotImplied) {
      result.countermodel = Materialize();
    }
    return result;
  }

 private:
  using RowRef = std::pair<std::string, size_t>;  // (type, row index)

  void CollectSchema() {
    auto visit = [&](const Constraint& c) {
      for (const std::string& a : c.attrs) schema_[c.element].insert(a);
      if (c.kind == ConstraintKind::kForeignKey) {
        for (const std::string& a : c.ref_attrs) {
          schema_[c.ref_element].insert(a);
        }
      }
    };
    for (const Constraint& c : sigma_.constraints) visit(c);
    visit(phi_);
    for (const auto& [type, attrs] : schema_) {
      std::vector<std::string> sorted(attrs.begin(), attrs.end());
      attr_index_[type] = {};
      for (size_t i = 0; i < sorted.size(); ++i) {
        attr_index_[type][sorted[i]] = i;
      }
      attr_names_[type] = std::move(sorted);
      rows_[type];
      alive_[type];
    }
  }

  void SeedTableau() {
    if (phi_.kind == ConstraintKind::kKey) {
      // Two distinct rows agreeing exactly on phi's key attributes.
      std::map<std::string, int> shared;
      for (const std::string& a : phi_.attrs) shared[a] = Fresh();
      d1_ = AddRow(phi_.element, shared);
      d2_ = AddRow(phi_.element, shared);
    } else {
      d1_ = AddRow(phi_.element, {});
    }
  }

  int Fresh() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return static_cast<int>(parent_.size()) - 1;
  }

  int Find(int v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

  RowRef AddRow(const std::string& type,
                const std::map<std::string, int>& fixed) {
    std::vector<int> row;
    for (const std::string& attr : attr_names_[type]) {
      auto it = fixed.find(attr);
      row.push_back(it != fixed.end() ? it->second : Fresh());
    }
    rows_[type].push_back(std::move(row));
    alive_[type].push_back(true);
    return {type, rows_[type].size() - 1};
  }

  size_t TotalRows() const {
    size_t total = 0;
    for (const auto& [type, rows] : rows_) total += rows.size();
    return total;
  }

  std::vector<int> Tuple(const std::string& type, size_t row,
                         const std::vector<std::string>& attrs) {
    std::vector<int> out;
    for (const std::string& a : attrs) {
      out.push_back(Find(rows_[type][row][attr_index_[type].at(a)]));
    }
    return out;
  }

  // Index of an alive row of `type` whose `attrs` tuple equals `want`, or
  // -1.
  int FindMatch(const std::string& type, const std::vector<std::string>& attrs,
                const std::vector<int>& want) {
    if (rows_.count(type) == 0) return -1;
    for (size_t i = 0; i < rows_[type].size(); ++i) {
      if (!alive_[type][i]) continue;
      if (Tuple(type, i, attrs) == want) return static_cast<int>(i);
    }
    return -1;
  }

  // Key rule: two alive rows agreeing on the key merge into one node.
  // Applies every merge found in one pass.
  bool ApplyKey(const Constraint& key) {
    auto& rows = rows_[key.element];
    auto& alive = alive_[key.element];
    std::map<std::vector<int>, size_t> seen;
    bool fired = false;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!alive[i]) continue;
      std::vector<int> tuple = Tuple(key.element, i, key.attrs);
      auto [it, inserted] = seen.emplace(std::move(tuple), i);
      if (inserted) continue;
      // Merge row i into row it->second: unify all attribute values.
      size_t keep = it->second;
      for (size_t a = 0; a < rows[i].size(); ++a) {
        Union(rows[keep][a], rows[i][a]);
      }
      alive[i] = false;
      if (d2_ == RowRef{key.element, i}) d2_ = {key.element, keep};
      if (d1_ == RowRef{key.element, i}) d1_ = {key.element, keep};
      ++steps_;
      fired = true;
    }
    return fired;
  }

  // Foreign-key rule: every source row needs a matching target row.
  // Adds all missing targets for the current pass at once (deduplicated
  // by wanted tuple), indexing the target extent once.
  bool ApplyForeignKey(const Constraint& fk) {
    auto& rows = rows_[fk.element];
    auto& alive = alive_[fk.element];
    std::set<std::vector<int>> targets;
    auto& ref_rows = rows_[fk.ref_element];
    for (size_t i = 0; i < ref_rows.size(); ++i) {
      if (alive_[fk.ref_element][i]) {
        targets.insert(Tuple(fk.ref_element, i, fk.ref_attrs));
      }
    }
    std::set<std::vector<int>> missing;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!alive[i]) continue;
      std::vector<int> want = Tuple(fk.element, i, fk.attrs);
      if (targets.count(want) == 0) missing.insert(std::move(want));
    }
    for (const std::vector<int>& want : missing) {
      std::map<std::string, int> fixed;
      for (size_t a = 0; a < fk.ref_attrs.size(); ++a) {
        fixed[fk.ref_attrs[a]] = want[a];
      }
      AddRow(fk.ref_element, fixed);
      ++steps_;
    }
    return !missing.empty();
  }

  TableInstance Materialize() {
    TableInstance out;
    for (const auto& [type, rows] : rows_) {
      for (size_t i = 0; i < rows.size(); ++i) {
        if (!alive_[type][i]) continue;
        TableRow row;
        for (size_t a = 0; a < rows[i].size(); ++a) {
          row[attr_names_[type][a]] = {
              "v" + std::to_string(Find(rows[i][a]))};
        }
        out.tables[type].push_back(std::move(row));
      }
    }
    return out;
  }

  const ConstraintSet& sigma_;
  const Constraint& phi_;
  const GeneralOptions& options_;

  std::map<std::string, std::set<std::string>> schema_;
  std::map<std::string, std::vector<std::string>> attr_names_;
  std::map<std::string, std::map<std::string, size_t>> attr_index_;
  std::map<std::string, std::vector<std::vector<int>>> rows_;
  std::map<std::string, std::vector<bool>> alive_;
  std::vector<int> parent_;  // union-find over value ids
  RowRef d1_, d2_;           // designated witness rows
  size_t steps_ = 0;
};

// ---------------------------------------------------------------------------
// Sound axiomatic prover: foreign-key mappings closed under composition
// with projection; keys closed under superkey weakening.
// ---------------------------------------------------------------------------

struct FkMapping {
  std::string from_type;
  std::string to_type;
  std::map<std::string, std::string> attr_map;
  auto operator<=>(const FkMapping&) const = default;
};

std::optional<FkMapping> MakeMapping(const Constraint& fk) {
  FkMapping m;
  m.from_type = fk.element;
  m.to_type = fk.ref_element;
  for (size_t i = 0; i < fk.attrs.size(); ++i) {
    auto [it, inserted] = m.attr_map.emplace(fk.attrs[i], fk.ref_attrs[i]);
    if (!inserted && it->second != fk.ref_attrs[i]) return std::nullopt;
  }
  return m;
}

}  // namespace

LGeneralSolver::LGeneralSolver(const ConstraintSet& sigma,
                               GeneralOptions options)
    : sigma_(sigma), options_(options) {
  status_ = ValidateL(sigma_);
}

bool LGeneralSolver::ProvablyImplies(const Constraint& phi) const {
  if (!status_.ok()) return false;
  if (phi.kind == ConstraintKind::kKey) {
    // Superkey weakening: some known key's attribute set is contained in
    // phi's. Known keys: Sigma's keys plus foreign-key targets (the
    // well-formedness side condition makes targets keys).
    std::set<std::string> want(phi.attrs.begin(), phi.attrs.end());
    for (const Constraint& c : sigma_.constraints) {
      std::set<std::string> have;
      std::string type;
      if (c.kind == ConstraintKind::kKey) {
        type = c.element;
        have.insert(c.attrs.begin(), c.attrs.end());
      } else {
        type = c.ref_element;
        have.insert(c.ref_attrs.begin(), c.ref_attrs.end());
      }
      if (type == phi.element &&
          std::includes(want.begin(), want.end(), have.begin(), have.end())) {
        return true;
      }
    }
    return false;
  }
  if (phi.kind != ConstraintKind::kForeignKey) return false;
  // FK-refl.
  if (phi.element == phi.ref_element && phi.attrs == phi.ref_attrs) {
    return true;
  }
  std::optional<FkMapping> goal = MakeMapping(phi);
  if (!goal.has_value()) return false;

  // Closure of foreign-key mappings under composition-with-projection:
  // m1: t1 -> t2 composes with m2: t2 -> t3 when dom(m2) is contained in
  // range(m1) (project m1 first -- projection of a foreign key is sound).
  std::set<FkMapping> closure;
  std::deque<FkMapping> worklist;
  auto add = [&](FkMapping m) {
    if (closure.size() >= options_.max_derived) return;
    auto [it, inserted] = closure.insert(m);
    if (inserted) worklist.push_back(std::move(m));
  };
  for (const Constraint& c : sigma_.constraints) {
    if (c.kind != ConstraintKind::kForeignKey) continue;
    if (std::optional<FkMapping> m = MakeMapping(c)) add(std::move(*m));
  }
  auto compose = [&](const FkMapping& m1, const FkMapping& m2) {
    if (m1.to_type != m2.from_type) return;
    FkMapping out;
    out.from_type = m1.from_type;
    out.to_type = m2.to_type;
    // range(m1) must cover dom(m2).
    std::set<std::string> range1;
    for (const auto& [x, y] : m1.attr_map) range1.insert(y);
    for (const auto& [y, z] : m2.attr_map) {
      if (range1.count(y) == 0) return;
    }
    for (const auto& [x, y] : m1.attr_map) {
      auto it = m2.attr_map.find(y);
      if (it != m2.attr_map.end()) out.attr_map.emplace(x, it->second);
    }
    if (!out.attr_map.empty()) add(std::move(out));
  };
  while (!worklist.empty()) {
    FkMapping m = worklist.front();
    worklist.pop_front();
    std::vector<FkMapping> snapshot(closure.begin(), closure.end());
    for (const FkMapping& other : snapshot) {
      compose(m, other);
      compose(other, m);
    }
  }
  // phi is provable if some closure mapping extends it (projection).
  for (const FkMapping& m : closure) {
    if (m.from_type != goal->from_type || m.to_type != goal->to_type) {
      continue;
    }
    bool covers = true;
    for (const auto& [x, y] : goal->attr_map) {
      auto it = m.attr_map.find(x);
      if (it == m.attr_map.end() || it->second != y) {
        covers = false;
        break;
      }
    }
    if (covers) return true;
  }
  return false;
}

GeneralResult LGeneralSolver::Decide(const Constraint& phi) const {
  GeneralResult result;
  if (!status_.ok()) return result;
  if (ProvablyImplies(phi)) {
    result.outcome = ImplicationOutcome::kImplied;
    result.decided_by = "axioms";
    return result;
  }
  return ChaseImplication(sigma_, phi, options_);
}

GeneralResult ChaseImplication(const ConstraintSet& sigma,
                               const Constraint& phi,
                               const GeneralOptions& options) {
  GeneralResult bad;
  if (!ValidateL(sigma).ok() || (phi.kind != ConstraintKind::kKey &&
                                 phi.kind != ConstraintKind::kForeignKey)) {
    return bad;
  }
  obs::ScopedSpan span("chase.run", "implication");
  GeneralResult result = Chase(sigma, phi, options).Run();
  XIC_COUNTER_ADD("chase.runs", 1);
  XIC_COUNTER_ADD("chase.steps", result.chase_steps);
  XIC_HISTOGRAM_OBSERVE("chase.steps_per_run", result.chase_steps,
                        {1.0, 8.0, 64.0, 512.0, 4096.0});
  span.AddInt("steps", static_cast<int64_t>(result.chase_steps));
  span.AddString("decided_by", result.decided_by);
  span.AddString("outcome", ImplicationOutcomeToString(result.outcome));
  return result;
}

}  // namespace xic
