// Static analysis at scale: the full xiclint rule pipeline over
// generated (DTD, Sigma) corpora. Measures the whole-report path
// (what a CI lint job pays per schema) and the two super-linear
// suspects in isolation: the redundancy rule (|Sigma| solver builds)
// and the extent-bound fixpoint behind the consistency rule.

#include <benchmark/benchmark.h>

#include <string>

#include "analysis/analyzer.h"
#include "constraints/constraint.h"
#include "xml/dtd_parser.h"

namespace {

using namespace xic;

// A wide catalog schema: the root fans out to n record types, each with
// a keyed attribute, a reference to its predecessor, and a couple of
// child types to give the grammar rules real work.
std::string CatalogDtd(int n) {
  std::string dtd = "<!ELEMENT catalog (";
  for (int i = 0; i < n; ++i) {
    if (i > 0) dtd += ", ";
    dtd += "rec" + std::to_string(i) + "*";
  }
  dtd += ")>\n";
  for (int i = 0; i < n; ++i) {
    std::string t = "rec" + std::to_string(i);
    dtd += "<!ELEMENT " + t + " (name, note*)>\n";
    dtd += "<!ATTLIST " + t + " id CDATA #REQUIRED ref CDATA #IMPLIED>\n";
  }
  dtd += "<!ELEMENT name (#PCDATA)>\n<!ELEMENT note (#PCDATA)>\n";
  return dtd;
}

ConstraintSet CatalogSigma(int n) {
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  for (int i = 0; i < n; ++i) {
    std::string t = "rec" + std::to_string(i);
    sigma.constraints.push_back(Constraint::UnaryKey(t, "id"));
    if (i > 0) {
      sigma.constraints.push_back(Constraint::UnaryForeignKey(
          t, "ref", "rec" + std::to_string(i - 1), "id"));
    }
  }
  return sigma;
}

DtdStructure MustDtd(const std::string& text, const std::string& root) {
  Result<DtdStructure> dtd = ParseDtd(text, root);
  if (!dtd.ok()) std::abort();
  return dtd.value();
}

void BM_LintFullReport(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DtdStructure dtd = MustDtd(CatalogDtd(n), "catalog");
  ConstraintSet sigma = CatalogSigma(n);
  Analyzer analyzer;
  for (auto _ : state) {
    AnalysisReport report = analyzer.Analyze(dtd, sigma);
    benchmark::DoNotOptimize(report.diagnostics.size());
  }
  state.SetComplexityN(static_cast<int64_t>(sigma.constraints.size()));
}
BENCHMARK(BM_LintFullReport)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

void BM_LintRedundancyRule(benchmark::State& state) {
  // One LuSolver build per constraint: the quadratic tail of the
  // pipeline, benchmarked alone so regressions are attributable.
  int n = static_cast<int>(state.range(0));
  DtdStructure dtd = MustDtd(CatalogDtd(n), "catalog");
  ConstraintSet sigma = CatalogSigma(n);
  Analyzer analyzer;
  AnalysisOptions options;
  options.rules = {"redundancy"};
  for (auto _ : state) {
    AnalysisReport report = analyzer.Analyze(dtd, sigma, options);
    benchmark::DoNotOptimize(report.diagnostics.size());
  }
  state.SetComplexityN(static_cast<int64_t>(sigma.constraints.size()));
}
BENCHMARK(BM_LintRedundancyRule)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

void BM_LintConsistencyRule(benchmark::State& state) {
  // Extent-bound fixpoints plus the tight-edge relaxation.
  int n = static_cast<int>(state.range(0));
  DtdStructure dtd = MustDtd(CatalogDtd(n), "catalog");
  ConstraintSet sigma = CatalogSigma(n);
  Analyzer analyzer;
  AnalysisOptions options;
  options.rules = {"consistency"};
  for (auto _ : state) {
    AnalysisReport report = analyzer.Analyze(dtd, sigma, options);
    benchmark::DoNotOptimize(report.diagnostics.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LintConsistencyRule)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

void BM_LintGrammarRulesOnly(benchmark::State& state) {
  // Reachability + productivity + Glushkov determinism over the DTD,
  // independent of |Sigma|.
  int n = static_cast<int>(state.range(0));
  DtdStructure dtd = MustDtd(CatalogDtd(n), "catalog");
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  Analyzer analyzer;
  AnalysisOptions options;
  options.rules = {"reachability", "productivity", "determinism"};
  for (auto _ : state) {
    AnalysisReport report = analyzer.Analyze(dtd, sigma, options);
    benchmark::DoNotOptimize(report.rules_run.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LintGrammarRulesOnly)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

void BM_LintJsonRendering(benchmark::State& state) {
  // Rendering cost for a report dense with findings (every record type
  // missing, so one XIC001 per constraint).
  int n = static_cast<int>(state.range(0));
  DtdStructure dtd = MustDtd(
      "<!ELEMENT catalog (#PCDATA)>", "catalog");
  ConstraintSet sigma = CatalogSigma(n);
  AnalysisReport report = Analyzer().Analyze(dtd, sigma);
  for (auto _ : state) {
    std::string json = report.ToJson();
    benchmark::DoNotOptimize(json.size());
  }
  state.SetComplexityN(static_cast<int64_t>(report.diagnostics.size()));
}
BENCHMARK(BM_LintJsonRendering)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity(benchmark::oN);

}  // namespace
