// Capability-annotated synchronization primitives.
//
// Clang's thread-safety analysis (-Wthread-safety) is a compile-time
// type system for lock discipline: mutexes are *capabilities*, data
// members declare which capability guards them (XIC_GUARDED_BY), and
// functions declare which capabilities they need (XIC_REQUIRES), acquire
// (XIC_ACQUIRE), or must not hold (XIC_EXCLUDES). The analysis then
// proves on *every* path -- not just the schedules a test or TSan
// happens to execute -- that no guarded member is touched without its
// lock and that declared lock orders (XIC_ACQUIRED_BEFORE, checked under
// -Wthread-safety-beta) are never inverted.
//
// The std primitives carry no annotations, so this header wraps them:
//
//   util::Mutex      std::mutex as a capability ("mutex")
//   util::MutexLock  scoped acquisition, with Unlock()/Lock() relock
//                    support for condition-variable hand-off patterns
//   util::CondVar    std::condition_variable bound to util::Mutex;
//                    Wait() requires (and is understood to keep) the
//                    capability across the internal release/reacquire
//
// On non-Clang compilers every macro expands to nothing and the wrappers
// are zero-cost forwarding shims, so GCC builds are unaffected; the CI
// `static-analysis` job builds with Clang and -Werror, which is what
// makes the annotations load-bearing. tests/compile_fail/ pins that the
// annotations actually reject the bug classes they claim to
// (unlocked guarded access, unheld XIC_REQUIRES, lock-order inversion).
//
// Lock hierarchy: the codebase's annotated mutexes are *leaf locks* by
// construction -- no annotated mutex is acquired while another is held.
// DESIGN.md's "Static analysis" section is the canonical statement of
// that invariant (and of the one historical violation it replaced);
// XIC_ACQUIRED_BEFORE exists for the day a genuine two-level order is
// needed and is regression-tested by tests/compile_fail/.
//
// Idiom cheat sheet (all enforced at compile time under Clang):
//
//   class Cache {
//    public:
//     void Insert(K k, V v) XIC_EXCLUDES(mutex_) {
//       util::MutexLock lock(&mutex_);
//       InsertLocked(std::move(k), std::move(v));
//     }
//    private:
//     void InsertLocked(K k, V v) XIC_REQUIRES(mutex_);
//     util::Mutex mutex_;
//     std::map<K, V> entries_ XIC_GUARDED_BY(mutex_);
//   };

#ifndef XIC_UTIL_SYNC_H_
#define XIC_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Annotation macros. Clang-only; every other compiler sees empty tokens.
// The spellings follow the Clang thread-safety attribute reference (and
// the abseil thread_annotations.h conventions they standardized).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define XIC_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define XIC_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a capability (a lockable resource).
#define XIC_CAPABILITY(x) XIC_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define XIC_SCOPED_CAPABILITY XIC_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define XIC_GUARDED_BY(x) XIC_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define XIC_PT_GUARDED_BY(x) XIC_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-order edges: this mutex must be acquired before/after the listed
/// ones. Violations diagnose under -Wthread-safety-beta.
#define XIC_ACQUIRED_BEFORE(...) \
  XIC_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define XIC_ACQUIRED_AFTER(...) \
  XIC_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the listed mutexes
/// (they are held, not acquired, across the call).
#define XIC_REQUIRES(...) \
  XIC_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The function acquires the listed mutexes (held on return).
#define XIC_ACQUIRE(...) \
  XIC_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The function releases the listed mutexes (held at entry).
#define XIC_RELEASE(...) \
  XIC_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The function acquires the mutex iff it returns the given value.
#define XIC_TRY_ACQUIRE(...) \
  XIC_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// The function must be called *without* the listed mutexes held
/// (deadlock prevention for self-locking public entry points).
#define XIC_EXCLUDES(...) XIC_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by analysis).
#define XIC_ASSERT_CAPABILITY(x) XIC_THREAD_ANNOTATION__(assert_capability(x))

/// The function returns a reference to the given mutex.
#define XIC_RETURN_CAPABILITY(x) XIC_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Use only for
/// code the analysis cannot type (init/teardown singletons); every use
/// must carry a comment saying why.
#define XIC_NO_THREAD_SAFETY_ANALYSIS \
  XIC_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace xic::util {

/// std::mutex as a named capability. Prefer MutexLock for scoped
/// acquisition; Lock()/Unlock() exist for the analysis and for the rare
/// structured hand-off the RAII form cannot express.
class XIC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() XIC_ACQUIRE() { mu_.lock(); }
  void Unlock() XIC_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() XIC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock on a util::Mutex. Supports the unique_lock-style
/// Unlock()/Lock() cycle (drop the lock around a blocking call, take it
/// back after) while staying a scoped capability the analysis can type:
/// the destructor releases the mutex iff this scope currently holds it.
class XIC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) XIC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() XIC_RELEASE() {
    if (owned_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before scope end (e.g. around a blocking call).
  void Unlock() XIC_RELEASE() {
    mu_->Unlock();
    owned_ = false;
  }

  /// Reacquires after Unlock().
  void Lock() XIC_ACQUIRE() {
    mu_->Lock();
    owned_ = true;
  }

 private:
  Mutex* const mu_;
  bool owned_ = true;
};

/// Condition variable bound to util::Mutex. Wait() atomically releases
/// the mutex, blocks, and reacquires before returning -- so from the
/// analysis's point of view the capability is held across the call
/// (XIC_REQUIRES), which is exactly the caller-visible contract. Callers
/// re-check their predicate in a while loop, as with any condvar:
///
///   util::MutexLock lock(&mutex_);
///   while (!ready_) cv_.Wait(&mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). The caller must hold
  /// `mu`; it is held again when Wait returns.
  void Wait(Mutex* mu) XIC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Like Wait, with a timeout. Returns false iff the timeout expired
  /// (true on notify *or* spurious wakeup -- re-check the predicate).
  bool WaitFor(Mutex* mu, std::chrono::milliseconds timeout)
      XIC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace xic::util

#endif  // XIC_UTIL_SYNC_H_
