// Interactive implication explorer for the three constraint languages.
//
// Usage:
//   implication_explorer L_u  < statements
//   implication_explorer L    < statements       (primary-key restricted)
//   implication_explorer Lgen < statements       (general L: chase)
//
// Input is the textual constraint syntax (see constraint_parser.h), one
// statement per line. Lines starting with '?' are implication queries;
// everything else extends Sigma. Example session:
//
//   key entry.isbn
//   sfk ref.to -> entry.isbn
//   ? key entry.isbn
//   ? fk entry.isbn -> entry.isbn
//
// For L_u, both unrestricted and finite implication are reported.

#include <iostream>
#include <sstream>
#include <string>

#include "xic.h"

namespace {

using namespace xic;

int RunLu(const std::vector<std::pair<bool, std::string>>& lines) {
  ConstraintSet sigma;
  sigma.language = Language::kLu;
  for (const auto& [is_query, text] : lines) {
    if (!is_query) {
      Result<std::vector<Constraint>> cs = ParseConstraints(text);
      if (!cs.ok()) {
        std::cerr << cs.status() << "\n";
        return 1;
      }
      for (Constraint& c : cs.value()) {
        sigma.constraints.push_back(std::move(c));
      }
      continue;
    }
    Result<std::vector<Constraint>> query = ParseConstraints(text);
    if (!query.ok() || query.value().size() != 1) {
      std::cerr << "bad query: " << text << "\n";
      return 1;
    }
    LuSolver solver(sigma);
    if (!solver.status().ok()) {
      std::cerr << solver.status() << "\n";
      return 1;
    }
    const Constraint& phi = query.value()[0];
    bool implies = solver.Implies(phi);
    bool finite = solver.FinitelyImplies(phi);
    std::cout << "Sigma |= " << phi.ToString() << "  : "
              << (implies ? "yes" : "no") << "    Sigma |=_f : "
              << (finite ? "yes" : "no")
              << (implies != finite ? "   (differs!)" : "") << "\n";
    if (std::optional<std::string> proof =
            solver.Explain(phi, /*finite=*/!implies && finite)) {
      std::cout << *proof;
    }
  }
  return 0;
}

int RunLid(const std::vector<std::pair<bool, std::string>>& lines) {
  ConstraintSet sigma;
  sigma.language = Language::kLid;
  for (const auto& [is_query, text] : lines) {
    if (!is_query) {
      Result<std::vector<Constraint>> cs = ParseConstraints(text);
      if (!cs.ok()) {
        std::cerr << cs.status() << "\n";
        return 1;
      }
      for (Constraint& c : cs.value()) {
        sigma.constraints.push_back(std::move(c));
      }
      continue;
    }
    Result<std::vector<Constraint>> query = ParseConstraints(text);
    if (!query.ok() || query.value().size() != 1) {
      std::cerr << "bad query: " << text << "\n";
      return 1;
    }
    // The structure is synthesized from Sigma's usage (the implication
    // problem quantifies over DTDs with this Sigma).
    Result<DtdStructure> dtd = InferDtdForSigma(sigma);
    if (!dtd.ok()) {
      std::cerr << dtd.status() << "\n";
      return 1;
    }
    LidSolver solver(dtd.value(), sigma);
    if (!solver.status().ok()) {
      std::cerr << solver.status() << "\n";
      return 1;
    }
    const Constraint& phi = query.value()[0];
    bool implied = solver.Implies(phi);
    std::cout << "Sigma |= " << phi.ToString() << "  : "
              << (implied ? "yes" : "no") << "\n";
    if (implied) {
      if (std::optional<std::string> proof = solver.Explain(phi)) {
        std::cout << *proof;
      }
    }
  }
  return 0;
}

int RunLPrimary(const std::vector<std::pair<bool, std::string>>& lines) {
  ConstraintSet sigma;
  sigma.language = Language::kL;
  for (const auto& [is_query, text] : lines) {
    if (!is_query) {
      Result<std::vector<Constraint>> cs = ParseConstraints(text);
      if (!cs.ok()) {
        std::cerr << cs.status() << "\n";
        return 1;
      }
      for (Constraint& c : cs.value()) {
        sigma.constraints.push_back(std::move(c));
      }
      continue;
    }
    Result<std::vector<Constraint>> query = ParseConstraints(text);
    if (!query.ok() || query.value().size() != 1) {
      std::cerr << "bad query: " << text << "\n";
      return 1;
    }
    LpSolver solver(sigma);
    if (!solver.status().ok()) {
      std::cerr << solver.status() << "\n";
      return 1;
    }
    Result<bool> implied = solver.Implies(query.value()[0]);
    std::cout << "Sigma |= " << query.value()[0].ToString() << "  : "
              << (implied.ok() ? (implied.value() ? "yes" : "no")
                               : implied.status().ToString())
              << "\n";
    if (implied.ok() && implied.value()) {
      if (std::optional<std::string> proof =
              solver.Explain(query.value()[0])) {
        std::cout << *proof;
      }
    }
  }
  return 0;
}

int RunLGeneral(const std::vector<std::pair<bool, std::string>>& lines) {
  ConstraintSet sigma;
  sigma.language = Language::kL;
  for (const auto& [is_query, text] : lines) {
    if (!is_query) {
      Result<std::vector<Constraint>> cs = ParseConstraints(text);
      if (!cs.ok()) {
        std::cerr << cs.status() << "\n";
        return 1;
      }
      for (Constraint& c : cs.value()) {
        sigma.constraints.push_back(std::move(c));
      }
      continue;
    }
    Result<std::vector<Constraint>> query = ParseConstraints(text);
    if (!query.ok() || query.value().size() != 1) {
      std::cerr << "bad query: " << text << "\n";
      return 1;
    }
    LGeneralSolver solver(sigma);
    GeneralResult result = solver.Decide(query.value()[0]);
    std::cout << "Sigma |= " << query.value()[0].ToString() << "  : "
              << ImplicationOutcomeToString(result.outcome) << " (by "
              << result.decided_by << ", " << result.chase_steps
              << " chase steps)\n";
    if (result.countermodel.has_value()) {
      std::cout << "countermodel:\n" << result.countermodel->ToString();
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = argc > 1 ? argv[1] : "L_u";
  std::vector<std::pair<bool, std::string>> lines;
  std::string line;
  bool any_input = false;
  while (std::getline(std::cin, line)) {
    any_input = true;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    if (stripped[0] == '?') {
      lines.emplace_back(true, std::string(stripped.substr(1)));
    } else {
      lines.emplace_back(false, std::string(stripped));
    }
  }
  if (!any_input) {
    // Demo session so the binary does something useful stand-alone.
    std::cout << "(no input; running the demo session)\n";
    lines = {
        {false, "key t.a"}, {false, "key t.b"},
        {false, "key u.c"}, {false, "key u.d"},
        {false, "fk t.a -> u.c"}, {false, "fk u.d -> t.b"},
        {true, "fk u.c -> t.a"},
        {true, "key u.c"},
    };
    mode = "L_u";
  }
  if (mode == "L_u") return RunLu(lines);
  if (mode == "L_id") return RunLid(lines);
  if (mode == "L") return RunLPrimary(lines);
  if (mode == "Lgen") return RunLGeneral(lines);
  std::cerr << "unknown mode " << mode << " (use L_u, L_id, L or Lgen)\n";
  return 1;
}
