// Textual surface syntax for basic XML constraints.
//
//   key tau.l                    unary key         tau.l -> tau
//   key tau[a, b, c]             multi-attr key    tau[X] -> tau
//   id tau.l                     ID constraint     tau.l ->id tau
//   fk tau.l -> tau2.l2          unary foreign key
//   fk tau[a,b] -> tau2[c,d]     multi-attr foreign key
//   sfk tau.l -> tau2.l2         set-valued foreign key
//   inverse tau(lk).l <-> tau2(lk2).l2     L_u inverse
//   inverse tau.l <-> tau2.l2              L_id inverse
//
// Statements are separated by ';' or newlines; '#' starts a comment that
// runs to end of line.

#ifndef XIC_CONSTRAINTS_CONSTRAINT_PARSER_H_
#define XIC_CONSTRAINTS_CONSTRAINT_PARSER_H_

#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "util/status.h"

namespace xic {

/// Parses a sequence of constraint statements.
Result<std::vector<Constraint>> ParseConstraints(const std::string& text);

/// A parsed constraint together with where its statement started in the
/// source text (1-based line and column), for diagnostics that point back
/// at the offending definition.
struct LocatedConstraint {
  Constraint constraint;
  size_t line = 0;
  size_t column = 0;
};

/// Parses statements, recording each statement's source position. Parse
/// errors carry the line and column of the failure in their message.
Result<std::vector<LocatedConstraint>> ParseConstraintsLocated(
    const std::string& text);

/// Parses statements and wraps them in a ConstraintSet of `lang`.
Result<ConstraintSet> ParseConstraintSet(const std::string& text,
                                         Language lang);

}  // namespace xic

#endif  // XIC_CONSTRAINTS_CONSTRAINT_PARSER_H_
