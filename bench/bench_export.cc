// Experiment B3: cost and fidelity of legacy export (relational and
// object instances -> DTD^C + document), including post-export
// validation of the produced document.

#include <benchmark/benchmark.h>

#include <string>

#include "constraints/checker.h"
#include "model/structural_validator.h"
#include "oo/export_xml.h"
#include "relational/export_xml.h"

namespace {

using namespace xic;

RelationalInstance MakeRelational(const RelationalSchema& schema, int n) {
  RelationalInstance inst(schema);
  for (int i = 0; i < n; ++i) {
    (void)inst.Insert("publisher", {"P" + std::to_string(i),
                                    "C" + std::to_string(i % 7),
                                    "addr" + std::to_string(i)});
  }
  for (int i = 0; i < n; ++i) {
    (void)inst.Insert("editor", {"E" + std::to_string(i),
                                 "P" + std::to_string(i),
                                 "C" + std::to_string(i % 7)});
  }
  return inst;
}

RelationalSchema MakeSchema() {
  RelationalSchema schema;
  (void)schema.AddRelation("publisher", {"pname", "country", "address"});
  (void)schema.AddRelation("editor", {"name", "pname", "country"});
  (void)schema.AddKey("publisher", {"pname", "country"});
  (void)schema.AddKey("editor", {"name"});
  (void)schema.AddForeignKey(
      {"editor", {"pname", "country"}, "publisher", {"pname", "country"}});
  return schema;
}

void BM_RelationalExport(benchmark::State& state) {
  RelationalSchema schema = MakeSchema();
  RelationalInstance inst =
      MakeRelational(schema, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<RelationalExport> exported = ExportRelational(inst);
    benchmark::DoNotOptimize(exported.ok());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RelationalExport)
    ->RangeMultiplier(8)
    ->Range(8, 32768)
    ->Complexity(benchmark::oN);

void BM_RelationalExportAndRevalidate(benchmark::State& state) {
  RelationalSchema schema = MakeSchema();
  RelationalInstance inst =
      MakeRelational(schema, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<RelationalExport> exported = ExportRelational(inst);
    StructuralValidator validator(exported.value().dtd);
    ConstraintChecker checker(exported.value().dtd, exported.value().sigma);
    bool ok = validator.Validate(exported.value().tree).ok() &&
              checker.Check(exported.value().tree).ok();
    benchmark::DoNotOptimize(static_cast<int>(ok));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RelationalExportAndRevalidate)
    ->RangeMultiplier(8)
    ->Range(8, 8192)
    ->Complexity();

OdlSchema MakeOdlSchema() {
  OdlSchema schema;
  OdlClass person;
  person.name = "person";
  person.attributes = {"name"};
  person.keys = {"name"};
  person.relationships = {
      {"in_dept", "dept", RelationshipCardinality::kMany, "has_staff"}};
  OdlClass dept;
  dept.name = "dept";
  dept.attributes = {"dname"};
  dept.keys = {"dname"};
  dept.relationships = {
      {"has_staff", "person", RelationshipCardinality::kMany, "in_dept"}};
  (void)schema.AddClass(person);
  (void)schema.AddClass(dept);
  return schema;
}

void BM_OdlExport(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  OdlSchema schema = MakeOdlSchema();
  OdlInstance inst(schema);
  int depts = n / 10 + 1;
  for (int d = 0; d < depts; ++d) {
    OdlObject obj{"dept", "d" + std::to_string(d),
                  {{"dname", "D" + std::to_string(d)}},
                  {{"has_staff", {}}}};
    (void)inst.AddObject(obj);
  }
  for (int i = 0; i < n; ++i) {
    OdlObject obj{"person", "p" + std::to_string(i),
                  {{"name", "N" + std::to_string(i)}},
                  {{"in_dept", {"d" + std::to_string(i % depts)}}}};
    (void)inst.AddObject(obj);
  }
  for (auto _ : state) {
    Result<OdlExport> exported = ExportOdl(inst);
    benchmark::DoNotOptimize(exported.ok());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_OdlExport)
    ->RangeMultiplier(8)
    ->Range(8, 8192)
    ->Complexity(benchmark::oN);

}  // namespace
