// Streaming validation: tokenizer event goldens, DOM-vs-stream verdict
// parity (byte-identical reports across the committed corpus and across
// spill budgets), spill-threshold behavior, and the XML-parser
// conformance regressions that rode along with the tokenizer work
// (reserved PI targets, XML-S whitespace, deep documents).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "constraints/checker.h"
#include "constraints/well_formed.h"
#include "engine/stream_validator.h"
#include "fuzzing/corpus.h"
#include "model/structural_validator.h"
#include "util/strings.h"
#include "xml/dtdc_io.h"
#include "xml/stream_tokenizer.h"
#include "xml/xml_parser.h"

namespace xic {
namespace {

// -- Tokenizer event goldens ----------------------------------------------

// Renders the full event stream, aggregating consecutive kText chunks
// into one entry (the run split is an implementation detail callers are
// told to paper over).
std::vector<std::string> Events(const std::string& text,
                                size_t chunk_bytes = 64 * 1024,
                                Status* error = nullptr) {
  StringSource source(text);
  StreamTokenizerOptions options;
  options.chunk_bytes = chunk_bytes;
  StreamTokenizer tok(source, options);
  std::vector<std::string> out;
  std::string run;
  auto flush = [&] {
    if (!run.empty()) out.push_back("text[" + run + "]");
    run.clear();
  };
  StreamEvent ev;
  for (;;) {
    Status s = tok.Next(&ev);
    if (!s.ok()) {
      if (error != nullptr) *error = s;
      flush();
      out.push_back("ERROR");
      return out;
    }
    switch (ev.kind) {
      case StreamEventKind::kDoctype:
        flush();
        out.push_back(std::string("doctype:") + std::string(ev.name) +
                      (ev.has_internal_subset ? "[subset]" : ""));
        break;
      case StreamEventKind::kStartElement: {
        flush();
        std::string e = "start:" + std::string(ev.name);
        for (const StreamEvent::Attr& a : ev.attrs) {
          e += " " + std::string(a.name) + "=" + std::string(a.value);
        }
        out.push_back(e);
        break;
      }
      case StreamEventKind::kEndElement:
        flush();
        out.push_back("end:" + std::string(ev.name));
        break;
      case StreamEventKind::kText:
        run.append(ev.text);
        break;
      case StreamEventKind::kEndDocument:
        flush();
        out.push_back("eod");
        return out;
    }
  }
}

TEST(StreamTokenizer, EventGolden) {
  std::vector<std::string> events = Events(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE r [<!ELEMENT r ANY>]>\n"
      "<r a=\"x&amp;y\"  b=\" 1\n2 \"><e/>hi<![CDATA[<&]]></r>");
  std::vector<std::string> want = {
      "doctype:r[subset]",
      // Attribute values arrive normalized (Section 3.3.3: the newline
      // became a space) and entity-expanded.
      "start:r a=x&y b= 1 2 ",
      "start:e",
      "end:e",  // synthesized for the self-closing tag
      "text[hi<&]",
      "end:r",
      "eod",
  };
  EXPECT_EQ(events, want);
}

TEST(StreamTokenizer, TextRunsSplitIntoChunksReassembleExactly) {
  std::string big(10000, 'x');
  big[137] = '\n';
  std::string text = "<r>" + big + "</r>";
  // A 64-byte chunk ceiling forces the run through many kText events;
  // the reassembled bytes must equal the DOM parser's one text child.
  std::vector<std::string> events = Events(text, 64);
  Result<XmlDocument> dom = ParseXml(text);
  ASSERT_TRUE(dom.ok()) << dom.status();
  const DataTree& t = dom.value().tree;
  ASSERT_EQ(t.children(t.root()).size(), 1u);
  const std::string& dom_text =
      std::get<std::string>(t.children(t.root())[0]);
  std::vector<std::string> want = {"start:r", "text[" + dom_text + "]",
                                   "end:r", "eod"};
  EXPECT_EQ(events, want);
}

TEST(StreamTokenizer, DoctypeDistinguishesEmptySubsetFromNone) {
  // "<!DOCTYPE r []>" carries an (empty) DTD; "<!DOCTYPE r>" carries
  // none -- the DOM parser treats them differently and so must we.
  std::vector<std::string> with = Events("<!DOCTYPE r []><r/>");
  std::vector<std::string> without = Events("<!DOCTYPE r><r/>");
  ASSERT_FALSE(with.empty());
  ASSERT_FALSE(without.empty());
  EXPECT_EQ(with[0], "doctype:r[subset]");
  EXPECT_EQ(without[0], "doctype:r");
}

TEST(StreamTokenizer, ErrorsMatchDomParserByteForByte) {
  const char* cases[] = {
      "<r>unclosed",
      "<r></mismatch>",
      "<r>a ]]> b</r>",
      "<r>&bogus;</r>",
      "<r a=\"1\" a=\"1\"><r/>",
      "no markup at all",
      "<r/><r2/>",
  };
  for (const char* text : cases) {
    Result<XmlDocument> dom = ParseXml(text);
    ASSERT_FALSE(dom.ok()) << text;
    Status stream_error = Status::OK();
    Events(text, 64, &stream_error);
    EXPECT_EQ(dom.status().ToString(), stream_error.ToString()) << text;
  }
}

// -- XML parser conformance regressions -----------------------------------

TEST(XmlConformance, XmlStylesheetPiIsNotReserved) {
  // Only the exact target "xml" (case-insensitive) is reserved; a PI
  // target that merely *starts* with those letters is an ordinary PI.
  const std::string text =
      "<?xml version=\"1.0\"?>\n"
      "<?xml-stylesheet type=\"text/css\" href=\"s.css\"?>\n"
      "<!DOCTYPE r [<!ELEMENT r (#PCDATA)>]>\n"
      "<?xmlfoo keep going?>\n"
      "<r>body<?xml-model here too?></r>\n"
      "<?xml-stylesheet in the epilog?>";
  Result<XmlDocument> dom = ParseXml(text);
  ASSERT_TRUE(dom.ok()) << dom.status();
  const DataTree& t = dom.value().tree;
  ASSERT_EQ(t.children(t.root()).size(), 1u);
  EXPECT_EQ(std::get<std::string>(t.children(t.root())[0]), "body");
  // The tokenizer agrees: PIs vanish, the text child survives.
  std::vector<std::string> events = Events(text);
  std::vector<std::string> want = {"doctype:r[subset]", "start:r",
                                   "text[body]", "end:r", "eod"};
  EXPECT_EQ(events, want);
}

TEST(XmlConformance, FormFeedAndVerticalTabAreNotXmlSpace) {
  // XML S is exactly {0x20, 0x9, 0xA, 0xD}; std::isspace's extra \f and
  // \v must not make a text run "ignorable"...
  EXPECT_FALSE(IsXmlSpace('\f'));
  EXPECT_FALSE(IsXmlSpace('\v'));
  EXPECT_TRUE(IsXmlSpace(' ') && IsXmlSpace('\t') && IsXmlSpace('\n') &&
              IsXmlSpace('\r'));
  const std::string text =
      "<!DOCTYPE r [<!ELEMENT r (e*)><!ELEMENT e EMPTY>]>\n"
      "<r>\f<e/></r>";
  Result<XmlDocument> dom = ParseXml(text);
  ASSERT_TRUE(dom.ok()) << dom.status();
  const DataTree& t = dom.value().tree;
  // The \f run is real character data: it must survive as a text child
  // and fail the element-only content model.
  ASSERT_EQ(t.children(t.root()).size(), 2u);
  StructuralValidator validator(*dom.value().dtd);
  ValidationReport report = validator.Validate(t);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].message,
            "children [#PCDATA e] do not match content model of r");
  // ...and must not split set-valued attribute values either.
  EXPECT_EQ(TokenizeAttrValue("a\fb \vc", true),
            (AttrValue{"a\fb", "\vc"}));
}

TEST(XmlConformance, DeepDocumentParsesWithoutRecursion) {
  // 50k nested elements: the iterative ParseElement and the tokenizer's
  // explicit stack both survive depths that would overflow a recursive
  // descent, once max_tree_depth is raised.
  constexpr size_t kDepth = 50000;
  std::string text = "<!DOCTYPE a [<!ELEMENT a (a?)>]>\n";
  for (size_t i = 0; i < kDepth; ++i) text += "<a>";
  for (size_t i = 0; i < kDepth; ++i) text += "</a>";
  XmlParseOptions options;
  options.limits.max_tree_depth = kDepth + 1;
  Result<XmlDocument> dom = ParseXml(text, options);
  ASSERT_TRUE(dom.ok()) << dom.status();
  EXPECT_EQ(dom.value().tree.size(), kDepth);
  StreamOptions sopt;
  sopt.limits.max_tree_depth = kDepth + 1;
  StringSource source(text);
  SelfDescribingStreamResult stream =
      StreamValidateSelfDescribing(source, sopt);
  ASSERT_TRUE(stream.outcome.parse.ok()) << stream.outcome.parse;
  EXPECT_EQ(stream.outcome.stats.vertices, kDepth);
  EXPECT_TRUE(stream.outcome.structure.ok())
      << stream.outcome.structure.ToString();
}

// -- DOM / stream verdict parity ------------------------------------------

// Runs the xicheck pipeline both ways and demands byte-identical
// verdicts at every stage; returns an explanation on divergence.
testing::AssertionResult VerdictsAgree(const std::string& text,
                                       size_t spill_budget,
                                       bool allow_missing) {
  StreamOptions sopt;
  sopt.validation.allow_missing_attributes = allow_missing;
  sopt.spill_budget_bytes = spill_budget;
  sopt.chunk_bytes = 96;
  StringSource source(text);
  SelfDescribingStreamResult s = StreamValidateSelfDescribing(source, sopt);

  Result<SelfDescribingDocument> parsed = ParseDocumentWithDtdC(text);
  std::string dom_parse = parsed.ok() ? "OK" : parsed.status().ToString();
  std::string stream_parse =
      s.outcome.parse.ok() ? "OK" : s.outcome.parse.ToString();
  if (dom_parse != stream_parse) {
    return testing::AssertionFailure() << "parse status: DOM \"" << dom_parse
                                       << "\" vs stream \"" << stream_parse
                                       << "\"";
  }
  if (!parsed.ok()) return testing::AssertionSuccess();
  const SelfDescribingDocument& doc = parsed.value();
  if (doc.document.dtd.has_value() != s.has_dtd) {
    return testing::AssertionFailure() << "DTD presence diverged";
  }
  if (!doc.document.dtd.has_value()) return testing::AssertionSuccess();
  const DtdStructure& dtd = *doc.document.dtd;

  ValidationOptions vopt;
  vopt.allow_missing_attributes = allow_missing;
  StructuralValidator validator(dtd, vopt);
  ValidationReport dom_structure = validator.Validate(doc.document.tree);
  if (dom_structure.ToString() != s.outcome.structure.ToString()) {
    return testing::AssertionFailure()
           << "structure reports:\n--- DOM ---\n" << dom_structure.ToString()
           << "--- stream ---\n" << s.outcome.structure.ToString();
  }
  if (doc.sigma.has_value() != s.sigma.has_value()) {
    return testing::AssertionFailure() << "sigma presence diverged";
  }
  if (!doc.sigma.has_value()) return testing::AssertionSuccess();
  const ConstraintSet& sigma = *doc.sigma;
  Status wf = CheckWellFormed(sigma, dtd);
  if (wf.ToString() != s.well_formed.ToString()) {
    return testing::AssertionFailure()
           << "well-formedness: DOM \"" << wf.ToString() << "\" vs stream \""
           << s.well_formed.ToString() << "\"";
  }
  if (!wf.ok()) return testing::AssertionSuccess();
  ConstraintChecker checker(dtd, sigma);
  ConstraintReport dom_report = checker.Check(doc.document.tree);
  if (dom_report.ToString(sigma) != s.outcome.constraints.ToString(sigma)) {
    return testing::AssertionFailure()
           << "constraint reports (spill budget " << spill_budget
           << "):\n--- DOM ---\n" << dom_report.ToString(sigma)
           << "--- stream ---\n" << s.outcome.constraints.ToString(sigma);
  }
  return testing::AssertionSuccess();
}

TEST(StreamParity, EveryCommittedCorpusDocumentAgrees) {
  size_t seen = 0;
  for (const auto& it : std::filesystem::directory_iterator(XIC_CORPUS_DIR)) {
    if (it.path().extension() != ".corpus") continue;
    std::ifstream in(it.path());
    ASSERT_TRUE(in) << it.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Result<fuzz::CorpusEntry> entry = fuzz::ParseCorpusEntry(buffer.str());
    ASSERT_TRUE(entry.ok()) << it.path() << ": " << entry.status();
    ++seen;
    // Every committed document -- whatever oracle family it pins -- must
    // validate identically both ways, spilling or not.
    for (size_t budget : {size_t{0}, size_t{1}}) {
      EXPECT_TRUE(VerdictsAgree(entry.value().document, budget, true))
          << it.path() << " (spill budget " << budget << ")";
      EXPECT_TRUE(VerdictsAgree(entry.value().document, budget, false))
          << it.path() << " (strict attributes, spill budget " << budget
          << ")";
    }
  }
  EXPECT_GE(seen, 12u) << "corpus directory went missing?";
}

// A document whose key/ID/FK extents dwarf any sane budget.
std::string WideDocument(size_t rows) {
  std::string text =
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE db [\n"
      "<!ELEMENT db (t*)>\n"
      "<!ELEMENT t EMPTY>\n"
      "<!ATTLIST t k CDATA #REQUIRED r IDREF #REQUIRED oid ID #REQUIRED>\n"
      "<!-- xic:constraints language=L_id\n"
      "  id t.oid\n"
      "  key t.k\n"
      "  fk t.r -> t.oid\n"
      "-->\n"
      "]>\n"
      "<db>\n";
  for (size_t i = 0; i < rows; ++i) {
    std::string n = std::to_string(i);
    // Sprinkle duplicate keys, dangling references and duplicate IDs.
    std::string k = (i % 97 == 0) ? "dup" : "k" + n;
    std::string r = (i % 89 == 0) ? "nowhere" : "o" + n;
    std::string oid = (i % 101 == 0) ? "same" : "o" + n;
    text += "<t k=\"" + k + "\" r=\"" + r + "\" oid=\"" + oid + "\"/>\n";
  }
  text += "</db>\n";
  return text;
}

TEST(StreamSpill, CrossingTheBudgetSpillsAndPreservesTheVerdict) {
  std::string text = WideDocument(3000);
  // Unlimited in-memory first, as the reference verdict.
  StreamOptions keep;
  keep.validation.allow_missing_attributes = true;
  keep.spill_budget_bytes = 0;
  StringSource s1(text);
  SelfDescribingStreamResult in_memory = StreamValidateSelfDescribing(s1, keep);
  ASSERT_TRUE(in_memory.outcome.parse.ok()) << in_memory.outcome.parse;
  EXPECT_EQ(in_memory.outcome.stats.spilled_bytes, 0u);
  ASSERT_TRUE(in_memory.sigma.has_value());
  EXPECT_FALSE(in_memory.outcome.constraints.ok());

  // A 4 KiB budget forces every extent through the disk path.
  StreamOptions spill = keep;
  spill.spill_budget_bytes = 4096;
  StringSource s2(text);
  SelfDescribingStreamResult spilled = StreamValidateSelfDescribing(s2, spill);
  ASSERT_TRUE(spilled.outcome.parse.ok()) << spilled.outcome.parse;
  EXPECT_GT(spilled.outcome.stats.spilled_bytes, 0u);
  EXPECT_GT(spilled.outcome.stats.spill_runs, 0u);
  EXPECT_GT(spilled.outcome.stats.extent_records, 0u);
  EXPECT_EQ(in_memory.outcome.structure.ToString(),
            spilled.outcome.structure.ToString());
  EXPECT_EQ(in_memory.outcome.constraints.ToString(*in_memory.sigma),
            spilled.outcome.constraints.ToString(*spilled.sigma));
  // And both agree with the materialized checker.
  EXPECT_TRUE(VerdictsAgree(text, 4096, true));
}

TEST(StreamParity, TruncationAndStrictAttributesMatch) {
  // max_violations truncation must keep the DOM checkers' prefix, and
  // strict attribute mode must report missing declared attributes in
  // plan order.
  std::string text =
      "<!DOCTYPE db [\n"
      "<!ELEMENT db (t*)>\n"
      "<!ELEMENT t EMPTY>\n"
      "<!ATTLIST t a CDATA #REQUIRED b CDATA #REQUIRED>\n"
      "<!-- xic:constraints language=L\n"
      "  key t.a\n"
      "-->\n"
      "]>\n"
      "<db><t/><t b=\"1\"/><t a=\"1\"/><t a=\"1\"/><x/></db>\n";
  for (bool allow_missing : {true, false}) {
    StreamOptions sopt;
    sopt.validation.allow_missing_attributes = allow_missing;
    sopt.validation.max_violations = 2;
    sopt.check.max_violations = 1;
    StringSource source(text);
    SelfDescribingStreamResult s = StreamValidateSelfDescribing(source, sopt);
    ASSERT_TRUE(s.outcome.parse.ok()) << s.outcome.parse;

    Result<SelfDescribingDocument> parsed = ParseDocumentWithDtdC(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ValidationOptions vopt;
    vopt.allow_missing_attributes = allow_missing;
    vopt.max_violations = 2;
    StructuralValidator validator(*parsed.value().document.dtd, vopt);
    EXPECT_EQ(validator.Validate(parsed.value().document.tree).ToString(),
              s.outcome.structure.ToString());
    CheckOptions copt;
    copt.max_violations = 1;
    ConstraintChecker checker(*parsed.value().document.dtd,
                              *parsed.value().sigma, copt);
    EXPECT_EQ(
        checker.Check(parsed.value().document.tree).ToString(
            *parsed.value().sigma),
        s.outcome.constraints.ToString(*s.sigma));
  }
}

TEST(StreamValidator, PrecompiledPlanRunsManyDocuments) {
  // The StreamValidator front door: compile once, stream many.
  Result<DtdC> schema = ParseDtdC(
      "<!ELEMENT db (t*)>\n"
      "<!ELEMENT t EMPTY>\n"
      "<!ATTLIST t k CDATA #REQUIRED>\n"
      "<!-- xic:constraints language=L\n  key t.k\n-->\n",
      "db");
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(schema.value().sigma.has_value());
  StreamOptions options;
  options.spill_budget_bytes = 1;  // force the spill path
  StreamValidator validator(schema.value().dtd, *schema.value().sigma,
                            options);
  ASSERT_TRUE(validator.status().ok()) << validator.status();

  StringSource good("<db><t k=\"a\"/><t k=\"b\"/></db>");
  StreamOutcome ok = validator.Run(good);
  EXPECT_TRUE(ok.ok()) << ok.parse << ok.structure.ToString();

  StringSource dup("<db><t k=\"a\"/><t k=\"a\"/></db>");
  StreamOutcome bad = validator.Run(dup);
  ASSERT_TRUE(bad.parse.ok());
  ASSERT_EQ(bad.constraints.violations.size(), 1u);
  EXPECT_EQ(bad.constraints.violations[0].message, "duplicate key [a]");
  EXPECT_EQ(bad.constraints.violations[0].witnesses,
            (std::vector<VertexId>{1, 2}));
}

TEST(StreamValidator, DocumentWithoutSubsetHasNoDtd) {
  StreamOptions options;
  StringSource source("<!DOCTYPE r>\n<r>anything</r>");
  SelfDescribingStreamResult s = StreamValidateSelfDescribing(source, options);
  EXPECT_TRUE(s.outcome.parse.ok()) << s.outcome.parse;
  EXPECT_EQ(s.doctype_name, "r");
  EXPECT_FALSE(s.has_dtd);
}

}  // namespace
}  // namespace xic
