// Process-wide metrics: named monotonic counters, high-water marks and
// fixed-bucket histograms.
//
// The registry is the system's flight recorder for *how much work*
// happened -- parse bytes, Glushkov states, closure insertions, chase
// steps, per-document latency -- independent of whether a trace session
// is running. Counters are relaxed atomics (a hit is one fetch_add);
// histograms are an array of relaxed atomic buckets. Both are safe to
// update from any thread at any time, and reads (ToJson/ToTable) give a
// consistent-enough snapshot for reporting.
//
// Naming convention: dot-separated, lower-case, subsystem first
// ("lid.solver.steps", "engine.pool.queue_high_water"). DESIGN.md's
// Observability section is the canonical table of names; the theorem ->
// metric mapping there (e.g. lid.solver.steps is linear in |Sigma| per
// Theorem 3.2) is what makes the registry a reproduction artifact and
// not just ops plumbing.
//
// Hot paths use the XIC_COUNTER_* / XIC_HISTOGRAM_* macros, which cache
// the registry lookup in a function-local static. With XIC_OBS=OFF the
// macros compile to nothing and their argument expressions are not
// evaluated.

#ifndef XIC_OBS_METRICS_H_
#define XIC_OBS_METRICS_H_

#include "obs/enabled.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

namespace xic::obs {

/// Point-in-time copy of one histogram: ascending upper bounds plus
/// per-bucket (non-cumulative) counts, buckets.size() == bounds.size()+1
/// with the final bucket counting observations above every bound (+inf).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0;
};

/// Point-in-time copy of the registry, plain data with no atomics --
/// exporters (Prometheus text, dashboards) render from this instead of
/// holding registry references. Callers may layer additional metrics on
/// top before rendering (xicd's dispatcher adds cache/session gauges the
/// registry does not own); `gauges` exists for exactly that, the
/// registry itself never fills it. Defined unconditionally: snapshots
/// and their renderers stay available under XIC_OBS=OFF (the registry
/// one is just empty there).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

#if XIC_OBS_ENABLED

/// A monotonic counter (Add) that doubles as a high-water gauge
/// (RecordMax). One registry entry is one or the other by convention.
///
/// Cache-line aligned: hot counters ("engine.pool.tasks", the serve
/// shed/hit counters) are bumped from every worker thread, and the
/// registry's heap allocations would otherwise pack several atomics into
/// one 64-byte line, turning independent counters into a false-sharing
/// ping-pong (ROADMAP item 1).
class alignas(64) Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }

  /// Raises the stored value to `v` if it is larger (lock-free max).
  void RecordMax(uint64_t v) {
    uint64_t current = value_.load(std::memory_order_relaxed);
    while (current < v && !value_.compare_exchange_weak(
                              current, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A histogram with fixed ascending upper bounds; an observation lands in
/// the first bucket whose bound it does not exceed (le semantics), with
/// an implicit +inf bucket at the end. Bounds are set at first
/// registration and immutable afterwards.
///
/// Aligned like Counter: count_/sum_bits_ are bumped on every Observe,
/// and must not share a line with a neighboring metric's atomics.
class alignas(64) Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 (the +inf bucket).
  size_t num_buckets() const { return buckets_.size(); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double, CAS-accumulated
};

/// The process-wide name -> metric table. Lookups take a mutex (cache
/// the returned reference); updates through the returned handles are
/// lock-free.
class Registry {
 public:
  static Registry& Global();

  /// Returns the counter registered under `name`, creating it on first
  /// use. The reference stays valid for the process lifetime.
  Counter& GetCounter(std::string_view name) XIC_EXCLUDES(mutex_);

  /// Returns the histogram under `name`, creating it with `bounds` on
  /// first use (later calls ignore `bounds`).
  Histogram& GetHistogram(std::string_view name,
                          const std::vector<double>& bounds)
      XIC_EXCLUDES(mutex_);

  /// Flat deterministic JSON: {"counters":{...},"histograms":{...}},
  /// names sorted, zero-valued counters included.
  std::string ToJson() const XIC_EXCLUDES(mutex_);

  /// Plain-data copy of every registered metric (names sorted by the
  /// map). The snapshot is consistent-enough, not atomic: counters keep
  /// counting while it is taken, same as ToJson.
  MetricsSnapshot Snapshot() const XIC_EXCLUDES(mutex_);

  /// Human-readable aligned table, names sorted.
  std::string ToTable() const XIC_EXCLUDES(mutex_);

  /// Zeroes every registered metric (tests and CLI runs that want
  /// per-invocation numbers).
  void ResetAll() XIC_EXCLUDES(mutex_);

 private:
  // A leaf lock guarding only the name -> metric tables; updates through
  // returned handles are lock-free.
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      XIC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      XIC_GUARDED_BY(mutex_);
};

#else  // !XIC_OBS_ENABLED

class Counter {
 public:
  void Add(uint64_t = 1) {}
  void RecordMax(uint64_t) {}
  uint64_t value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double>) {}
  void Observe(double) {}
  const std::vector<double>& bounds() const {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  size_t num_buckets() const { return 0; }
  uint64_t bucket(size_t) const { return 0; }
  uint64_t count() const { return 0; }
  double sum() const { return 0; }
  void Reset() {}
};

class Registry {
 public:
  static Registry& Global() {
    static Registry registry;
    return registry;
  }
  Counter& GetCounter(std::string_view) {
    static Counter counter;
    return counter;
  }
  Histogram& GetHistogram(std::string_view, const std::vector<double>&) {
    static Histogram histogram{{}};
    return histogram;
  }
  std::string ToJson() const { return "{\"counters\":{},\"histograms\":{}}"; }
  MetricsSnapshot Snapshot() const { return {}; }
  std::string ToTable() const { return "(observability compiled out)\n"; }
  void ResetAll() {}
};

#endif  // XIC_OBS_ENABLED

#if XIC_OBS_ENABLED
/// Bumps counter `name` by `n`. Lookup is cached per call site.
#define XIC_COUNTER_ADD(name, n)                              \
  do {                                                        \
    static ::xic::obs::Counter& xic_obs_counter =             \
        ::xic::obs::Registry::Global().GetCounter(name);      \
    xic_obs_counter.Add(static_cast<uint64_t>(n));            \
  } while (0)

/// Raises high-water counter `name` to `v` if larger.
#define XIC_COUNTER_MAX(name, v)                              \
  do {                                                        \
    static ::xic::obs::Counter& xic_obs_counter =             \
        ::xic::obs::Registry::Global().GetCounter(name);      \
    xic_obs_counter.RecordMax(static_cast<uint64_t>(v));      \
  } while (0)

/// Observes `value` into histogram `name` with bucket bounds `...`
/// (a braced initializer list of doubles, fixed at first use).
#define XIC_HISTOGRAM_OBSERVE(name, value, ...)               \
  do {                                                        \
    static ::xic::obs::Histogram& xic_obs_histogram =         \
        ::xic::obs::Registry::Global().GetHistogram(          \
            name, std::vector<double> __VA_ARGS__);           \
    xic_obs_histogram.Observe(static_cast<double>(value));    \
  } while (0)
#else
// The argument expressions must not be evaluated in the no-op build:
// sizeof keeps them syntactically checked but unexecuted.
#define XIC_COUNTER_ADD(name, n) \
  do {                           \
    (void)sizeof(name);          \
    (void)sizeof(n);             \
  } while (0)
#define XIC_COUNTER_MAX(name, v) \
  do {                           \
    (void)sizeof(name);          \
    (void)sizeof(v);             \
  } while (0)
#define XIC_HISTOGRAM_OBSERVE(name, value, ...) \
  do {                                          \
    (void)sizeof(name);                         \
    (void)sizeof(value);                        \
  } while (0)
#endif  // XIC_OBS_ENABLED

}  // namespace xic::obs

#endif  // XIC_OBS_METRICS_H_
