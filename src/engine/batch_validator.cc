#include "engine/batch_validator.h"

#include <chrono>
#include <cstdio>

#include "engine/thread_pool.h"

namespace xic {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::string Fmt(const char* format, double a, double b = 0, double c = 0) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), format, a, b, c);
  return buffer;
}

}  // namespace

std::string BatchStats::ToString() const {
  size_t ok = documents - parse_failures - structurally_invalid -
              constraint_violating;
  std::string out;
  out += "batch: " + std::to_string(documents) + " document(s), " +
         std::to_string(ok) + " ok, " + std::to_string(parse_failures) +
         " parse failure(s), " + std::to_string(structurally_invalid) +
         " structurally invalid, " + std::to_string(constraint_violating) +
         " with constraint violations\n";
  out += "       " + std::to_string(total_vertices) + " vertices, " +
         std::to_string(total_violations) + " violation(s)\n";
  double docs_per_sec = wall_seconds > 0 ? documents / wall_seconds : 0;
  out += Fmt("wall:  %.3f s (%.1f docs/s) on ", wall_seconds, docs_per_sec) +
         std::to_string(threads) + " thread(s)\n";
  out += Fmt("stage: parse %.3f s, structure %.3f s, constraints %.3f s\n",
             parse_seconds, structure_seconds, constraints_seconds);
  return out;
}

bool BatchReport::all_ok() const {
  for (const DocumentOutcome& outcome : outcomes) {
    if (!outcome.ok()) return false;
  }
  return true;
}

std::string BatchReport::ViolationsToString(const ConstraintSet& sigma) const {
  std::string out;
  for (const DocumentOutcome& o : outcomes) {
    if (o.ok()) continue;
    if (!o.parse.ok()) {
      out += o.name + ": " + o.parse.ToString() + "\n";
      continue;
    }
    for (const Violation& v : o.structure.violations) {
      out += o.name + ": structure: vertex " + std::to_string(v.vertex) +
             ": " + v.message + "\n";
    }
    for (const ConstraintViolation& v : o.constraints.violations) {
      out += o.name + ": " +
             sigma.constraints[v.constraint_index].ToString() + ": " +
             v.message + "\n";
    }
  }
  return out;
}

BatchValidator::BatchValidator(const DtdStructure& dtd,
                               const ConstraintSet& sigma,
                               BatchOptions options)
    : dtd_(dtd),
      sigma_(sigma),
      options_(std::move(options)),
      validator_(dtd, options_.validation),
      checker_(dtd, sigma, options_.check) {
  options_.parse.dtd = &dtd_;
}

DocumentOutcome BatchValidator::CheckOne(const BatchDocument& doc) const {
  DocumentOutcome outcome;
  outcome.name = doc.name;
  Clock::time_point t0 = Clock::now();
  Result<XmlDocument> parsed = ParseXml(doc.text, options_.parse);
  Clock::time_point t1 = Clock::now();
  outcome.parse_seconds = Seconds(t0, t1);
  if (!parsed.ok()) {
    outcome.parse = parsed.status();
    return outcome;
  }
  const DataTree& tree = parsed.value().tree;
  outcome.vertices = tree.size();
  outcome.structure = validator_.Validate(tree);
  Clock::time_point t2 = Clock::now();
  outcome.structure_seconds = Seconds(t1, t2);
  outcome.constraints = checker_.Check(tree);
  outcome.constraints_seconds = Seconds(t2, Clock::now());
  return outcome;
}

BatchReport BatchValidator::Run(const std::vector<BatchDocument>& corpus) const {
  BatchReport report;
  report.outcomes.resize(corpus.size());
  Clock::time_point start = Clock::now();
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads <= 1 || corpus.size() <= 1) {
    threads = 1;
    for (size_t i = 0; i < corpus.size(); ++i) {
      report.outcomes[i] = CheckOne(corpus[i]);
    }
  } else {
    ThreadPool pool(threads);
    // Each worker writes only its own outcome slot; the Wait() inside
    // ParallelFor publishes them to this thread.
    pool.ParallelFor(corpus.size(), [&](size_t i) {
      report.outcomes[i] = CheckOne(corpus[i]);
    });
  }
  report.stats.wall_seconds = Seconds(start, Clock::now());
  report.stats.threads = threads;
  report.stats.documents = corpus.size();
  for (const DocumentOutcome& o : report.outcomes) {
    if (!o.parse.ok()) {
      ++report.stats.parse_failures;
    } else if (!o.structure.ok()) {
      ++report.stats.structurally_invalid;
    } else if (!o.constraints.ok()) {
      ++report.stats.constraint_violating;
    }
    report.stats.total_vertices += o.vertices;
    report.stats.total_violations +=
        o.structure.violations.size() + o.constraints.violations.size();
    report.stats.parse_seconds += o.parse_seconds;
    report.stats.structure_seconds += o.structure_seconds;
    report.stats.constraints_seconds += o.constraints_seconds;
  }
  return report;
}

BatchReport BatchValidator::RunTrees(
    const std::vector<const DataTree*>& corpus) const {
  // Reuse Run()'s fan-out by expressing a tree as a pre-parsed document;
  // the pipeline stages after parse are identical.
  BatchReport report;
  report.outcomes.resize(corpus.size());
  Clock::time_point start = Clock::now();
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  auto check_tree = [&](size_t i) {
    DocumentOutcome& outcome = report.outcomes[i];
    outcome.name = "tree[" + std::to_string(i) + "]";
    const DataTree& tree = *corpus[i];
    outcome.vertices = tree.size();
    Clock::time_point t1 = Clock::now();
    outcome.structure = validator_.Validate(tree);
    Clock::time_point t2 = Clock::now();
    outcome.structure_seconds = Seconds(t1, t2);
    outcome.constraints = checker_.Check(tree);
    outcome.constraints_seconds = Seconds(t2, Clock::now());
  };
  if (threads <= 1 || corpus.size() <= 1) {
    threads = 1;
    for (size_t i = 0; i < corpus.size(); ++i) check_tree(i);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(corpus.size(), check_tree);
  }
  report.stats.wall_seconds = Seconds(start, Clock::now());
  report.stats.threads = threads;
  report.stats.documents = corpus.size();
  for (const DocumentOutcome& o : report.outcomes) {
    if (!o.structure.ok()) {
      ++report.stats.structurally_invalid;
    } else if (!o.constraints.ok()) {
      ++report.stats.constraint_violating;
    }
    report.stats.total_vertices += o.vertices;
    report.stats.total_violations +=
        o.structure.violations.size() + o.constraints.violations.size();
    report.stats.structure_seconds += o.structure_seconds;
    report.stats.constraints_seconds += o.constraints_seconds;
  }
  return report;
}

}  // namespace xic
