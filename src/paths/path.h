// Navigation paths (Section 4.1): sequences of element / attribute labels.

#ifndef XIC_PATHS_PATH_H_
#define XIC_PATHS_PATH_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace xic {

/// A path is a (possibly empty) sequence of names in E union A. The empty
/// path is the paper's epsilon.
struct Path {
  std::vector<std::string> steps;

  Path() = default;
  explicit Path(std::vector<std::string> s) : steps(std::move(s)) {}

  /// Parses dot syntax: "entry.isbn"; "" parses to epsilon.
  static Result<Path> Parse(const std::string& text);

  bool empty() const { return steps.empty(); }
  size_t size() const { return steps.size(); }

  /// Concatenation rho . sigma.
  Path Concat(const Path& suffix) const;

  /// The first `n` steps.
  Path Prefix(size_t n) const;
  /// The steps from `n` on.
  Path Suffix(size_t n) const;

  /// True iff this == prefix.sigma for some sigma.
  bool StartsWith(const Path& prefix) const;

  /// "epsilon" for the empty path, else dot-joined steps.
  std::string ToString() const;

  friend bool operator==(const Path&, const Path&) = default;
};

}  // namespace xic

#endif  // XIC_PATHS_PATH_H_
