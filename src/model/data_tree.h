// The XML data model of Definition 2.1.
//
// A data tree is (V, elem, att, root):
//   * V     -- a set of vertices,
//   * elem  -- maps each vertex to its element name and ordered list of
//              children (string values or vertices), forming a tree,
//   * att   -- partial map from (vertex, attribute name) to a *set* of
//              atomic values (single-valued attributes hold singletons),
//   * root  -- the distinguished root vertex.
//
// Vertices are arena-allocated and identified by dense VertexId indexes,
// so ext(tau) extents and per-attribute indexes are cheap arrays.

#ifndef XIC_MODEL_DATA_TREE_H_
#define XIC_MODEL_DATA_TREE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace xic {

using VertexId = uint32_t;
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// A child of a vertex: either a string value or a sub-tree vertex.
using Child = std::variant<std::string, VertexId>;

/// The (unordered) value of one attribute: a set of atomic values.
using AttrValue = std::set<std::string>;

class DataTree {
 public:
  DataTree() = default;

  /// Creates a vertex labeled `element_name`; the first vertex created
  /// becomes the root. Returns its id.
  VertexId AddVertex(std::string element_name);

  /// Appends `child` as the last child of `parent`. Fails if `child`
  /// already has a parent or if the edge would break the tree shape.
  Status AddChildVertex(VertexId parent, VertexId child);

  /// Appends a string child (character data) to `parent`.
  void AddChildText(VertexId parent, std::string text);

  /// Sets attribute `name` of `v` to the given set of values, replacing
  /// any previous value.
  void SetAttribute(VertexId v, const std::string& name, AttrValue value);

  /// Convenience for single-valued attributes.
  void SetAttribute(VertexId v, const std::string& name, std::string value);

  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  VertexId root() const { return root_; }

  const std::string& label(VertexId v) const { return labels_[v]; }
  const std::vector<Child>& children(VertexId v) const {
    return children_[v];
  }
  /// Parent of `v`, or kInvalidVertex for the root.
  VertexId parent(VertexId v) const { return parents_[v]; }

  /// The attribute map of `v` (name -> set of values).
  const std::map<std::string, AttrValue>& attributes(VertexId v) const {
    return attributes_[v];
  }

  /// True iff att(v, name) is defined.
  bool HasAttribute(VertexId v, const std::string& name) const;

  /// att(v, name); fails if undefined.
  Result<AttrValue> Attribute(VertexId v, const std::string& name) const;

  /// The single value of a single-valued attribute; fails if undefined or
  /// not a singleton.
  Result<std::string> SingleAttribute(VertexId v,
                                      const std::string& name) const;

  /// ext(tau): ids of all vertices labeled `element_name`, in creation
  /// order. O(|V|) per call; see ExtentIndex for repeated queries.
  std::vector<VertexId> Extent(const std::string& element_name) const;

  /// All distinct labels in the tree.
  std::set<std::string> Labels() const;

  /// Vertex-labelled children only (skipping string children), in order.
  std::vector<VertexId> ChildVertices(VertexId v) const;

  /// Labels of all children in order, with string children rendered as
  /// the reserved S symbol -- the word checked against P(tau).
  std::vector<std::string> ChildWord(VertexId v) const;

 private:
  std::vector<std::string> labels_;
  std::vector<std::vector<Child>> children_;
  std::vector<VertexId> parents_;
  std::vector<std::map<std::string, AttrValue>> attributes_;
  VertexId root_ = kInvalidVertex;
};

/// Precomputed ext(tau) index over an immutable DataTree.
class ExtentIndex {
 public:
  explicit ExtentIndex(const DataTree& tree);

  /// ext(tau) (empty if the label does not occur).
  const std::vector<VertexId>& Extent(const std::string& element_name) const;

 private:
  std::map<std::string, std::vector<VertexId>> extents_;
  std::vector<VertexId> empty_;
};

}  // namespace xic

#endif  // XIC_MODEL_DATA_TREE_H_
