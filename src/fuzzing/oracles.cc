#include "fuzzing/oracles.h"

#include <optional>
#include <sstream>

#include "analysis/analyzer.h"
#include "constraints/checker.h"
#include "constraints/constraint_parser.h"
#include "constraints/incremental.h"
#include "constraints/well_formed.h"
#include "engine/stream_validator.h"
#include "implication/countermodel.h"
#include "implication/l_general_solver.h"
#include "implication/lid_solver.h"
#include "implication/lu_solver.h"
#include "util/strings.h"
#include "xml/dtdc_io.h"
#include "xml/serializer.h"

namespace xic::fuzz {

const char* OracleName(OracleId id) {
  switch (id) {
    case OracleId::kChecker:
      return "checker";
    case OracleId::kIncremental:
      return "incremental";
    case OracleId::kImplication:
      return "implication";
    case OracleId::kRoundTrip:
      return "roundtrip";
    case OracleId::kLint:
      return "lint";
    case OracleId::kStream:
      return "stream";
  }
  return "unknown";
}

std::optional<OracleId> ParseOracleName(const std::string& name) {
  for (OracleId id : kAllOracles) {
    if (name == OracleName(id)) return id;
  }
  return std::nullopt;
}

namespace {

Language PickLanguage(Rng& rng) {
  switch (rng.Below(3)) {
    case 0:
      return Language::kL;
    case 1:
      return Language::kLu;
    default:
      return Language::kLid;
  }
}

// Canonical comparable rendering of a violation report (steps excluded:
// the two modes legitimately do different amounts of work).
std::string RenderReport(const ConstraintReport& report) {
  std::string out;
  for (const ConstraintViolation& v : report.violations) {
    out += std::to_string(v.constraint_index) + "|" + v.message + "|";
    for (VertexId w : v.witnesses) out += std::to_string(w) + ",";
    out += "|";
    for (const std::string& value : v.values) out += value + ",";
    out += "\n";
  }
  return out;
}

bool SubtreesEqual(const DataTree& a, VertexId va, const DataTree& b,
                   VertexId vb, std::string* why) {
  if (a.label(va) != b.label(vb)) {
    *why = "label " + a.label(va) + " vs " + b.label(vb);
    return false;
  }
  if (a.attributes(va) != b.attributes(vb)) {
    *why = "attributes of <" + a.label(va) + "> vertex " +
           std::to_string(va) + " differ";
    return false;
  }
  const std::vector<Child>& ca = a.children(va);
  const std::vector<Child>& cb = b.children(vb);
  if (ca.size() != cb.size()) {
    *why = "<" + a.label(va) + "> has " + std::to_string(ca.size()) + " vs " +
           std::to_string(cb.size()) + " children";
    return false;
  }
  for (size_t i = 0; i < ca.size(); ++i) {
    const std::string* ta = std::get_if<std::string>(&ca[i]);
    const std::string* tb = std::get_if<std::string>(&cb[i]);
    if ((ta == nullptr) != (tb == nullptr)) {
      *why = "child " + std::to_string(i) + " of <" + a.label(va) +
             "> changed kind";
      return false;
    }
    if (ta != nullptr) {
      if (*ta != *tb) {
        *why = "text \"" + *ta + "\" vs \"" + *tb + "\"";
        return false;
      }
    } else if (!SubtreesEqual(a, std::get<VertexId>(ca[i]), b,
                              std::get<VertexId>(cb[i]), why)) {
      return false;
    }
  }
  return true;
}

bool TreesEqual(const DataTree& a, const DataTree& b, std::string* why) {
  if (a.empty() != b.empty()) {
    *why = "one tree is empty";
    return false;
  }
  if (a.empty()) return true;
  return SubtreesEqual(a, a.root(), b, b.root(), why);
}

DataTree MinimalTree(const DtdStructure& dtd) {
  DataTree tree;
  tree.AddVertex(dtd.root());
  return tree;
}

CorpusEntry MakeEntry(OracleId oracle, uint64_t seed, std::string note,
                      const DtdStructure& dtd, const ConstraintSet& sigma,
                      const DataTree& tree) {
  CorpusEntry entry;
  entry.oracle = OracleName(oracle);
  entry.seed = seed;
  // Notes are single-line headers in the corpus format.
  for (char& c : note) {
    if (c == '\n') c = ' ';
  }
  entry.note = std::move(note);
  entry.document = WriteDocumentWithDtdC(tree, dtd, sigma);
  return entry;
}

// -- Oracle 1: naive vs. fast ConstraintChecker ---------------------------

std::optional<std::string> CompareCheckerModes(const DtdStructure& dtd,
                                               const ConstraintSet& sigma,
                                               const DataTree& tree) {
  for (size_t max_violations : {size_t{0}, size_t{1}, size_t{2}}) {
    CheckOptions fast_options;
    fast_options.max_violations = max_violations;
    CheckOptions naive_options = fast_options;
    naive_options.naive = true;
    ConstraintChecker fast(dtd, sigma, fast_options);
    ConstraintChecker naive(dtd, sigma, naive_options);
    ConstraintReport fast_report = fast.Check(tree);
    ConstraintReport naive_report = naive.Check(tree);
    if (!fast_report.status.ok() || !naive_report.status.ok()) {
      return "checker status not OK: fast=" +
             fast_report.status.ToString() +
             " naive=" + naive_report.status.ToString();
    }
    std::string fast_rendering = RenderReport(fast_report);
    std::string naive_rendering = RenderReport(naive_report);
    if (fast_rendering != naive_rendering) {
      return "naive/fast reports diverge (max_violations=" +
             std::to_string(max_violations) + ")\n--- fast ---\n" +
             fast_rendering + "--- naive ---\n" + naive_rendering;
    }
  }
  return std::nullopt;
}

// -- Oracle 2: incremental vs. batch --------------------------------------

Status ApplyUpdate(IncrementalChecker* checker, const UpdateOp& op) {
  if (op.kind == UpdateOp::Kind::kAddElement) {
    return checker->AddElement(op.parent, op.label).status();
  }
  return checker->SetAttribute(op.vertex, op.attr,
                               AttrValue(op.values.begin(), op.values.end()));
}

std::optional<std::string> RunIncrementalSequence(
    const DtdStructure& dtd, const ConstraintSet& sigma,
    const std::vector<UpdateOp>& ops) {
  IncrementalChecker incremental(dtd, sigma);
  if (!incremental.status().ok()) {
    // Unsupported sigma: every operation must fail and leave the
    // (empty) document untouched.
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ApplyUpdate(&incremental, ops[i]).ok()) {
        return "op " + std::to_string(i) + " (" + FormatUpdate(ops[i]) +
               ") succeeded on a NotSupported checker";
      }
    }
    if (!incremental.tree().empty() || incremental.violation_count() != 0) {
      return "NotSupported checker mutated its state";
    }
    return std::nullopt;
  }
  ConstraintChecker batch(dtd, sigma);
  for (size_t i = 0; i < ops.size(); ++i) {
    size_t size_before = incremental.tree().size();
    bool consistent_before = incremental.consistent();
    Status applied = ApplyUpdate(&incremental, ops[i]);
    if (!applied.ok()) {
      if (incremental.tree().size() != size_before ||
          incremental.consistent() != consistent_before) {
        return "rejected op " + std::to_string(i) + " (" +
               FormatUpdate(ops[i]) + ") changed state: " +
               applied.ToString();
      }
    }
    ConstraintReport report = batch.Check(incremental.tree());
    if (!report.status.ok()) {
      return "batch check failed after op " + std::to_string(i) + ": " +
             report.status.ToString();
    }
    bool batch_consistent = report.violations.empty();
    if (incremental.consistent() != batch_consistent) {
      return "after op " + std::to_string(i) + " (" + FormatUpdate(ops[i]) +
             "): incremental says " +
             (incremental.consistent() ? "consistent" : "violated") + " (" +
             std::to_string(incremental.violation_count()) +
             " counted), batch found " +
             std::to_string(report.violations.size()) + " violation(s)";
    }
  }
  return std::nullopt;
}

// -- Oracle 3: solvers vs. countermodel enumeration -----------------------

bool VerifiedCountermodel(const TableInstance& instance,
                          const ConstraintSet& sigma, const Constraint& phi,
                          const DtdStructure* dtd, std::string* why) {
  if (!SatisfiesAll(instance, sigma, dtd)) {
    *why = "claimed countermodel violates sigma";
    return false;
  }
  if (Satisfies(instance, phi, dtd)) {
    *why = "claimed countermodel satisfies phi";
    return false;
  }
  return true;
}

// Replays a countermodel through LiftToDocument + the real checker: the
// lifted document must satisfy sigma and violate phi. Only meaningful
// for L / L_u (lifting loses the ID kinds L_id semantics needs).
std::optional<std::string> LiftCrossCheck(const TableInstance& instance,
                                          const ConstraintSet& sigma,
                                          const Constraint& phi) {
  TableSchema schema = TableSchema::Infer(sigma, phi);
  Result<LiftedDocument> lifted = LiftToDocument(instance, schema);
  if (!lifted.ok()) {
    return "LiftToDocument failed on a countermodel: " +
           lifted.status().ToString();
  }
  ConstraintChecker sigma_checker(lifted.value().dtd, sigma);
  ConstraintReport sigma_report = sigma_checker.Check(lifted.value().tree);
  if (!sigma_report.violations.empty()) {
    return "lifted countermodel violates sigma under ConstraintChecker: " +
           sigma_report.violations.front().message;
  }
  ConstraintSet phi_set;
  phi_set.language = sigma.language;
  phi_set.constraints.push_back(phi);
  ConstraintChecker phi_checker(lifted.value().dtd, phi_set);
  ConstraintReport phi_report = phi_checker.Check(lifted.value().tree);
  if (phi_report.violations.empty()) {
    return "lifted countermodel satisfies phi under ConstraintChecker "
           "(enumerator and checker disagree)";
  }
  return std::nullopt;
}

bool ChaseApplicable(const ConstraintSet& sigma, const Constraint& phi) {
  auto plain = [](const Constraint& c) {
    return c.kind == ConstraintKind::kKey ||
           c.kind == ConstraintKind::kForeignKey;
  };
  for (const Constraint& c : sigma.constraints) {
    if (!plain(c)) return false;
  }
  return plain(phi);
}

struct ImplicationVerdict {
  bool skipped = false;
  std::optional<std::string> detail;
};

ImplicationVerdict CompareImplication(const DtdStructure& dtd,
                                      const ConstraintSet& sigma,
                                      const Constraint& phi) {
  ImplicationVerdict verdict;
  EnumerationBounds bounds;
  bounds.max_rows_per_type = 2;
  bounds.num_values = 2;
  bounds.max_instances = 150'000;
  bounds.deadline = Deadline::AfterMillis(2000);
  const DtdStructure* dtd_for_semantics =
      sigma.language == Language::kLid ? &dtd : nullptr;

  bool implied = false;           // finite implication verdict
  bool implied_unrestricted = false;
  if (sigma.language == Language::kLu) {
    LuSolver solver(sigma);
    implied_unrestricted = solver.Implies(phi);
    implied = solver.FinitelyImplies(phi);
    if (implied_unrestricted && !implied) {
      verdict.detail =
          "LuSolver: unrestricted implication without finite implication";
      return verdict;
    }
  } else if (sigma.language == Language::kLid) {
    LidSolver solver(dtd, sigma);
    implied = solver.Implies(phi);
    implied_unrestricted = implied;  // L_id: the two coincide (Section 3.1)
  } else {
    GeneralOptions options;
    options.max_chase_steps = 400;
    options.max_chase_rows = 200;
    options.deadline = Deadline::AfterMillis(1500);
    GeneralResult result = ChaseImplication(sigma, phi, options);
    if (result.outcome == ImplicationOutcome::kUnknown) {
      verdict.skipped = true;
      return verdict;
    }
    implied = result.outcome == ImplicationOutcome::kImplied;
    implied_unrestricted = implied;
    if (result.outcome == ImplicationOutcome::kNotImplied) {
      if (!result.countermodel.has_value()) {
        verdict.detail = "chase reported kNotImplied without a countermodel";
        return verdict;
      }
      std::string why;
      if (!VerifiedCountermodel(*result.countermodel, sigma, phi, nullptr,
                                &why)) {
        verdict.detail = "chase countermodel fails verification: " + why;
        return verdict;
      }
      verdict.detail = LiftCrossCheck(*result.countermodel, sigma, phi);
      if (verdict.detail.has_value()) return verdict;
    }
  }

  EnumerationOutcome outcome =
      EnumerateCountermodelBounded(sigma, phi, bounds, dtd_for_semantics);
  if (outcome.countermodel.has_value()) {
    std::string why;
    if (!VerifiedCountermodel(*outcome.countermodel, sigma, phi,
                              dtd_for_semantics, &why)) {
      verdict.detail = "enumerator countermodel fails verification: " + why;
      return verdict;
    }
    if (implied) {
      verdict.detail = "solver finitely implies " + phi.ToString() +
                       " but a verified countermodel exists:\n" +
                       outcome.countermodel->ToString();
      return verdict;
    }
    if (sigma.language != Language::kLid) {
      verdict.detail = LiftCrossCheck(*outcome.countermodel, sigma, phi);
      if (verdict.detail.has_value()) return verdict;
    }
  } else if (!implied && !outcome.status.ok()) {
    // "Not implied" that the cut-short enumeration could not refute:
    // inconclusive, not disagreement.
    verdict.skipped = true;
    return verdict;
  }

  // Cross-check the L_u axioms against the chase where both apply.
  if (sigma.language == Language::kLu && ChaseApplicable(sigma, phi)) {
    GeneralOptions options;
    options.max_chase_steps = 400;
    options.max_chase_rows = 200;
    options.deadline = Deadline::AfterMillis(1500);
    GeneralResult chase = ChaseImplication(sigma, phi, options);
    if (chase.outcome == ImplicationOutcome::kImplied &&
        !implied_unrestricted) {
      verdict.detail = "chase proves " + phi.ToString() +
                       " but LuSolver::Implies denies it";
    } else if (chase.outcome == ImplicationOutcome::kNotImplied && implied) {
      verdict.detail = "chase found a finite countermodel for " +
                       phi.ToString() +
                       " but LuSolver::FinitelyImplies holds";
    }
  }
  return verdict;
}

// -- Oracle 4: parse -> serialize -> parse fixpoint -----------------------

std::optional<std::string> CompareRoundTripText(const std::string& text) {
  Result<SelfDescribingDocument> first = ParseDocumentWithDtdC(text);
  if (!first.ok()) {
    return "initial document does not parse: " + first.status().ToString();
  }
  if (!first.value().document.dtd.has_value()) {
    return std::optional<std::string>{};  // nothing to round-trip against
  }
  const DtdStructure& dtd = *first.value().document.dtd;
  ConstraintSet sigma;
  if (first.value().sigma.has_value()) sigma = *first.value().sigma;
  std::string once =
      WriteDocumentWithDtdC(first.value().document.tree, dtd, sigma);
  Result<SelfDescribingDocument> second = ParseDocumentWithDtdC(once);
  if (!second.ok()) {
    return "serialized document does not re-parse: " +
           second.status().ToString() + "\n--- serialized ---\n" + once;
  }
  std::string why;
  if (!TreesEqual(first.value().document.tree, second.value().document.tree,
                  &why)) {
    return "tree changed across serialize -> parse: " + why;
  }
  if (!second.value().document.dtd.has_value() ||
      second.value().document.dtd->ToString() != dtd.ToString()) {
    return "DTD changed across serialize -> parse";
  }
  ConstraintSet sigma2;
  if (second.value().sigma.has_value()) sigma2 = *second.value().sigma;
  if (sigma2.language != sigma.language ||
      sigma2.constraints != sigma.constraints) {
    return "constraint block changed across serialize -> parse";
  }
  std::string twice =
      WriteDocumentWithDtdC(second.value().document.tree, dtd, sigma2);
  if (once != twice) {
    return "serialization is not a fixpoint\n--- first ---\n" + once +
           "--- second ---\n" + twice;
  }
  return std::nullopt;
}

// -- Oracle 5: lint determinism and round-trip invariance -----------------

std::optional<std::string> CompareLint(const DtdStructure& dtd,
                                       const ConstraintSet& sigma) {
  Analyzer analyzer;
  AnalysisReport first = analyzer.Analyze(dtd, sigma);
  AnalysisReport second = analyzer.Analyze(dtd, sigma);
  std::string first_json = first.ToJson();
  if (first_json != second.ToJson()) {
    return "analyzer output is not deterministic across runs";
  }
  std::string text = WriteDtdC(dtd, sigma);
  Result<DtdC> reparsed = ParseDtdC(text, dtd.root());
  if (!reparsed.ok()) {
    return "WriteDtdC output does not re-parse: " +
           reparsed.status().ToString();
  }
  ConstraintSet sigma2;
  sigma2.language = sigma.language;
  if (reparsed.value().sigma.has_value()) sigma2 = *reparsed.value().sigma;
  AnalysisReport third = analyzer.Analyze(reparsed.value().dtd, sigma2);
  if (first_json != third.ToJson()) {
    return "analyzer verdict changed across a DtdC round-trip\n"
           "--- original ---\n" +
           first_json + "\n--- round-tripped ---\n" + third.ToJson();
  }
  if (first.ExitCode() != third.ExitCode()) {
    return "xiclint exit code changed across a DtdC round-trip";
  }
  return std::nullopt;
}

// -- Trial drivers --------------------------------------------------------

OracleOutcome CheckerTrial(uint64_t seed, const GenOptions& opt) {
  OracleOutcome outcome;
  Rng rng(seed);
  DtdStructure dtd = GenerateDtd(rng, opt);
  Language lang = PickLanguage(rng);
  ConstraintSet sigma = GenerateSigma(rng, dtd, lang, opt);
  Result<DataTree> doc = GenerateDocument(rng, dtd, opt);
  if (!doc.ok()) {
    outcome.skipped = true;
    return outcome;
  }
  std::optional<std::string> detail =
      CompareCheckerModes(dtd, sigma, doc.value());
  if (detail.has_value()) {
    outcome.mismatch = true;
    outcome.detail = *detail;
    outcome.entry = MakeEntry(OracleId::kChecker, seed, *detail, dtd, sigma,
                              doc.value());
  }
  return outcome;
}

OracleOutcome IncrementalTrial(uint64_t seed, const GenOptions& opt) {
  OracleOutcome outcome;
  Rng rng(seed);
  GenOptions attr_only = opt;
  attr_only.sub_element_fields = rng.Chance(25);  // mostly supported sigma
  DtdStructure dtd = GenerateDtd(rng, attr_only);
  Language lang = PickLanguage(rng);
  ConstraintSet sigma = GenerateSigma(rng, dtd, lang, attr_only);
  std::vector<UpdateOp> ops = GenerateUpdates(rng, dtd, attr_only);
  std::optional<std::string> detail =
      RunIncrementalSequence(dtd, sigma, ops);
  if (detail.has_value()) {
    outcome.mismatch = true;
    outcome.detail = *detail;
    outcome.entry = MakeEntry(OracleId::kIncremental, seed, *detail, dtd,
                              sigma, MinimalTree(dtd));
    for (const UpdateOp& op : ops) {
      outcome.entry.updates.push_back(FormatUpdate(op));
    }
  }
  return outcome;
}

OracleOutcome ImplicationTrial(uint64_t seed, const GenOptions& opt) {
  OracleOutcome outcome;
  Rng rng(seed);
  GenOptions small = opt;
  small.max_types = 2;  // keep exhaustive enumeration tractable
  DtdStructure dtd = GenerateDtd(rng, small);
  Language lang = PickLanguage(rng);
  ConstraintSet sigma = GenerateSigma(rng, dtd, lang, small);
  Constraint phi = GeneratePhi(rng, dtd, sigma, lang);
  ImplicationVerdict verdict = CompareImplication(dtd, sigma, phi);
  outcome.skipped = verdict.skipped;
  if (verdict.detail.has_value()) {
    outcome.mismatch = true;
    outcome.detail = *verdict.detail;
    outcome.entry = MakeEntry(OracleId::kImplication, seed, *verdict.detail,
                              dtd, sigma, MinimalTree(dtd));
    outcome.entry.phi = WriteConstraintStatement(phi);
  }
  return outcome;
}

OracleOutcome RoundTripTrial(uint64_t seed, const GenOptions& opt) {
  OracleOutcome outcome;
  Rng rng(seed);
  DtdStructure dtd = GenerateDtd(rng, opt);
  Language lang = PickLanguage(rng);
  ConstraintSet sigma = GenerateSigma(rng, dtd, lang, opt);
  Result<DataTree> doc = GenerateDocument(rng, dtd, opt);
  if (!doc.ok()) {
    outcome.skipped = true;
    return outcome;
  }
  std::string text = WriteDocumentWithDtdC(doc.value(), dtd, sigma);
  std::optional<std::string> detail;
  // The in-memory tree must survive the first serialization too (a
  // text-only fixpoint would miss lossy escaping of generated values).
  Result<SelfDescribingDocument> parsed = ParseDocumentWithDtdC(text);
  if (!parsed.ok()) {
    detail = "generated document does not parse: " +
             parsed.status().ToString() + "\n--- text ---\n" + text;
  } else {
    std::string why;
    if (!TreesEqual(doc.value(), parsed.value().document.tree, &why)) {
      detail = "generated tree changed across serialize -> parse: " + why;
    } else {
      detail = CompareRoundTripText(text);
    }
  }
  if (detail.has_value()) {
    outcome.mismatch = true;
    outcome.detail = *detail;
    outcome.entry = MakeEntry(OracleId::kRoundTrip, seed, *detail, dtd,
                              sigma, doc.value());
  }
  return outcome;
}

OracleOutcome LintTrial(uint64_t seed, const GenOptions& opt) {
  OracleOutcome outcome;
  Rng rng(seed);
  DtdStructure dtd = GenerateDtd(rng, opt);
  Language lang = PickLanguage(rng);
  bool well_formed = rng.Chance(50);
  ConstraintSet sigma = GenerateSigma(rng, dtd, lang, opt, well_formed);
  std::optional<std::string> detail = CompareLint(dtd, sigma);
  if (detail.has_value()) {
    outcome.mismatch = true;
    outcome.detail = *detail;
    outcome.entry =
        MakeEntry(OracleId::kLint, seed, *detail, dtd, sigma,
                  MinimalTree(dtd));
  }
  return outcome;
}

// -- Oracle 6: streaming vs. materialized validation ----------------------

// Comparable rendering of a structural report, witnesses included
// (ToString() carries the vertex ids too, but keep the comparison
// independent of its formatting).
std::string RenderValidation(const ValidationReport& report) {
  std::string out;
  for (const Violation& v : report.violations) {
    out += std::to_string(v.vertex) + "|" + v.message + "\n";
  }
  return out;
}

// Runs the full xicheck pipeline both ways -- materialized
// (ParseDocumentWithDtdC + StructuralValidator + ConstraintChecker) and
// streaming (StreamValidateSelfDescribing) -- and demands byte-identical
// verdicts at every stage. `text` need not be well-formed XML: a parse
// failure is itself compared (same status text, same position).
std::optional<std::string> CompareStream(const std::string& text,
                                         size_t spill_budget,
                                         bool allow_missing) {
  StreamOptions sopt;
  sopt.validation.allow_missing_attributes = allow_missing;
  sopt.spill_budget_bytes = spill_budget;
  // Tiny chunks so one text run regularly spans several kText events.
  sopt.chunk_bytes = 64;
  StringSource source(text);
  SelfDescribingStreamResult s = StreamValidateSelfDescribing(source, sopt);

  Result<SelfDescribingDocument> parsed = ParseDocumentWithDtdC(text);
  std::string dom_parse = parsed.ok() ? "OK" : parsed.status().ToString();
  std::string stream_parse =
      s.outcome.parse.ok() ? "OK" : s.outcome.parse.ToString();
  if (dom_parse != stream_parse) {
    return "parse status diverged:\n  DOM:    " + dom_parse +
           "\n  stream: " + stream_parse;
  }
  if (!parsed.ok()) return std::nullopt;
  const SelfDescribingDocument& doc = parsed.value();
  if (doc.document.dtd.has_value() != s.has_dtd) {
    return std::string("DTD presence diverged: DOM ") +
           (doc.document.dtd.has_value() ? "has" : "lacks") +
           " a DTD, stream " + (s.has_dtd ? "has" : "lacks") + " one";
  }
  if (!doc.document.dtd.has_value()) return std::nullopt;
  const DtdStructure& dtd = *doc.document.dtd;

  ValidationOptions vopt;
  vopt.allow_missing_attributes = allow_missing;
  StructuralValidator validator(dtd, vopt);
  ValidationReport dom_structure = validator.Validate(doc.document.tree);
  if (dom_structure.status.ToString() !=
      s.outcome.structure.status.ToString()) {
    return "structure status diverged:\n  DOM:    " +
           dom_structure.status.ToString() +
           "\n  stream: " + s.outcome.structure.status.ToString();
  }
  if (RenderValidation(dom_structure) !=
          RenderValidation(s.outcome.structure) ||
      dom_structure.ToString() != s.outcome.structure.ToString()) {
    return "structure report diverged:\n--- DOM ---\n" +
           dom_structure.ToString() + "--- stream ---\n" +
           s.outcome.structure.ToString();
  }

  if (doc.sigma.has_value() != s.sigma.has_value()) {
    return std::string("constraint-block presence diverged: DOM ") +
           (doc.sigma.has_value() ? "has" : "lacks") + " sigma, stream " +
           (s.sigma.has_value() ? "has" : "lacks") + " sigma";
  }
  if (!doc.sigma.has_value()) return std::nullopt;
  const ConstraintSet& sigma = *doc.sigma;
  Status wf = CheckWellFormed(sigma, dtd);
  if (wf.ToString() != s.well_formed.ToString()) {
    return "well-formedness status diverged:\n  DOM:    " + wf.ToString() +
           "\n  stream: " + s.well_formed.ToString();
  }
  if (!wf.ok()) return std::nullopt;

  ConstraintChecker checker(dtd, sigma);
  ConstraintReport dom_report = checker.Check(doc.document.tree);
  if (dom_report.status.ToString() !=
      s.outcome.constraints.status.ToString()) {
    return "constraint status diverged:\n  DOM:    " +
           dom_report.status.ToString() +
           "\n  stream: " + s.outcome.constraints.status.ToString();
  }
  if (RenderReport(dom_report) != RenderReport(s.outcome.constraints) ||
      dom_report.ToString(sigma) != s.outcome.constraints.ToString(sigma)) {
    return "constraint report diverged (spill budget " +
           std::to_string(spill_budget) + "):\n--- DOM ---\n" +
           dom_report.ToString(sigma) + "--- stream ---\n" +
           s.outcome.constraints.ToString(sigma);
  }
  return std::nullopt;
}

// Every committed stream entry is replayed across this budget/option
// grid (the trial that found it used one random point of it).
std::optional<std::string> CompareStreamGrid(const std::string& text) {
  for (size_t budget : {size_t{0}, size_t{1}}) {
    for (bool allow_missing : {true, false}) {
      std::optional<std::string> detail =
          CompareStream(text, budget, allow_missing);
      if (detail.has_value()) return detail;
    }
  }
  return std::nullopt;
}

OracleOutcome StreamTrial(uint64_t seed, const GenOptions& opt) {
  OracleOutcome outcome;
  Rng rng(seed);
  DtdStructure dtd = GenerateDtd(rng, opt);
  Language lang = PickLanguage(rng);
  bool well_formed = rng.Chance(80);
  ConstraintSet sigma = GenerateSigma(rng, dtd, lang, opt, well_formed);
  Result<DataTree> doc = GenerateDocument(rng, dtd, opt);
  if (!doc.ok()) {
    outcome.skipped = true;
    return outcome;
  }
  std::string text = WriteDocumentWithDtdC(doc.value(), dtd, sigma);
  // A third of the trials corrupt the bytes: both parsers must then fail
  // with the identical status (message, line, column) -- this is what
  // keeps the tokenizer's error surface pinned to the DOM parser's.
  if (rng.Chance(33)) {
    size_t edits = rng.Range(1, 3);
    for (size_t i = 0; i < edits && !text.empty(); ++i) {
      size_t pos = rng.Below(text.size());
      char byte = static_cast<char>(rng.Range(32, 126));
      switch (rng.Below(3)) {
        case 0:
          text[pos] = byte;
          break;
        case 1:
          text.erase(pos, 1);
          break;
        default:
          text.insert(pos, 1, byte);
      }
    }
  }
  static constexpr size_t kBudgets[] = {0, 1, 256, 1u << 20};
  size_t budget = kBudgets[rng.Below(4)];
  bool allow_missing = rng.Chance(50);
  std::optional<std::string> detail =
      CompareStream(text, budget, allow_missing);
  if (detail.has_value()) {
    outcome.mismatch = true;
    outcome.detail = *detail;
    outcome.entry = MakeEntry(OracleId::kStream, seed, *detail, dtd, sigma,
                              doc.value());
    // The (possibly corrupted) bytes ARE the reproduction; MakeEntry's
    // re-serialization would lose the corruption.
    outcome.entry.document = text;
  }
  return outcome;
}

}  // namespace

OracleOutcome RunTrial(OracleId oracle, uint64_t seed,
                       const GenOptions& opt) {
  switch (oracle) {
    case OracleId::kChecker:
      return CheckerTrial(seed, opt);
    case OracleId::kIncremental:
      return IncrementalTrial(seed, opt);
    case OracleId::kImplication:
      return ImplicationTrial(seed, opt);
    case OracleId::kRoundTrip:
      return RoundTripTrial(seed, opt);
    case OracleId::kLint:
      return LintTrial(seed, opt);
    case OracleId::kStream:
      return StreamTrial(seed, opt);
  }
  OracleOutcome outcome;
  outcome.skipped = true;
  return outcome;
}

Result<OracleOutcome> ReplayEntry(const CorpusEntry& entry) {
  std::optional<OracleId> oracle = ParseOracleName(entry.oracle);
  if (!oracle.has_value()) {
    return Status::InvalidArgument("unknown oracle \"" + entry.oracle + "\"");
  }
  if (*oracle == OracleId::kStream) {
    // Stream entries replay on the raw bytes -- they may deliberately
    // not parse (the oracle compares the two parsers' failures too), so
    // they skip the materialized-parse gate below.
    OracleOutcome outcome;
    std::optional<std::string> detail = CompareStreamGrid(entry.document);
    if (detail.has_value()) {
      outcome.mismatch = true;
      outcome.detail = *detail;
      outcome.entry = entry;
    }
    return outcome;
  }
  Result<SelfDescribingDocument> parsed =
      ParseDocumentWithDtdC(entry.document);
  if (!parsed.ok()) {
    return Status::InvalidArgument("corpus document does not parse: " +
                                   parsed.status().ToString());
  }
  if (!parsed.value().document.dtd.has_value()) {
    return Status::InvalidArgument("corpus document carries no DTD");
  }
  const DtdStructure& dtd = *parsed.value().document.dtd;
  ConstraintSet sigma;
  if (parsed.value().sigma.has_value()) sigma = *parsed.value().sigma;

  OracleOutcome outcome;
  std::optional<std::string> detail;
  switch (*oracle) {
    case OracleId::kChecker:
      detail = CompareCheckerModes(dtd, sigma, parsed.value().document.tree);
      break;
    case OracleId::kIncremental: {
      std::vector<UpdateOp> ops;
      for (const std::string& line : entry.updates) {
        XIC_ASSIGN_OR_RETURN(UpdateOp op, ParseUpdate(line));
        ops.push_back(std::move(op));
      }
      detail = RunIncrementalSequence(dtd, sigma, ops);
      break;
    }
    case OracleId::kImplication: {
      if (entry.phi.empty()) {
        return Status::InvalidArgument(
            "implication entry lacks a phi section");
      }
      XIC_ASSIGN_OR_RETURN(std::vector<Constraint> phis,
                           ParseConstraints(entry.phi));
      if (phis.size() != 1) {
        return Status::InvalidArgument(
            "implication entry needs exactly one phi constraint");
      }
      ImplicationVerdict verdict =
          CompareImplication(dtd, sigma, phis.front());
      outcome.skipped = verdict.skipped;
      detail = verdict.detail;
      break;
    }
    case OracleId::kRoundTrip:
      detail = CompareRoundTripText(entry.document);
      break;
    case OracleId::kLint:
      detail = CompareLint(dtd, sigma);
      break;
    case OracleId::kStream:
      break;  // handled above, before the parse gate
  }
  if (detail.has_value()) {
    outcome.mismatch = true;
    outcome.detail = *detail;
    outcome.entry = entry;
  }
  return outcome;
}

}  // namespace xic::fuzz
