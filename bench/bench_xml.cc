// Experiment B2: XML substrate throughput -- parsing and serialization
// of generated book catalogs, plus DTD parsing.

#include <benchmark/benchmark.h>

#include <string>

#include "xml/dtd_parser.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace {

using namespace xic;

std::string MakeCatalogXml(int n) {
  std::string out = R"(<?xml version="1.0"?>
<!DOCTYPE catalog [
  <!ELEMENT catalog (book*)>
  <!ELEMENT book (entry, author*, ref)>
  <!ELEMENT entry (title)>
  <!ATTLIST entry isbn CDATA #REQUIRED>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT ref EMPTY>
  <!ATTLIST ref to NMTOKENS #REQUIRED>
]>
<catalog>)";
  for (int i = 0; i < n; ++i) {
    std::string isbn = "i" + std::to_string(i);
    out += "<book><entry isbn=\"" + isbn + "\"><title>Book &amp; title " +
           std::to_string(i) + "</title></entry><author>A" +
           std::to_string(i) + "</author><ref to=\"" + isbn + " i0\"/></book>";
  }
  out += "</catalog>";
  return out;
}

void BM_ParseXml(benchmark::State& state) {
  std::string text = MakeCatalogXml(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<XmlDocument> doc = ParseXml(text);
    benchmark::DoNotOptimize(doc.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseXml)->RangeMultiplier(8)->Range(8, 32768);

void BM_SerializeXml(benchmark::State& state) {
  std::string text = MakeCatalogXml(static_cast<int>(state.range(0)));
  XmlDocument doc = ParseXml(text).value();
  for (auto _ : state) {
    std::string out = SerializeXml(doc.tree);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_SerializeXml)->RangeMultiplier(8)->Range(8, 32768);

void BM_ParseDtd(benchmark::State& state) {
  // n element declarations with attributes.
  int n = static_cast<int>(state.range(0));
  std::string dtd = "<!ELEMENT root (t0*)>";
  for (int i = 0; i < n; ++i) {
    std::string t = "t" + std::to_string(i);
    dtd += "<!ELEMENT " + t + " (#PCDATA)>";
    dtd += "<!ATTLIST " + t + " oid ID #REQUIRED refs IDREFS #IMPLIED>";
  }
  for (auto _ : state) {
    Result<DtdStructure> parsed = ParseDtd(dtd, "root");
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ParseDtd)
    ->RangeMultiplier(8)
    ->Range(8, 4096)
    ->Complexity();

}  // namespace
