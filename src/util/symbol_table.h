// Interned name table: element and attribute names mapped to dense
// 32-bit symbol ids.
//
// The parse -> validate -> check pipeline used to key everything --
// ext(tau) extents, per-vertex attribute maps, checker indexes, content
// model alphabets -- on std::string. Every lookup hashed or compared a
// heap string, and every vertex carried its own copies. A SymbolTable
// replaces those keys with dense uint32 ids: names are stored once, ids
// are assigned in first-intern order, and all hot-path comparisons become
// integer compares while extents and per-symbol caches become flat
// arrays indexed by id.
//
// Determinism: ids depend only on the sequence of Intern() calls, so a
// table built single-threadedly from a document's parse order is
// identical no matter which pool worker parsed it (pinned by
// arena_test.cc across 16 concurrent threads).
//
// Thread-safety: Intern() mutates and must be externally synchronized
// (in practice each DataTree owns its table and is built by one thread);
// Find()/name()/size() are const and safe to call concurrently with each
// other once building is done. name() references are stable across
// subsequent Intern() calls (names live in a deque).

#ifndef XIC_UTIL_SYMBOL_TABLE_H_
#define XIC_UTIL_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace xic {

/// A dense interned-name id. Valid ids are < SymbolTable::size().
using Symbol = uint32_t;

/// Returned by Find() for names never interned.
inline constexpr Symbol kInvalidSymbol = static_cast<Symbol>(-1);

class SymbolTable {
 public:
  SymbolTable() = default;

  // index_ keys are views into names_, so copying must rebuild the index
  // over the *copied* strings (the defaulted copy would keep views into
  // the source). Moves steal the deque wholesale -- element addresses are
  // unchanged, so the views stay valid -- and are noexcept so vectors of
  // tables (e.g. corpora of DataTrees) relocate by move, never by copy.
  SymbolTable(const SymbolTable& other) : names_(other.names_) {
    RebuildIndex();
  }
  SymbolTable& operator=(const SymbolTable& other) {
    if (this != &other) {
      names_ = other.names_;
      RebuildIndex();
    }
    return *this;
  }
  SymbolTable(SymbolTable&& other) noexcept
      : names_(std::move(other.names_)), index_(std::move(other.index_)) {
    other.names_.clear();
    other.index_.clear();
  }
  SymbolTable& operator=(SymbolTable&& other) noexcept {
    if (this != &other) {
      names_ = std::move(other.names_);
      index_ = std::move(other.index_);
      other.names_.clear();
      other.index_.clear();
    }
    return *this;
  }

  /// The id of `name`, interning it on first use. Ids are assigned
  /// densely in first-intern order (0, 1, 2, ...).
  Symbol Intern(std::string_view name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    Symbol id = static_cast<Symbol>(names_.size());
    names_.emplace_back(name);
    // The key view points at the deque-owned string, which never moves.
    index_.emplace(std::string_view(names_.back()), id);
    return id;
  }

  /// The id of `name` if already interned, else kInvalidSymbol. Never
  /// mutates, so concurrent Find() calls are safe.
  Symbol Find(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? kInvalidSymbol : it->second;
  }

  /// The name interned as `s`. The reference is stable for the table's
  /// lifetime (names are never moved or removed).
  const std::string& name(Symbol s) const { return names_[s]; }

  /// Number of distinct names interned; also one past the largest id.
  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  void RebuildIndex() {
    index_.clear();
    index_.reserve(names_.size());
    for (Symbol id = 0; id < names_.size(); ++id) {
      index_.emplace(std::string_view(names_[id]), id);
    }
  }

  std::deque<std::string> names_;  // id -> name; deque: stable references
  std::unordered_map<std::string_view, Symbol> index_;
};

}  // namespace xic

#endif  // XIC_UTIL_SYMBOL_TABLE_H_
