// Resource governance for the parse -> validate -> solve pipeline.
//
// The paper's decision procedures span the complexity spectrum (linear
// L_id/L_u implication, PSPACE regex inclusion, exponential countermodel
// search, an undecidable general-L problem attacked by bounded search),
// and the parsers face arbitrary user input. A service built on this
// library must bound every call and survive hostile documents rather
// than hang or OOM. This header is the shared vocabulary:
//
//   * ResourceLimits -- hard input and search bounds. Exceeding one
//     yields Status::LimitExceeded naming the limit (kResourceExhausted,
//     limit() == "max_tree_depth" etc.), never a crash or silent
//     truncation.
//   * Deadline -- a monotonic-clock budget, optionally coupled to a
//     CancellationToken. Threaded through parsers, validators and
//     solvers; expiry yields kDeadlineExceeded.
//
// Both are cheap value types: a Deadline is a time_point plus a pointer,
// and expiry checks are amortized by the callers (typically once per
// element / vertex / search step).

#ifndef XIC_UTIL_LIMITS_H_
#define XIC_UTIL_LIMITS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace xic {

/// Hard caps on input size and search effort. 0 always means "unlimited".
/// The defaults are generous for real schemas and corpora but small
/// enough that a hostile input fails in milliseconds, not hours.
struct ResourceLimits {
  /// Raw bytes of one XML document (or DTD subset) handed to a parser.
  size_t max_document_bytes = 64u << 20;  // 64 MiB
  /// Element nesting depth of a document (the parser recurses per level).
  size_t max_tree_depth = 512;
  /// Attributes on a single element.
  size_t max_attributes_per_element = 512;
  /// Total bytes produced by entity / character-reference expansion in
  /// one document (the billion-laughs budget).
  size_t max_expansion_bytes = 8u << 20;  // 8 MiB
  /// Nesting depth of a DTD content-model expression.
  size_t max_content_model_depth = 256;
  /// Glushkov positions per content model, and product states explored
  /// by language-inclusion queries (the PSPACE guard).
  size_t max_automaton_states = 1u << 16;
  /// Generic solver step budget (chase steps, enumeration instances,
  /// closure entries) for callers that do not set a finer-grained bound.
  size_t max_solver_steps = 1u << 22;

  /// Every limit disabled.
  static ResourceLimits Unlimited();
};

/// Returns OK when `value` <= `limit` (or the limit is 0), otherwise a
/// kResourceExhausted status whose limit() is `limit_name`.
Status CheckLimit(size_t value, size_t limit, const char* limit_name,
                  std::string what);

/// A cooperative cancellation flag, shareable across threads. The token
/// must outlive every Deadline observing it.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A monotonic wall-clock budget. Copyable; the default-constructed
/// deadline never expires, so existing call sites pay one branch.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires (unless the optional token is cancelled).
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  static Deadline After(Clock::duration budget) {
    Deadline d;
    d.expiry_ = Clock::now() + budget;
    d.infinite_ = false;
    return d;
  }
  static Deadline AfterMillis(uint64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }
  /// An already-expired deadline (tests, "poll only" semantics).
  static Deadline Expired() { return After(Clock::duration::zero()); }

  /// Attaches a cancellation token; expired() then also reports true
  /// once the token is cancelled.
  Deadline WithToken(const CancellationToken* token) const {
    Deadline d = *this;
    d.token_ = token;
    return d;
  }

  bool infinite() const { return infinite_ && token_ == nullptr; }
  bool cancelled() const { return token_ != nullptr && token_->cancelled(); }
  bool expired() const {
    if (cancelled()) return true;
    return !infinite_ && Clock::now() >= expiry_;
  }

  /// OK, or kDeadlineExceeded mentioning `what` (the operation that ran
  /// out of time, e.g. "XML parse").
  Status Check(const char* what) const;

 private:
  Clock::time_point expiry_{};
  bool infinite_ = true;
  const CancellationToken* token_ = nullptr;
};

}  // namespace xic

#endif  // XIC_UTIL_LIMITS_H_
