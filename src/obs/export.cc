#include "obs/export.h"

#if XIC_OBS_ENABLED

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "util/json_writer.h"

namespace xic::obs {

namespace {

// Shared escaping with every other JSON emitter in the tree.
std::string JsonEscape(const std::string& in) {
  return util::JsonWriter::Escape(in);
}

// Microseconds with nanosecond precision, printed without locale
// dependence ("12.345").
std::string Micros(uint64_t ns) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buffer;
}

std::string AttrValueJson(const SpanAttr& attr) {
  switch (attr.kind) {
    case SpanAttr::Kind::kInt:
      return std::to_string(attr.int_value);
    case SpanAttr::Kind::kDouble: {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.6g", attr.double_value);
      return buffer;
    }
    case SpanAttr::Kind::kString:
      return "\"" + JsonEscape(attr.string_value) + "\"";
  }
  return "null";
}

}  // namespace

std::string ToChromeTraceJson(const TraceSnapshot& snapshot) {
  using Layout = util::JsonWriter::Layout;
  util::JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  // One event per line (the trace_event convention the golden pins).
  w.BeginArray(Layout::kLines);
  auto metadata = [&w](uint32_t tid, const char* name,
                       const std::string& value) {
    w.BeginObject();
    w.Key("ph");
    w.String("M");
    w.Key("pid");
    w.Number(1);
    w.Key("tid");
    w.Number(static_cast<uint64_t>(tid));
    w.Key("name");
    w.String(name);
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.String(value);
    w.EndObject();
    w.EndObject();
  };
  metadata(0, "process_name", "xic");
  for (size_t t = 0; t < snapshot.thread_names.size(); ++t) {
    metadata(static_cast<uint32_t>(t), "thread_name",
             snapshot.thread_names[t]);
  }
  for (const SpanRecord& span : snapshot.spans) {
    uint64_t dur = span.end_ns >= span.start_ns
                       ? span.end_ns - span.start_ns
                       : 0;
    w.BeginObject();
    w.Key("ph");
    w.String("X");
    w.Key("pid");
    w.Number(1);
    w.Key("tid");
    w.Number(static_cast<uint64_t>(span.tid));
    w.Key("ts");
    w.Raw(Micros(span.start_ns));
    w.Key("dur");
    w.Raw(Micros(dur));
    w.Key("name");
    w.String(span.name);
    w.Key("cat");
    w.String(span.cat);
    if (span.seq >= 0 || !span.attrs.empty()) {
      w.Key("args");
      w.BeginObject();
      if (span.seq >= 0) {
        w.Key("seq");
        w.Number(span.seq);
      }
      for (const SpanAttr& attr : span.attrs) {
        w.Key(attr.key);
        w.Raw(AttrValueJson(attr));
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
  return w.TakeString() + "\n";
}

namespace {

struct TreeNode {
  size_t span;
  std::vector<size_t> children;
};

std::string RenderSubtree(const TraceSnapshot& snapshot,
                          const std::vector<std::vector<size_t>>& children,
                          size_t index, size_t depth,
                          const TreeStringOptions& options) {
  const SpanRecord& span = snapshot.spans[index];
  std::string line(depth * 2, ' ');
  line += span.name;
  if (!span.cat.empty()) line += " [" + span.cat + "]";
  if (span.seq >= 0) line += " seq=" + std::to_string(span.seq);
  if (!span.attrs.empty()) {
    std::vector<std::string> rendered;
    for (const SpanAttr& attr : span.attrs) {
      if (options.attr_values) {
        rendered.push_back(attr.key + "=" + AttrValueJson(attr));
      } else {
        rendered.push_back(attr.key);
      }
    }
    std::sort(rendered.begin(), rendered.end());
    line += " {";
    for (size_t i = 0; i < rendered.size(); ++i) {
      if (i > 0) line += ",";
      line += rendered[i];
    }
    line += "}";
  }
  line += "\n";
  std::vector<std::string> child_strings;
  std::vector<std::tuple<int64_t, std::string, std::string, size_t>> order;
  for (size_t child : children[index]) {
    const SpanRecord& c = snapshot.spans[child];
    order.emplace_back(c.seq, c.name, c.cat, child);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     return std::tie(std::get<0>(a), std::get<1>(a),
                                     std::get<2>(a)) <
                            std::tie(std::get<0>(b), std::get<1>(b),
                                     std::get<2>(b));
                   });
  for (const auto& [seq, name, cat, child] : order) {
    line += RenderSubtree(snapshot, children, child, depth + 1, options);
  }
  return line;
}

}  // namespace

std::string DeterministicTreeString(const TraceSnapshot& snapshot,
                                    const TreeStringOptions& options) {
  std::vector<std::vector<size_t>> children(snapshot.spans.size());
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    int32_t parent = snapshot.spans[i].parent;
    if (parent >= 0) children[static_cast<size_t>(parent)].push_back(i);
  }
  std::vector<size_t> roots;
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanRecord& span = snapshot.spans[i];
    bool is_root = options.root_name.empty() ? span.parent < 0
                                             : span.name == options.root_name;
    if (is_root) roots.push_back(i);
  }
  // Sort roots by the same deterministic key, then by rendered body so
  // identical (seq, name, cat) roots still order stably.
  std::vector<std::string> rendered;
  rendered.reserve(roots.size());
  for (size_t root : roots) {
    rendered.push_back(RenderSubtree(snapshot, children, root, 0, options));
  }
  std::vector<std::tuple<int64_t, std::string, std::string, std::string>>
      order;
  for (size_t i = 0; i < roots.size(); ++i) {
    const SpanRecord& span = snapshot.spans[roots[i]];
    order.emplace_back(span.seq, span.name, span.cat,
                       std::move(rendered[i]));
  }
  std::sort(order.begin(), order.end());
  std::string out;
  for (const auto& [seq, name, cat, body] : order) out += body;
  return out;
}

}  // namespace xic::obs

#endif  // XIC_OBS_ENABLED
