// Bounded-memory streaming validation: the full xicheck pipeline --
// structural validity (Definition 2.4) plus G |= Sigma -- evaluated over
// a StreamTokenizer event stream, without ever materializing the
// DataTree.
//
// How the two checks stream:
//
//   * Structure: each open element carries an incremental run of its
//     type's Glushkov automaton (GlushkovAutomaton::RunState); child
//     labels and qualifying text runs step it as they arrive, and
//     acceptance is decided at the end tag. Attribute checks run at the
//     start tag. Peak state is O(open-element depth), plus one interned
//     child-label word per open element (needed only to render the DOM
//     checker's exact violation message).
//
//   * Constraints: only the field tuples that constraints actually
//     mention are extracted -- attributes at the start tag, unique
//     sub-element text captured while the subtree streams by -- and
//     appended to per-constraint TupleLogs (engine/extent_log.h) keyed
//     by the vertex's pre-order id. A post-pass turns sorted scans of
//     those logs into the violation list: duplicate keys by group
//     iteration, foreign keys by merge-join against the target-key log,
//     document-wide IDs via a global ID log. Logs spill to disk past the
//     shared budget, so memory stays bounded by the spill budget, not
//     the extent sizes. (Exception: inverse constraints need random
//     access to both extents and are evaluated in memory; documents
//     whose *inverse-constrained* extents exceed memory are out of
//     scope, as DESIGN.md records.)
//
// Verdict parity: vertex ids equal the DOM parser's pre-order AddVertex
// ids, violations are re-ordered to the DOM checkers' emission order,
// and messages reuse the same rendering, so ValidationReport::ToString()
// and ConstraintReport::ToString() are byte-identical to the
// materialized pipeline on every document (pinned by the stream oracle
// in src/fuzzing/ and tests/stream_test.cc).

#ifndef XIC_ENGINE_STREAM_VALIDATOR_H_
#define XIC_ENGINE_STREAM_VALIDATOR_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "constraints/checker.h"
#include "model/structural_validator.h"
#include "util/limits.h"
#include "util/status.h"
#include "xml/stream_tokenizer.h"

namespace xic {

struct StreamOptions {
  /// Drop text runs consisting only of whitespace, like the DOM parser's
  /// XmlParseOptions::skip_ignorable_whitespace.
  bool skip_ignorable_whitespace = true;
  /// Structural-check options (allow_missing_attributes, max_violations;
  /// limits.max_automaton_states bounds content-model compilation).
  ValidationOptions validation;
  /// Constraint-check options (max_violations; `naive` is meaningless
  /// here and ignored -- the streaming evaluation is merge-join based).
  CheckOptions check;
  /// Input bounds for the tokenizer (document bytes, depth, attributes,
  /// expansion), with the DOM parser's exact kResourceExhausted texts.
  ResourceLimits limits;
  /// Wall-clock budget; polled per start tag and per constraint.
  Deadline deadline;
  /// Tokenizer read granularity / text chunk ceiling.
  size_t chunk_bytes = 64 * 1024;
  /// Combined in-memory bytes for all extent logs before the largest
  /// spills to disk; 0 = never spill. The knob behind "peak RSS
  /// independent of document size".
  size_t spill_budget_bytes = 64u << 20;  // 64 MiB
};

/// Resource/diagnostic counters for one streaming run.
struct StreamStats {
  size_t vertices = 0;
  uint64_t input_bytes = 0;
  /// Extent-log records appended across all constraints.
  size_t extent_records = 0;
  uint64_t spilled_bytes = 0;
  size_t spill_runs = 0;
};

/// The streaming pipeline's verdict; mirrors DocumentOutcome's
/// parse/structure/constraints split so callers render identically.
struct StreamOutcome {
  Status parse = Status::OK();  // tokenizer / DTD errors end the run
  ValidationReport structure;
  ConstraintReport constraints;
  StreamStats stats;

  bool ok() const {
    return parse.ok() && structure.ok() && constraints.ok();
  }
};

struct SelfDescribingStreamResult;

/// Streaming twin of BatchValidator for one precompiled schema: compile
/// the DTD's automata and the constraint plan once, then validate any
/// number of byte streams against them. Thread-safe after construction
/// (Run() keeps all mutable state on the caller's stack).
class StreamValidator {
 public:
  /// The DTD and Sigma must outlive the validator and stay unmodified.
  /// Sigma must be well-formed for the DTD (CheckWellFormed) -- the same
  /// contract the ConstraintChecker has.
  StreamValidator(const DtdStructure& dtd, const ConstraintSet& sigma,
                  StreamOptions options = {});

  /// Not-OK when content-model compilation hit a resource limit; Run()
  /// then reports it as every document's structure status.
  const Status& status() const { return validator_.status(); }

  StreamOutcome Run(ByteSource& source) const {
    return Run(source, options_.deadline, options_.limits);
  }
  /// Run with a per-call deadline and input limits (xicd threads each
  /// request's budget through here without recompiling).
  StreamOutcome Run(ByteSource& source, const Deadline& deadline,
                    const ResourceLimits& limits) const;

 private:
  friend class StreamRun;
  friend SelfDescribingStreamResult StreamValidateSelfDescribing(
      ByteSource& source, const StreamOptions& options);

  /// Drives a tokenizer that already consumed any DOCTYPE. `pending` is
  /// the first content event when the caller pulled one, `tok_dtd` the
  /// DTD governing attribute tokenization (the document's own internal
  /// subset when present, like the DOM parser).
  StreamOutcome RunCore(StreamTokenizer& tok, const StreamEvent* pending,
                        const DtdStructure& tok_dtd,
                        const Deadline& deadline) const;

  /// Per-constraint-position extraction roles of one element type.
  struct Role {
    enum Kind {
      kKeyTuple,   // ext(tau) of a key: encoded tuple -> ext log
      kFkTuple,    // ext(tau) of a foreign key: tuple -> ext log
      kFkTarget,   // ext(tau') of a foreign key: tuple -> target log
      kSfkSource,  // ext(tau) of a set-valued FK: each value -> ext log
      kSfkTarget,  // ext(tau') of a set-valued FK: value -> target log
      kIdExt,      // ext(tau) of an ID constraint: value -> ext log
      kInvExt,     // ext(tau) of an inverse: (key, set) -> in-memory
      kInvRef,     // ext(tau') of an inverse: (key, set) -> in-memory
    };
    Kind kind;
    size_t constraint;
    std::vector<size_t> fields;  // indexes into TypePlan::fields
  };

  /// Everything the stream must extract from vertices of one type.
  struct TypePlan {
    std::vector<std::string> fields;  // distinct field names
    /// Parallel: declared as an attribute in the DTD? (A declared-but-
    /// absent attribute is a missing field, never a sub-element -- the
    /// checker's FieldValue contract.)
    std::vector<bool> field_declared;
    std::vector<Role> roles;
  };

  const DtdStructure& dtd_;
  const ConstraintSet& sigma_;
  StreamOptions options_;
  StructuralValidator validator_;
  std::map<std::string, TypePlan, std::less<>> type_plans_;
  /// Resolved inverse key attributes, parallel to sigma (the checker's
  /// compiled plan).
  struct InverseKeys {
    std::string key, ref_key;
  };
  std::vector<InverseKeys> inverse_keys_;
  bool needs_global_ids_ = false;
};

/// One-shot streaming check of a *self-describing* document (DTD^C in
/// the DOCTYPE internal subset): the streaming twin of
/// ParseDocumentWithDtdC + StructuralValidator + ConstraintChecker, as
/// xicheck --stream runs it.
struct SelfDescribingStreamResult {
  StreamOutcome outcome;
  std::string doctype_name;
  /// The document carried an internal subset (otherwise there is nothing
  /// to validate against and only `outcome.parse` is meaningful).
  bool has_dtd = false;
  std::optional<DtdStructure> dtd;
  /// Constraint set recovered from the subset's xic:constraints block.
  std::optional<ConstraintSet> sigma;
  /// CheckWellFormed(sigma, dtd) when sigma was recovered; constraints
  /// are only evaluated when this is OK (mirroring xicheck's guard).
  Status well_formed = Status::OK();
};
SelfDescribingStreamResult StreamValidateSelfDescribing(
    ByteSource& source, const StreamOptions& options = {});

}  // namespace xic

#endif  // XIC_ENGINE_STREAM_VALIDATOR_H_
