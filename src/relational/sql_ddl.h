// SQL DDL rendering of relational schemas -- the presentation-layer
// counterpart of the paper's Section 1 "relational database" listings.
// Useful when xic acts as the bridge in a round trip
//   SQL world -> RelationalSchema -> DTD^C -> XML -> back.

#ifndef XIC_RELATIONAL_SQL_DDL_H_
#define XIC_RELATIONAL_SQL_DDL_H_

#include <string>

#include "relational/instance.h"
#include "relational/schema.h"

namespace xic {

/// CREATE TABLE statements: every attribute as VARCHAR, the first
/// declared key as PRIMARY KEY, further keys as UNIQUE constraints,
/// foreign keys as REFERENCES clauses.
std::string WriteSqlDdl(const RelationalSchema& schema);

/// INSERT statements for every tuple (values SQL-escaped).
std::string WriteSqlInserts(const RelationalInstance& instance);

/// Escapes a string literal for SQL ('' doubling).
std::string SqlEscape(const std::string& value);

}  // namespace xic

#endif  // XIC_RELATIONAL_SQL_DDL_H_
