// Status / Result error handling for the xic library.
//
// The library is exception-free (following the Google C++ style guide and
// the conventions of Arrow / RocksDB): every fallible operation returns a
// Status, or a Result<T> which is either a value or a Status. Callers must
// check ok() before using a Result's value.

#ifndef XIC_UTIL_STATUS_H_
#define XIC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace xic {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // malformed input to an API (bad constraint, bad path)
  kParseError,         // syntax error in XML / DTD / constraint text
  kValidationError,    // document does not conform to a DTD^C
  kNotSupported,       // feature intentionally outside the implemented subset
  kResourceExhausted,  // a configured resource limit or search bound was hit
  kDeadlineExceeded,   // a deadline expired (or the call was cancelled)
  kUnavailable,        // transient failure; retrying may succeed
  kInternal,           // invariant violation inside the library
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
/// [[nodiscard]]: silently dropping a Status is the error-handling
/// equivalent of an empty catch block; callers that genuinely do not
/// care must say so with a (void) cast and a comment.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ValidationError(std::string msg) {
    return Status(StatusCode::kValidationError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// A resource-limit violation naming the exceeded limit (e.g.
  /// "max_tree_depth"); the name is recoverable via limit().
  static Status LimitExceeded(std::string limit, std::string msg) {
    Status s(StatusCode::kResourceExhausted, limit + ": " + std::move(msg));
    s.limit_ = std::move(limit);
    return s;
  }
  static Status DeadlineExceeded(std::string msg) {
    Status s(StatusCode::kDeadlineExceeded, std::move(msg));
    s.limit_ = "deadline";
    return s;
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  /// For kResourceExhausted / kDeadlineExceeded: the name of the limit
  /// that was exceeded ("max_tree_depth", "deadline", ...). Empty for
  /// other codes and for untagged kResourceExhausted statuses.
  const std::string& limit() const { return limit_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  std::string limit_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Check ok() before calling
/// value(); calling value() on an error aborts in debug builds.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic `return value;`.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic `return status;`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagates an error Status from an expression to the caller.
#define XIC_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::xic::Status _xic_status = (expr);          \
    if (!_xic_status.ok()) return _xic_status;   \
  } while (0)

// Evaluates a Result<T> expression; on error returns its Status, otherwise
// binds the value to `lhs`.
#define XIC_ASSIGN_OR_RETURN(lhs, expr)                   \
  auto XIC_CONCAT_(_xic_result_, __LINE__) = (expr);      \
  if (!XIC_CONCAT_(_xic_result_, __LINE__).ok())          \
    return XIC_CONCAT_(_xic_result_, __LINE__).status();  \
  lhs = std::move(XIC_CONCAT_(_xic_result_, __LINE__)).value()

#define XIC_CONCAT_(a, b) XIC_CONCAT_IMPL_(a, b)
#define XIC_CONCAT_IMPL_(a, b) a##b

}  // namespace xic

#endif  // XIC_UTIL_STATUS_H_
