// Evaluation of paths on data trees: nodes(x.rho) and ext(tau.rho) of
// Section 4.1, plus semantic satisfaction of the three path-constraint
// forms (used to validate the implication deciders of path_solver.h
// against actual documents).

#ifndef XIC_PATHS_PATH_EVAL_H_
#define XIC_PATHS_PATH_EVAL_H_

#include <set>
#include <string>
#include <variant>

#include "model/data_tree.h"
#include "paths/path.h"
#include "paths/path_typing.h"

namespace xic {

/// A node reached by a path: a vertex, or an atomic value (attribute
/// steps with type S yield strings).
using PathNode = std::variant<VertexId, std::string>;

class PathEvaluator {
 public:
  /// Indexes `tree` (extents and the global id -> vertex map used to
  /// dereference typed attribute steps). The tree must outlive this.
  PathEvaluator(const PathContext& context, const DataTree& tree);

  /// nodes(x.rho).
  std::set<PathNode> Nodes(VertexId x, const Path& rho) const;

  /// ext(tau.rho) = union of nodes(x.rho) over x in ext(tau).
  std::set<PathNode> Extent(const std::string& tau, const Path& rho) const;

  // Semantic checks of path constraints on this tree:
  /// forall x,y in ext(tau): nodes(x.lhs) == nodes(y.lhs) implies
  /// nodes(x.rhs) == nodes(y.rhs).
  bool SatisfiesFunctional(const std::string& tau, const Path& lhs,
                           const Path& rhs) const;
  /// ext(tau1.rho1) is a subset of ext(tau2.rho2).
  bool SatisfiesInclusion(const std::string& tau1, const Path& rho1,
                          const std::string& tau2, const Path& rho2) const;
  /// forall x in ext(tau1), y in ext(tau2):
  ///   y in nodes(x.rho1) iff x in nodes(y.rho2).
  bool SatisfiesInverse(const std::string& tau1, const Path& rho1,
                        const std::string& tau2, const Path& rho2) const;

 private:
  const PathContext& context_;
  const DataTree& tree_;
  ExtentIndex extents_;
  // ID value -> vertices whose type's ID attribute holds it.
  std::map<std::string, std::vector<VertexId>> ids_;
};

}  // namespace xic

#endif  // XIC_PATHS_PATH_EVAL_H_
