// Implication of path constraints by basic L_id constraints
// (Section 4.2: Propositions 4.1, 4.2, 4.3).
//
//   * Path functional constraints tau.rho -> tau.sigma: implied iff rho is
//     a key path of tau, OR sigma extends rho (sigma = rho.theta, whose
//     value is a function of rho's -- a trivially-true case the paper's
//     proof sketch leaves implicit; DESIGN.md).
//   * Path inclusion constraints tau1.rho1 <= tau2.rho2: implied iff
//     rho1 = theta.rho2 for some theta with type(tau1.theta) = tau2.
//   * Path inverse constraints tau1.rho1 <-> tau2.rho2: implied iff the
//     paths decompose into a chain of basic inverse constraints,
//     rho1 = a1...ak and rho2 = bk...b1 with t_i.a_i <-> t_{i+1}.b_i in
//     Sigma's closure, t_1 = tau1, t_{k+1} = tau2 (the composition rule
//     of Proposition 4.3).
//
// Complexities match the paper: O(|phi| (|Sigma| + |P|)) for functional /
// inclusion, O(|Sigma| |phi|) for inverse.

#ifndef XIC_PATHS_PATH_SOLVER_H_
#define XIC_PATHS_PATH_SOLVER_H_

#include <string>

#include "paths/path_typing.h"
#include "util/limits.h"
#include "util/status.h"

namespace xic {

/// tau.lhs -> tau.rhs
struct PathFunctionalConstraint {
  std::string element;
  Path lhs;
  Path rhs;
  std::string ToString() const;
};

/// lhs_element.lhs <= rhs_element.rhs
struct PathInclusionConstraint {
  std::string lhs_element;
  Path lhs;
  std::string rhs_element;
  Path rhs;
  std::string ToString() const;
};

/// lhs_element.lhs <-> rhs_element.rhs
struct PathInverseConstraint {
  std::string lhs_element;
  Path lhs;
  std::string rhs_element;
  Path rhs;
  std::string ToString() const;
};

class PathSolver {
 public:
  /// `deadline` bounds each query; an expired deadline makes every
  /// Implies* return kDeadlineExceeded.
  explicit PathSolver(const PathContext& context, Deadline deadline = {})
      : context_(context), deadline_(deadline) {}

  /// Sigma |= phi (== Sigma |=_f phi for all three forms). Errors when a
  /// path is not in paths() of its element type.
  Result<bool> ImpliesFunctional(const PathFunctionalConstraint& phi) const;
  Result<bool> ImpliesInclusion(const PathInclusionConstraint& phi) const;
  Result<bool> ImpliesInverse(const PathInverseConstraint& phi) const;

 private:
  const PathContext& context_;
  Deadline deadline_;
};

}  // namespace xic

#endif  // XIC_PATHS_PATH_SOLVER_H_
