#include "constraints/checker.h"

#include <deque>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "constraints/well_formed.h"
#include "obs/obs.h"
#include "util/strings.h"

namespace xic {

std::string ConstraintReport::ToString(const ConstraintSet& sigma) const {
  if (ok()) return "all constraints satisfied";
  std::string out;
  for (const ConstraintViolation& v : violations) {
    out += sigma.constraints[v.constraint_index].ToString() + ": " +
           v.message + "\n";
  }
  return out;
}

ConstraintChecker::ConstraintChecker(const DtdStructure& dtd,
                                     const ConstraintSet& sigma,
                                     CheckOptions options)
    : dtd_(dtd), sigma_(sigma), options_(options) {
  // Compile the immutable plan: everything that depends only on the DTD
  // and Sigma is resolved here so Check() never mutates shared state.
  plan_.resize(sigma_.constraints.size());
  for (size_t i = 0; i < sigma_.constraints.size(); ++i) {
    const Constraint& c = sigma_.constraints[i];
    if (c.kind == ConstraintKind::kId) needs_global_ids_ = true;
    if (c.kind == ConstraintKind::kInverse) {
      plan_[i].inv_key =
          c.inv_key.empty() ? dtd_.IdAttribute(c.element).value_or("")
                            : c.inv_key;
      plan_[i].inv_ref_key =
          c.inv_ref_key.empty() ? dtd_.IdAttribute(c.ref_element).value_or("")
                                : c.inv_ref_key;
    }
  }
}

namespace {

// Concatenated character data beneath `v` (depth-first).
std::string TextContent(const DataTree& tree, VertexId v) {
  std::string out;
  for (const Child& c : tree.children(v)) {
    if (const std::string* s = std::get_if<std::string>(&c)) {
      out += *s;
    } else {
      out += TextContent(tree, std::get<VertexId>(c));
    }
  }
  return out;
}

// Encodes a tuple of values into `out` (reused across vertices; values
// are length-prefixed so distinct tuples never collide).
void EncodeTuple(const std::vector<std::string_view>& values,
                 std::string* out) {
  out->clear();
  for (std::string_view v : values) {
    *out += std::to_string(v.size());
    *out += ':';
    out->append(v);
  }
}

std::string JoinViews(const std::vector<std::string_view>& values,
                      std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(values[i]);
  }
  return out;
}

std::vector<std::string> ToStrings(const std::vector<std::string_view>& v) {
  return std::vector<std::string>(v.begin(), v.end());
}

// Hash scratch containers carved out of the per-document arena: bucket
// arrays and nodes bump-allocate, teardown is a no-op, and Arena::Reset()
// reclaims everything between documents.
template <typename K, typename V>
using ArenaHashMap =
    std::unordered_map<K, V, std::hash<K>, std::equal_to<K>,
                       ArenaAllocator<std::pair<const K, V>>>;
template <typename T>
using ArenaHashSet =
    std::unordered_set<T, std::hash<T>, std::equal_to<T>, ArenaAllocator<T>>;

}  // namespace

Result<AttrValue> ConstraintChecker::FieldValue(const DataTree& tree,
                                                VertexId v,
                                                const std::string& name) const {
  if (tree.HasAttribute(v, name)) return tree.Attribute(v, name);
  // A name in Att(tau) always denotes the attribute: an unset declared
  // attribute is a missing field, never a sub-element fallback (keeps the
  // batch checker in agreement with IncrementalChecker, which only ever
  // reads attributes).
  if (dtd_.HasAttribute(tree.label(v), name)) {
    return Status::InvalidArgument("field " + name + " undefined on vertex " +
                                   std::to_string(v) +
                                   " (declared attribute unset)");
  }
  // Section 3.4: a unique sub-element acts as a field whose value is its
  // character data.
  VertexId match = kInvalidVertex;
  int count = 0;
  for (VertexId child : tree.ChildVertices(v)) {
    if (tree.label(child) == name) {
      match = child;
      ++count;
    }
  }
  if (count == 1) return AttrValue{TextContent(tree, match)};
  return Status::InvalidArgument(
      "field " + name + " undefined on vertex " + std::to_string(v) +
      (count > 1 ? " (sub-element not unique)" : ""));
}

ConstraintReport ConstraintChecker::Check(const DataTree& tree,
                                          const Deadline& deadline,
                                          Arena* arena) const {
  obs::ScopedSpan span("constraints.check", "constraints");
  Arena local_arena;
  ConstraintReport report =
      CheckImpl(tree, deadline, arena != nullptr ? arena : &local_arena);
  span.AddInt("constraints", static_cast<int64_t>(sigma_.constraints.size()));
  span.AddInt("steps", static_cast<int64_t>(report.steps));
  span.AddInt("violations", static_cast<int64_t>(report.violations.size()));
  XIC_COUNTER_ADD("constraints.checks", 1);
  XIC_COUNTER_ADD("constraints.steps", report.steps);
  XIC_COUNTER_ADD("constraints.violations", report.violations.size());
  return report;
}

ConstraintReport ConstraintChecker::CheckImpl(const DataTree& tree,
                                              const Deadline& deadline,
                                              Arena* arena) const {
  ConstraintReport report;
  ExtentIndex extents(tree);
  auto add = [&](size_t index, std::string msg, std::vector<VertexId> wit,
                 std::vector<std::string> values = {}) {
    if (options_.max_violations == 0 ||
        report.violations.size() < options_.max_violations) {
      report.violations.push_back(
          {index, std::move(msg), std::move(wit), std::move(values)});
    }
  };
  auto full = [&] {
    return options_.max_violations != 0 &&
           report.violations.size() >= options_.max_violations;
  };

  // Field access works on views. The fast path returns a view straight
  // into the tree's attribute storage (FindAttr by interned symbol: no
  // hashing, no copies); the cold paths -- sub-element fields, unset
  // declared attributes -- materialize through FieldValue() and anchor the
  // result in these deques so the views stay valid for the whole check.
  std::deque<std::string> owned_strings;
  std::deque<AttrValue> owned_values;

  // Single value of a field, or nullopt (missing fields are reported by
  // the caller as violations of the constraint that needed them).
  auto single = [&](VertexId v, Symbol sym,
                    const std::string& name) -> std::optional<std::string_view> {
    ++report.steps;
    if (sym != kInvalidSymbol) {
      if (const AttrValue* value = tree.FindAttr(v, sym)) {
        if (value->size() != 1) return std::nullopt;
        return std::string_view(*value->begin());
      }
    }
    Result<AttrValue> value = FieldValue(tree, v, name);
    if (!value.ok() || value.value().size() != 1) return std::nullopt;
    owned_strings.push_back(*value.value().begin());
    return std::string_view(owned_strings.back());
  };
  // The full value set of a field, or null when missing.
  auto field_ptr = [&](VertexId v, Symbol sym,
                       const std::string& name) -> const AttrValue* {
    if (sym != kInvalidSymbol) {
      if (const AttrValue* value = tree.FindAttr(v, sym)) return value;
    }
    Result<AttrValue> value = FieldValue(tree, v, name);
    if (!value.ok()) return nullptr;
    owned_values.push_back(std::move(value).value());
    return &owned_values.back();
  };
  // Evaluates the named fields of `v` into `out` (reused across
  // vertices); false if any field is missing or non-singleton.
  auto tuple_into = [&](VertexId v, const std::vector<std::string>& names,
                        const std::vector<Symbol>& syms,
                        std::vector<std::string_view>& out) -> bool {
    out.clear();
    for (size_t k = 0; k < names.size(); ++k) {
      std::optional<std::string_view> val = single(v, syms[k], names[k]);
      if (!val.has_value()) return false;
      out.push_back(*val);
    }
    return true;
  };
  // Interned ids of the named fields, resolved once per constraint.
  auto resolve = [&](const std::vector<std::string>& names,
                     std::vector<Symbol>& out) {
    out.clear();
    for (const std::string& name : names) out.push_back(tree.FindName(name));
  };

  // Global ID table for kId constraints: value -> vertices carrying it in
  // their type's ID attribute (document-wide scope). Per-document scratch,
  // like `extents` above -- nothing here outlives this call.
  std::unordered_map<std::string_view, std::vector<VertexId>> global_ids;
  if (needs_global_ids_) {
    // Per-label-symbol ID attribute (name + interned id), resolved once.
    const size_t nsyms = tree.symbols().size();
    std::vector<const std::string*> id_name_of(nsyms, nullptr);
    std::vector<Symbol> id_sym_of(nsyms, kInvalidSymbol);
    std::deque<std::string> id_names;
    for (Symbol s = 0; s < nsyms; ++s) {
      std::optional<std::string> id_attr =
          dtd_.IdAttribute(tree.symbols().name(s));
      if (!id_attr.has_value()) continue;
      id_names.push_back(std::move(*id_attr));
      id_name_of[s] = &id_names.back();
      id_sym_of[s] = tree.FindName(id_names.back());
    }
    for (VertexId v = 0; v < tree.size(); ++v) {
      if ((v & 0x3FF) == 0) {
        if (Status s = deadline.Check("constraint check"); !s.ok()) {
          report.status = std::move(s);
          return report;
        }
      }
      const Symbol tau = tree.label_symbol(v);
      if (id_name_of[tau] == nullptr) continue;
      if (std::optional<std::string_view> val =
              single(v, id_sym_of[tau], *id_name_of[tau])) {
        global_ids[*val].push_back(v);
      }
    }
  }

  // Reused per-constraint/per-vertex scratch.
  std::vector<Symbol> attr_syms, ref_attr_syms;
  std::vector<std::string_view> tbuf, ubuf;
  std::string encode_buf;

  for (size_t i = 0; i < sigma_.constraints.size() && !full(); ++i) {
    if (Status s = deadline.Check("constraint check"); !s.ok()) {
      report.status = std::move(s);
      return report;
    }
    const Constraint& c = sigma_.constraints[i];
    const std::vector<VertexId>& ext = extents.Extent(c.element);
    const std::vector<VertexId>& ref_ext = extents.Extent(c.ref_element);
    resolve(c.attrs, attr_syms);
    resolve(c.ref_attrs, ref_attr_syms);

    switch (c.kind) {
      case ConstraintKind::kKey: {
        if (options_.naive) {
          // Mirrors the indexed path exactly: each duplicate is reported
          // once, against the *first* vertex carrying the same tuple (not
          // once per earlier occurrence, which over-reports on triples).
          for (size_t b = 0; b < ext.size() && !full(); ++b) {
            if (!tuple_into(ext[b], c.attrs, attr_syms, tbuf)) {
              add(i, "key field missing", {ext[b]});
              continue;
            }
            for (size_t a = 0; a < b; ++a) {
              if (tuple_into(ext[a], c.attrs, attr_syms, ubuf) &&
                  ubuf == tbuf) {
                add(i, "duplicate key [" + JoinViews(tbuf, ",") + "]",
                    {ext[a], ext[b]}, ToStrings(tbuf));
                break;
              }
            }
          }
          break;
        }
        ArenaHashMap<std::string_view, VertexId> seen(
            8, ArenaAllocator<std::pair<const std::string_view, VertexId>>(
                   arena));
        for (VertexId v : ext) {
          if (!tuple_into(v, c.attrs, attr_syms, tbuf)) {
            add(i, "key field missing", {v});
            continue;
          }
          EncodeTuple(tbuf, &encode_buf);
          auto it = seen.find(std::string_view(encode_buf));
          if (it == seen.end()) {
            // The key must outlive encode_buf's next reuse: copy it into
            // the arena (reclaimed wholesale between documents).
            seen.emplace(arena->CopyString(encode_buf), v);
          } else {
            add(i, "duplicate key [" + JoinViews(tbuf, ",") + "]",
                {it->second, v}, ToStrings(tbuf));
          }
          if (full()) break;
        }
        break;
      }

      case ConstraintKind::kId: {
        // Report each duplicated value once per constraint, not once per
        // vertex of ext(tau) holding it (the witnesses already list every
        // holder).
        std::unordered_set<std::string_view> reported;
        for (VertexId v : ext) {
          std::optional<std::string_view> val =
              single(v, attr_syms[0], c.attr());
          if (!val.has_value()) {
            add(i, "ID attribute missing", {v});
            continue;
          }
          auto it = global_ids.find(*val);
          if (it != global_ids.end() && it->second.size() > 1 &&
              reported.insert(*val).second) {
            add(i, "ID value \"" + std::string(*val) +
                       "\" is not document-unique",
                it->second, {std::string(*val)});
          }
          if (full()) break;
        }
        break;
      }

      case ConstraintKind::kForeignKey: {
        if (options_.naive) {
          for (VertexId v : ext) {
            if (!tuple_into(v, c.attrs, attr_syms, tbuf)) {
              add(i, "foreign-key field missing", {v});
              continue;
            }
            bool found = false;
            for (VertexId w : ref_ext) {
              if (tuple_into(w, c.ref_attrs, ref_attr_syms, ubuf) &&
                  ubuf == tbuf) {
                found = true;
                break;
              }
            }
            if (!found) {
              add(i, "dangling reference [" + JoinViews(tbuf, ",") + "]",
                  {v}, ToStrings(tbuf));
            }
            if (full()) break;
          }
          break;
        }
        ArenaHashSet<std::string_view> targets(
            8, ArenaAllocator<std::string_view>(arena));
        for (VertexId w : ref_ext) {
          if (tuple_into(w, c.ref_attrs, ref_attr_syms, ubuf)) {
            EncodeTuple(ubuf, &encode_buf);
            if (targets.find(std::string_view(encode_buf)) ==
                targets.end()) {
              targets.insert(arena->CopyString(encode_buf));
            }
          }
        }
        for (VertexId v : ext) {
          if (!tuple_into(v, c.attrs, attr_syms, tbuf)) {
            add(i, "foreign-key field missing", {v});
            continue;
          }
          EncodeTuple(tbuf, &encode_buf);
          if (targets.count(std::string_view(encode_buf)) == 0) {
            add(i, "dangling reference [" + JoinViews(tbuf, ",") + "]", {v},
                ToStrings(tbuf));
          }
          if (full()) break;
        }
        break;
      }

      case ConstraintKind::kSetForeignKey: {
        // Target key values are views into the tree (or the owned
        // anchors), both stable for the whole check: no copies needed.
        ArenaHashSet<std::string_view> targets(
            8, ArenaAllocator<std::string_view>(arena));
        for (VertexId w : ref_ext) {
          if (std::optional<std::string_view> u =
                  single(w, ref_attr_syms[0], c.ref_attr())) {
            targets.insert(*u);
          }
        }
        for (VertexId v : ext) {
          const AttrValue* vals = field_ptr(v, attr_syms[0], c.attr());
          if (vals == nullptr) {
            add(i, "set-valued field missing", {v});
            continue;
          }
          for (const std::string& val : *vals) {
            bool found;
            if (options_.naive) {
              found = false;
              for (VertexId w : ref_ext) {
                std::optional<std::string_view> u =
                    single(w, ref_attr_syms[0], c.ref_attr());
                if (u.has_value() && *u == val) {
                  found = true;
                  break;
                }
              }
            } else {
              found = targets.count(std::string_view(val)) > 0;
            }
            if (!found) {
              add(i, "dangling reference \"" + val + "\"", {v}, {val});
              if (full()) break;
            }
          }
          if (full()) break;
        }
        break;
      }

      case ConstraintKind::kInverse: {
        // Key attributes (named in L_u, ID attributes in L_id) were
        // resolved at compile time.
        const std::string& lk = plan_[i].inv_key;
        const std::string& lk2 = plan_[i].inv_ref_key;
        if (lk.empty() || lk2.empty()) {
          add(i, "inverse constraint lacks key attributes", {});
          break;
        }
        const Symbol lk_sym = tree.FindName(lk);
        const Symbol lk2_sym = tree.FindName(lk2);
        // key value -> vertices (multimap: key violations must not mask
        // inverse violations).
        std::unordered_map<std::string_view, std::vector<VertexId>> by_key;
        std::unordered_map<std::string_view, std::vector<VertexId>>
            ref_by_key;
        for (VertexId v : ext) {
          if (std::optional<std::string_view> val = single(v, lk_sym, lk)) {
            by_key[*val].push_back(v);
          }
        }
        for (VertexId w : ref_ext) {
          if (std::optional<std::string_view> val =
                  single(w, lk2_sym, lk2)) {
            ref_by_key[*val].push_back(w);
          }
        }
        // Typed semantics (DESIGN.md): the referenced values must be keys
        // of the partner type (the containments Inv-SFK-ID derives).
        for (VertexId x : ext) {
          const AttrValue* xl = field_ptr(x, attr_syms[0], c.attr());
          if (xl == nullptr) continue;
          for (const std::string& val : *xl) {
            if (ref_by_key.count(std::string_view(val)) == 0) {
              add(i, "inverse reference \"" + val + "\" is not a " +
                         c.ref_element + " key",
                  {x}, {val});
              if (full()) break;
            }
          }
          if (full()) break;
        }
        for (VertexId y : ref_ext) {
          const AttrValue* yl = field_ptr(y, ref_attr_syms[0], c.ref_attr());
          if (yl == nullptr) continue;
          for (const std::string& val : *yl) {
            if (by_key.count(std::string_view(val)) == 0) {
              add(i, "inverse reference \"" + val + "\" is not a " +
                         c.element + " key",
                  {y}, {val});
              if (full()) break;
            }
          }
          if (full()) break;
        }
        // Direction 1: x.lk in y.l'  ==>  y.lk' in x.l.
        for (VertexId y : ref_ext) {
          const AttrValue* yl2 = field_ptr(y, ref_attr_syms[0], c.ref_attr());
          std::optional<std::string_view> ykey = single(y, lk2_sym, lk2);
          if (yl2 == nullptr || !ykey.has_value()) continue;
          for (const std::string& val : *yl2) {
            auto it = by_key.find(std::string_view(val));
            if (it == by_key.end()) continue;
            for (VertexId x : it->second) {
              const AttrValue* xl = field_ptr(x, attr_syms[0], c.attr());
              if (xl == nullptr || xl->count(std::string(*ykey)) == 0) {
                add(i, "inverse missing: " + c.ref_element + " \"" +
                           std::string(*ykey) + "\" references \"" + val +
                           "\" but not back",
                    {x, y}, {std::string(*ykey)});
              }
              if (full()) break;
            }
            if (full()) break;
          }
          if (full()) break;
        }
        // Direction 2 (symmetric).
        for (VertexId x : ext) {
          const AttrValue* xl = field_ptr(x, attr_syms[0], c.attr());
          std::optional<std::string_view> xkey = single(x, lk_sym, lk);
          if (xl == nullptr || !xkey.has_value()) continue;
          for (const std::string& val : *xl) {
            auto it = ref_by_key.find(std::string_view(val));
            if (it == ref_by_key.end()) continue;
            for (VertexId y : it->second) {
              const AttrValue* yl2 =
                  field_ptr(y, ref_attr_syms[0], c.ref_attr());
              if (yl2 == nullptr || yl2->count(std::string(*xkey)) == 0) {
                add(i, "inverse missing: " + c.element + " \"" +
                           std::string(*xkey) + "\" references \"" + val +
                           "\" but not back",
                    {y, x}, {std::string(*xkey)});
              }
              if (full()) break;
            }
            if (full()) break;
          }
          if (full()) break;
        }
        break;
      }
    }
  }
  return report;
}

}  // namespace xic
