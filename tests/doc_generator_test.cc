#include <gtest/gtest.h>

#include "model/doc_generator.h"
#include "model/structural_validator.h"
#include "xml/dtd_parser.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xic {
namespace {

Result<DtdStructure> BookDtd() {
  return ParseDtd(R"(
    <!ELEMENT book (entry, author*, section*, ref)>
    <!ELEMENT entry (title, publisher)>
    <!ATTLIST entry isbn CDATA #REQUIRED>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT publisher (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT text (#PCDATA)>
    <!ELEMENT section (title, (text|section)*)>
    <!ATTLIST section sid CDATA #REQUIRED>
    <!ELEMENT ref EMPTY>
    <!ATTLIST ref to NMTOKENS #IMPLIED>
  )", "book");
}

TEST(DocGenerator, MinDepths) {
  Result<DtdStructure> dtd = BookDtd();
  ASSERT_TRUE(dtd.ok());
  DocGenerator gen(dtd.value());
  ASSERT_TRUE(gen.status().ok()) << gen.status();
  EXPECT_EQ(gen.MinDepth("title"), 1u);
  EXPECT_EQ(gen.MinDepth("ref"), 1u);
  EXPECT_EQ(gen.MinDepth("entry"), 2u);
  // A section needs a title below it even though its tail is starred.
  EXPECT_EQ(gen.MinDepth("section"), 2u);
  EXPECT_EQ(gen.MinDepth("book"), 3u);
}

TEST(DocGenerator, GeneratedDocumentsValidate) {
  Result<DtdStructure> dtd = BookDtd();
  ASSERT_TRUE(dtd.ok());
  StructuralValidator validator(dtd.value());
  for (uint32_t seed = 1; seed <= 25; ++seed) {
    DocGenerator gen(dtd.value(), {.seed = seed, .star_mean = 1.5});
    Result<DataTree> tree = gen.Generate();
    ASSERT_TRUE(tree.ok()) << tree.status() << " (seed " << seed << ")";
    ValidationReport report = validator.Validate(tree.value());
    EXPECT_TRUE(report.ok())
        << "seed " << seed << ":\n"
        << report.ToString() << SerializeXml(tree.value());
  }
}

TEST(DocGenerator, RecursionRespectsDepthBudget) {
  Result<DtdStructure> dtd = BookDtd();
  ASSERT_TRUE(dtd.ok());
  DocGenerator gen(dtd.value(),
                   {.seed = 7, .max_depth = 5, .star_mean = 3.0});
  for (int i = 0; i < 10; ++i) {
    Result<DataTree> tree = gen.Generate();
    ASSERT_TRUE(tree.ok()) << tree.status();
    // Measure the deepest vertex.
    size_t deepest = 0;
    for (VertexId v = 0; v < tree.value().size(); ++v) {
      size_t depth = 0;
      for (VertexId cur = v; tree.value().parent(cur) != kInvalidVertex;
           cur = tree.value().parent(cur)) {
        ++depth;
      }
      deepest = std::max(deepest, depth);
    }
    EXPECT_LE(deepest, 5u);
  }
}

TEST(DocGenerator, GeneratedDocumentsSerializeAndReparse) {
  Result<DtdStructure> dtd = BookDtd();
  ASSERT_TRUE(dtd.ok());
  DocGenerator gen(dtd.value(), {.seed = 3});
  Result<DataTree> tree = gen.Generate();
  ASSERT_TRUE(tree.ok());
  std::string xml = SerializeXml(tree.value());
  Result<XmlDocument> parsed = ParseXml(xml, {.dtd = &dtd.value()});
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << xml;
  StructuralValidator validator(dtd.value());
  EXPECT_TRUE(validator.Validate(parsed.value().tree).ok());
}

TEST(DocGenerator, RejectsImpossibleBudgets) {
  Result<DtdStructure> dtd = BookDtd();
  ASSERT_TRUE(dtd.ok());
  DocGenerator gen(dtd.value(), {.seed = 1, .max_depth = 2});
  EXPECT_FALSE(gen.Generate().ok());  // book needs depth 3
}

TEST(DocGenerator, RejectsHopelesslyRecursiveDtds) {
  // Every derivation of `loop` requires another loop: no finite document.
  DtdStructure dtd;
  ASSERT_TRUE(dtd.AddElement("loop", "(loop)").ok());
  ASSERT_TRUE(dtd.SetRoot("loop").ok());
  DocGenerator gen(dtd);
  EXPECT_FALSE(gen.status().ok());
}

TEST(DocGenerator, ChoiceOnlyModels) {
  DtdStructure dtd;
  ASSERT_TRUE(dtd.AddElement("r", "(a | b)").ok());
  ASSERT_TRUE(dtd.AddElement("a", "EMPTY").ok());
  ASSERT_TRUE(dtd.AddElement("b", "(#PCDATA)").ok());
  ASSERT_TRUE(dtd.SetRoot("r").ok());
  StructuralValidator validator(dtd);
  bool saw_a = false, saw_b = false;
  for (uint32_t seed = 1; seed <= 20; ++seed) {
    DocGenerator gen(dtd, {.seed = seed});
    Result<DataTree> tree = gen.Generate();
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE(validator.Validate(tree.value()).ok());
    const std::string& label =
        tree.value().label(tree.value().ChildVertices(0)[0]);
    if (label == "a") saw_a = true;
    if (label == "b") saw_b = true;
  }
  EXPECT_TRUE(saw_a && saw_b);  // both branches exercised
}

}  // namespace
}  // namespace xic
