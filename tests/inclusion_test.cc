#include <gtest/gtest.h>

#include <random>

#include "regex/glushkov.h"
#include "regex/inclusion.h"

namespace xic {
namespace {

RegexPtr R(const std::string& text) {
  Result<RegexPtr> re = ParseContentModel(text);
  EXPECT_TRUE(re.ok()) << re.status();
  return re.value();
}

TEST(Inclusion, BasicCases) {
  EXPECT_TRUE(RegexLanguageIncluded(R("(a)"), R("(a | b)")));
  EXPECT_FALSE(RegexLanguageIncluded(R("(a | b)"), R("(a)")));
  EXPECT_TRUE(RegexLanguageIncluded(R("(a, b)"), R("(a, b?)")));
  EXPECT_FALSE(RegexLanguageIncluded(R("(a, b?)"), R("(a, b)")));
  EXPECT_TRUE(RegexLanguageIncluded(R("(a, a)"), R("(a*)")));
  EXPECT_FALSE(RegexLanguageIncluded(R("(a*)"), R("(a, a)")));
  EXPECT_TRUE(RegexLanguageIncluded(R("EMPTY"), R("(a*)")));
  EXPECT_FALSE(RegexLanguageIncluded(R("(a)"), R("EMPTY")));
  // Disjoint alphabets.
  EXPECT_FALSE(RegexLanguageIncluded(R("(a)"), R("(b)")));
}

TEST(Inclusion, ClassicEquivalences) {
  // (a | b)* == (a*, b*)*.
  EXPECT_TRUE(RegexLanguageEquivalent(R("((a | b)*)"), R("((a*, b*)*)")));
  // (a, b) | (a, c) == a, (b | c).
  EXPECT_TRUE(
      RegexLanguageEquivalent(R("((a, b) | (a, c))"), R("(a, (b | c))")));
  // a+ == a, a*.
  EXPECT_TRUE(RegexLanguageEquivalent(R("(a+)"), R("(a, a*)")));
  // But a* != a+.
  EXPECT_FALSE(RegexLanguageEquivalent(R("(a*)"), R("(a+)")));
}

TEST(Inclusion, DtdEvolutionVerdicts) {
  // Adding an optional trailing element widens.
  EXPECT_EQ(CompareContentModels(R("(title, publisher)"),
                                 R("(title, publisher, year?)")),
            ModelCompatibility::kWidening);
  // Making a required element optional widens.
  EXPECT_EQ(CompareContentModels(R("(title, publisher)"),
                                 R("(title, publisher?)")),
            ModelCompatibility::kWidening);
  // Dropping alternatives narrows.
  EXPECT_EQ(CompareContentModels(R("(text | section)"), R("(text)")),
            ModelCompatibility::kNarrowing);
  // Reordering is incomparable.
  EXPECT_EQ(CompareContentModels(R("(a, b)"), R("(b, a)")),
            ModelCompatibility::kIncomparable);
  // Syntactic variants are equivalent.
  EXPECT_EQ(CompareContentModels(R("(a?, a?)"), R("(a?, a?)")),
            ModelCompatibility::kEquivalent);
  EXPECT_STREQ(ModelCompatibilityToString(ModelCompatibility::kWidening),
               "widening");
}

TEST(Inclusion, BookModelEvolution) {
  // The paper's book model: making authors mandatory narrows; allowing
  // refs to repeat widens.
  RegexPtr original = R("(entry, author*, section*, ref)");
  EXPECT_EQ(CompareContentModels(original,
                                 R("(entry, author+, section*, ref)")),
            ModelCompatibility::kNarrowing);
  EXPECT_EQ(CompareContentModels(original,
                                 R("(entry, author*, section*, ref+)")),
            ModelCompatibility::kWidening);
  EXPECT_EQ(CompareContentModels(original, original),
            ModelCompatibility::kEquivalent);
}

// Property: inclusion verdicts agree with brute-force word enumeration.
bool NaiveMatch(const Regex& re, const std::vector<std::string>& word,
                size_t begin, size_t end) {
  switch (re.kind()) {
    case RegexKind::kEpsilon:
      return begin == end;
    case RegexKind::kSymbol:
      return end == begin + 1 && word[begin] == re.symbol();
    case RegexKind::kUnion:
      return NaiveMatch(*re.left(), word, begin, end) ||
             NaiveMatch(*re.right(), word, begin, end);
    case RegexKind::kConcat:
      for (size_t mid = begin; mid <= end; ++mid) {
        if (NaiveMatch(*re.left(), word, begin, mid) &&
            NaiveMatch(*re.right(), word, mid, end)) {
          return true;
        }
      }
      return false;
    case RegexKind::kStar:
      if (begin == end) return true;
      for (size_t mid = begin + 1; mid <= end; ++mid) {
        if (NaiveMatch(*re.inner(), word, begin, mid) &&
            NaiveMatch(re, word, mid, end)) {
          return true;
        }
      }
      return false;
  }
  return false;
}

RegexPtr RandomRegex(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth <= 0 ? 1 : 4);
  switch (kind(rng)) {
    case 0:
      return Regex::Symbol(rng() % 2 == 0 ? "a" : "b");
    case 1:
      return Regex::Epsilon();
    case 2:
      return Regex::Union(RandomRegex(rng, depth - 1),
                          RandomRegex(rng, depth - 1));
    case 3:
      return Regex::Concat(RandomRegex(rng, depth - 1),
                           RandomRegex(rng, depth - 1));
    default:
      return Regex::Star(RandomRegex(rng, depth - 1));
  }
}

class InclusionProperty : public ::testing::TestWithParam<int> {};

TEST_P(InclusionProperty, AgreesWithWordEnumeration) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 16807u);
  for (int trial = 0; trial < 40; ++trial) {
    RegexPtr a = RandomRegex(rng, 3);
    RegexPtr b = RandomRegex(rng, 3);
    bool included = RegexLanguageIncluded(a, b);
    // Enumerate all words over {a, b} up to length 5; inclusion must hold
    // exactly on the sample iff the decision procedure says so (for these
    // tiny regexes, length 5 exceeds the distinguishing bound in all but
    // adversarial cases; a found counterexample always refutes).
    bool sample_included = true;
    for (int len = 0; len <= 5 && sample_included; ++len) {
      for (int mask = 0; mask < (1 << len); ++mask) {
        std::vector<std::string> word;
        for (int i = 0; i < len; ++i) {
          word.push_back((mask >> i) & 1 ? "b" : "a");
        }
        if (NaiveMatch(*a, word, 0, word.size()) &&
            !NaiveMatch(*b, word, 0, word.size())) {
          sample_included = false;
          break;
        }
      }
    }
    if (included) {
      EXPECT_TRUE(sample_included)
          << a->ToString() << " vs " << b->ToString();
    }
    if (!sample_included) {
      EXPECT_FALSE(included) << a->ToString() << " vs " << b->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InclusionProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace xic
