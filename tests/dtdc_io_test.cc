#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "constraints/well_formed.h"
#include "xml/dtdc_io.h"
#include "xml/serializer.h"

namespace xic {
namespace {

DtdStructure BookDtd() {
  DtdStructure dtd;
  EXPECT_TRUE(dtd.AddElement("book", "(entry, author*, ref)").ok());
  EXPECT_TRUE(dtd.AddElement("entry", "(title)").ok());
  EXPECT_TRUE(dtd.AddElement("title", "(#PCDATA)").ok());
  EXPECT_TRUE(dtd.AddElement("author", "(#PCDATA)").ok());
  EXPECT_TRUE(dtd.AddElement("ref", "EMPTY").ok());
  EXPECT_TRUE(
      dtd.AddAttribute("entry", "isbn", AttrCardinality::kSingle).ok());
  EXPECT_TRUE(dtd.AddAttribute("ref", "to", AttrCardinality::kSet).ok());
  EXPECT_TRUE(dtd.SetRoot("book").ok());
  EXPECT_TRUE(dtd.Validate().ok());
  return dtd;
}

ConstraintSet BookSigma() {
  return ParseConstraintSet("key entry.isbn; sfk ref.to -> entry.isbn",
                            Language::kLu)
      .value();
}

TEST(DtdcIo, ConstraintStatementsRoundTrip) {
  std::vector<Constraint> constraints = {
      Constraint::UnaryKey("entry", "isbn"),
      Constraint::Key("publisher", {"pname", "country"}),
      Constraint::Id("person", "oid"),
      Constraint::UnaryForeignKey("dept", "manager", "person", "oid"),
      Constraint::ForeignKey("editor", {"pname", "country"}, "publisher",
                             {"pname", "country"}),
      Constraint::SetForeignKey("ref", "to", "entry", "isbn"),
      Constraint::InverseId("dept", "has_staff", "person", "in_dept"),
      Constraint::InverseU("a", "k", "r", "b", "k2", "s"),
  };
  for (const Constraint& c : constraints) {
    std::string statement = WriteConstraintStatement(c);
    Result<std::vector<Constraint>> parsed = ParseConstraints(statement);
    ASSERT_TRUE(parsed.ok()) << statement << ": " << parsed.status();
    ASSERT_EQ(parsed.value().size(), 1u) << statement;
    EXPECT_EQ(parsed.value()[0], c) << statement;
  }
}

TEST(DtdcIo, DtdCRoundTrip) {
  DtdStructure dtd = BookDtd();
  ConstraintSet sigma = BookSigma();
  std::string text = WriteDtdC(dtd, sigma);
  Result<DtdC> parsed = ParseDtdC(text, "book");
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  // Structure preserved.
  EXPECT_EQ(parsed.value().dtd.Elements(), dtd.Elements());
  EXPECT_EQ(parsed.value().dtd.ToString(), dtd.ToString());
  // Constraints preserved.
  ASSERT_TRUE(parsed.value().sigma.has_value());
  EXPECT_EQ(parsed.value().sigma->language, Language::kLu);
  EXPECT_EQ(parsed.value().sigma->constraints, sigma.constraints);
}

TEST(DtdcIo, LanguageTagsRoundTrip) {
  for (Language lang : {Language::kL, Language::kLu, Language::kLid}) {
    ConstraintSet sigma;
    sigma.language = lang;
    if (lang == Language::kL) {
      sigma.constraints = {Constraint::Key("r", {"a", "b"})};
    } else {
      sigma.constraints = {Constraint::UnaryKey("entry", "isbn")};
    }
    std::string block = WriteConstraintBlock(sigma);
    DtdStructure dtd = BookDtd();
    Result<DtdC> parsed = ParseDtdC(dtd.ToString() + block, "book");
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ASSERT_TRUE(parsed.value().sigma.has_value());
    EXPECT_EQ(parsed.value().sigma->language, lang);
  }
}

TEST(DtdcIo, PlainDtdHasNoSigma) {
  DtdStructure dtd = BookDtd();
  Result<DtdC> parsed = ParseDtdC(dtd.ToString(), "book");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().sigma.has_value());
}

TEST(DtdcIo, MalformedBlocksError) {
  DtdStructure dtd = BookDtd();
  EXPECT_FALSE(
      ParseDtdC(dtd.ToString() + "<!-- xic:constraints language=bogus\n-->",
                "book")
          .ok());
  EXPECT_FALSE(
      ParseDtdC(dtd.ToString() + "<!-- xic:constraints\n nonsense here\n-->",
                "book")
          .ok());
}

TEST(DtdcIo, SelfDescribingDocumentRoundTrip) {
  DtdStructure dtd = BookDtd();
  ConstraintSet sigma = BookSigma();
  DataTree tree;
  VertexId book = tree.AddVertex("book");
  VertexId entry = tree.AddVertex("entry");
  ASSERT_TRUE(tree.AddChildVertex(book, entry).ok());
  tree.SetAttribute(entry, "isbn", std::string("i1"));
  VertexId title = tree.AddVertex("title");
  ASSERT_TRUE(tree.AddChildVertex(entry, title).ok());
  tree.AddChildText(title, "T");
  VertexId ref = tree.AddVertex("ref");
  ASSERT_TRUE(tree.AddChildVertex(book, ref).ok());
  tree.SetAttribute(ref, "to", AttrValue{"i1"});

  std::string text = WriteDocumentWithDtdC(tree, dtd, sigma);
  Result<SelfDescribingDocument> parsed = ParseDocumentWithDtdC(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  ASSERT_TRUE(parsed.value().sigma.has_value());
  EXPECT_EQ(parsed.value().sigma->constraints, sigma.constraints);
  ASSERT_TRUE(parsed.value().document.dtd.has_value());
  EXPECT_TRUE(CheckWellFormed(*parsed.value().sigma,
                              *parsed.value().document.dtd)
                  .ok());
  EXPECT_EQ(parsed.value().document.tree.size(), tree.size());
}

TEST(DtdcIo, MultiAttributeBracketsSurviveDoctypeScan) {
  // '[' / ']' inside the constraint comment must not terminate the
  // internal subset early.
  DtdStructure dtd;
  ASSERT_TRUE(dtd.AddElement("db", "(r*)").ok());
  ASSERT_TRUE(dtd.AddElement("r", "EMPTY").ok());
  ASSERT_TRUE(dtd.AddAttribute("r", "a", AttrCardinality::kSingle).ok());
  ASSERT_TRUE(dtd.AddAttribute("r", "b", AttrCardinality::kSingle).ok());
  ASSERT_TRUE(dtd.SetRoot("db").ok());
  ConstraintSet sigma;
  sigma.language = Language::kL;
  sigma.constraints = {Constraint::Key("r", {"a", "b"})};
  DataTree tree;
  VertexId db = tree.AddVertex("db");
  VertexId r = tree.AddVertex("r");
  ASSERT_TRUE(tree.AddChildVertex(db, r).ok());
  tree.SetAttribute(r, "a", std::string("1"));
  tree.SetAttribute(r, "b", std::string("2"));

  std::string text = WriteDocumentWithDtdC(tree, dtd, sigma);
  Result<SelfDescribingDocument> parsed = ParseDocumentWithDtdC(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  ASSERT_TRUE(parsed.value().sigma.has_value());
  EXPECT_EQ(parsed.value().sigma->constraints, sigma.constraints);
}

}  // namespace
}  // namespace xic
