#include "analysis/diagnostic.h"

#include <algorithm>

namespace xic {

const char* DiagSeverityToString(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kInfo:
      return "info";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = std::string(DiagSeverityToString(severity)) + "[" + code +
                    "] " + rule + ": " + message;
  if (location.constraint_index >= 0) {
    out += "  (constraint #" + std::to_string(location.constraint_index);
    if (location.line > 0) {
      out += " at " + std::to_string(location.line) + ":" +
             std::to_string(location.column);
    }
    out += ")";
  } else if (!location.element.empty()) {
    out += "  (element " + location.element + ")";
  }
  for (const std::string& note : notes) {
    out += "\n    note: " + note;
  }
  return out;
}

size_t AnalysisReport::CountSeverity(DiagSeverity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

int AnalysisReport::ExitCode() const {
  if (!status.ok()) return 3;
  if (errors() > 0) return 2;
  if (!diagnostics.empty()) return 1;
  return 0;
}

std::string AnalysisReport::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString() + "\n";
  }
  if (!status.ok()) {
    out += "analysis incomplete: " + status.ToString() + "\n";
  }
  out += std::to_string(errors()) + " error(s), " +
         std::to_string(warnings()) + " warning(s), " +
         std::to_string(CountSeverity(DiagSeverity::kInfo)) + " info(s)\n";
  return out;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string Quoted(const std::string& text) {
  return "\"" + JsonEscape(text) + "\"";
}

}  // namespace

std::string AnalysisReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"version\": 1,\n";
  out += "  \"language\": " + Quoted(language) + ",\n";
  out += "  \"status\": " + Quoted(status.ToString()) + ",\n";
  out += "  \"rules\": [";
  for (size_t i = 0; i < rules_run.size(); ++i) {
    if (i > 0) out += ", ";
    out += Quoted(rules_run[i]);
  }
  out += "],\n";
  out += "  \"summary\": {\"errors\": " + std::to_string(errors()) +
         ", \"warnings\": " + std::to_string(warnings()) +
         ", \"infos\": " + std::to_string(CountSeverity(DiagSeverity::kInfo)) +
         "},\n";
  out += "  \"diagnostics\": [";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out += (i > 0) ? ",\n    {" : "\n    {";
    out += "\n      \"code\": " + Quoted(d.code) + ",";
    out += "\n      \"rule\": " + Quoted(d.rule) + ",";
    out += "\n      \"severity\": " +
           Quoted(DiagSeverityToString(d.severity)) + ",";
    out += "\n      \"message\": " + Quoted(d.message);
    if (d.location.constraint_index >= 0) {
      out += ",\n      \"constraint\": " +
             std::to_string(d.location.constraint_index);
    }
    if (d.location.line > 0) {
      out += ",\n      \"line\": " + std::to_string(d.location.line) +
             ",\n      \"column\": " + std::to_string(d.location.column);
    }
    if (!d.location.element.empty()) {
      out += ",\n      \"element\": " + Quoted(d.location.element);
    }
    if (!d.notes.empty()) {
      out += ",\n      \"notes\": [";
      for (size_t j = 0; j < d.notes.size(); ++j) {
        if (j > 0) out += ", ";
        out += Quoted(d.notes[j]);
      }
      out += "]";
    }
    out += "\n    }";
  }
  out += diagnostics.empty() ? "],\n" : "\n  ],\n";
  out += "  \"exit_code\": " + std::to_string(ExitCode()) + "\n";
  out += "}\n";
  return out;
}

}  // namespace xic
