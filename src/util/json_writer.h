// A minimal streaming JSON writer shared by every hand-rendered JSON
// emitter in the tree (the serve stats verb, the metrics registry, the
// Chrome trace exporter).
//
// The writer exists to centralize *escaping* -- the string-soup emitters
// it replaced each carried their own half-escape, which is where the
// next injection bug lives -- while reproducing their exact historical
// output byte-for-byte (golden-tested). To that end each container
// chooses one of four layouts instead of a global pretty-printer:
//
//   kCompact   {"k":1,"l":2}           -- no whitespace at all
//   kInline    {"k": 1, "l": 2}        -- spaces after ':' and ','
//   kIndented  {\n  "k": 1,\n  "l": 2\n}  -- one element per line,
//              two-space indent per depth
//   kLines     [\n{...},\n{...}\n]     -- one element per line, no
//              indent (the Chrome trace_event convention)
//
// Header-only and pure std by design: the obs layer sits *below* util in
// the link graph (xic_util links xic_obs), so obs code may include this
// header but must not need a xic_util link dependency.
//
// The writer trusts its caller to emit a well-formed sequence (keys only
// inside objects, matched Begin/End); it is an output formatter, not a
// validator.

#ifndef XIC_UTIL_JSON_WRITER_H_
#define XIC_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace xic::util {

class JsonWriter {
 public:
  enum class Layout { kCompact, kInline, kIndented, kLines };

  void BeginObject(Layout layout = Layout::kCompact) {
    BeginContainer('{', '}', layout);
  }
  void EndObject() { EndContainer(); }
  void BeginArray(Layout layout = Layout::kCompact) {
    BeginContainer('[', ']', layout);
  }
  void EndArray() { EndContainer(); }

  void Key(std::string_view key) {
    BeforeElement();
    out_ += '"';
    AppendEscaped(&out_, key);
    out_ += "\":";
    if (!stack_.empty() && (stack_.back().layout == Layout::kInline ||
                            stack_.back().layout == Layout::kIndented)) {
      out_ += ' ';
    }
    pending_key_ = true;
  }

  void String(std::string_view value) {
    Prefix();
    out_ += '"';
    AppendEscaped(&out_, value);
    out_ += '"';
  }
  void Number(uint64_t value) { Raw(std::to_string(value)); }
  void Number(int64_t value) { Raw(std::to_string(value)); }
  void Number(int value) { Number(static_cast<int64_t>(value)); }
  void Number(unsigned value) { Number(static_cast<uint64_t>(value)); }
  void Bool(bool value) { Raw(value ? "true" : "false"); }
  void Null() { Raw("null"); }
  /// Emits `json` verbatim as one value. For pre-formatted numbers
  /// (doubles with a pinned printf rendering) and nested documents.
  void Raw(std::string_view json) {
    Prefix();
    out_ += json;
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  /// JSON string-escapes `text` (quotes, backslash, \n \r \t, and other
  /// control characters as \u00XX) without surrounding quotes.
  static std::string Escape(std::string_view text) {
    std::string out;
    AppendEscaped(&out, text);
    return out;
  }

 private:
  struct Frame {
    char close;
    Layout layout;
    bool has_elements = false;
  };

  static void AppendEscaped(std::string* out, std::string_view in) {
    out->reserve(out->size() + in.size());
    for (char c : in) {
      switch (c) {
        case '"':
          *out += "\\\"";
          break;
        case '\\':
          *out += "\\\\";
          break;
        case '\n':
          *out += "\\n";
          break;
        case '\r':
          *out += "\\r";
          break;
        case '\t':
          *out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                          static_cast<unsigned char>(c));
            *out += buffer;
          } else {
            *out += c;
          }
      }
    }
  }

  /// Separator + newline/indent before the next element of the current
  /// container (no-op at top level).
  void BeforeElement() {
    if (stack_.empty()) return;
    Frame& frame = stack_.back();
    if (frame.has_elements) {
      out_ += frame.layout == Layout::kInline ? ", " : ",";
    }
    frame.has_elements = true;
    if (frame.layout == Layout::kIndented) {
      out_ += '\n';
      out_.append(stack_.size() * 2, ' ');
    } else if (frame.layout == Layout::kLines) {
      out_ += '\n';
    }
  }

  /// Element prefix for a value: nothing if it follows its Key.
  void Prefix() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    BeforeElement();
  }

  void BeginContainer(char open, char close, Layout layout) {
    Prefix();
    out_ += open;
    stack_.push_back(Frame{close, layout});
  }

  void EndContainer() {
    Frame frame = stack_.back();
    stack_.pop_back();
    if (frame.layout == Layout::kIndented && frame.has_elements) {
      out_ += '\n';
      out_.append(stack_.size() * 2, ' ');
    } else if (frame.layout == Layout::kLines) {
      out_ += '\n';
    }
    out_ += frame.close;
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace xic::util

#endif  // XIC_UTIL_JSON_WRITER_H_
