#include "serve/session_registry.h"

#include <cerrno>
#include <cstdlib>
#include <vector>

#include "obs/obs.h"
#include "util/strings.h"

namespace xic::serve {

namespace {

bool ParseVertex(const std::string& token, VertexId* out) {
  if (token == "root") {
    *out = kInvalidVertex;
    return true;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long value = std::strtoul(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0' ||
      value >= kInvalidVertex) {
    return false;
  }
  *out = static_cast<VertexId>(value);
  return true;
}

}  // namespace

Result<std::string> SessionRegistry::Open(const std::string& name,
                                          PlanPtr plan) {
  std::shared_ptr<Session> session = std::make_shared<Session>();
  session->plan = std::move(plan);
  session->checker = std::make_unique<IncrementalChecker>(
      session->plan->dtd, session->plan->sigma);
  if (!session->checker->status().ok()) {
    return session->checker->status();
  }
  util::MutexLock lock(&mutex_);
  if (sessions_.size() >= config_.max_sessions) {
    ++stats_.refused;
    XIC_COUNTER_ADD("serve.sessions.refused", 1);
    return Status::Unavailable(
        "session registry full (" + std::to_string(config_.max_sessions) +
        " open sessions)");
  }
  std::string id = name;
  if (id.empty()) id = "s" + std::to_string(next_id_++);
  if (!sessions_.emplace(id, std::move(session)).second) {
    return Status::InvalidArgument("session already open: " + id);
  }
  ++stats_.opened;
  XIC_COUNTER_ADD("serve.sessions.opened", 1);
  XIC_COUNTER_MAX("serve.sessions.high_water", sessions_.size());
  return id;
}

Result<std::string> SessionRegistry::Apply(const std::string& name,
                                           const std::string& script,
                                           const FaultInjector& injector,
                                           const std::string& fault_key) {
  std::shared_ptr<Session> session;
  {
    util::MutexLock lock(&mutex_);
    auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      return Status::InvalidArgument("no such session: " + name);
    }
    session = it->second;
  }
  bool poisoned = false;
  Result<std::string> result = Status::Internal("session apply aborted");
  {
    // Per-session lock: scripts for one session serialize; distinct
    // sessions run concurrently. Dropped before the reap below retakes
    // the registry lock, keeping both mutexes leaf locks.
    util::MutexLock session_lock(&session->mutex);
    result = ApplySessionLocked(*session, script, injector, fault_key,
                                &poisoned);
  }
  if (poisoned) {
    // Poisoned handle: reap this session only.
    {
      util::MutexLock lock(&mutex_);
      sessions_.erase(name);
      ++stats_.reaped;
    }
    XIC_COUNTER_ADD("serve.sessions.reaped", 1);
  }
  return result;
}

Result<std::string> SessionRegistry::ApplySessionLocked(
    Session& session, const std::string& script,
    const FaultInjector& injector, const std::string& fault_key,
    bool* poisoned) {
  std::string body;
  try {
    if (Status s = injector.MaybeFail("serve.session", fault_key); !s.ok()) {
      XIC_COUNTER_ADD("serve.faults", 1);
      return s;
    }
    IncrementalChecker& checker = *session.checker;
    std::vector<std::string> lines = Split(script, '\n');
    size_t line_no = 0;
    for (const std::string& raw : lines) {
      ++line_no;
      std::string_view line = StripWhitespace(raw);
      if (line.empty() || line[0] == '#') continue;
      std::vector<std::string> tokens = Split(line, ' ');
      const std::string& op = tokens[0];
      Status op_status;
      if (op == "add" && tokens.size() == 3) {
        VertexId parent;
        if (!ParseVertex(tokens[1], &parent)) {
          op_status = Status::InvalidArgument("bad vertex: " + tokens[1]);
        } else {
          Result<VertexId> added = checker.AddElement(parent, tokens[2]);
          if (added.ok()) {
            body += "vertex " + std::to_string(added.value()) + "\n";
          } else {
            op_status = added.status();
          }
        }
      } else if (op == "set" && tokens.size() >= 4) {
        VertexId vertex;
        if (!ParseVertex(tokens[1], &vertex)) {
          op_status = Status::InvalidArgument("bad vertex: " + tokens[1]);
        } else {
          // The value is everything after the attribute name (values may
          // contain spaces).
          std::vector<std::string> value_parts(tokens.begin() + 3,
                                               tokens.end());
          op_status = checker.SetAttribute(vertex, tokens[2],
                                           Join(value_parts, " "));
          if (op_status.ok()) body += "ok\n";
        }
      } else {
        op_status = Status::InvalidArgument("bad statement: " +
                                            std::string(line));
      }
      if (!op_status.ok()) {
        // The checker's rejected-op invariance: prior statements stay
        // applied, the script stops here.
        body += "error line " + std::to_string(line_no) + " " +
                op_status.ToString() + "\n";
        break;
      }
    }
    body += std::string("consistent ") +
            (checker.consistent() ? "true" : "false") + " violations " +
            std::to_string(checker.violation_count()) + "\n";
    XIC_COUNTER_ADD("serve.sessions.updates", line_no);
    return body;
  } catch (const std::exception& e) {
    *poisoned = true;
    return Status::Internal(std::string("session reaped: ") + e.what());
  }
}

Status SessionRegistry::Close(const std::string& name) {
  util::MutexLock lock(&mutex_);
  if (sessions_.erase(name) == 0) {
    return Status::InvalidArgument("no such session: " + name);
  }
  ++stats_.closed;
  XIC_COUNTER_ADD("serve.sessions.closed", 1);
  return Status::OK();
}

size_t SessionRegistry::size() const {
  util::MutexLock lock(&mutex_);
  return sessions_.size();
}

SessionRegistry::Stats SessionRegistry::stats() const {
  util::MutexLock lock(&mutex_);
  return stats_;
}

}  // namespace xic::serve
