#include <gtest/gtest.h>

#include <algorithm>

#include "constraints/constraint_parser.h"
#include "paths/optimizer.h"
#include "xml/xml_parser.h"

namespace xic {
namespace {

Path P(const std::string& text) { return Path::Parse(text).value(); }

struct Fixture {
  DtdStructure dtd;
  ConstraintSet sigma;
  XmlDocument doc;
  Fixture() {
    const char* text = R"(<!DOCTYPE catalog [
      <!ELEMENT catalog (book*)>
      <!ELEMENT book (entry, author*, section*, ref)>
      <!ELEMENT entry (title, publisher)>
      <!ATTLIST entry isbn ID #REQUIRED>
      <!ELEMENT title (#PCDATA)>
      <!ELEMENT publisher (#PCDATA)>
      <!ELEMENT author (#PCDATA)>
      <!ELEMENT text (#PCDATA)>
      <!ELEMENT section (title, (text|section)*)>
      <!ATTLIST section sid ID #REQUIRED>
      <!ELEMENT ref EMPTY>
      <!ATTLIST ref to IDREFS #REQUIRED>
    ]>
    <catalog>
      <book>
        <entry isbn="i1"><title>T1</title><publisher>P1</publisher></entry>
        <author>A</author><author>B</author>
        <section sid="s1"><title>S1</title>
          <section sid="s2"><title>S2</title></section>
        </section>
        <ref to="i1 i2"/>
      </book>
      <book>
        <entry isbn="i2"><title>T2</title><publisher>P2</publisher></entry>
        <author>B</author>
        <section sid="s3"><title>S3</title></section>
        <ref to="i1"/>
      </book>
    </catalog>)";
    Result<XmlDocument> parsed = ParseXml(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    doc = std::move(parsed).value();
    dtd = *doc.dtd;
    Result<ConstraintSet> s = ParseConstraintSet(R"(
      id entry.isbn
      id section.sid
      sfk ref.to -> entry.isbn
    )", Language::kLid);
    EXPECT_TRUE(s.ok());
    sigma = s.value();
  }
};

TEST(Optimizer, PromotesDominatedChains) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  ASSERT_TRUE(context.status().ok()) << context.status();
  PathOptimizer optimizer(context);
  // catalog.book.entry.title: book occurs only under catalog, entry only
  // under book -- the scan can start at ext(entry). title occurs under
  // both entry and section, so promotion stops at entry.
  Result<PathPlan> plan =
      optimizer.Optimize({"catalog", P("book.entry.title")});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().scan_element, "entry");
  EXPECT_EQ(plan.value().path, P("title"));
  EXPECT_FALSE(plan.value().needs_dedup);
  EXPECT_EQ(plan.value().result_type, "title");
}

TEST(Optimizer, RecursiveTypesAreNotPromotedThrough) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathOptimizer optimizer(context);
  // section occurs under book AND section (recursive): not dominated.
  Result<PathPlan> plan =
      optimizer.Optimize({"catalog", P("book.section.title")});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().scan_element, "book");
  EXPECT_EQ(plan.value().path, P("section.title"));
}

TEST(Optimizer, DerefStepsKeepDedup) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathOptimizer optimizer(context);
  // ref.to dereferences: two books may reference the same entry.
  Result<PathPlan> plan = optimizer.Optimize({"book", P("ref.to")});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().needs_dedup);
  EXPECT_EQ(plan.value().result_type, "entry");
}

TEST(Optimizer, KeyPathsAnnotated) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathOptimizer optimizer(context);
  Result<PathPlan> plan = optimizer.Optimize({"book", P("entry.isbn")});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().unique_per_root);
}

TEST(Optimizer, PlansAreEquivalentToNaiveExecution) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathOptimizer optimizer(context);
  PathEvaluator evaluator(context, f.doc.tree);
  ExtentIndex extents(f.doc.tree);
  std::vector<PathQuery> queries = {
      {"catalog", P("book.entry.title")},
      {"catalog", P("book.author")},
      {"catalog", P("book.ref.to")},
      {"book", P("section.title")},
      {"book", P("ref.to.title")},
      {"catalog", P("book.entry.isbn")},
  };
  for (const PathQuery& query : queries) {
    Result<PathPlan> plan = optimizer.Optimize(query);
    ASSERT_TRUE(plan.ok()) << query.ToString();
    ExecutionStats naive_stats, opt_stats;
    std::vector<PathNode> naive = ExecutePlan(
        evaluator, extents, NaivePlan(context, query), &naive_stats);
    std::vector<PathNode> optimized =
        ExecutePlan(evaluator, extents, plan.value(), &opt_stats);
    // Same result sets.
    std::set<PathNode> a(naive.begin(), naive.end());
    std::set<PathNode> b(optimized.begin(), optimized.end());
    EXPECT_EQ(a, b) << query.ToString();
    // No duplicates even when dedup was eliminated.
    EXPECT_EQ(optimized.size(), b.size()) << query.ToString();
    // The optimizer never walks more steps than the naive plan.
    EXPECT_LE(opt_stats.steps_walked, naive_stats.steps_walked)
        << query.ToString();
  }
}

TEST(Optimizer, PromotionSavesWork) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathOptimizer optimizer(context);
  PathEvaluator evaluator(context, f.doc.tree);
  PathQuery query{"catalog", P("book.entry.title")};
  Result<PathPlan> plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok());
  ExtentIndex extents(f.doc.tree);
  ExecutionStats naive_stats, opt_stats;
  ExecutePlan(evaluator, extents, NaivePlan(context, query), &naive_stats);
  ExecutePlan(evaluator, extents, plan.value(), &opt_stats);
  EXPECT_LT(opt_stats.steps_walked, naive_stats.steps_walked);
}

TEST(Optimizer, InvalidQueriesError) {
  Fixture f;
  PathContext context(f.dtd, f.sigma);
  PathOptimizer optimizer(context);
  EXPECT_FALSE(optimizer.Optimize({"catalog", P("ghost")}).ok());
  EXPECT_FALSE(optimizer.Optimize({"nowhere", P("book")}).ok());
}

}  // namespace
}  // namespace xic
