// expect-fail (Clang -Wthread-safety): calling a REQUIRES function
// without holding the capability must be rejected -- this is the
// Foo()/FooLocked() discipline the migration installed everywhere.

#include "util/sync.h"

namespace {

class Table {
 public:
  void Insert(int v) {
    InsertLocked(v);  // BUG: mutex_ not held
  }

 private:
  void InsertLocked(int v) XIC_REQUIRES(mutex_) { value_ = v; }

  xic::util::Mutex mutex_;
  int value_ XIC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Table table;
  table.Insert(1);
  return 0;
}
