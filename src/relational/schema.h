// Relational schemas: the legacy-source model of the paper's Section 1
// publishers/editors example. Relations carry attribute lists, candidate
// keys and foreign keys; ExportToXml (export_xml.h) turns a schema into a
// DTD^C whose constraints are in L, preserving keys and foreign keys.

#ifndef XIC_RELATIONAL_SCHEMA_H_
#define XIC_RELATIONAL_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace xic {

struct RelationDef {
  std::string name;
  std::vector<std::string> attributes;
  /// Candidate keys; the first is the primary key.
  std::vector<std::vector<std::string>> keys;
};

struct RelationalForeignKey {
  std::string relation;
  std::vector<std::string> attrs;
  std::string ref_relation;
  std::vector<std::string> ref_attrs;
};

class RelationalSchema {
 public:
  Status AddRelation(std::string name, std::vector<std::string> attributes);
  Status AddKey(const std::string& relation, std::vector<std::string> attrs);
  Status AddForeignKey(RelationalForeignKey fk);

  /// Global coherence: attribute references valid, every foreign key
  /// targets a declared key of its referenced relation.
  Status Validate() const;

  const std::vector<RelationDef>& relations() const { return relations_; }
  const std::vector<RelationalForeignKey>& foreign_keys() const {
    return foreign_keys_;
  }
  const RelationDef* Find(const std::string& name) const;

 private:
  std::vector<RelationDef> relations_;
  std::vector<RelationalForeignKey> foreign_keys_;
};

}  // namespace xic

#endif  // XIC_RELATIONAL_SCHEMA_H_
