// Serialization of data trees back to XML text.

#ifndef XIC_XML_SERIALIZER_H_
#define XIC_XML_SERIALIZER_H_

#include <string>

#include "model/data_tree.h"
#include "model/dtd_structure.h"

namespace xic {

struct SerializeOptions {
  /// Indent nested elements (2 spaces per level); text-bearing elements
  /// stay on one line.
  bool pretty = true;
};

/// Renders the tree rooted at tree.root() as an XML document. Set-valued
/// attributes are joined with single spaces (the IDREFS convention).
std::string SerializeXml(const DataTree& tree,
                         const SerializeOptions& options = {});

/// Escapes '<', '>', '&', '"', '\'' (plus '\r' as "&#13;", which line-end
/// normalization would otherwise rewrite) for use in character data.
std::string EscapeXml(const std::string& text);

/// Escapes attribute values: everything EscapeXml does, plus '\n' and
/// '\t' as character references so XML attribute-value normalization
/// cannot turn them into spaces across a parse -> serialize -> parse
/// cycle.
std::string EscapeXmlAttribute(const std::string& text);

}  // namespace xic

#endif  // XIC_XML_SERIALIZER_H_
