// xicfuzz: the differential-oracle fuzzer.
//
// Usage:
//   xicfuzz [options]                   run seed-driven trials
//   xicfuzz [options] entry.corpus ...  replay committed corpus entries
//
// Options:
//   --oracle NAME   oracle family to run: checker, incremental,
//                   implication, roundtrip, lint, or all (default all);
//                   repeatable
//   --seeds N       first seed of the deterministic seed range (default 1)
//   --trials N      trials per oracle family (default 200)
//   --minimize      delta-debug each mismatch before reporting it
//   --corpus-out D  write each mismatch entry to D/<oracle>-<seed>.corpus
//
// Every trial is reproducible from (oracle, seed) alone; every reported
// mismatch is a self-contained corpus entry replayable without the seed
// (see src/fuzzing/ and DESIGN.md "Differential testing"). Exit code:
// 0 all oracles agree, 1 mismatch found or reproduced, 2 usage/parse
// error.

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs_cli.h"
#include "xic.h"

namespace {

using namespace xic;
using namespace xic::fuzz;

bool ParseNumber(const char* text, unsigned long* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long value = std::strtoul(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

void PrintMismatch(const FuzzMismatch& mismatch, const std::string& where) {
  std::cout << "MISMATCH seed " << mismatch.seed << ": " << mismatch.detail
            << "\n";
  if (!where.empty()) {
    std::cout << "  reproducer written to " << where << "\n";
  } else {
    std::cout << "--- reproducer ---\n"
              << WriteCorpusEntry(mismatch.entry) << "--- end ---\n";
  }
}

int ReplayFile(const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    std::cerr << file << ": cannot open\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<CorpusEntry> entry = ParseCorpusEntry(buffer.str());
  if (!entry.ok()) {
    std::cerr << file << ": " << entry.status() << "\n";
    return 2;
  }
  Result<OracleOutcome> outcome = ReplayEntry(entry.value());
  if (!outcome.ok()) {
    std::cerr << file << ": " << outcome.status() << "\n";
    return 2;
  }
  if (outcome.value().mismatch) {
    std::cout << file << ": MISMATCH reproduced: " << outcome.value().detail
              << "\n";
    return 1;
  }
  std::cout << file << ": " << entry.value().oracle
            << (outcome.value().skipped ? " skipped" : " agrees") << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<OracleId> oracles;
  std::vector<std::string> files;
  FuzzOptions options;
  uint64_t first_seed = 1;
  size_t trials = 200;
  std::string corpus_out;
  ObsCliOptions obs_options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    unsigned long count = 0;
    bool obs_error = false;
    if (ObsParseFlag(argc, argv, &i, &obs_options, &obs_error)) {
      if (obs_error) return 2;
    } else if (arg == "--oracle" && i + 1 < argc) {
      std::string name = argv[++i];
      if (name == "all") {
        oracles.assign(std::begin(kAllOracles), std::end(kAllOracles));
      } else if (std::optional<OracleId> id = ParseOracleName(name);
                 id.has_value()) {
        oracles.push_back(*id);
      } else {
        std::cerr << "--oracle: unknown oracle \"" << name
                  << "\" (expected checker, incremental, implication, "
                     "roundtrip, lint or all)\n";
        return 2;
      }
    } else if (arg == "--seeds" && i + 1 < argc) {
      if (!ParseNumber(argv[++i], &count)) {
        std::cerr << "--seeds: not a number: " << argv[i] << "\n";
        return 2;
      }
      first_seed = count;
    } else if (arg == "--trials" && i + 1 < argc) {
      if (!ParseNumber(argv[++i], &count)) {
        std::cerr << "--trials: not a number: " << argv[i] << "\n";
        return 2;
      }
      trials = count;
    } else if (arg == "--minimize") {
      options.minimize = true;
    } else if (arg == "--corpus-out" && i + 1 < argc) {
      corpus_out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: xicfuzz [--oracle NAME]... [--seeds N] "
                   "[--trials N] [--minimize] [--corpus-out DIR] "
                   "[--trace-out FILE] [--metrics-out FILE] [--stats] "
                   "[entry.corpus ...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << arg << ": unknown option\n";
      return 2;
    } else {
      files.push_back(std::move(arg));
    }
  }

  ObsCliSession obs_session(obs_options);
  int worst = 0;
  for (const std::string& file : files) {
    worst = std::max(worst, ReplayFile(file));
  }
  if (files.empty() || !oracles.empty()) {
    if (oracles.empty()) {
      oracles.assign(std::begin(kAllOracles), std::end(kAllOracles));
    }
    for (OracleId oracle : oracles) {
      FuzzResult result = RunFuzz(oracle, first_seed, trials, options);
      std::cout << OracleName(oracle) << ": " << result.trials
                << " trial(s), " << result.skipped << " skipped, "
                << result.mismatches.size() << " mismatch(es)\n";
      for (const FuzzMismatch& mismatch : result.mismatches) {
        std::string where;
        if (!corpus_out.empty()) {
          where = corpus_out + "/" + std::string(OracleName(oracle)) + "-" +
                  std::to_string(mismatch.seed) + ".corpus";
          std::ofstream out(where);
          if (!out) {
            std::cerr << where << ": cannot write\n";
            return 2;
          }
          out << WriteCorpusEntry(mismatch.entry);
        }
        PrintMismatch(mismatch, where);
        worst = std::max(worst, 1);
      }
    }
  }
  if (!obs_session.Finish()) worst = std::max(worst, 2);
  return worst;
}
