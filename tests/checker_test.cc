#include <gtest/gtest.h>

#include "constraints/checker.h"
#include "constraints/constraint_parser.h"
#include "xml/xml_parser.h"

namespace xic {
namespace {

// Book document with two entries under a catalog root so key constraints
// can actually be violated.
Result<XmlDocument> Catalog(const std::string& body) {
  std::string text = R"(<!DOCTYPE catalog [
    <!ELEMENT catalog (book*)>
    <!ELEMENT book (entry, ref)>
    <!ELEMENT entry (title)>
    <!ATTLIST entry isbn CDATA #REQUIRED>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT ref EMPTY>
    <!ATTLIST ref to NMTOKENS #REQUIRED>
  ]>
  <catalog>)" + body + "</catalog>";
  return ParseXml(text);
}

std::string Book(const std::string& isbn, const std::string& refs) {
  return "<book><entry isbn=\"" + isbn + "\"><title>t</title></entry>" +
         "<ref to=\"" + refs + "\"/></book>";
}

ConstraintSet BookSigma() {
  Result<ConstraintSet> sigma = ParseConstraintSet(
      "key entry.isbn; sfk ref.to -> entry.isbn", Language::kLu);
  EXPECT_TRUE(sigma.ok());
  return sigma.value();
}

TEST(Checker, SatisfiedBookConstraints) {
  Result<XmlDocument> doc =
      Catalog(Book("a", "a b") + Book("b", "a"));
  ASSERT_TRUE(doc.ok()) << doc.status();
  ConstraintSet sigma = BookSigma();
  ConstraintChecker checker(*doc.value().dtd, sigma);
  ConstraintReport report = checker.Check(doc.value().tree);
  EXPECT_TRUE(report.ok()) << report.ToString(sigma);
}

TEST(Checker, DetectsDuplicateKey) {
  Result<XmlDocument> doc = Catalog(Book("a", "a") + Book("a", "a"));
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma = BookSigma();
  ConstraintChecker checker(*doc.value().dtd, sigma);
  ConstraintReport report = checker.Check(doc.value().tree);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].constraint_index, 0u);
  EXPECT_NE(report.violations[0].message.find("duplicate key"),
            std::string::npos);
  EXPECT_EQ(report.violations[0].witnesses.size(), 2u);
}

TEST(Checker, DetectsDanglingSetReference) {
  Result<XmlDocument> doc = Catalog(Book("a", "a ghost"));
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma = BookSigma();
  ConstraintChecker checker(*doc.value().dtd, sigma);
  ConstraintReport report = checker.Check(doc.value().tree);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].message.find("ghost"), std::string::npos);
}

TEST(Checker, NaiveModeAgrees) {
  Result<XmlDocument> good = Catalog(Book("a", "a") + Book("b", "a b"));
  Result<XmlDocument> bad = Catalog(Book("a", "z") + Book("a", "a"));
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  ConstraintSet sigma = BookSigma();
  for (const auto* doc : {&good.value(), &bad.value()}) {
    ConstraintChecker indexed(*doc->dtd, sigma);
    ConstraintChecker naive(*doc->dtd, sigma, {.naive = true});
    EXPECT_EQ(indexed.Check(doc->tree).ok(), naive.Check(doc->tree).ok());
  }
}

TEST(Checker, MultiAttributeKeyAndForeignKey) {
  // The paper's publishers/editors example with sub-element fields.
  const char* text = R"(<!DOCTYPE db [
    <!ELEMENT db (publisher*, editor*)>
    <!ELEMENT publisher (pname, country, address)>
    <!ELEMENT editor (name, pname, country)>
    <!ELEMENT pname (#PCDATA)>
    <!ELEMENT country (#PCDATA)>
    <!ELEMENT address (#PCDATA)>
    <!ELEMENT name (#PCDATA)>
  ]>
  <db>
    <publisher><pname>MK</pname><country>USA</country><address>a</address></publisher>
    <publisher><pname>MK</pname><country>UK</country><address>b</address></publisher>
    <editor><name>ed1</name><pname>MK</pname><country>USA</country></editor>
  </db>)";
  Result<XmlDocument> doc = ParseXml(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    key publisher[pname, country]
    key editor.name
    fk editor[pname, country] -> publisher[pname, country]
  )", Language::kL);
  ASSERT_TRUE(sigma.ok());
  ConstraintChecker checker(*doc.value().dtd, sigma.value());
  EXPECT_TRUE(checker.Check(doc.value().tree).ok())
      << checker.Check(doc.value().tree).ToString(sigma.value());

  // Breaking the foreign key: editor references a missing (pname,country).
  Result<ConstraintSet> sigma_bad = ParseConstraintSet(R"(
    key publisher[pname, country]
    fk editor[pname, country] -> publisher[pname, country]
  )", Language::kL);
  ASSERT_TRUE(sigma_bad.ok());
  const char* text2 = R"(<!DOCTYPE db [
    <!ELEMENT db (publisher*, editor*)>
    <!ELEMENT publisher (pname, country, address)>
    <!ELEMENT editor (name, pname, country)>
    <!ELEMENT pname (#PCDATA)> <!ELEMENT country (#PCDATA)>
    <!ELEMENT address (#PCDATA)> <!ELEMENT name (#PCDATA)>
  ]>
  <db>
    <publisher><pname>MK</pname><country>USA</country><address>a</address></publisher>
    <editor><name>e</name><pname>MK</pname><country>France</country></editor>
  </db>)";
  Result<XmlDocument> doc2 = ParseXml(text2);
  ASSERT_TRUE(doc2.ok());
  ConstraintChecker checker2(*doc2.value().dtd, sigma_bad.value());
  EXPECT_FALSE(checker2.Check(doc2.value().tree).ok());
}

// L_id: the person/dept document.
Result<XmlDocument> PersonDeptDoc(const std::string& body) {
  std::string text = R"(<!DOCTYPE db [
    <!ELEMENT db (person*, dept*)>
    <!ELEMENT person (name)>
    <!ATTLIST person oid ID #REQUIRED in_dept IDREFS #REQUIRED>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT dname (#PCDATA)>
    <!ELEMENT dept (dname)>
    <!ATTLIST dept oid ID #REQUIRED manager IDREF #REQUIRED
              has_staff IDREFS #REQUIRED>
  ]>
  <db>)" + body + "</db>";
  return ParseXml(text);
}

ConstraintSet PersonDeptSigma() {
  Result<ConstraintSet> sigma = ParseConstraintSet(R"(
    id person.oid
    id dept.oid
    key person.name
    sfk person.in_dept -> dept.oid
    fk dept.manager -> person.oid
    sfk dept.has_staff -> person.oid
    inverse dept.has_staff <-> person.in_dept
  )", Language::kLid);
  EXPECT_TRUE(sigma.ok()) << sigma.status();
  return sigma.value();
}

TEST(Checker, LidDocumentSatisfied) {
  Result<XmlDocument> doc = PersonDeptDoc(R"(
    <person oid="p1" in_dept="d1"><name>An</name></person>
    <person oid="p2" in_dept="d1"><name>Bo</name></person>
    <dept oid="d1" manager="p1" has_staff="p1 p2"><dname>CS</dname></dept>
  )");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ConstraintSet sigma = PersonDeptSigma();
  ConstraintChecker checker(*doc.value().dtd, sigma);
  ConstraintReport report = checker.Check(doc.value().tree);
  EXPECT_TRUE(report.ok()) << report.ToString(sigma);
}

TEST(Checker, IdConstraintIsDocumentWide) {
  // person p1 and dept p1 share an id value: per-type keys would accept
  // this, the L_id ID constraint must not.
  Result<XmlDocument> doc = PersonDeptDoc(R"(
    <person oid="p1" in_dept="p1"><name>An</name></person>
    <dept oid="p1" manager="p1" has_staff="p1"><dname>CS</dname></dept>
  )");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ConstraintSet sigma = PersonDeptSigma();
  ConstraintChecker checker(*doc.value().dtd, sigma);
  ConstraintReport report = checker.Check(doc.value().tree);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const ConstraintViolation& v : report.violations) {
    if (v.message.find("not document-unique") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.ToString(sigma);
}

TEST(Checker, SubElementKeyViolation) {
  // Two persons with the same name sub-element value.
  Result<XmlDocument> doc = PersonDeptDoc(R"(
    <person oid="p1" in_dept="d1"><name>An</name></person>
    <person oid="p2" in_dept="d1"><name>An</name></person>
    <dept oid="d1" manager="p1" has_staff="p1 p2"><dname>CS</dname></dept>
  )");
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma = PersonDeptSigma();
  ConstraintChecker checker(*doc.value().dtd, sigma);
  ConstraintReport report = checker.Check(doc.value().tree);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString(sigma).find("person.name -> person"),
            std::string::npos);
}

TEST(Checker, InverseViolationDetected) {
  // d1 lists p2 as staff but p2's in_dept omits d1.
  Result<XmlDocument> doc = PersonDeptDoc(R"(
    <person oid="p1" in_dept="d1"><name>An</name></person>
    <person oid="p2" in_dept=""><name>Bo</name></person>
    <dept oid="d1" manager="p1" has_staff="p1 p2"><dname>CS</dname></dept>
  )");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ConstraintSet sigma = PersonDeptSigma();
  ConstraintChecker checker(*doc.value().dtd, sigma);
  ConstraintReport report = checker.Check(doc.value().tree);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const ConstraintViolation& v : report.violations) {
    if (v.message.find("inverse missing") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << report.ToString(sigma);
}

TEST(Checker, DanglingIdRef) {
  Result<XmlDocument> doc = PersonDeptDoc(R"(
    <person oid="p1" in_dept="ghost"><name>An</name></person>
    <dept oid="d1" manager="p1" has_staff="p1"><dname>CS</dname></dept>
  )");
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma = PersonDeptSigma();
  ConstraintChecker checker(*doc.value().dtd, sigma);
  ConstraintReport report = checker.Check(doc.value().tree);
  EXPECT_FALSE(report.ok());
}

TEST(Checker, MaxViolationsCap) {
  std::string body;
  for (int i = 0; i < 10; ++i) body += Book("dup", "dup");
  Result<XmlDocument> doc = Catalog(body);
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma = BookSigma();
  ConstraintChecker checker(*doc.value().dtd, sigma, {.max_violations = 2});
  EXPECT_EQ(checker.Check(doc.value().tree).violations.size(), 2u);
}

TEST(Checker, FieldValueResolvesSubElements) {
  Result<XmlDocument> doc = PersonDeptDoc(R"(
    <person oid="p1" in_dept="d1"><name>An</name></person>
    <dept oid="d1" manager="p1" has_staff="p1"><dname>CS</dname></dept>
  )");
  ASSERT_TRUE(doc.ok());
  ConstraintSet sigma = PersonDeptSigma();
  ConstraintChecker checker(*doc.value().dtd, sigma);
  const DataTree& t = doc.value().tree;
  VertexId person = t.Extent("person")[0];
  EXPECT_EQ(checker.FieldValue(t, person, "oid").value(), AttrValue{"p1"});
  EXPECT_EQ(checker.FieldValue(t, person, "name").value(), AttrValue{"An"});
  EXPECT_FALSE(checker.FieldValue(t, person, "ghost").ok());
}

}  // namespace
}  // namespace xic
