// Deterministic pseudo-random numbers for the differential fuzzer.
//
// The standard <random> distributions are implementation-defined, so a
// seed would reproduce different cases on different standard libraries.
// xicfuzz instead draws from its own SplitMix64 stream: the same seed
// yields the same DTD / document / constraint set / update sequence on
// every platform, which is what makes corpus entries and CI seed ranges
// meaningful.

#ifndef XIC_FUZZING_RNG_H_
#define XIC_FUZZING_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xic::fuzz {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// The next 64 raw bits (SplitMix64).
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); n must be positive.
  size_t Below(size_t n) { return static_cast<size_t>(Next() % n); }

  /// Uniform in [lo, hi] inclusive.
  size_t Range(size_t lo, size_t hi) { return lo + Below(hi - lo + 1); }

  /// True with probability `percent` / 100.
  bool Chance(uint32_t percent) { return Below(100) < percent; }

  /// A uniformly chosen element; `v` must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace xic::fuzz

#endif  // XIC_FUZZING_RNG_H_
