#include "util/backoff.h"

#include <algorithm>
#include <cmath>
#include <thread>

namespace xic {

namespace {

// FNV-1a over (seed, key, attempt) finished with a splitmix64 avalanche,
// mirroring util/fault_injector.cc so nearby keys decorrelate.
uint64_t Mix(uint64_t seed, std::string_view key, size_t attempt) {
  uint64_t h = 0xcbf29ce484222325u ^ seed;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3u;
  }
  h ^= 0xff;  // separator so ("ab", 1) != ("a", ...) collisions stay rare
  h *= 0x100000001b3u;
  h ^= attempt;
  h *= 0x100000001b3u;
  h += 0x9e3779b97f4a7c15u;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9u;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebu;
  return h ^ (h >> 31);
}

}  // namespace

std::chrono::milliseconds BackoffDelay(const BackoffConfig& config,
                                       std::string_view key,
                                       size_t attempt) {
  if (!config.enabled() || attempt == 0) {
    return std::chrono::milliseconds::zero();
  }
  double delay = static_cast<double>(config.initial_delay_ms);
  double multiplier = config.multiplier < 1.0 ? 1.0 : config.multiplier;
  delay *= std::pow(multiplier, static_cast<double>(attempt - 1));
  double cap = static_cast<double>(config.max_delay_ms);
  if (cap > 0 && delay > cap) delay = cap;
  double jitter = std::clamp(config.jitter, 0.0, 1.0);
  if (jitter > 0) {
    // 53-bit uniform in [0, 1), mapped to [1 - jitter, 1 + jitter].
    double u = static_cast<double>(Mix(config.seed, key, attempt) >> 11) *
               (1.0 / 9007199254740992.0);
    delay *= 1.0 - jitter + 2.0 * jitter * u;
  }
  return std::chrono::milliseconds(
      static_cast<int64_t>(std::llround(delay)));
}

std::chrono::milliseconds BackoffSleep(const BackoffConfig& config,
                                       std::string_view key,
                                       size_t attempt) {
  std::chrono::milliseconds delay = BackoffDelay(config, key, attempt);
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  return delay;
}

}  // namespace xic
