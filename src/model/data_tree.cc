#include "model/data_tree.h"

#include <algorithm>

namespace xic {

VertexId DataTree::AddVertex(std::string_view element_name) {
  VertexId id = static_cast<VertexId>(labels_.size());
  labels_.push_back(symbols_.Intern(element_name));
  children_.emplace_back();
  parents_.push_back(kInvalidVertex);
  attributes_.emplace_back();
  if (root_ == kInvalidVertex) root_ = id;
  return id;
}

Status DataTree::AddChildVertex(VertexId parent, VertexId child) {
  if (parent >= size() || child >= size()) {
    return Status::InvalidArgument("vertex id out of range");
  }
  if (child == root_) {
    return Status::InvalidArgument("the root cannot become a child");
  }
  if (parents_[child] != kInvalidVertex) {
    return Status::InvalidArgument("vertex already has a parent");
  }
  parents_[child] = parent;
  children_[parent].emplace_back(child);
  return Status::OK();
}

void DataTree::AddChildText(VertexId parent, std::string text) {
  children_[parent].emplace_back(std::move(text));
}

void DataTree::SetAttributeImpl(VertexId v, std::string_view name,
                                AttrValue value) {
  Symbol s = symbols_.Intern(name);
  std::vector<AttrEntry>& entries = attributes_[v];
  for (AttrEntry& e : entries) {
    if (e.name == s) {
      e.value = std::move(value);
      return;
    }
  }
  // Insert keeping lexicographic name order (attribute counts per vertex
  // are tiny, so a linear scan beats any cleverness).
  auto pos = entries.begin();
  while (pos != entries.end() && symbols_.name(pos->name) < name) ++pos;
  entries.insert(pos, AttrEntry{s, std::move(value)});
}

void DataTree::SetAttribute(VertexId v, std::string_view name,
                            AttrValue value) {
  SetAttributeImpl(v, name, std::move(value));
}

void DataTree::SetAttribute(VertexId v, std::string_view name,
                            std::string value) {
  SetAttributeImpl(v, name, AttrValue{std::move(value)});
}

bool DataTree::HasAttribute(VertexId v, std::string_view name) const {
  return FindAttr(v, name) != nullptr;
}

Result<AttrValue> DataTree::Attribute(VertexId v,
                                      std::string_view name) const {
  const AttrValue* value = FindAttr(v, name);
  if (value == nullptr) {
    return Status::InvalidArgument("attribute " + std::string(name) +
                                   " undefined on vertex");
  }
  return *value;
}

Result<std::string> DataTree::SingleAttribute(VertexId v,
                                              std::string_view name) const {
  const AttrValue* value = FindAttr(v, name);
  if (value == nullptr) {
    return Status::InvalidArgument("attribute " + std::string(name) +
                                   " undefined on vertex");
  }
  if (value->size() != 1) {
    return Status::InvalidArgument("attribute " + std::string(name) +
                                   " is not single-valued on vertex");
  }
  return *value->begin();
}

std::vector<VertexId> DataTree::Extent(std::string_view element_name) const {
  std::vector<VertexId> out;
  Symbol s = symbols_.Find(element_name);
  if (s == kInvalidSymbol) return out;
  for (VertexId v = 0; v < size(); ++v) {
    if (labels_[v] == s) out.push_back(v);
  }
  return out;
}

std::set<std::string> DataTree::Labels() const {
  std::set<std::string> out;
  for (Symbol s : labels_) out.insert(symbols_.name(s));
  return out;
}

std::vector<VertexId> DataTree::ChildVertices(VertexId v) const {
  std::vector<VertexId> out;
  for (const Child& c : children_[v]) {
    if (const VertexId* id = std::get_if<VertexId>(&c)) out.push_back(*id);
  }
  return out;
}

std::vector<std::string> DataTree::ChildWord(VertexId v) const {
  std::vector<std::string> out;
  for (const Child& c : children_[v]) {
    if (const VertexId* id = std::get_if<VertexId>(&c)) {
      out.push_back(label(*id));
    } else {
      out.push_back("#PCDATA");
    }
  }
  return out;
}

ExtentIndex::ExtentIndex(const DataTree& tree)
    : tree_(tree), extents_(tree.symbols().size()) {
  for (VertexId v = 0; v < tree.size(); ++v) {
    extents_[tree.label_symbol(v)].push_back(v);
  }
}

const std::vector<VertexId>& ExtentIndex::Extent(
    std::string_view element_name) const {
  Symbol s = tree_.FindName(element_name);
  return s == kInvalidSymbol ? empty_ : Extent(s);
}

}  // namespace xic
