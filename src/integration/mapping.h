// Integration mappings and constraint propagation.
//
// The paper closes with: "important questions are how constraints
// propagate through integration programs, and how they can help in
// verifying their correctness". This module implements the propagation
// half for a concrete class of integration programs -- compositions of
// renamings and projections over a DTD^C:
//
//   rename-element  e  -> e'      (element type renamed everywhere)
//   rename-field    e.f -> e.f'   (attribute or sub-element field)
//   drop-element    e             (projection: subtrees removed)
//   drop-field      e.f           (projection: attribute / child removed)
//
// A Mapping applies to the three components of a DTD^C world: the
// structure (ApplyToDtd), documents (ApplyToDocument -- a fresh tree is
// built), and the constraint set (PropagateConstraints). The propagation
// guarantee, checked by the test suite:
//
//   if G |= Sigma, then Apply(G) |= Propagate(Sigma),
//
// i.e. propagated constraints are sound; constraints whose fields are
// projected away are dropped (their information is no longer stated).

#ifndef XIC_INTEGRATION_MAPPING_H_
#define XIC_INTEGRATION_MAPPING_H_

#include <string>
#include <variant>
#include <vector>

#include "constraints/constraint.h"
#include "model/data_tree.h"
#include "model/dtd_structure.h"
#include "util/status.h"

namespace xic {

struct RenameElement {
  std::string from;
  std::string to;
};
struct RenameField {
  std::string element;
  std::string from;
  std::string to;
};
struct DropElement {
  std::string element;
};
struct DropField {
  std::string element;
  std::string field;
};

using MappingStep =
    std::variant<RenameElement, RenameField, DropElement, DropField>;

std::string MappingStepToString(const MappingStep& step);

class Mapping {
 public:
  Mapping& Rename(std::string from, std::string to);
  Mapping& RenameFieldOf(std::string element, std::string from,
                         std::string to);
  Mapping& Drop(std::string element);
  Mapping& DropFieldOf(std::string element, std::string field);

  const std::vector<MappingStep>& steps() const { return steps_; }

  /// The transformed structure. Renames must not collide with existing
  /// names; the root cannot be dropped.
  Result<DtdStructure> ApplyToDtd(const DtdStructure& dtd) const;

  /// A fresh tree with the mapping applied (dropped elements' subtrees
  /// removed, labels / attributes renamed, dropped fields removed).
  Result<DataTree> ApplyToDocument(const DataTree& tree,
                                   const DtdStructure& dtd) const;

  /// The constraints that survive the mapping, with names rewritten.
  /// Constraints touching a dropped element or field are removed.
  Result<ConstraintSet> PropagateConstraints(const ConstraintSet& sigma,
                                             const DtdStructure& dtd) const;

 private:
  std::vector<MappingStep> steps_;
};

}  // namespace xic

#endif  // XIC_INTEGRATION_MAPPING_H_
