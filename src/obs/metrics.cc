#include "obs/metrics.h"

#if XIC_OBS_ENABLED

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "util/json_writer.h"

namespace xic::obs {

namespace {

std::string FormatDouble(double v) {
  // Shortest exact-enough form: integers print without a fraction so
  // the JSON is stable across libc printf implementations.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  // Callers pass literal bound lists; sorting here makes a mis-ordered
  // list a non-event instead of a silent misclassification.
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // +inf by default
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    double current = std::bit_cast<double>(observed);
    uint64_t next = std::bit_cast<uint64_t>(current + value);
    if (sum_bits_.compare_exchange_weak(observed, next,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: outlive all users
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  util::MutexLock lock(&mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  const std::vector<double>& bounds) {
  util::MutexLock lock(&mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

std::string Registry::ToJson() const {
  util::MutexLock lock(&mutex_);
  util::JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name);
    w.Number(counter->value());
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Number(histogram->count());
    w.Key("sum");
    w.Raw(FormatDouble(histogram->sum()));
    w.Key("buckets");
    w.BeginArray();
    for (size_t i = 0; i < histogram->num_buckets(); ++i) {
      w.BeginObject();
      w.Key("le");
      if (i < histogram->bounds().size()) {
        w.Raw(FormatDouble(histogram->bounds()[i]));
      } else {
        w.String("+inf");
      }
      w.Key("count");
      w.Number(histogram->bucket(i));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

MetricsSnapshot Registry::Snapshot() const {
  util::MutexLock lock(&mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.bounds = histogram->bounds();
    h.buckets.reserve(histogram->num_buckets());
    for (size_t i = 0; i < histogram->num_buckets(); ++i) {
      h.buckets.push_back(histogram->bucket(i));
    }
    h.count = histogram->count();
    h.sum = histogram->sum();
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

std::string Registry::ToTable() const {
  util::MutexLock lock(&mutex_);
  size_t width = 0;
  for (const auto& [name, counter] : counters_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, histogram] : histograms_) {
    width = std::max(width, name.size());
  }
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += name;
    out.append(width - name.size() + 2, ' ');
    out += std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out += name;
    out.append(width - name.size() + 2, ' ');
    out += "count=" + std::to_string(histogram->count()) +
           " sum=" + FormatDouble(histogram->sum());
    for (size_t i = 0; i < histogram->num_buckets(); ++i) {
      std::string le = i < histogram->bounds().size()
                           ? FormatDouble(histogram->bounds()[i])
                           : "+inf";
      out += " le" + le + "=" + std::to_string(histogram->bucket(i));
    }
    out += "\n";
  }
  return out;
}

void Registry::ResetAll() {
  util::MutexLock lock(&mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace xic::obs

#endif  // XIC_OBS_ENABLED
