#include "implication/derivation.h"

namespace xic {

bool ProofTable::Add(const Constraint& c, std::string rule,
                     std::vector<Constraint> premises) {
  auto [it, inserted] = facts_.try_emplace(
      c, Justification{std::move(rule), std::move(premises)});
  return inserted;
}

bool ProofTable::Contains(const Constraint& c) const {
  return facts_.count(c) > 0;
}

std::optional<std::string> ProofTable::Explain(const Constraint& c) const {
  if (!Contains(c)) return std::nullopt;
  std::string out;
  ExplainRec(c, 0, &out);
  return out;
}

void ProofTable::ExplainRec(const Constraint& c, int depth,
                            std::string* out) const {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  auto it = facts_.find(c);
  if (it == facts_.end()) {
    *out += c.ToString() + "  [missing]\n";
    return;
  }
  *out += c.ToString() + "  [" + it->second.rule + "]\n";
  if (depth > 32) {
    out->append(static_cast<size_t>(depth + 1) * 2, ' ');
    *out += "...\n";
    return;
  }
  for (const Constraint& premise : it->second.premises) {
    ExplainRec(premise, depth + 1, out);
  }
}

}  // namespace xic
