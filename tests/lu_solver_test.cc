#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "implication/lu_solver.h"

namespace xic {
namespace {

ConstraintSet Sigma(const std::string& text) {
  Result<ConstraintSet> sigma = ParseConstraintSet(text, Language::kLu);
  EXPECT_TRUE(sigma.ok()) << sigma.status();
  return sigma.value();
}

Constraint Fk(const std::string& a, const std::string& x,
              const std::string& b, const std::string& y) {
  return Constraint::UnaryForeignKey(a, x, b, y);
}

TEST(LuSolver, HypothesesAndKeyDerivation) {
  LuSolver solver(Sigma(R"(
    key entry.isbn
    key section.sid
    sfk ref.to -> entry.isbn
  )"));
  ASSERT_TRUE(solver.status().ok()) << solver.status();
  EXPECT_TRUE(solver.Implies(Constraint::UnaryKey("entry", "isbn")));
  EXPECT_TRUE(
      solver.Implies(Constraint::SetForeignKey("ref", "to", "entry", "isbn")));
  // SFK-K derives the target key even without the hypothesis.
  LuSolver solver2(Sigma("sfk ref.to -> entry.isbn"));
  EXPECT_TRUE(solver2.Implies(Constraint::UnaryKey("entry", "isbn")));
  // UFK-K.
  LuSolver solver3(Sigma("fk a.x -> b.y"));
  EXPECT_TRUE(solver3.Implies(Constraint::UnaryKey("b", "y")));
  EXPECT_FALSE(solver3.Implies(Constraint::UnaryKey("a", "x")));
}

TEST(LuSolver, TransitivityRules) {
  LuSolver solver(Sigma(R"(
    key b.y; key c.z
    fk a.x -> b.y
    fk b.y -> c.z
    sfk s.refs -> a.x
    key a.x
  )"));
  ASSERT_TRUE(solver.status().ok());
  // UFK-trans.
  EXPECT_TRUE(solver.Implies(Fk("a", "x", "c", "z")));
  // USFK-trans: s.refs <=S a.x, a.x <= b.y, b.y <= c.z.
  EXPECT_TRUE(solver.Implies(Constraint::SetForeignKey("s", "refs", "b", "y")));
  EXPECT_TRUE(solver.Implies(Constraint::SetForeignKey("s", "refs", "c", "z")));
  // But not backwards.
  EXPECT_FALSE(solver.Implies(Fk("c", "z", "a", "x")));
  EXPECT_FALSE(
      solver.Implies(Constraint::SetForeignKey("s", "refs", "s", "refs")));
}

TEST(LuSolver, UkFkAndReflexivity) {
  LuSolver solver(Sigma("key a.x"));
  // UK-FK: a key yields the reflexive foreign key.
  EXPECT_TRUE(solver.Implies(Fk("a", "x", "a", "x")));
  // FK-refl holds for any attribute (valid in every document).
  EXPECT_TRUE(solver.Implies(Fk("zzz", "w", "zzz", "w")));
}

TEST(LuSolver, ReflexiveForeignKeysDoNotImplyKeys) {
  // "fk a.x -> a.x" is the FK-refl tautology: every document satisfies
  // it, so hypothesizing it must not make a.x a key via UFK-K.
  LuSolver solver(Sigma("fk a.x -> a.x"));
  ASSERT_TRUE(solver.status().ok()) << solver.status();
  EXPECT_TRUE(solver.Implies(Fk("a", "x", "a", "x")));
  EXPECT_FALSE(solver.Implies(Constraint::UnaryKey("a", "x")));
  // Same exemption for a reflexive set-valued inclusion and SFK-K.
  LuSolver set_solver(Sigma("sfk b.r -> b.r"));
  ASSERT_TRUE(set_solver.status().ok()) << set_solver.status();
  EXPECT_TRUE(
      set_solver.Implies(Constraint::SetForeignKey("b", "r", "b", "r")));
  EXPECT_FALSE(set_solver.Implies(Constraint::UnaryKey("b", "r")));
}

TEST(LuSolver, DuplicateHypothesesAreIdempotent) {
  // Feeding every hypothesis twice must leave the solver in the same
  // state: same answers, same proofs, same finite-implication edges.
  ConstraintSet once = Sigma(R"(
    key t.a; key t.b
    key u.c; key u.d
    fk t.a -> u.c
    fk u.d -> t.b
    sfk s.refs -> t.a
  )");
  ConstraintSet twice = once;
  twice.constraints.insert(twice.constraints.end(), once.constraints.begin(),
                           once.constraints.end());
  LuSolver single(once);
  LuSolver doubled(twice);
  ASSERT_TRUE(single.status().ok());
  ASSERT_TRUE(doubled.status().ok());
  std::vector<Constraint> queries = {
      Fk("t", "a", "u", "c"), Fk("u", "c", "t", "a"),
      Fk("u", "d", "t", "b"), Fk("t", "b", "u", "d"),
      Constraint::UnaryKey("u", "c"), Constraint::UnaryKey("t", "a"),
      Constraint::SetForeignKey("s", "refs", "u", "c")};
  for (const Constraint& q : queries) {
    EXPECT_EQ(single.Implies(q), doubled.Implies(q)) << q.ToString();
    EXPECT_EQ(single.FinitelyImplies(q), doubled.FinitelyImplies(q))
        << q.ToString();
    for (bool finite : {false, true}) {
      EXPECT_EQ(single.Explain(q, finite), doubled.Explain(q, finite))
          << q.ToString() << " finite=" << finite;
    }
  }
}

TEST(LuSolver, InverseRules) {
  LuSolver solver(Sigma(R"(
    key a.k; key b.k2
    inverse a(k).r <-> b(k2).s
  )"));
  ASSERT_TRUE(solver.status().ok());
  // Symmetry.
  EXPECT_TRUE(solver.Implies(
      Constraint::InverseU("b", "k2", "s", "a", "k", "r")));
  // Inv-SFK: the typed set-valued foreign keys.
  EXPECT_TRUE(
      solver.Implies(Constraint::SetForeignKey("a", "r", "b", "k2")));
  EXPECT_TRUE(solver.Implies(Constraint::SetForeignKey("b", "s", "a", "k")));
  // And the keys.
  EXPECT_TRUE(solver.Implies(Constraint::UnaryKey("a", "k")));
  EXPECT_TRUE(solver.Implies(Constraint::UnaryKey("b", "k2")));
  // A different inverse is not implied.
  EXPECT_FALSE(solver.Implies(
      Constraint::InverseU("a", "k", "r", "b", "k2", "other")));
}

// The divergence family: implication and finite implication differ
// (Corollary 3.3). Two types, two keys each, a tight foreign-key cycle.
ConstraintSet DivergenceSigma() {
  return Sigma(R"(
    key t.a; key t.b
    key u.c; key u.d
    fk t.a -> u.c
    fk u.d -> t.b
  )");
}

TEST(LuSolver, FiniteImplicationDiffersFromUnrestricted) {
  LuSolver solver(DivergenceSigma());
  ASSERT_TRUE(solver.status().ok());
  Constraint reversed1 = Fk("u", "c", "t", "a");
  Constraint reversed2 = Fk("t", "b", "u", "d");
  // Not implied in the unrestricted sense (infinite models exist).
  EXPECT_FALSE(solver.Implies(reversed1));
  EXPECT_FALSE(solver.Implies(reversed2));
  // Finitely implied by the cycle rule: the cardinality chain
  // |ext(t)| <= |ext(u)| <= |ext(t)| collapses to equalities.
  EXPECT_TRUE(solver.FinitelyImplies(reversed1));
  EXPECT_TRUE(solver.FinitelyImplies(reversed2));
  // Composition across the reversed edge.
  EXPECT_TRUE(solver.FinitelyImplies(Fk("u", "c", "u", "c")));
}

TEST(LuSolver, CycleRuleNeedsKeySources) {
  // Same shape but t.a is NOT a key: no cardinality transfer, so no
  // reversal even finitely.
  LuSolver solver(Sigma(R"(
    key t.b
    key u.c; key u.d
    fk t.a -> u.c
    fk u.d -> t.b
  )"));
  ASSERT_TRUE(solver.status().ok());
  EXPECT_FALSE(solver.FinitelyImplies(Fk("u", "c", "t", "a")));
  EXPECT_FALSE(solver.FinitelyImplies(Fk("t", "b", "u", "d")));
}

TEST(LuSolver, DirectedCycleIsAlreadyTransitive) {
  // A directed pair-level cycle needs no cycle rule: transitivity alone
  // reverses everything, so implication and finite implication agree.
  LuSolver solver(Sigma(R"(
    key a.x; key b.x; key c.x
    fk a.x -> b.x
    fk b.x -> c.x
    fk c.x -> a.x
  )"));
  ASSERT_TRUE(solver.status().ok());
  EXPECT_TRUE(solver.Implies(Fk("b", "x", "a", "x")));
  EXPECT_TRUE(solver.FinitelyImplies(Fk("b", "x", "a", "x")));
}

TEST(LuSolver, LongerTightCyclesReverse) {
  // A length-3 type-level cycle through distinct attribute pairs: each
  // type's `in` attribute is reached, its `out` attribute departs, so no
  // pair-level directed cycle exists and only the cycle rule reverses.
  LuSolver solver(Sigma(R"(
    key a.in; key a.out
    key b.in; key b.out
    key c.in; key c.out
    fk a.out -> b.in
    fk b.out -> c.in
    fk c.out -> a.in
  )"));
  ASSERT_TRUE(solver.status().ok());
  for (const auto& [from_t, from_a, to_t, to_a] :
       std::vector<std::tuple<std::string, std::string, std::string,
                              std::string>>{{"b", "in", "a", "out"},
                                            {"c", "in", "b", "out"},
                                            {"a", "in", "c", "out"}}) {
    EXPECT_FALSE(solver.Implies(Fk(from_t, from_a, to_t, to_a)))
        << from_t << "." << from_a;
    EXPECT_TRUE(solver.FinitelyImplies(Fk(from_t, from_a, to_t, to_a)))
        << from_t << "." << from_a;
  }
  // Mixed chains across reversed edges compose finitely:
  // a.out <= b.in (hypothesis), b.in <= a.out reversed, so
  // c.out <= a.in and a.in has no forward edge; but
  // b.out <= c.in <= b.out reversal chains give b.out <= b.out trivially.
  EXPECT_TRUE(solver.FinitelyImplies(Fk("a", "out", "b", "in")));
}

TEST(LuSolver, SetForeignKeysComposeAcrossCycleReversals) {
  // USFK-trans through a C_k-reversed edge: s.r <=S u.c plus the tight
  // cycle makes u.c = t.a in finite documents, so s.r <=S t.a follows
  // finitely but not in the unrestricted sense.
  ConstraintSet sigma = DivergenceSigma();
  sigma.constraints.push_back(
      Constraint::SetForeignKey("s", "r", "u", "c"));
  LuSolver solver(sigma);
  ASSERT_TRUE(solver.status().ok());
  Constraint phi = Constraint::SetForeignKey("s", "r", "t", "a");
  EXPECT_FALSE(solver.Implies(phi));
  EXPECT_TRUE(solver.FinitelyImplies(phi));
  // But not into an unrelated key attribute of t.
  EXPECT_FALSE(solver.FinitelyImplies(
      Constraint::SetForeignKey("s", "r", "t", "b")));
}

TEST(LuSolver, ImplicationSubsetOfFiniteImplication) {
  // Everything implied is finitely implied (finite models are models).
  LuSolver solver(DivergenceSigma());
  std::vector<Constraint> queries = {
      Fk("t", "a", "u", "c"), Fk("u", "c", "t", "a"),
      Fk("t", "a", "t", "b"), Constraint::UnaryKey("u", "c"),
      Constraint::SetForeignKey("t", "a", "u", "c")};
  for (const Constraint& q : queries) {
    if (solver.Implies(q)) {
      EXPECT_TRUE(solver.FinitelyImplies(q)) << q.ToString();
    }
  }
}

TEST(LuSolver, PrimaryKeyRestriction) {
  // The divergence family violates the restriction (two keys per type).
  EXPECT_FALSE(LuSolver(DivergenceSigma()).CheckPrimaryKeyRestriction().ok());
  // A single-key-per-type set satisfies it.
  LuSolver primary(Sigma(R"(
    key t.a; key u.c
    fk t.a -> u.c
    fk u.c -> t.a
  )"));
  EXPECT_TRUE(primary.CheckPrimaryKeyRestriction().ok());
}

TEST(LuSolver, Theorem34PrimaryImplicationCoincides) {
  // Under the primary-key restriction a tight cycle uses each type's
  // unique key attribute, so reversals are already implied by
  // transitivity: implication == finite implication.
  LuSolver solver(Sigma(R"(
    key t.a; key u.c
    fk t.a -> u.c
    fk u.c -> t.a
  )"));
  ASSERT_TRUE(solver.CheckPrimaryKeyRestriction().ok());
  std::vector<Constraint> queries = {
      Fk("t", "a", "u", "c"), Fk("u", "c", "t", "a"),
      Fk("t", "a", "t", "a"), Fk("u", "c", "u", "c"),
      Constraint::UnaryKey("t", "a"), Constraint::UnaryKey("u", "c")};
  for (const Constraint& q : queries) {
    EXPECT_EQ(solver.Implies(q), solver.FinitelyImplies(q)) << q.ToString();
  }
}

TEST(LuSolver, ExplainChains) {
  LuSolver solver(Sigma(R"(
    key b.y; key c.z
    fk a.x -> b.y
    fk b.y -> c.z
  )"));
  std::optional<std::string> proof = solver.Explain(Fk("a", "x", "c", "z"));
  ASSERT_TRUE(proof.has_value());
  EXPECT_NE(proof->find("UFK-trans"), std::string::npos);
  EXPECT_NE(proof->find("a.x <= b.y"), std::string::npos);
  // Finite-only implications name the cycle rule.
  LuSolver diverging(DivergenceSigma());
  std::optional<std::string> finite_proof =
      diverging.Explain(Fk("u", "c", "t", "a"), /*finite=*/true);
  ASSERT_TRUE(finite_proof.has_value());
  EXPECT_NE(finite_proof->find("Ck"), std::string::npos);
  EXPECT_FALSE(diverging.Explain(Fk("u", "c", "t", "a")).has_value());
}

TEST(LuSolver, RejectsNonLuInput) {
  ConstraintSet bad;
  bad.language = Language::kLu;
  bad.constraints = {Constraint::Key("r", {"a", "b"})};
  EXPECT_FALSE(LuSolver(bad).status().ok());

  ConstraintSet id_in_lu;
  id_in_lu.language = Language::kLu;
  id_in_lu.constraints = {Constraint::Id("r", "a")};
  EXPECT_FALSE(LuSolver(id_in_lu).status().ok());

  ConstraintSet lid;
  lid.language = Language::kLid;
  EXPECT_FALSE(LuSolver(lid).status().ok());
}

TEST(LuSolver, AcceptsUnaryLForCorollary35) {
  // Corollary 3.5: relational unary keys + foreign keys use the same
  // machinery; the L language tag is accepted.
  ConstraintSet sigma;
  sigma.language = Language::kL;
  sigma.constraints = {Constraint::UnaryKey("r", "k"),
                       Constraint::UnaryForeignKey("s", "f", "r", "k")};
  LuSolver solver(sigma);
  ASSERT_TRUE(solver.status().ok());
  EXPECT_TRUE(solver.Implies(Constraint::UnaryKey("r", "k")));
  EXPECT_TRUE(solver.Implies(Fk("s", "f", "r", "k")));
}

TEST(LuSolver, UnknownNodesAnswerFalse) {
  LuSolver solver(Sigma("key a.x"));
  EXPECT_FALSE(solver.Implies(Constraint::UnaryKey("nowhere", "n")));
  EXPECT_FALSE(solver.Implies(Fk("a", "x", "nowhere", "n")));
  EXPECT_FALSE(
      solver.Implies(Constraint::SetForeignKey("a", "x", "nowhere", "n")));
}

}  // namespace
}  // namespace xic
