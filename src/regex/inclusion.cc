#include "regex/inclusion.h"

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "regex/glushkov.h"

namespace xic {

namespace {

// NFA states: -1 is the virtual start state, >= 0 are Glushkov positions.
constexpr int kStart = -1;

bool Accepting(const GlushkovAutomaton& nfa, int state) {
  if (state == kStart) return nfa.nullable();
  return nfa.last().count(state) > 0;
}

bool AnyAccepting(const GlushkovAutomaton& nfa, const std::set<int>& states) {
  for (int s : states) {
    if (Accepting(nfa, s)) return true;
  }
  return false;
}

// States reachable from `state` on `symbol`.
std::set<int> Move(const GlushkovAutomaton& nfa, int state,
                   const std::string& symbol) {
  const std::set<int>& candidates =
      state == kStart ? nfa.first()
                      : nfa.follow()[static_cast<size_t>(state)];
  std::set<int> out;
  for (int q : candidates) {
    if (nfa.symbols()[static_cast<size_t>(q)] == symbol) out.insert(q);
  }
  return out;
}

std::set<int> MoveSet(const GlushkovAutomaton& nfa,
                      const std::set<int>& states,
                      const std::string& symbol) {
  std::set<int> out;
  for (int s : states) {
    std::set<int> step = Move(nfa, s, symbol);
    out.insert(step.begin(), step.end());
  }
  return out;
}

}  // namespace

Result<bool> RegexLanguageIncludedBounded(const RegexPtr& a,
                                          const RegexPtr& b,
                                          const InclusionBounds& bounds) {
  XIC_RETURN_IF_ERROR(bounds.deadline.Check("language inclusion"));
  obs::ScopedSpan span("regex.inclusion", "regex");
  XIC_COUNTER_ADD("regex.inclusion.checks", 1);
  GlushkovAutomaton nfa_a(a);
  GlushkovAutomaton nfa_b(b);
  // Product search over (a-state, determinized b-set): a counterexample
  // word exists iff some reachable pair is (accepting in a, rejecting set
  // in b).
  using ProductState = std::pair<int, std::set<int>>;
  std::set<ProductState> visited;
  std::deque<ProductState> queue;
  ProductState start{kStart, {kStart}};
  visited.insert(start);
  queue.push_back(start);
  size_t expanded = 0;
  while (!queue.empty()) {
    XIC_RETURN_IF_ERROR(CheckLimit(visited.size(),
                                   bounds.max_product_states,
                                   "max_automaton_states",
                                   "inclusion product states"));
    if ((++expanded & 0xFF) == 0) {
      XIC_RETURN_IF_ERROR(bounds.deadline.Check("language inclusion"));
    }
    auto [pa, set_b] = queue.front();
    queue.pop_front();
    if (Accepting(nfa_a, pa) && !AnyAccepting(nfa_b, set_b)) {
      XIC_COUNTER_ADD("regex.inclusion.product_states", visited.size());
      span.AddInt("product_states", static_cast<int64_t>(visited.size()));
      return false;
    }
    // Outgoing symbols from pa.
    const std::set<int>& candidates =
        pa == kStart ? nfa_a.first()
                     : nfa_a.follow()[static_cast<size_t>(pa)];
    std::set<std::string> symbols;
    for (int q : candidates) {
      symbols.insert(nfa_a.symbols()[static_cast<size_t>(q)]);
    }
    for (const std::string& symbol : symbols) {
      std::set<int> next_b = MoveSet(nfa_b, set_b, symbol);
      for (int qa : Move(nfa_a, pa, symbol)) {
        ProductState next{qa, next_b};
        if (visited.insert(next).second) queue.push_back(next);
      }
    }
  }
  XIC_COUNTER_ADD("regex.inclusion.product_states", visited.size());
  span.AddInt("product_states", static_cast<int64_t>(visited.size()));
  return true;
}

Result<bool> RegexLanguageEquivalentBounded(const RegexPtr& a,
                                            const RegexPtr& b,
                                            const InclusionBounds& bounds) {
  XIC_ASSIGN_OR_RETURN(bool forward,
                       RegexLanguageIncludedBounded(a, b, bounds));
  if (!forward) return false;
  return RegexLanguageIncludedBounded(b, a, bounds);
}

bool RegexLanguageIncluded(const RegexPtr& a, const RegexPtr& b) {
  return RegexLanguageIncludedBounded(a, b, {}).value();
}

bool RegexLanguageEquivalent(const RegexPtr& a, const RegexPtr& b) {
  return RegexLanguageIncluded(a, b) && RegexLanguageIncluded(b, a);
}

ModelCompatibility CompareContentModels(const RegexPtr& from,
                                        const RegexPtr& to) {
  bool widens = RegexLanguageIncluded(from, to);
  bool narrows = RegexLanguageIncluded(to, from);
  if (widens && narrows) return ModelCompatibility::kEquivalent;
  if (widens) return ModelCompatibility::kWidening;
  if (narrows) return ModelCompatibility::kNarrowing;
  return ModelCompatibility::kIncomparable;
}

const char* ModelCompatibilityToString(ModelCompatibility c) {
  switch (c) {
    case ModelCompatibility::kEquivalent:
      return "equivalent";
    case ModelCompatibility::kWidening:
      return "widening";
    case ModelCompatibility::kNarrowing:
      return "narrowing";
    case ModelCompatibility::kIncomparable:
      return "incomparable";
  }
  return "?";
}

}  // namespace xic
