// DTD structures (Definition 2.2): S = (E, P, R, kind, r).
//
//   * E    -- finite set of element types,
//   * P    -- element type -> content-model regular expression,
//   * R    -- partial map (type, attribute) -> S | S* (single/set valued),
//   * kind -- partial map (type, attribute) -> ID | IDREF, with at most one
//             single-valued ID attribute per type,
//   * r    -- root element type.
//
// The builder API validates the definition's side conditions eagerly; a
// final Validate() checks global coherence (P defined for every type,
// content models mention only declared types, root declared).

#ifndef XIC_MODEL_DTD_STRUCTURE_H_
#define XIC_MODEL_DTD_STRUCTURE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "regex/content_model.h"
#include "util/status.h"

namespace xic {

/// R(tau, l): whether an attribute holds one atomic value or a set.
enum class AttrCardinality {
  kSingle,  // S
  kSet,     // S*
};

/// kind(tau, l) in {ID, IDREF} when defined.
enum class AttrKind {
  kId,
  kIdref,
};

class DtdStructure {
 public:
  DtdStructure() = default;

  /// Declares an element type with its content model. Re-declaring a type
  /// fails.
  Status AddElement(const std::string& name, RegexPtr content);

  /// Declares an element type whose content model is given in DTD surface
  /// syntax (e.g. "(title, publisher)", "EMPTY", "(#PCDATA)").
  Status AddElement(const std::string& name, const std::string& content);

  /// Declares attribute `attr` on `element` with cardinality `card`.
  Status AddAttribute(const std::string& element, const std::string& attr,
                      AttrCardinality card);

  /// Sets kind(element, attr). Requires R(element, attr) defined; an ID
  /// attribute must be single-valued and unique for its element type.
  Status SetKind(const std::string& element, const std::string& attr,
                 AttrKind kind);

  /// Sets the root element type r.
  Status SetRoot(const std::string& element);

  /// Checks global coherence; call after construction is complete.
  Status Validate() const;

  // -- Accessors -----------------------------------------------------------

  bool HasElement(const std::string& name) const;
  /// All declared element types, sorted.
  std::vector<std::string> Elements() const;
  const std::string& root() const { return root_; }

  /// P(element); fails if undeclared.
  Result<RegexPtr> ContentModel(const std::string& element) const;

  /// Att(tau): declared attribute names of `element`, sorted.
  std::vector<std::string> Attributes(const std::string& element) const;

  /// True iff R(element, attr) is defined.
  bool HasAttribute(const std::string& element,
                    const std::string& attr) const;

  /// R(element, attr); fails if undefined. Takes views so the parser's
  /// zero-copy tokens can query without materializing strings.
  Result<AttrCardinality> Cardinality(std::string_view element,
                                      std::string_view attr) const;

  bool IsSingleValued(std::string_view element, std::string_view attr) const;
  bool IsSetValued(std::string_view element, std::string_view attr) const;

  /// kind(element, attr) if defined.
  std::optional<AttrKind> Kind(const std::string& element,
                               const std::string& attr) const;

  /// The name of the (unique) ID attribute of `element`, if any -- the
  /// paper's `tau.id` notation resolves to this attribute.
  std::optional<std::string> IdAttribute(const std::string& element) const;

  /// True iff `sub` is a *unique sub-element* of `element` (Section 3.4):
  /// `sub` occurs exactly once in every word of L(P(element)).
  bool IsUniqueSubElement(const std::string& element,
                          const std::string& sub) const;

  /// Total size |P| used in the paper's complexity bounds: sum of content
  /// model sizes plus attribute declarations.
  size_t DefinitionSize() const;

  /// DTD surface rendering of the structure (<!ELEMENT ...>/<!ATTLIST ...>).
  std::string ToString() const;

 private:
  struct AttrInfo {
    AttrCardinality card;
    std::optional<AttrKind> kind;
  };
  struct ElementInfo {
    RegexPtr content;
    // std::less<> enables heterogeneous (string_view) lookup.
    std::map<std::string, AttrInfo, std::less<>> attrs;
    std::optional<std::string> id_attr;
  };

  const ElementInfo* Find(std::string_view element) const;

  std::map<std::string, ElementInfo, std::less<>> elements_;
  std::string root_;
};

}  // namespace xic

#endif  // XIC_MODEL_DTD_STRUCTURE_H_
