// Delta-debugging reducer for corpus entries.
//
// Given an entry that reproduces a mismatch, ReduceEntry shrinks it while
// the predicate keeps holding (classic ddmin over lists, plus
// domain-specific passes), iterating passes to a fixpoint:
//
//   1. drop update operations,
//   2. drop constraints from the embedded constraint block,
//   3. drop document subtrees and text children,
//   4. drop attributes and shorten attribute / text values.
//
// The default predicate replays the entry through its oracle and keeps a
// candidate iff the mismatch still reproduces; tests substitute synthetic
// predicates. Reduction is deterministic and bounded by
// ReduceOptions::max_evaluations predicate calls.

#ifndef XIC_FUZZING_REDUCER_H_
#define XIC_FUZZING_REDUCER_H_

#include <cstddef>
#include <functional>

#include "fuzzing/corpus.h"

namespace xic::fuzz {

/// Returns true iff the candidate still exhibits the failure being
/// minimized. Must be deterministic.
using ReducePredicate = std::function<bool(const CorpusEntry&)>;

struct ReduceOptions {
  /// Cap on predicate evaluations across all passes.
  size_t max_evaluations = 400;
};

/// Shrinks `entry` under `predicate`. The input entry must itself satisfy
/// the predicate; the result always does.
CorpusEntry ReduceEntry(const CorpusEntry& entry,
                        const ReducePredicate& predicate,
                        const ReduceOptions& options = {});

/// Shrinks with the default predicate: ReplayEntry reproduces a mismatch.
CorpusEntry ReduceEntry(const CorpusEntry& entry,
                        const ReduceOptions& options = {});

}  // namespace xic::fuzz

#endif  // XIC_FUZZING_REDUCER_H_
