// Glushkov position automaton for content-model regular expressions.
//
// Used to (a) match a children label sequence against P(tau) during
// structural validation (Definition 2.4), and (b) decide 1-unambiguity
// (the XML "deterministic content model" requirement), which we expose as
// an extension check. Matching runs in O(|word| * |positions|) worst case
// and O(|word|) for deterministic models.

#ifndef XIC_REGEX_GLUSHKOV_H_
#define XIC_REGEX_GLUSHKOV_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "regex/content_model.h"

namespace xic {

/// Why a content model fails the 1-unambiguity requirement: two distinct
/// positions (occurrences, numbered left to right from 0) that carry the
/// same symbol compete -- after the same prefix, the matcher cannot
/// decide which occurrence consumed the next label. `via == -1` means
/// both positions can begin a match (clash in First); otherwise both can
/// follow position `via` (clash in Follow(via)).
struct AmbiguityWitness {
  std::string symbol;
  int pos1 = 0;
  int pos2 = 0;
  int via = -1;
};

class GlushkovAutomaton {
 public:
  /// Builds the position automaton of `re`. `re` must be non-null.
  explicit GlushkovAutomaton(const RegexPtr& re);

  /// True iff the label sequence is in L(re).
  bool Matches(const std::vector<std::string>& word) const;

  // -- Alphabet-id interface (the hot path) ---------------------------------
  //
  // The expression's distinct symbols get dense ids 0..alphabet_size()-1.
  // Callers that match many words against one automaton (the structural
  // validator matches every vertex of every document) translate their own
  // interned labels to alphabet ids once, then match over ids: no string
  // hashing or comparison per step. For expressions with at most 64
  // positions (every real-world content model), MatchesIds runs the NFA
  // simulation on uint64 position bitmasks -- a step is two AND/OR passes
  // over set bits instead of std::set insertions.

  /// Id of `symbol` in this automaton's alphabet, or -1 if the symbol
  /// does not occur in the expression (then no word containing it
  /// matches).
  int FindAlphabetId(std::string_view symbol) const {
    auto it = alphabet_index_.find(symbol);
    return it == alphabet_index_.end() ? -1 : it->second;
  }

  /// Distinct symbols, indexed by alphabet id.
  const std::vector<std::string>& alphabet() const { return alphabet_; }

  /// True iff the word (as alphabet ids; -1 for foreign symbols) matches.
  bool MatchesIds(const int* word, size_t len) const;

  // -- Incremental runs (streaming validation) ------------------------------
  //
  // A RunState holds the live NFA state for one word fed label-by-label,
  // so a streaming caller can step a vertex's children as their start tags
  // arrive instead of buffering the whole child word. Semantics match
  // MatchesIds exactly: StartRun();  for each label Step(&run, id);
  // Accepts(run) == MatchesIds(word, len).

  struct RunState {
    bool started = false;  // false until the first Step (empty word so far)
    bool dead = false;     // no position set can match any continuation
    uint64_t mask = 0;     // current positions (mask path)
    std::set<int> states;  // current positions (set fallback, > 64 pos)
  };

  /// A fresh run with no labels consumed.
  RunState StartRun() const { return RunState{}; }

  /// Consumes one label (alphabet id; -1 for foreign symbols).
  void Step(RunState* run, int alpha) const;

  /// True iff the labels consumed so far form a word in L(re).
  bool Accepts(const RunState& run) const;

  /// True iff the content model is 1-unambiguous (deterministic per the
  /// XML spec): no two distinct positions with the same symbol are both in
  /// First, or both in Follow(p) for some position p.
  bool IsOneUnambiguous() const;

  /// The first clash violating 1-unambiguity (First before Follow sets,
  /// lowest positions first), or nullopt for deterministic models.
  std::optional<AmbiguityWitness> OneUnambiguityWitness() const;

  /// Number of positions (symbol occurrences) in the expression.
  size_t num_positions() const { return symbols_.size(); }

  // NFA internals, exposed for language-level algorithms (inclusion.h).
  const std::vector<std::string>& symbols() const { return symbols_; }
  const std::vector<std::set<int>>& follow() const { return follow_; }
  const std::set<int>& first() const { return first_; }
  const std::set<int>& last() const { return last_; }
  bool nullable() const { return nullable_; }

 private:
  struct BuildResult {
    bool nullable = false;
    std::set<int> first;
    std::set<int> last;
  };

  BuildResult Build(const Regex& re);
  void BuildAlphabet();

  std::vector<std::string> symbols_;   // position -> symbol
  std::vector<std::set<int>> follow_;  // position -> follow set
  std::set<int> first_;
  std::set<int> last_;
  bool nullable_ = false;

  // Alphabet-id tables (BuildAlphabet).
  std::map<std::string, int, std::less<>> alphabet_index_;
  std::vector<std::string> alphabet_;  // alphabet id -> symbol
  std::vector<int> pos_alpha_;         // position -> alphabet id

  // Bitmask tables, populated iff num_positions() <= 64 (use_masks_).
  bool use_masks_ = false;
  uint64_t first_mask_ = 0;
  uint64_t last_mask_ = 0;
  std::vector<uint64_t> follow_masks_;  // position -> follow bitmask
  std::vector<uint64_t> alpha_masks_;   // alphabet id -> positions bitmask
};

}  // namespace xic

#endif  // XIC_REGEX_GLUSHKOV_H_
