// Hierarchical spans: who called what, for how long, with which
// workload attributes (automaton states, solver steps, retry events).
//
// Recording model:
//   * The process has one global Tracer. Nothing is recorded until a
//     session is started (Tracer::Start, or the ScopedTraceSession
//     helper); outside a session a ScopedSpan costs one relaxed atomic
//     load and nothing else.
//   * During a session each thread appends to its own buffer; a span's
//     parent is whatever span the same thread currently has open, so
//     the per-thread records form properly nested trees (a pool worker's
//     long-lived "engine.worker" span becomes the parent of every
//     document span it executes).
//   * Collect() merges the per-thread buffers into one snapshot with
//     rebased parent indices and per-thread names. Exporters live in
//     obs/export.h: Chrome trace_event JSON (about:tracing / Perfetto)
//     and a deterministic tree rendering for tests.
//
// Determinism: wall-clock values and thread ids vary run to run, but a
// span's name, category, attribute keys, nesting, and its `seq` tag
// (set by instrumentation to a scheduling-independent ordinal, e.g. the
// batch document index) do not. DeterministicTreeString() in export.h
// keeps only those, which is how the tests pin span trees across 1/4/16
// worker threads.
//
// Thread-safety: each buffer has its own mutex, uncontended in steady
// state (only its owning thread and the merging Collect() take it), so
// the whole layer is TSan-clean without per-span allocation tricks.

#ifndef XIC_OBS_TRACE_H_
#define XIC_OBS_TRACE_H_

#include "obs/enabled.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

namespace xic::obs {

/// One typed span attribute (rendered into Chrome-trace "args").
struct SpanAttr {
  enum class Kind { kInt, kDouble, kString };
  std::string key;
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;
};

/// One closed (or still-open, end_ns == 0) span.
struct SpanRecord {
  std::string name;
  std::string cat;
  uint64_t start_ns = 0;  // relative to the session start
  uint64_t end_ns = 0;
  uint32_t tid = 0;       // index into TraceSnapshot::thread_names
  int32_t parent = -1;    // index into the snapshot's span vector
  int64_t seq = -1;       // deterministic ordinal, -1 when untagged
  std::vector<SpanAttr> attrs;
};

/// A merged copy of every thread's spans, self-contained for export.
struct TraceSnapshot {
  std::vector<SpanRecord> spans;
  std::vector<std::string> thread_names;  // indexed by SpanRecord::tid
};

#if XIC_OBS_ENABLED

/// The global span recorder. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& Global();

  /// Begins a session: clears prior buffers and enables recording.
  void Start() XIC_EXCLUDES(mutex_);
  /// Ends the session; spans still open keep recording their end times
  /// into their (retained) buffers until destroyed.
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Merges every thread buffer into one snapshot. Call after the
  /// instrumented work has finished (e.g. after the batch Run returned
  /// and its pool was destroyed).
  TraceSnapshot Collect() const XIC_EXCLUDES(mutex_);

  /// Names the calling thread in subsequent snapshots ("main",
  /// "pool-3"). Cheap; safe to call whether or not a session is active.
  static void SetCurrentThreadName(std::string name);

 private:
  friend class ScopedSpan;
  struct ThreadBuffer {
    /// A leaf lock, uncontended in steady state: only the owning thread
    /// and the merging Collect() take it, and never while the Tracer's
    /// registry mutex_ is held.
    util::Mutex mutex;
    std::string name XIC_GUARDED_BY(mutex);
    std::vector<SpanRecord> spans XIC_GUARDED_BY(mutex);
    /// Stack of open span indices.
    std::vector<int32_t> open XIC_GUARDED_BY(mutex);
  };

  /// The calling thread's buffer for the current session (registering
  /// it on first use), or nullptr when disabled.
  std::shared_ptr<ThreadBuffer> CurrentBuffer() XIC_EXCLUDES(mutex_);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> epoch_{0};
  mutable util::Mutex mutex_;  // guards the buffer registry
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ XIC_GUARDED_BY(mutex_);
};

/// RAII span: records [construction, destruction) on the calling
/// thread, nested under the thread's currently open span. Inactive (all
/// methods no-ops) when no session is running.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view cat = "xic");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return buffer_ != nullptr; }

  /// Tags the span with a scheduling-independent ordinal (document
  /// index, rule index) used for deterministic ordering in exports.
  void SetSeq(int64_t seq);
  void AddInt(std::string_view key, int64_t value);
  void AddDouble(std::string_view key, double value);
  void AddString(std::string_view key, std::string_view value);

 private:
  std::shared_ptr<Tracer::ThreadBuffer> buffer_;  // null when inactive
  int32_t index_ = -1;
};

/// RAII trace session for CLI entry points and tests.
class ScopedTraceSession {
 public:
  ScopedTraceSession() { Tracer::Global().Start(); }
  ~ScopedTraceSession() { Tracer::Global().Stop(); }
  ScopedTraceSession(const ScopedTraceSession&) = delete;
  ScopedTraceSession& operator=(const ScopedTraceSession&) = delete;
};

/// Request-scoped trace id: installs `id` as the calling thread's
/// ambient trace id for this scope (saving and restoring any outer one,
/// so nested scopes behave). Every ScopedSpan opened on the thread while
/// an id is installed is tagged with a "trace_id" string attribute,
/// which is what makes one request's spans joinable across the serve
/// pipeline -- the dispatcher installs the id once at the top of
/// Handle() and the compile / run / session spans underneath pick it up
/// without any parameter threading. Work fanned out to other threads
/// re-installs explicitly (RunOverrides::trace_id on the batch engine
/// path).
class ScopedTraceId {
 public:
  explicit ScopedTraceId(std::string_view id);
  ~ScopedTraceId();
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

  /// The calling thread's installed trace id, or empty.
  static const std::string& Current();

 private:
  std::string previous_;
};

#else  // !XIC_OBS_ENABLED

class Tracer {
 public:
  static Tracer& Global() {
    static Tracer tracer;
    return tracer;
  }
  void Start() {}
  void Stop() {}
  bool enabled() const { return false; }
  TraceSnapshot Collect() const { return {}; }
  static void SetCurrentThreadName(std::string) {}
};

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view, std::string_view = "xic") {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  bool active() const { return false; }
  void SetSeq(int64_t) {}
  void AddInt(std::string_view, int64_t) {}
  void AddDouble(std::string_view, double) {}
  void AddString(std::string_view, std::string_view) {}
};

class ScopedTraceSession {
 public:
  ScopedTraceSession() = default;
  ScopedTraceSession(const ScopedTraceSession&) = delete;
  ScopedTraceSession& operator=(const ScopedTraceSession&) = delete;
};

// Span tagging is a probe and compiles away; the trace-id protocol
// behavior itself (generation and response echo) lives in the serve
// layer and survives OFF builds.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(std::string_view) {}
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;
  static const std::string& Current() {
    static const std::string empty;
    return empty;
  }
};

#endif  // XIC_OBS_ENABLED

}  // namespace xic::obs

#endif  // XIC_OBS_TRACE_H_
