// Experiment B5: incremental constraint maintenance vs. full re-checking
// under an update stream ("constraints maintained by the system", the
// paper's conclusion). The incremental checker pays O(affected values)
// per update; the batch baseline pays O(document) per update.

#include <benchmark/benchmark.h>

#include <random>
#include <string>

#include "constraints/checker.h"
#include "constraints/constraint_parser.h"
#include "constraints/incremental.h"

namespace {

using namespace xic;

DtdStructure MakeDtd() {
  DtdStructure dtd;
  (void)dtd.AddElement("db", "(person*, dept*)");
  (void)dtd.AddElement("person", "EMPTY");
  (void)dtd.AddElement("dept", "EMPTY");
  (void)dtd.AddAttribute("person", "oid", AttrCardinality::kSingle);
  (void)dtd.SetKind("person", "oid", AttrKind::kId);
  (void)dtd.AddAttribute("person", "name", AttrCardinality::kSingle);
  (void)dtd.AddAttribute("person", "dept", AttrCardinality::kSingle);
  (void)dtd.AddAttribute("dept", "oid", AttrCardinality::kSingle);
  (void)dtd.SetKind("dept", "oid", AttrKind::kId);
  (void)dtd.AddAttribute("dept", "dname", AttrCardinality::kSingle);
  (void)dtd.SetRoot("db");
  return dtd;
}

ConstraintSet MakeSigma() {
  return ParseConstraintSet(R"(
    key person.name
    key dept.dname
    fk person.dept -> dept.dname
    id person.oid
    id dept.oid
  )", Language::kLid).value();
}

// Builds a consistent document with n persons / n/10 depts, returns the
// checker primed with it.
struct World {
  DtdStructure dtd = MakeDtd();
  ConstraintSet sigma = MakeSigma();
  IncrementalChecker inc{dtd, sigma};
  std::vector<VertexId> persons;
  std::vector<VertexId> depts;
};

void Populate(World& w, int n) {
  VertexId root = w.inc.AddElement(kInvalidVertex, "db").value();
  int depts = n / 10 + 1;
  for (int i = 0; i < depts; ++i) {
    VertexId d = w.inc.AddElement(root, "dept").value();
    (void)w.inc.SetAttribute(d, "oid", "d" + std::to_string(i));
    (void)w.inc.SetAttribute(d, "dname", "D" + std::to_string(i));
    w.depts.push_back(d);
  }
  for (int i = 0; i < n; ++i) {
    VertexId p = w.inc.AddElement(root, "person").value();
    (void)w.inc.SetAttribute(p, "oid", "p" + std::to_string(i));
    (void)w.inc.SetAttribute(p, "name", "N" + std::to_string(i));
    (void)w.inc.SetAttribute(p, "dept", "D" + std::to_string(i % depts));
    w.persons.push_back(p);
  }
}

void BM_IncrementalUpdates(benchmark::State& state) {
  World w;
  Populate(w, static_cast<int>(state.range(0)));
  std::mt19937 rng(42);
  int i = 0;
  for (auto _ : state) {
    VertexId p = w.persons[rng() % w.persons.size()];
    (void)w.inc.SetAttribute(p, "name", "N" + std::to_string(i++));
    benchmark::DoNotOptimize(w.inc.consistent());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalUpdates)
    ->RangeMultiplier(8)
    ->Range(64, 32768)
    ->Complexity(benchmark::o1);

void BM_BatchRecheckPerUpdate(benchmark::State& state) {
  World w;
  Populate(w, static_cast<int>(state.range(0)));
  ConstraintChecker batch(w.dtd, w.sigma);
  std::mt19937 rng(42);
  int i = 0;
  for (auto _ : state) {
    VertexId p = w.persons[rng() % w.persons.size()];
    (void)w.inc.SetAttribute(p, "name", "N" + std::to_string(i++));
    benchmark::DoNotOptimize(batch.Check(w.inc.tree()).ok());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BatchRecheckPerUpdate)
    ->RangeMultiplier(8)
    ->Range(64, 4096)
    ->Complexity(benchmark::oN);

void BM_IncrementalDocumentBuild(benchmark::State& state) {
  for (auto _ : state) {
    World w;
    Populate(w, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(w.inc.consistent());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalDocumentBuild)
    ->RangeMultiplier(8)
    ->Range(64, 8192)
    ->Complexity(benchmark::oNLogN);

}  // namespace
