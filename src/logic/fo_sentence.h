// First-order sentences over the FoStructure vocabulary, with a
// variable-count analysis identifying the FO^k fragment a sentence lives
// in (Section 1's expressibility discussion).
//
// The paper argues unary key constraints are not FO^2-expressible by
// exhibiting FO^2-equivalent structures that disagree on the constraint.
// This module complements the EF-game certificate with direct sentence
// evaluation: concrete FO^2 sentences (degree properties, counting up to
// two) agree on the Figure 1 pair, while the key constraint -- written
// out as the 3-variable sentence
//   forall x, y (exists z (l(x,z) and l(y,z)) -> x = y)
// -- separates them.

#ifndef XIC_LOGIC_FO_SENTENCE_H_
#define XIC_LOGIC_FO_SENTENCE_H_

#include <memory>
#include <set>
#include <string>

#include "logic/structure.h"

namespace xic {

enum class FoKind {
  kTrue,
  kAtom,    // r(x, y) for a binary relation r
  kUnary,   // p(x)
  kEquals,  // x = y
  kNot,
  kAnd,
  kOr,
  kExists,  // exists v . phi
  kForall,  // forall v . phi
};

class FoFormula;
using FoPtr = std::shared_ptr<const FoFormula>;

class FoFormula {
 public:
  static FoPtr True();
  static FoPtr Atom(std::string relation, std::string x, std::string y);
  static FoPtr Unary(std::string relation, std::string x);
  static FoPtr Equals(std::string x, std::string y);
  static FoPtr Not(FoPtr inner);
  static FoPtr And(FoPtr left, FoPtr right);
  static FoPtr Or(FoPtr left, FoPtr right);
  static FoPtr Implies(FoPtr left, FoPtr right);  // sugar: !l || r
  static FoPtr Exists(std::string var, FoPtr inner);
  static FoPtr Forall(std::string var, FoPtr inner);

  FoKind kind() const { return kind_; }
  const std::string& relation() const { return relation_; }
  const std::string& var1() const { return var1_; }
  const std::string& var2() const { return var2_; }
  const FoPtr& left() const { return left_; }
  const FoPtr& right() const { return right_; }

  /// Number of distinct variable *names* used -- the FO^k fragment.
  /// (Variable reuse under re-quantification counts once, matching the
  /// definition of FO^2 in the paper.)
  size_t VariableCount() const;

  /// True iff the sentence uses at most two distinct variable names.
  bool IsFo2() const { return VariableCount() <= 2; }

  /// Evaluates a *sentence* (no free variables) on `structure`.
  bool Evaluate(const FoStructure& structure) const;

  std::string ToString() const;

 private:
  FoFormula(FoKind kind, std::string relation, std::string v1,
            std::string v2, FoPtr left, FoPtr right)
      : kind_(kind),
        relation_(std::move(relation)),
        var1_(std::move(v1)),
        var2_(std::move(v2)),
        left_(std::move(left)),
        right_(std::move(right)) {}

  void CollectVariables(std::set<std::string>* out) const;
  bool Eval(const FoStructure& structure,
            std::map<std::string, size_t>* binding) const;

  FoKind kind_;
  std::string relation_;
  std::string var1_, var2_;  // atom/equality operands, or quantified var
  FoPtr left_, right_;
};

/// The paper's unary key constraint as a first-order sentence (uses three
/// variables; IsFo2() is false):
///   forall x, y (exists z (l(x,z) and l(y,z)) -> x = y).
FoPtr UnaryKeySentence(const std::string& relation);

/// "At least `k` elements satisfy phi(x)" using k variables...
/// FO^2 can only express k <= 2; this builder uses min(k, needed) fresh
/// variables and is provided for the counting-threshold demonstrations.
FoPtr AtLeastTwo(const std::string& var1, const std::string& var2,
                 FoPtr phi_of_var1, FoPtr phi_of_var2);

}  // namespace xic

#endif  // XIC_LOGIC_FO_SENTENCE_H_
