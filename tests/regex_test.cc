#include <gtest/gtest.h>

#include "regex/content_model.h"
#include "regex/glushkov.h"

namespace xic {
namespace {

RegexPtr MustParse(const std::string& text) {
  Result<RegexPtr> r = ParseContentModel(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

TEST(ContentModelParser, BookDtdModels) {
  // The content models of the paper's book DTD (Section 1).
  EXPECT_EQ(MustParse("(entry, author*, section*, ref)")->ToString(),
            "entry, author*, section*, ref");
  EXPECT_EQ(MustParse("(title, publisher)")->ToString(), "title, publisher");
  EXPECT_EQ(MustParse("(title, (text|section)*)")->ToString(),
            "title, (text | section)*");
  EXPECT_EQ(MustParse("EMPTY")->kind(), RegexKind::kEpsilon);
}

TEST(ContentModelParser, PcdataIsStringSymbol) {
  RegexPtr re = MustParse("(#PCDATA)");
  EXPECT_EQ(re->kind(), RegexKind::kSymbol);
  EXPECT_EQ(re->symbol(), kStringSymbol);
}

TEST(ContentModelParser, MixedContent) {
  RegexPtr re = MustParse("(#PCDATA | b | i)*");
  EXPECT_EQ(re->kind(), RegexKind::kStar);
  std::set<std::string> symbols = re->Symbols();
  EXPECT_EQ(symbols.size(), 3u);
  EXPECT_TRUE(symbols.count(kStringSymbol));
}

TEST(ContentModelParser, PlusAndOptionalDesugar) {
  // a+ == a, a*; b? == b | EMPTY.
  RegexPtr plus = MustParse("(a+)");
  EXPECT_EQ(plus->kind(), RegexKind::kConcat);
  RegexPtr opt = MustParse("(b?)");
  EXPECT_EQ(opt->kind(), RegexKind::kUnion);
  EXPECT_TRUE(opt->Nullable());
}

TEST(ContentModelParser, Errors) {
  EXPECT_FALSE(ParseContentModel("(a,").ok());
  EXPECT_FALSE(ParseContentModel("a)").ok());
  EXPECT_FALSE(ParseContentModel("(a | )").ok());
  EXPECT_FALSE(ParseContentModel("").ok());
  EXPECT_FALSE(ParseContentModel("EMPTY extra").ok());
  EXPECT_EQ(ParseContentModel("ANY").status().code(),
            StatusCode::kNotSupported);
}

TEST(RegexAnalysis, Nullable) {
  EXPECT_TRUE(MustParse("EMPTY")->Nullable());
  EXPECT_TRUE(MustParse("(a*)")->Nullable());
  EXPECT_TRUE(MustParse("(a?, b*)")->Nullable());
  EXPECT_FALSE(MustParse("(a, b*)")->Nullable());
  EXPECT_FALSE(MustParse("(a | b)")->Nullable());
}

TEST(RegexAnalysis, OccurrenceBounds) {
  RegexPtr re = MustParse("(title, (text|section)*)");
  Regex::Bounds title = re->OccurrenceBounds("title");
  EXPECT_EQ(title.min, 1);
  EXPECT_EQ(title.max, 1);
  Regex::Bounds section = re->OccurrenceBounds("section");
  EXPECT_EQ(section.min, 0);
  EXPECT_EQ(section.max, Regex::kUnbounded);
  Regex::Bounds absent = re->OccurrenceBounds("nothere");
  EXPECT_EQ(absent.min, 0);
  EXPECT_EQ(absent.max, 0);
}

TEST(RegexAnalysis, UniqueSymbolIsTheSection34Condition) {
  // person: (name, address) -- name is a unique sub-element, so it may
  // serve as a key (Section 3.4).
  RegexPtr person = MustParse("(name, address)");
  EXPECT_TRUE(person->IsUniqueSymbol("name"));
  EXPECT_TRUE(person->IsUniqueSymbol("address"));
  // In (a | b) neither a nor b occurs in *every* word.
  RegexPtr choice = MustParse("(a | b)");
  EXPECT_FALSE(choice->IsUniqueSymbol("a"));
  // a occurs twice in (a, a).
  RegexPtr twice = MustParse("(a, a)");
  EXPECT_FALSE(twice->IsUniqueSymbol("a"));
  // In (a, (a | b)) a occurs once or twice.
  EXPECT_FALSE(MustParse("(a, (a | b))")->IsUniqueSymbol("a"));
  // In (a, b?) b is optional.
  EXPECT_FALSE(MustParse("(a, b?)")->IsUniqueSymbol("b"));
  // In ((a,b) | (b,a)) both are unique.
  RegexPtr sym = MustParse("((a,b) | (b,a))");
  EXPECT_TRUE(sym->IsUniqueSymbol("a"));
  EXPECT_TRUE(sym->IsUniqueSymbol("b"));
}

std::vector<std::string> Word(std::initializer_list<const char*> labels) {
  return std::vector<std::string>(labels.begin(), labels.end());
}

TEST(Glushkov, MatchesBookModel) {
  GlushkovAutomaton nfa(MustParse("(entry, author*, section*, ref)"));
  EXPECT_TRUE(nfa.Matches(Word({"entry", "ref"})));
  EXPECT_TRUE(nfa.Matches(Word({"entry", "author", "ref"})));
  EXPECT_TRUE(
      nfa.Matches(Word({"entry", "author", "author", "section", "ref"})));
  EXPECT_FALSE(nfa.Matches(Word({"entry"})));
  EXPECT_FALSE(nfa.Matches(Word({"ref", "entry"})));
  EXPECT_FALSE(nfa.Matches(Word({"entry", "section", "author", "ref"})));
  EXPECT_FALSE(nfa.Matches({}));
}

TEST(Glushkov, MatchesEpsilonAndStar) {
  GlushkovAutomaton empty(Regex::Epsilon());
  EXPECT_TRUE(empty.Matches({}));
  EXPECT_FALSE(empty.Matches(Word({"a"})));

  GlushkovAutomaton star(MustParse("(a*)"));
  EXPECT_TRUE(star.Matches({}));
  EXPECT_TRUE(star.Matches(Word({"a", "a", "a"})));
  EXPECT_FALSE(star.Matches(Word({"a", "b"})));
}

TEST(Glushkov, MatchesRecursiveSectionModel) {
  GlushkovAutomaton nfa(MustParse("(title, (text|section)*)"));
  EXPECT_TRUE(nfa.Matches(Word({"title"})));
  EXPECT_TRUE(nfa.Matches(Word({"title", "text", "section", "text"})));
  EXPECT_FALSE(nfa.Matches(Word({"text"})));
}

TEST(Glushkov, OneUnambiguity) {
  // (a, b) | (a, c) is the classic 1-ambiguous model.
  EXPECT_FALSE(GlushkovAutomaton(MustParse("((a, b) | (a, c))"))
                   .IsOneUnambiguous());
  // The equivalent (a, (b | c)) is deterministic.
  EXPECT_TRUE(
      GlushkovAutomaton(MustParse("(a, (b | c))")).IsOneUnambiguous());
  // Book model is deterministic.
  EXPECT_TRUE(GlushkovAutomaton(MustParse("(entry, author*, section*, ref)"))
                  .IsOneUnambiguous());
  // (a*, a) is ambiguous (follow clash).
  EXPECT_FALSE(GlushkovAutomaton(MustParse("(a*, a)")).IsOneUnambiguous());
}

TEST(Glushkov, OneUnambiguityEdgeCases) {
  // A nested optional adds no second position: still deterministic.
  GlushkovAutomaton nested(MustParse("((a?)?)"));
  EXPECT_TRUE(nested.IsOneUnambiguous());
  EXPECT_TRUE(nested.Matches({}));
  EXPECT_TRUE(nested.Matches(Word({"a"})));
  EXPECT_FALSE(nested.Matches(Word({"a", "a"})));
  // (a | a): both positions carry the same symbol in First.
  EXPECT_FALSE(GlushkovAutomaton(MustParse("((a | a))")).IsOneUnambiguous());
  // (a?, a): skipping the optional makes the first input 'a' ambiguous.
  EXPECT_FALSE(GlushkovAutomaton(MustParse("(a?, a)")).IsOneUnambiguous());
  // (a+, a): desugars to (a, a*), a with a three-way follow clash.
  EXPECT_FALSE(GlushkovAutomaton(MustParse("(a+, a)")).IsOneUnambiguous());
  // ((a | b)*, a): after reading 'a' the star may loop or exit into 'a'.
  EXPECT_FALSE(
      GlushkovAutomaton(MustParse("((a | b)*, a)")).IsOneUnambiguous());
  // ((a | b)*, c) exits on a distinct symbol: deterministic.
  EXPECT_TRUE(
      GlushkovAutomaton(MustParse("((a | b)*, c)")).IsOneUnambiguous());
  // Same-symbol positions are fine when no state reaches both.
  EXPECT_TRUE(GlushkovAutomaton(MustParse("(a, b, a)")).IsOneUnambiguous());
}

TEST(Glushkov, EmptyContentModel) {
  // EMPTY has zero positions, matches only the empty word, and is
  // trivially deterministic.
  GlushkovAutomaton nfa(MustParse("EMPTY"));
  EXPECT_EQ(nfa.num_positions(), 0u);
  EXPECT_TRUE(nfa.IsOneUnambiguous());
  EXPECT_TRUE(nfa.Matches({}));
  EXPECT_FALSE(nfa.Matches(Word({"a"})));
}

TEST(Glushkov, PositionCount) {
  EXPECT_EQ(GlushkovAutomaton(MustParse("(a, b, a)")).num_positions(), 3u);
  EXPECT_EQ(GlushkovAutomaton(Regex::Epsilon()).num_positions(), 0u);
}

TEST(RegexBuilders, SequenceAndChoice) {
  EXPECT_EQ(Regex::Sequence({})->kind(), RegexKind::kEpsilon);
  RegexPtr one = Regex::Sequence({Regex::Symbol("a")});
  EXPECT_EQ(one->ToString(), "a");
  RegexPtr choice =
      Regex::Choice({Regex::Symbol("a"), Regex::Symbol("b")});
  EXPECT_EQ(choice->ToString(), "a | b");
}

}  // namespace
}  // namespace xic
