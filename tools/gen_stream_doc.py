#!/usr/bin/env python3
"""Generate a large self-describing XML document for streaming tests.

Writes a catalog/book document of roughly SIZE_MB MiB with an embedded
DTD^C (key book.isbn, sfk ref.to -> book.isbn). Every key is unique and
every ref resolves, so `xicheck` exits 0 -- unless --violations N asks
for N dangling refs spread through the document (then the constraint
checker must report exactly N violations).

The document streams to disk in bounded chunks, so generating a
multi-GiB input needs a few MiB of RAM -- the generator practices what
the streaming validator preaches. Used by CI's stream-smoke step and the
README's RSS-vs-size table.

Usage: gen_stream_doc.py SIZE_MB OUT.xml [--violations N]
"""

import argparse
import sys

PROLOG = """<?xml version="1.0"?>
<!DOCTYPE catalog [
<!ELEMENT catalog (book*)>
<!ELEMENT book (title, author*, ref)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT ref EMPTY>
<!ATTLIST book isbn CDATA #REQUIRED>
<!ATTLIST ref to NMTOKENS #REQUIRED>
<!-- xic:constraints
key book.isbn
sfk ref.to -> book.isbn
-->
]>
"""


def row(n, dangle=False):
    isbn = f"i{n}"
    # Row 1 references itself; later rows reference their predecessor.
    to = "nowhere" if dangle else f"i{max(n - 1, 1)}"
    return (
        f'<book isbn="{isbn}"><title>Streaming validation row {n}</title>'
        "<author>First Author</author><author>Second Author</author>"
        f'<ref to="{to}"/></book>'
    )


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("size_mb", type=int)
    parser.add_argument("out")
    parser.add_argument("--violations", type=int, default=0)
    args = parser.parse_args()
    target = args.size_mb << 20
    written = 0
    n = 0
    # Spread the requested violations evenly through the body.
    stride = 0
    if args.violations > 0:
        approx_rows = max(target // len(row(10**9)), args.violations + 1)
        stride = max(approx_rows // (args.violations + 1), 1)
    injected = 0
    with open(args.out, "w", encoding="ascii") as f:
        f.write(PROLOG)
        written = len(PROLOG)
        f.write("<catalog>")
        buffer = []
        buffered = 0
        while written + buffered < target:
            n += 1
            bad = (
                stride > 0
                and injected < args.violations
                and n % stride == 0
            )
            if bad:
                injected += 1
            buffer.append(row(n, dangle=bad))
            buffered += len(buffer[-1])
            if buffered >= 4 << 20:
                f.write("".join(buffer))
                written += buffered
                buffer = []
                buffered = 0
        f.write("".join(buffer))
        f.write("</catalog>\n")
    if args.violations > 0 and injected < args.violations:
        print(f"only injected {injected}/{args.violations}", file=sys.stderr)
        return 1
    print(f"{args.out}: {n} rows, ~{(written + buffered) >> 20} MiB, "
          f"{injected} expected violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
