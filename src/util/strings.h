// Small string utilities shared across xic modules.

#ifndef XIC_UTIL_STRINGS_H_
#define XIC_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace xic {

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True for XML `S` whitespace (production [3]): #x20 #x9 #xD #xA.
/// Deliberately narrower than std::isspace, which also accepts \f/\v --
/// characters that are not even valid XML Chars -- and whose answer can
/// shift with the C locale.
constexpr bool IsXmlSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// True for XML NameStartChar restricted to the ASCII subset we support
/// (letters, '_', ':').
bool IsNameStartChar(char c);

/// True for XML NameChar restricted to ASCII (NameStartChar, digits, '-',
/// '.').
bool IsNameChar(char c);

/// True if `name` is a well-formed (ASCII-subset) XML name.
bool IsXmlName(std::string_view name);

/// Thread-safe strerror(3): renders `err` (an errno value) without the
/// shared static buffer that makes std::strerror unusable from
/// concurrent server threads (clang-tidy concurrency-mt-unsafe).
std::string ErrnoMessage(int err);

}  // namespace xic

#endif  // XIC_UTIL_STRINGS_H_
