#include "model/doc_generator.h"

#include <algorithm>
#include <limits>

namespace xic {

namespace {

constexpr size_t kInfinite = std::numeric_limits<size_t>::max();

// Minimal element-nesting cost of deriving a word of L(re), given the
// current estimates for element types. Epsilon-derivable parts cost 0;
// an element symbol costs its own min depth.
size_t RegexCost(const Regex& re,
                 const std::map<std::string, size_t>& depths) {
  switch (re.kind()) {
    case RegexKind::kEpsilon:
      return 0;
    case RegexKind::kSymbol: {
      if (re.symbol() == kStringSymbol) return 0;
      auto it = depths.find(re.symbol());
      return it == depths.end() ? kInfinite : it->second;
    }
    case RegexKind::kUnion:
      return std::min(RegexCost(*re.left(), depths),
                      RegexCost(*re.right(), depths));
    case RegexKind::kConcat: {
      size_t l = RegexCost(*re.left(), depths);
      size_t r = RegexCost(*re.right(), depths);
      return (l == kInfinite || r == kInfinite) ? kInfinite
                                                : std::max(l, r);
    }
    case RegexKind::kStar:
      return 0;  // zero repetitions
  }
  return kInfinite;
}

}  // namespace

DocGenerator::DocGenerator(const DtdStructure& dtd,
                           DocGeneratorOptions options)
    : dtd_(dtd), options_(options), rng_(options.seed) {
  status_ = BuildMinDepths();
}

Status DocGenerator::BuildMinDepths() {
  XIC_RETURN_IF_ERROR(dtd_.Validate());
  // Fixpoint: D(e) = 1 + cost(P(e)) with unknown types costing infinity.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::string& element : dtd_.Elements()) {
      Result<RegexPtr> model = dtd_.ContentModel(element);
      if (!model.ok()) return model.status();
      size_t cost = RegexCost(*model.value(), min_depth_);
      if (cost == kInfinite) continue;
      size_t depth = 1 + cost;
      auto it = min_depth_.find(element);
      if (it == min_depth_.end() || it->second > depth) {
        min_depth_[element] = depth;
        changed = true;
      }
    }
  }
  if (min_depth_.count(dtd_.root()) == 0) {
    return Status::InvalidArgument(
        "the root type has no finite derivation (every branch recurses)");
  }
  return Status::OK();
}

std::optional<size_t> DocGenerator::MinDepth(
    const std::string& element) const {
  auto it = min_depth_.find(element);
  if (it == min_depth_.end()) return std::nullopt;
  return it->second;
}

std::string DocGenerator::RandomValue() {
  return "v" + std::to_string(rng_() % options_.value_pool);
}

Status DocGenerator::SampleWord(const RegexPtr& re, size_t budget,
                                std::vector<std::string>* out) {
  switch (re->kind()) {
    case RegexKind::kEpsilon:
      return Status::OK();
    case RegexKind::kSymbol:
      if (re->symbol() != kStringSymbol) {
        auto it = min_depth_.find(re->symbol());
        if (it == min_depth_.end() || it->second > budget) {
          return Status::InvalidArgument(
              "depth budget exhausted deriving " + re->symbol());
        }
      }
      out->push_back(re->symbol());
      return Status::OK();
    case RegexKind::kUnion: {
      size_t l = RegexCost(*re->left(), min_depth_);
      size_t r = RegexCost(*re->right(), min_depth_);
      bool left_ok = l <= budget;
      bool right_ok = r <= budget;
      if (!left_ok && !right_ok) {
        return Status::InvalidArgument("depth budget exhausted in a union");
      }
      bool pick_left =
          left_ok && (!right_ok || rng_() % 2 == 0);
      return SampleWord(pick_left ? re->left() : re->right(), budget, out);
    }
    case RegexKind::kConcat:
      XIC_RETURN_IF_ERROR(SampleWord(re->left(), budget, out));
      return SampleWord(re->right(), budget, out);
    case RegexKind::kStar: {
      if (RegexCost(*re->inner(), min_depth_) > budget ||
          options_.star_mean <= 0.0) {
        return Status::OK();  // zero repetitions fit any budget
      }
      std::geometric_distribution<size_t> repeats(
          1.0 / (1.0 + options_.star_mean));
      size_t k = repeats(rng_);
      for (size_t i = 0; i < k; ++i) {
        XIC_RETURN_IF_ERROR(SampleWord(re->inner(), budget, out));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown regex kind");
}

Status DocGenerator::BuildElement(DataTree* tree, VertexId vertex,
                                  const std::string& element, size_t depth) {
  // Attributes.
  for (const std::string& attr : dtd_.Attributes(element)) {
    if (dtd_.IsSetValued(element, attr)) {
      AttrValue values;
      size_t n = rng_() % 3;
      for (size_t i = 0; i < n; ++i) values.insert(RandomValue());
      tree->SetAttribute(vertex, attr, std::move(values));
    } else {
      tree->SetAttribute(vertex, attr, RandomValue());
    }
  }
  // Children.
  if (depth >= options_.max_depth) {
    return Status::InvalidArgument("depth budget exhausted");
  }
  XIC_ASSIGN_OR_RETURN(RegexPtr model, dtd_.ContentModel(element));
  std::vector<std::string> word;
  XIC_RETURN_IF_ERROR(
      SampleWord(model, options_.max_depth - depth - 1, &word));
  for (const std::string& symbol : word) {
    if (symbol == kStringSymbol) {
      tree->AddChildText(vertex, RandomValue());
      continue;
    }
    VertexId child = tree->AddVertex(symbol);
    XIC_RETURN_IF_ERROR(tree->AddChildVertex(vertex, child));
    XIC_RETURN_IF_ERROR(BuildElement(tree, child, symbol, depth + 1));
  }
  return Status::OK();
}

Result<DataTree> DocGenerator::Generate() {
  XIC_RETURN_IF_ERROR(status_);
  if (MinDepth(dtd_.root()).value_or(kInfinite) > options_.max_depth) {
    return Status::InvalidArgument("max_depth below the root's minimal "
                                   "derivation depth");
  }
  DataTree tree;
  VertexId root = tree.AddVertex(dtd_.root());
  XIC_RETURN_IF_ERROR(BuildElement(&tree, root, dtd_.root(), 0));
  return tree;
}

}  // namespace xic
