#include "oo/odl_schema.h"

#include <algorithm>

namespace xic {

const OdlClass* OdlSchema::Find(const std::string& name) const {
  for (const OdlClass& c : classes_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

Status OdlSchema::AddClass(OdlClass cls) {
  if (Find(cls.name) != nullptr) {
    return Status::InvalidArgument("class redeclared: " + cls.name);
  }
  classes_.push_back(std::move(cls));
  return Status::OK();
}

Status OdlSchema::Validate() const {
  for (const OdlClass& cls : classes_) {
    for (const std::string& key : cls.keys) {
      if (std::find(cls.attributes.begin(), cls.attributes.end(), key) ==
          cls.attributes.end()) {
        return Status::InvalidArgument("key " + key +
                                       " is not an attribute of " + cls.name);
      }
    }
    for (const OdlRelationship& rel : cls.relationships) {
      const OdlClass* target = Find(rel.target_class);
      if (target == nullptr) {
        return Status::InvalidArgument("relationship " + cls.name + "." +
                                       rel.name +
                                       " targets unknown class " +
                                       rel.target_class);
      }
      if (!rel.inverse.has_value()) continue;
      const OdlRelationship* partner = nullptr;
      for (const OdlRelationship& r : target->relationships) {
        if (r.name == *rel.inverse) partner = &r;
      }
      if (partner == nullptr || partner->target_class != cls.name ||
          partner->inverse != rel.name) {
        return Status::InvalidArgument(
            "inverse declaration of " + cls.name + "." + rel.name +
            " is not mutual with " + rel.target_class + "::" + *rel.inverse);
      }
    }
  }
  return Status::OK();
}

}  // namespace xic
