// Structured diagnostics for the static analysis of (DTD, constraint set)
// pairs.
//
// A Diagnostic is one finding of one lint rule: a stable code (XICnnn), a
// severity, a human-readable message, an optional source location (the
// index of the offending constraint plus line/column when the set came
// from text, or the element type for grammar findings), and optional
// notes (e.g. the derivation showing why a constraint is redundant).
//
// Code blocks, by hundreds:
//   XIC0xx  reference / kind errors (names absent from the DTD, ATTLIST
//           kinds contradicting the constraint semantics, shape errors,
//           duplicates)
//   XIC1xx  grammar hygiene (unreachable / non-productive element types,
//           content models failing the XML 1-unambiguity requirement)
//   XIC2xx  constraint-set analysis via the solvers (inconsistency,
//           redundancy, key subsumption, missing foreign-key targets)
//   XIC3xx  finite-vs-unrestricted divergence (portability)
//
// The rendering is deterministic: reports with the same input are
// byte-identical across runs (no pointers, timestamps or hashes), which
// makes the JSON output safe to golden-test and diff in CI.

#ifndef XIC_ANALYSIS_DIAGNOSTIC_H_
#define XIC_ANALYSIS_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace xic {

enum class DiagSeverity {
  kError,    // the pair is broken: no document can be meaningfully checked
  kWarning,  // suspicious but checkable (redundancy, ambiguity, ...)
  kInfo,     // informational
};

const char* DiagSeverityToString(DiagSeverity severity);

/// Where a diagnostic points. All fields are optional; unset fields are
/// omitted from the rendering.
struct DiagLocation {
  /// Index into sigma.constraints, or -1 when the finding is not about a
  /// particular constraint.
  int constraint_index = -1;
  /// 1-based position in the constraint source text; 0 when unknown.
  size_t line = 0;
  size_t column = 0;
  /// The element type a grammar finding is about; empty otherwise.
  std::string element;

  friend bool operator==(const DiagLocation&, const DiagLocation&) = default;
};

struct Diagnostic {
  std::string code;      // stable, e.g. "XIC202"
  std::string rule;      // registry name of the emitting rule
  DiagSeverity severity = DiagSeverity::kWarning;
  std::string message;
  DiagLocation location;
  /// Supporting detail, one entry per line: derivations, chains, the
  /// offending content-model positions, ...
  std::vector<std::string> notes;

  /// "error[XIC202] redundancy: ..." with the location folded in.
  std::string ToString() const;
};

/// The outcome of one Analyzer run. [[nodiscard]]: a dropped report is
/// a lint run whose findings were silently thrown away.
struct [[nodiscard]] AnalysisReport {
  /// Infrastructure outcome: OK when every rule ran to completion;
  /// kDeadlineExceeded / kResourceExhausted when analysis was cut short
  /// (the diagnostics gathered so far are kept but incomplete).
  Status status;
  /// Findings, deterministically ordered (by constraint index, element,
  /// code, message).
  std::vector<Diagnostic> diagnostics;
  /// Rules that ran, in execution order (recorded for the JSON header).
  std::vector<std::string> rules_run;
  /// Language the analyzed set was declared in (rendered in the header).
  std::string language;

  size_t CountSeverity(DiagSeverity severity) const;
  size_t errors() const { return CountSeverity(DiagSeverity::kError); }
  size_t warnings() const { return CountSeverity(DiagSeverity::kWarning); }
  bool clean() const { return status.ok() && diagnostics.empty(); }

  /// xiclint's contract: 0 clean, 1 warnings only, 2 any error, 3
  /// infrastructure failure (status not OK).
  int ExitCode() const;

  /// Human-readable multi-line rendering (one diagnostic per line plus
  /// indented notes, then a summary line).
  std::string ToString() const;

  /// Machine-readable rendering; stable field order, 2-space indent,
  /// byte-identical for identical inputs.
  std::string ToJson() const;
};

/// Escapes `text` for inclusion in a JSON string literal (quotes not
/// included). Exposed for tests.
std::string JsonEscape(const std::string& text);

}  // namespace xic

#endif  // XIC_ANALYSIS_DIAGNOSTIC_H_
