#include "regex/glushkov.h"

#include <bit>

#include "obs/obs.h"

namespace xic {

GlushkovAutomaton::GlushkovAutomaton(const RegexPtr& re) {
  BuildResult root = Build(*re);
  nullable_ = root.nullable;
  first_ = std::move(root.first);
  last_ = std::move(root.last);
  BuildAlphabet();
  XIC_COUNTER_ADD("regex.glushkov.builds", 1);
  XIC_COUNTER_ADD("regex.glushkov.states", symbols_.size());
  XIC_COUNTER_MAX("regex.glushkov.max_states", symbols_.size());
  XIC_HISTOGRAM_OBSERVE("regex.glushkov.states_per_build", symbols_.size(),
                        {4.0, 16.0, 64.0, 256.0, 1024.0});
}

GlushkovAutomaton::BuildResult GlushkovAutomaton::Build(const Regex& re) {
  switch (re.kind()) {
    case RegexKind::kEpsilon: {
      BuildResult out;
      out.nullable = true;
      return out;
    }
    case RegexKind::kSymbol: {
      int pos = static_cast<int>(symbols_.size());
      symbols_.push_back(re.symbol());
      follow_.emplace_back();
      BuildResult out;
      out.nullable = false;
      out.first = {pos};
      out.last = {pos};
      return out;
    }
    case RegexKind::kUnion: {
      BuildResult l = Build(*re.left());
      BuildResult r = Build(*re.right());
      BuildResult out;
      out.nullable = l.nullable || r.nullable;
      out.first = std::move(l.first);
      out.first.insert(r.first.begin(), r.first.end());
      out.last = std::move(l.last);
      out.last.insert(r.last.begin(), r.last.end());
      return out;
    }
    case RegexKind::kConcat: {
      BuildResult l = Build(*re.left());
      BuildResult r = Build(*re.right());
      for (int p : l.last) {
        follow_[p].insert(r.first.begin(), r.first.end());
      }
      BuildResult out;
      out.nullable = l.nullable && r.nullable;
      out.first = l.first;
      if (l.nullable) out.first.insert(r.first.begin(), r.first.end());
      out.last = r.last;
      if (r.nullable) out.last.insert(l.last.begin(), l.last.end());
      return out;
    }
    case RegexKind::kStar: {
      BuildResult in = Build(*re.inner());
      for (int p : in.last) {
        follow_[p].insert(in.first.begin(), in.first.end());
      }
      BuildResult out;
      out.nullable = true;
      out.first = std::move(in.first);
      out.last = std::move(in.last);
      return out;
    }
  }
  return BuildResult{};
}

void GlushkovAutomaton::BuildAlphabet() {
  pos_alpha_.resize(symbols_.size());
  for (size_t p = 0; p < symbols_.size(); ++p) {
    auto [it, inserted] =
        alphabet_index_.emplace(symbols_[p], static_cast<int>(alphabet_.size()));
    if (inserted) alphabet_.push_back(symbols_[p]);
    pos_alpha_[p] = it->second;
  }
  use_masks_ = symbols_.size() <= 64;
  if (!use_masks_) return;
  alpha_masks_.assign(alphabet_.size(), 0);
  for (size_t p = 0; p < symbols_.size(); ++p) {
    alpha_masks_[pos_alpha_[p]] |= uint64_t{1} << p;
  }
  for (int p : first_) first_mask_ |= uint64_t{1} << p;
  for (int p : last_) last_mask_ |= uint64_t{1} << p;
  follow_masks_.assign(symbols_.size(), 0);
  for (size_t p = 0; p < symbols_.size(); ++p) {
    for (int q : follow_[p]) follow_masks_[p] |= uint64_t{1} << q;
  }
}

bool GlushkovAutomaton::Matches(const std::vector<std::string>& word) const {
  if (word.empty()) return nullable_;
  std::vector<int> ids;
  ids.reserve(word.size());
  for (const std::string& label : word) ids.push_back(FindAlphabetId(label));
  return MatchesIds(ids.data(), ids.size());
}

void GlushkovAutomaton::Step(RunState* run, int alpha) const {
  if (run->dead) return;
  if (alpha < 0) {  // foreign symbol: no transition
    // started must flip too: a dead run that consumed input is not the
    // empty word, so Accepts may not fall back to nullable().
    run->started = true;
    run->dead = true;
    return;
  }
  if (use_masks_) {
    uint64_t current;
    if (!run->started) {
      current = first_mask_ & alpha_masks_[alpha];
    } else {
      uint64_t reachable = 0;
      for (uint64_t bits = run->mask; bits != 0; bits &= bits - 1) {
        reachable |= follow_masks_[std::countr_zero(bits)];
      }
      current = reachable & alpha_masks_[alpha];
    }
    run->mask = current;
    run->started = true;
    if (current == 0) run->dead = true;
    return;
  }
  std::set<int> next;
  if (!run->started) {
    for (int p : first_) {
      if (pos_alpha_[p] == alpha) next.insert(p);
    }
  } else {
    for (int p : run->states) {
      for (int q : follow_[p]) {
        if (pos_alpha_[q] == alpha) next.insert(q);
      }
    }
  }
  run->states = std::move(next);
  run->started = true;
  if (run->states.empty()) run->dead = true;
}

bool GlushkovAutomaton::Accepts(const RunState& run) const {
  if (!run.started) return nullable_;
  if (run.dead) return false;
  if (use_masks_) return (run.mask & last_mask_) != 0;
  for (int p : run.states) {
    if (last_.count(p) > 0) return true;
  }
  return false;
}

bool GlushkovAutomaton::MatchesIds(const int* word, size_t len) const {
  if (len == 0) return nullable_;
  if (use_masks_) {
    // Bitmask NFA simulation: `current` is the set of positions whose
    // symbol matched the most recent input label.
    uint64_t current =
        word[0] < 0 ? 0 : first_mask_ & alpha_masks_[word[0]];
    for (size_t i = 1; i < len; ++i) {
      if (current == 0) return false;
      if (word[i] < 0) return false;  // foreign symbol: no transition
      uint64_t reachable = 0;
      for (uint64_t bits = current; bits != 0; bits &= bits - 1) {
        reachable |= follow_masks_[std::countr_zero(bits)];
      }
      current = reachable & alpha_masks_[word[i]];
    }
    return (current & last_mask_) != 0;
  }
  // Set-based fallback for huge expressions (> 64 positions); still
  // integer compares via pos_alpha_, never strings.
  std::set<int> current;
  for (int p : first_) {
    if (pos_alpha_[p] == word[0]) current.insert(p);
  }
  for (size_t i = 1; i < len; ++i) {
    if (current.empty()) return false;
    std::set<int> next;
    for (int p : current) {
      for (int q : follow_[p]) {
        if (pos_alpha_[q] == word[i]) next.insert(q);
      }
    }
    current = std::move(next);
  }
  for (int p : current) {
    if (last_.count(p) > 0) return true;
  }
  return false;
}

namespace {

// The lowest-numbered pair of distinct positions in `set` carrying the
// same symbol, if any.
std::optional<std::pair<int, int>> FindSymbolClash(
    const std::set<int>& set, const std::vector<std::string>& symbols) {
  std::map<std::string, int> seen;
  for (int p : set) {
    auto [it, inserted] = seen.emplace(symbols[p], p);
    if (!inserted) return std::make_pair(it->second, p);
  }
  return std::nullopt;
}

}  // namespace

bool GlushkovAutomaton::IsOneUnambiguous() const {
  return !OneUnambiguityWitness().has_value();
}

std::optional<AmbiguityWitness> GlushkovAutomaton::OneUnambiguityWitness()
    const {
  auto witness = [this](const std::pair<int, int>& clash, int via) {
    AmbiguityWitness w;
    w.symbol = symbols_[clash.first];
    w.pos1 = clash.first;
    w.pos2 = clash.second;
    w.via = via;
    return w;
  };
  if (auto clash = FindSymbolClash(first_, symbols_); clash.has_value()) {
    return witness(*clash, -1);
  }
  for (size_t p = 0; p < follow_.size(); ++p) {
    if (auto clash = FindSymbolClash(follow_[p], symbols_);
        clash.has_value()) {
      return witness(*clash, static_cast<int>(p));
    }
  }
  return std::nullopt;
}

}  // namespace xic
