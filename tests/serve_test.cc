// xicd's serving stack, bottom-up: wire protocol framing, the hot-plan
// cache (single-flight, negative TTL, LRU churn), the dispatcher
// (byte-identical cache hits, deterministic load-shed under injected
// faults at 1/4/16 threads, retry-with-backoff, session reaping), and
// the socket server (end-to-end exchange, graceful drain losing zero
// queued responses, explicit queue-overflow shedding).
//
// Everything except the ServerTest fixtures is socket-free: the
// dispatcher is exercised in-process so the determinism assertions are
// about the serving logic, not kernel scheduling.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/thread_pool.h"
#include "serve/dispatcher.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session_registry.h"
#include "xml/dtdc_io.h"

namespace xic::serve {
namespace {

// ---------------------------------------------------------------------------
// Fixtures

constexpr char kSchema[] = R"(<?xml version="1.0"?>
<!DOCTYPE bib [
<!ELEMENT bib (entry*)>
<!ELEMENT entry EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED>
<!-- xic:constraints
key entry.isbn
-->
]>
<bib/>
)";

constexpr char kValidDoc[] = R"(<?xml version="1.0"?>
<!DOCTYPE bib [
<!ELEMENT bib (entry*)>
<!ELEMENT entry EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED>
<!-- xic:constraints
key entry.isbn
-->
]>
<bib><entry isbn="1"/><entry isbn="2"/></bib>
)";

constexpr char kViolatingDoc[] = R"(<?xml version="1.0"?>
<!DOCTYPE bib [
<!ELEMENT bib (entry*)>
<!ELEMENT entry EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED>
<!-- xic:constraints
key entry.isbn
-->
]>
<bib><entry isbn="1"/><entry isbn="1"/></bib>
)";

Request MakeRequest(const std::string& verb, const std::string& body,
                    std::map<std::string, std::string> headers = {}) {
  Request request;
  request.verb = verb;
  request.body = body;
  request.body_length = body.size();
  request.headers = std::move(headers);
  return request;
}

PlanPtr MakeDummyPlan(const std::string& key, size_t bytes) {
  auto plan = std::make_shared<CompiledPlan>();
  plan->key = key;
  plan->bytes = bytes;
  return plan;
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ProtocolTest, RequestRoundtrip) {
  Request request = MakeRequest("validate", "<bib/>",
                                {{"id", "r1"}, {"schema", "abc"}});
  std::string wire = FormatRequest(request);
  size_t eol = wire.find('\n');
  ASSERT_NE(eol, std::string::npos);
  Result<Request> parsed = ParseRequestLine(wire.substr(0, eol));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().verb, "validate");
  EXPECT_EQ(parsed.value().body_length, 6u);
  EXPECT_EQ(parsed.value().id(), "r1");
  EXPECT_EQ(parsed.value().header("schema"), "abc");
  EXPECT_EQ(parsed.value().header("missing", "fb"), "fb");
  EXPECT_EQ(wire.substr(eol + 1), "<bib/>");
}

TEST(ProtocolTest, RejectsMalformedFrames) {
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("http/1 get 0").ok());
  EXPECT_FALSE(ParseRequestLine("xic/1").ok());
  EXPECT_FALSE(ParseRequestLine("xic/1 ping").ok());
  EXPECT_FALSE(ParseRequestLine("xic/1 ping abc").ok());
  EXPECT_FALSE(ParseRequestLine("xic/1 ping -1").ok());
  EXPECT_FALSE(ParseRequestLine("xic/1 ping 0 noequals").ok());
  EXPECT_FALSE(
      ParseRequestLine("xic/1 ping 99999999999999999999999").ok());
}

TEST(ProtocolTest, WireCodesRoundtrip) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kParseError, StatusCode::kValidationError,
        StatusCode::kNotSupported, StatusCode::kResourceExhausted,
        StatusCode::kDeadlineExceeded, StatusCode::kUnavailable,
        StatusCode::kInternal}) {
    EXPECT_EQ(ParseWireCode(WireCode(code)), code);
  }
}

TEST(ProtocolTest, ResponseRoundtripAndHeaderSanitizing) {
  Response response = ErrorResponse(
      Status::InvalidArgument("bad value = x\nsecond line"));
  std::string wire = FormatResponse(response);
  size_t eol = wire.find('\n');
  Result<ResponseHead> head = ParseResponseLine(wire.substr(0, eol));
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(head.value().code, StatusCode::kInvalidArgument);
  // The message was sanitized into a single header token: no spaces,
  // '=' or control characters that would corrupt the frame.
  const std::string& error = head.value().headers.at("error");
  EXPECT_EQ(error.find(' '), std::string::npos);
  EXPECT_EQ(error.find('\n'), std::string::npos);
  EXPECT_NE(error.find("bad"), std::string::npos);
}

// ---------------------------------------------------------------------------
// PlanCache

TEST(PlanCacheTest, SingleFlightCompilesOnce) {
  PlanCache cache;
  std::atomic<int> compiles{0};
  auto compiler = [&](const std::string& key) -> Result<PlanPtr> {
    compiles.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return MakeDummyPlan(key, 100);
  };
  std::vector<std::thread> threads;
  std::vector<PlanPtr> plans(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      Result<PlanPtr> plan = cache.GetOrCompile("k", compiler);
      ASSERT_TRUE(plan.ok());
      plans[i] = plan.value();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(compiles.load(), 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(plans[i], plans[0]);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_GE(cache.stats().single_flight_waits, 1u);
}

TEST(PlanCacheTest, NegativeCacheServesFailureUntilTtlExpires) {
  PlanCache::Config config;
  config.negative_ttl_ms = 100;
  PlanCache cache(config);
  std::atomic<int> compiles{0};
  auto poison = [&](const std::string&) -> Result<PlanPtr> {
    compiles.fetch_add(1);
    return Status::ParseError("poison DTD");
  };
  // First call compiles and fails; the failure is cached.
  bool hit = true;
  Result<PlanPtr> first = cache.GetOrCompile("bad", poison, &hit);
  EXPECT_FALSE(first.ok());
  EXPECT_FALSE(hit);
  // Hammering within the TTL never re-compiles (no stampede).
  for (int i = 0; i < 20; ++i) {
    Result<PlanPtr> again = cache.GetOrCompile("bad", poison, &hit);
    EXPECT_FALSE(again.ok());
    EXPECT_EQ(again.status().code(), StatusCode::kParseError);
    EXPECT_TRUE(hit);
  }
  EXPECT_EQ(compiles.load(), 1);
  EXPECT_EQ(cache.stats().negative_hits, 20u);
  // After the TTL the schema gets a fresh chance.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE(cache.GetOrCompile("bad", poison, &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(compiles.load(), 2);
}

TEST(PlanCacheTest, LruEvictionRespectsByteBudget) {
  PlanCache::Config config;
  config.max_bytes = 100;
  PlanCache cache(config);
  auto sized = [](size_t bytes) {
    return [bytes](const std::string& key) -> Result<PlanPtr> {
      return MakeDummyPlan(key, bytes);
    };
  };
  ASSERT_TRUE(cache.GetOrCompile("a", sized(60)).ok());
  EXPECT_NE(cache.Lookup("a"), nullptr);
  // Inserting b crosses the budget; a (LRU) is evicted.
  ASSERT_TRUE(cache.GetOrCompile("b", sized(60)).ok());
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("b"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.bytes(), 100u);
  // An oversized plan is still admitted (usable until the next insert).
  ASSERT_TRUE(cache.GetOrCompile("big", sized(500)).ok());
  EXPECT_NE(cache.Lookup("big"), nullptr);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(PlanCacheTest, LookupTouchesLruOrder) {
  PlanCache::Config config;
  config.max_bytes = 120;
  PlanCache cache(config);
  auto sized = [](size_t bytes) {
    return [bytes](const std::string& key) -> Result<PlanPtr> {
      return MakeDummyPlan(key, bytes);
    };
  };
  ASSERT_TRUE(cache.GetOrCompile("a", sized(60)).ok());
  ASSERT_TRUE(cache.GetOrCompile("b", sized(60)).ok());
  // Touch a so b becomes the LRU victim.
  EXPECT_NE(cache.Lookup("a"), nullptr);
  ASSERT_TRUE(cache.GetOrCompile("c", sized(60)).ok());
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
}

// Concurrent insert / evict / negative / single-flight churn. The
// assertions are loose; the value of the test is that TSan (the tsan
// preset runs this suite) sees every interleaving the pool generates.
TEST(PlanCacheTest, ChurnUnderConcurrencyIsClean) {
  PlanCache::Config config;
  config.max_bytes = 300;  // forces constant eviction
  config.negative_ttl_ms = 5;
  PlanCache cache(config);
  std::atomic<int> compiles{0};
  auto compiler = [&](const std::string& key) -> Result<PlanPtr> {
    compiles.fetch_add(1);
    if (key == "poison") return Status::ParseError("poison");
    return MakeDummyPlan(key, 100);
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 60; ++i) {
        std::string key = (i % 7 == 0)
                              ? "poison"
                              : "k" + std::to_string((t + i) % 5);
        Result<PlanPtr> plan = cache.GetOrCompile(key, compiler);
        EXPECT_EQ(plan.ok(), key != "poison");
        cache.Lookup("k0");
        if (i % 25 == 0) cache.Clear();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(compiles.load(), 0);
  EXPECT_LE(cache.bytes(), 300u);
}

// A compiler that throws (FaultInjector --fault-throw, bad_alloc) must
// still land the flight: the thrower sees the exception, concurrent
// waiters get a negative entry, and the key never wedges in kCompiling
// with flight_done_ unnotified.
TEST(PlanCacheTest, ThrowingCompilerDoesNotWedgeSingleFlight) {
  PlanCache::Config config;
  config.negative_ttl_ms = 60000;  // no expiry within the test
  PlanCache cache(config);
  std::atomic<int> compiles{0};
  auto throwing = [&](const std::string&) -> Result<PlanPtr> {
    compiles.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    throw std::runtime_error("injected compiler crash");
  };
  std::atomic<int> threw{0};
  std::atomic<int> negative{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      try {
        Result<PlanPtr> plan = cache.GetOrCompile("crash", throwing);
        if (!plan.ok()) negative.fetch_add(1);
      } catch (const std::runtime_error&) {
        threw.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Exactly one thread compiled (and got the exception); the waiters
  // were woken and served the negative entry instead of deadlocking.
  EXPECT_EQ(compiles.load(), 1);
  EXPECT_EQ(threw.load(), 1);
  EXPECT_EQ(negative.load(), 3);
  // The key is not wedged: a later request is a negative hit, not an
  // infinite flight_done_ wait.
  bool hit = false;
  Result<PlanPtr> cached = cache.GetOrCompile("crash", throwing);
  EXPECT_FALSE(cached.ok());
  EXPECT_EQ(cached.status().code(), StatusCode::kInternal);
  EXPECT_EQ(compiles.load(), 1);
  // And Clear() can retire it (it is negative, not kCompiling), after
  // which a healthy compiler succeeds.
  cache.Clear();
  auto healthy = [](const std::string& key) -> Result<PlanPtr> {
    return MakeDummyPlan(key, 10);
  };
  Result<PlanPtr> recovered = cache.GetOrCompile("crash", healthy, &hit);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(hit);
}

// Negative entries are bounded by count: a stream of distinct poison
// schemas (or bogus keys from malformed requests) cannot grow the table
// for the life of the daemon, and expired failures are swept when the
// next failure lands even if their key is never looked up again.
TEST(PlanCacheTest, NegativeEntriesAreBoundedAndSwept) {
  PlanCache::Config config;
  config.negative_ttl_ms = 60000;
  config.max_negative_entries = 4;
  PlanCache cache(config);
  auto poison = [](const std::string&) -> Result<PlanPtr> {
    return Status::ParseError("poison");
  };
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(
        cache.GetOrCompile("bad" + std::to_string(i), poison).ok());
  }
  EXPECT_LE(cache.entries(), 4u);
  // The newest failure is still served from the cache...
  bool hit = false;
  EXPECT_FALSE(cache.GetOrCompile("bad63", poison, &hit).ok());
  EXPECT_TRUE(hit);
  // ...while the oldest was dropped (recompiling it is a miss).
  EXPECT_FALSE(cache.GetOrCompile("bad0", poison, &hit).ok());
  EXPECT_FALSE(hit);

  // Expired negatives are swept on the next landing, not retained until
  // their own key happens to be requested again.
  PlanCache::Config ttl_config;
  ttl_config.negative_ttl_ms = 10;
  PlanCache ttl_cache(ttl_config);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(
        ttl_cache.GetOrCompile("p" + std::to_string(i), poison).ok());
  }
  EXPECT_EQ(ttl_cache.entries(), 8u);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(ttl_cache.GetOrCompile("fresh", poison).ok());
  EXPECT_EQ(ttl_cache.entries(), 1u);
}

// ---------------------------------------------------------------------------
// Dispatcher

DispatcherOptions FastOptions() {
  DispatcherOptions options;
  options.retry_after_ms = 7;
  options.backoff.initial_delay_ms = 1;
  options.backoff.max_delay_ms = 2;
  return options;
}

TEST(DispatcherTest, PingAndUnknownVerb) {
  Dispatcher dispatcher(FastOptions());
  Response pong = dispatcher.Handle(MakeRequest("ping", ""));
  EXPECT_TRUE(pong.status.ok());
  EXPECT_EQ(pong.body, "pong\n");
  Response bad = dispatcher.Handle(MakeRequest("frobnicate", ""));
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
}

TEST(DispatcherTest, CacheHitReportIsByteIdenticalToColdCompile) {
  // Cold compile on a fresh dispatcher...
  Dispatcher cold(FastOptions());
  Response cold_response = cold.Handle(
      MakeRequest("validate", kViolatingDoc, {{"id", "r1"}}));
  EXPECT_EQ(cold_response.headers.at("cache"), "miss");
  ASSERT_FALSE(cold_response.body.empty());

  // ...and a warmed dispatcher serving the same request from the cache
  // must produce the same report bytes. Header-wise only `cache`
  // differs.
  Dispatcher warm(FastOptions());
  Response warmed =
      warm.Handle(MakeRequest("schema.put", kSchema, {{"id", "warm"}}));
  ASSERT_TRUE(warmed.status.ok()) << warmed.status.ToString();
  Response hit_response = warm.Handle(
      MakeRequest("validate", kViolatingDoc, {{"id", "r1"}}));
  EXPECT_EQ(hit_response.headers.at("cache"), "hit");
  EXPECT_EQ(hit_response.body, cold_response.body);
  EXPECT_EQ(hit_response.headers.at("verdict"),
            cold_response.headers.at("verdict"));
  EXPECT_EQ(hit_response.headers.at("schema"),
            cold_response.headers.at("schema"));

  // Repeat on the same dispatcher: second hit, still identical.
  Response again = warm.Handle(
      MakeRequest("validate", kViolatingDoc, {{"id", "r1"}}));
  EXPECT_EQ(again.body, cold_response.body);
}

TEST(DispatcherTest, ValidateStreamMatchesValidateByteForByte) {
  // The streaming verb must produce the same report bytes and verdict
  // as the materialized one -- only the mode header differs -- for an
  // ok document, a violating document, and a parse failure.
  Dispatcher dispatcher(FastOptions());
  const char* docs[] = {kValidDoc, kViolatingDoc,
                        "<!DOCTYPE bib [ <!ELEMENT bib EMPTY> ]><bib>"};
  for (const char* doc : docs) {
    Response dom = dispatcher.Handle(
        MakeRequest("validate", doc, {{"id", "r1"}}));
    Response stream = dispatcher.Handle(
        MakeRequest("validate.stream", doc, {{"id", "r1"}}));
    EXPECT_EQ(stream.body, dom.body);
    EXPECT_EQ(stream.status.ToString(), dom.status.ToString());
    EXPECT_EQ(stream.headers.at("mode"), "stream");
    EXPECT_EQ(dom.headers.count("mode"), 0u);
    auto verdict = dom.headers.find("verdict");
    if (verdict != dom.headers.end()) {
      EXPECT_EQ(stream.headers.at("verdict"), verdict->second);
    }
    EXPECT_EQ(stream.headers.at("schema"), dom.headers.at("schema"));
  }
  // Both verbs share one compiled plan: the stream request after the
  // materialized one is a cache hit.
  Response hit = dispatcher.Handle(
      MakeRequest("validate.stream", kValidDoc, {{"id", "r2"}}));
  EXPECT_EQ(hit.headers.at("cache"), "hit");
}

TEST(DispatcherTest, SchemaHeaderSkipsDoctypeRequirement) {
  Dispatcher dispatcher(FastOptions());
  Response put = dispatcher.Handle(MakeRequest("schema.put", kSchema));
  ASSERT_TRUE(put.status.ok()) << put.status.ToString();
  std::string schema = put.headers.at("schema");
  Response ok = dispatcher.Handle(MakeRequest(
      "validate", "<bib><entry isbn=\"9\"/></bib>", {{"schema", schema}}));
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.headers.at("verdict"), "ok");
  EXPECT_EQ(ok.headers.at("cache"), "hit");
  // Unknown hash: explicit invalid-argument, not a silent recompile.
  Response unknown = dispatcher.Handle(MakeRequest(
      "validate", "<bib/>", {{"schema", "00000000deadbeef"}}));
  EXPECT_EQ(unknown.status.code(), StatusCode::kInvalidArgument);
}

TEST(DispatcherTest, PoisonSchemaIsNegativeCached) {
  DispatcherOptions options = FastOptions();
  options.cache.negative_ttl_ms = 60000;  // no expiry within the test
  Dispatcher dispatcher(options);
  // Well-delimited DOCTYPE shell, but the declaration inside fails DTD
  // compilation -- the failure must be negative-cached.
  const std::string poison = "<!DOCTYPE bib [ <!ELEMENT bib (unclosed> ]>";
  Response first = dispatcher.Handle(MakeRequest("validate", poison));
  EXPECT_FALSE(first.status.ok());
  for (int i = 0; i < 5; ++i) {
    Response repeat = dispatcher.Handle(MakeRequest("validate", poison));
    EXPECT_FALSE(repeat.status.ok());
  }
  EXPECT_EQ(dispatcher.cache().stats().compile_failures, 1u)
      << "poison schema was recompiled inside the TTL window";
  EXPECT_EQ(dispatcher.cache().stats().negative_hits, 5u);
}

// The cache key hashes the DOCTYPE internal subset only. Document
// content after the subset -- in particular "]>" sequences, which every
// CDATA section ends with and which are legal character data -- must
// never leak into the key or break extraction.
TEST(DispatcherTest, DoctypeSubsetEndsBeforeDocumentContent) {
  constexpr char kCdataDoc[] = R"(<?xml version="1.0"?>
<!DOCTYPE bib [
<!ELEMENT bib (entry*)>
<!ELEMENT entry (#PCDATA)>
<!ATTLIST entry isbn CDATA #REQUIRED>
<!-- xic:constraints
key entry.isbn
-->
]>
<bib><entry isbn="1"><![CDATA[tricky ]> bytes]]></entry></bib>
)";
  constexpr char kPlainDoc[] = R"(<?xml version="1.0"?>
<!DOCTYPE bib [
<!ELEMENT bib (entry*)>
<!ELEMENT entry (#PCDATA)>
<!ATTLIST entry isbn CDATA #REQUIRED>
<!-- xic:constraints
key entry.isbn
-->
]>
<bib><entry isbn="2">plain</entry></bib>
)";
  Dispatcher dispatcher(FastOptions());
  Response cdata = dispatcher.Handle(MakeRequest("validate", kCdataDoc));
  ASSERT_TRUE(cdata.status.ok()) << cdata.status.ToString();
  EXPECT_EQ(cdata.headers.at("verdict"), "ok");
  // Same DOCTYPE, different content: same subset hash, so the second
  // document is a cache hit on the first one's plan.
  Response plain = dispatcher.Handle(MakeRequest("validate", kPlainDoc));
  ASSERT_TRUE(plain.status.ok()) << plain.status.ToString();
  EXPECT_EQ(plain.headers.at("schema"), cdata.headers.at("schema"));
  EXPECT_EQ(plain.headers.at("cache"), "hit");
  EXPECT_EQ(dispatcher.cache().stats().misses, 1u);
}

// A quoted literal inside a markup declaration may contain "]>" without
// terminating the subset, and a subset that never closes is an explicit
// parse error (not content swallowed up to some later "]>").
TEST(DispatcherTest, DoctypeExtractionHonorsQuotesAndTermination) {
  constexpr char kQuotedDoc[] = R"(<!DOCTYPE bib [
<!ELEMENT bib (entry*)>
<!ELEMENT entry EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED>
<!ATTLIST entry note CDATA "tricky ]> default">
]>
<bib><entry isbn="1"/></bib>
)";
  Dispatcher dispatcher(FastOptions());
  Response quoted = dispatcher.Handle(MakeRequest("validate", kQuotedDoc));
  ASSERT_TRUE(quoted.status.ok()) << quoted.status.ToString();
  EXPECT_EQ(quoted.headers.at("verdict"), "ok");
  // Unterminated subset: explicit error before any compile.
  Response unterminated = dispatcher.Handle(MakeRequest(
      "validate", "<!DOCTYPE bib [ <!ELEMENT bib EMPTY> <bib/>"));
  EXPECT_EQ(unterminated.status.code(), StatusCode::kParseError);
  EXPECT_EQ(dispatcher.cache().stats().compile_failures, 0u);
}

TEST(DispatcherTest, ImplyIsMemoized) {
  Dispatcher dispatcher(FastOptions());
  Request imply = MakeRequest(
      "imply", "key entry.isbn\n?\nkey entry.isbn\n", {{"lang", "lu"}});
  Response first = dispatcher.Handle(imply);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(first.headers.at("memo"), "miss");
  EXPECT_NE(first.body.find("implied true"), std::string::npos);
  Response second = dispatcher.Handle(imply);
  EXPECT_EQ(second.headers.at("memo"), "hit");
  EXPECT_EQ(second.body, first.body);
}

TEST(DispatcherTest, ImplyLanguagesAndErrors) {
  Dispatcher dispatcher(FastOptions());
  // Missing separator.
  EXPECT_EQ(dispatcher.Handle(MakeRequest("imply", "key a.x\n"))
                .status.code(),
            StatusCode::kInvalidArgument);
  // lid needs a schema for the DTD.
  EXPECT_EQ(dispatcher
                .Handle(MakeRequest("imply", "key a.x\n?\nkey a.x\n",
                                    {{"lang", "lid"}}))
                .status.code(),
            StatusCode::kInvalidArgument);
  // lu-finite differs from lu on the paper's finite-implication examples;
  // here just pin that the verb accepts it.
  Response finite = dispatcher.Handle(MakeRequest(
      "imply", "key entry.isbn\n?\nkey entry.isbn\n", {{"lang", "lu-finite"}}));
  EXPECT_TRUE(finite.status.ok()) << finite.status.ToString();
}

TEST(DispatcherTest, TransientDispatchFaultIsRetriedWithBackoff) {
  DispatcherOptions options = FastOptions();
  options.faults.rate = 1.0;  // every request faults...
  options.faults.transient_attempts = 1;  // ...on its first attempt only
  options.faults.sites = {"serve.dispatch"};
  Dispatcher dispatcher(options);
  // Without retries the client sees the transient failure + retry hint.
  Response flaky = dispatcher.Handle(
      MakeRequest("ping", "", {{"id", "r1"}}));
  EXPECT_EQ(flaky.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(flaky.headers.at("retry-after-ms"), "7");
  // With retries=1 the second attempt clears the transient fault.
  Response recovered = dispatcher.Handle(
      MakeRequest("ping", "", {{"id", "r1"}, {"retries", "1"}}));
  EXPECT_TRUE(recovered.status.ok());
  EXPECT_EQ(recovered.headers.at("attempts"), "2");
}

// The retries header is honored at exactly one layer: Handle()'s outer
// loop. The validator runs a single engine attempt per dispatch (so
// retries=N cannot multiply into N*N engine attempts), while the outer
// attempt index is threaded into the engine's fault numbering so
// transient engine-site faults still clear on the retry.
TEST(DispatcherTest, ValidateRetriesAtOneLayerOnly) {
  DispatcherOptions options = FastOptions();
  options.faults.rate = 1.0;  // every request faults...
  options.faults.transient_attempts = 1;  // ...on its first attempt only
  options.faults.sites = {"constraints"};  // an engine-level site
  Dispatcher dispatcher(options);
  Result<PlanPtr> plan = dispatcher.CompileIntoCache(kSchema, "warm");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string schema = plan.value()->key;
  // Without retries: one dispatch, one engine attempt, transient fault
  // surfaces as unavailable.
  Response flaky = dispatcher.Handle(MakeRequest(
      "validate", kValidDoc, {{"id", "r1"}, {"schema", schema}}));
  EXPECT_EQ(flaky.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(flaky.headers.at("attempts"), "1");
  // With retries=1 the *outer* loop redispatches; the engine sees
  // attempt index 1 and the transient fault clears. Under the old
  // two-layer scheme the inner loop would have swallowed the retry and
  // reported attempts=1 here.
  Response recovered = dispatcher.Handle(MakeRequest(
      "validate", kValidDoc,
      {{"id", "r1"}, {"schema", schema}, {"retries", "1"}}));
  EXPECT_TRUE(recovered.status.ok()) << recovered.status.ToString();
  EXPECT_EQ(recovered.headers.at("attempts"), "2");
  EXPECT_EQ(recovered.headers.at("verdict"), "ok");
}

TEST(DispatcherTest, OversizedBodyIsRefusedBeforeParsing) {
  DispatcherOptions options = FastOptions();
  options.max_request_bytes = 16;
  Dispatcher dispatcher(options);
  Response refused = dispatcher.Handle(
      MakeRequest("validate", std::string(64, 'x')));
  EXPECT_EQ(refused.status.code(), StatusCode::kResourceExhausted);
}

// The determinism tentpole: under injected admission/dispatch faults, a
// mixed workload produces byte-identical wire responses at 1, 4 and 16
// threads. Shedding decisions key on the request id, not on timing.
TEST(DispatcherTest, FaultedResponsesAreByteStableAcrossThreadCounts) {
  constexpr int kRequests = 48;
  auto run = [](size_t threads) {
    DispatcherOptions options = FastOptions();
    options.faults.rate = 0.4;
    options.faults.seed = 42;
    options.faults.sites = {"serve.admit", "serve.dispatch"};
    Dispatcher dispatcher(options);
    // Warm the plan so every validate is a cache hit (the first-compile
    // miss would otherwise race to a different `cache` header).
    Result<PlanPtr> plan =
        dispatcher.CompileIntoCache(kSchema, "warmup");
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    const std::string schema = plan.value()->key;

    std::vector<std::string> wire(kRequests);
    ThreadPool pool(threads);
    pool.ParallelFor(kRequests, [&](size_t i) {
      std::string id = "req-" + std::to_string(i);
      Request request =
          i % 3 == 0
              ? MakeRequest("ping", "", {{"id", id}})
              : MakeRequest("validate",
                            i % 3 == 1 ? kValidDoc : kViolatingDoc,
                            {{"id", id}, {"schema", schema}});
      wire[i] = FormatResponse(dispatcher.Handle(request));
    });
    return wire;
  };

  std::vector<std::string> at1 = run(1);
  std::vector<std::string> at4 = run(4);
  std::vector<std::string> at16 = run(16);
  int shed = 0;
  int ok = 0;
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(at4[i], at1[i]) << "request " << i << " diverged at 4 threads";
    EXPECT_EQ(at16[i], at1[i])
        << "request " << i << " diverged at 16 threads";
    if (at1[i].find("xic/1 unavailable") == 0) ++shed;
    if (at1[i].find("xic/1 ok") == 0) ++ok;
  }
  // The workload must actually exercise both outcomes.
  EXPECT_GT(shed, 0) << "fault rate produced no shed responses";
  EXPECT_GT(ok, 0) << "fault rate drowned every request";
}

// ---------------------------------------------------------------------------
// Request-scoped observability: trace ids, stats, stats.prom, debugz.
// These behaviors are protocol surface, not probes: every test in this
// section must pass identically under -DXIC_OBS=OFF (only the
// explicitly #if-guarded histogram checks are obs-build-specific).

TEST(DispatcherTest, TraceIdEchoedVerbatimAndDerivedDeterministically) {
  Dispatcher dispatcher(FastOptions());
  // Client-supplied: echoed back as sent.
  Response echoed = dispatcher.Handle(
      MakeRequest("ping", "", {{"id", "r1"}, {"trace-id", "tok-42"}}));
  EXPECT_EQ(echoed.headers.at("trace-id"), "tok-42");
  // Server-derived: sixteen hex chars, a pure function of the request
  // id -- the same id maps to the same trace id, distinct ids differ.
  Response a1 = dispatcher.Handle(MakeRequest("ping", "", {{"id", "a"}}));
  Response a2 = dispatcher.Handle(MakeRequest("ping", "", {{"id", "a"}}));
  Response b = dispatcher.Handle(MakeRequest("ping", "", {{"id", "b"}}));
  const std::string& derived = a1.headers.at("trace-id");
  EXPECT_EQ(derived.size(), 16u);
  EXPECT_EQ(derived.find_first_not_of("0123456789abcdef"),
            std::string::npos);
  EXPECT_EQ(a2.headers.at("trace-id"), derived);
  EXPECT_NE(b.headers.at("trace-id"), derived);
  // A token with header-unsafe bytes is sanitized, never echoed raw.
  Response unsafe = dispatcher.Handle(
      MakeRequest("ping", "", {{"trace-id", "two words"}}));
  EXPECT_EQ(unsafe.headers.at("trace-id").find(' '), std::string::npos);
  // Error responses carry the id too: that is what makes a failed
  // request joinable with its spans.
  Response error = dispatcher.Handle(
      MakeRequest("frobnicate", "", {{"trace-id", "tok-err"}}));
  EXPECT_FALSE(error.status.ok());
  EXPECT_EQ(error.headers.at("trace-id"), "tok-err");
}

TEST(DispatcherTest, TraceIdsAreByteStableAcrossThreadCounts) {
  constexpr int kRequests = 24;
  auto run = [](size_t threads) {
    Dispatcher dispatcher(FastOptions());
    std::vector<std::string> ids(kRequests);
    ThreadPool pool(threads);
    pool.ParallelFor(kRequests, [&](size_t i) {
      Response response = dispatcher.Handle(
          MakeRequest("ping", "", {{"id", "req-" + std::to_string(i)}}));
      ids[i] = response.headers.at("trace-id");
    });
    return ids;
  };
  std::vector<std::string> one = run(1);
  EXPECT_EQ(run(4), one);
  EXPECT_EQ(run(16), one);
}

// Byte-exact golden for the stats verb on a fresh dispatcher: the verb
// is machine-scraped, so its layout is pinned, flightrec section
// included. (The stats request itself is only recorded after the body
// is rendered, so a fresh dispatcher reads all-zero.)
TEST(DispatcherTest, StatsGoldenIncludesFlightRecorder) {
  Dispatcher dispatcher(FastOptions());
  Response stats = dispatcher.Handle(MakeRequest("stats", ""));
  ASSERT_TRUE(stats.status.ok()) << stats.status.ToString();
  EXPECT_EQ(stats.body,
            "{\n"
            "  \"schema\": \"xic-serve-stats-v1\",\n"
            "  \"cache\": {\"entries\": 0, \"bytes\": 0, \"hits\": 0, "
            "\"misses\": 0, \"evictions\": 0, \"negative_hits\": 0, "
            "\"compile_failures\": 0, \"single_flight_waits\": 0},\n"
            "  \"sessions\": {\"open\": 0, \"opened\": 0, \"closed\": 0, "
            "\"reaped\": 0, \"refused\": 0},\n"
            "  \"flightrec\": {\"capacity\": 512, \"recorded\": 0, "
            "\"dropped\": 0}\n"
            "}\n");
}

TEST(DispatcherTest, StatsPromExposesLayeredServeMetrics) {
  Dispatcher dispatcher(FastOptions());
  Response put = dispatcher.Handle(MakeRequest("schema.put", kSchema));
  ASSERT_TRUE(put.status.ok()) << put.status.ToString();
  const std::string schema = put.headers.at("schema");
  Response validated = dispatcher.Handle(
      MakeRequest("validate", "<bib><entry isbn=\"1\"/></bib>",
                  {{"schema", schema}}));
  ASSERT_TRUE(validated.status.ok()) << validated.status.ToString();
  Response prom = dispatcher.Handle(MakeRequest("stats.prom", ""));
  ASSERT_TRUE(prom.status.ok()) << prom.status.ToString();
  const std::string& text = prom.body;
  // Layered dispatcher counters render with HELP/TYPE in every build.
  EXPECT_NE(text.find("# HELP xic_serve_cache_hits serve.cache.hits\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE xic_serve_cache_hits counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("xic_serve_cache_hits 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("xic_serve_cache_misses 1\n"), std::string::npos)
      << text;
  // schema.put and validate were both recorded before this scrape.
  EXPECT_NE(text.find("xic_serve_flightrec_recorded 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("xic_serve_flightrec_dropped 0\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE xic_serve_cache_entries gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("xic_serve_cache_entries 1\n"), std::string::npos)
      << text;
#if XIC_OBS_ENABLED
  // Probe builds add the latency histograms (per-request and per-verb).
  EXPECT_NE(text.find("# TYPE xic_serve_request_ms histogram\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("xic_serve_request_ms_bucket{le=\"+Inf\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("xic_serve_verb_validate_ms_count"),
            std::string::npos)
      << text;
#endif
}

TEST(DispatcherTest, DebugzRecordsShedsAndFaults) {
  DispatcherOptions options = FastOptions();
  options.faults.rate = 0.5;  // faults key on the id, so some requests
  options.faults.seed = 42;   // shed and others pass -- deterministically
  options.faults.sites = {"serve.admit"};
  Dispatcher dispatcher(options);
  int shed = 0;
  for (int i = 0; i < 16; ++i) {
    Response response = dispatcher.Handle(MakeRequest(
        "validate", kValidDoc, {{"id", "s" + std::to_string(i)}}));
    if (response.status.code() == StatusCode::kUnavailable) ++shed;
  }
  ASSERT_GT(shed, 0) << "fault rate produced no shed validates";
  // The debugz request is admission-checked like any other; probe ids
  // until one clears (each has p=0.5, so 32 misses is ~impossible).
  Response debugz = ErrorResponse(Status::Unavailable("not yet sent"));
  for (int i = 0; i < 32 && !debugz.status.ok(); ++i) {
    debugz = dispatcher.Handle(
        MakeRequest("debugz", "", {{"id", "dz" + std::to_string(i)}}));
  }
  ASSERT_TRUE(debugz.status.ok()) << debugz.status.ToString();
  const std::string& dump = debugz.body;
  EXPECT_EQ(dump.rfind("flightrec capacity=512 recorded=", 0), 0u)
      << dump;
  // Every admission-faulted validate landed as a shed + fault record
  // with its derived trace id.
  EXPECT_NE(dump.find("verb=validate trace="), std::string::npos) << dump;
  EXPECT_NE(dump.find(" status=unavailable "), std::string::npos) << dump;
  EXPECT_NE(dump.find(" shed=1 fault=1"), std::string::npos) << dump;
}

TEST(DispatcherTest, SlowRequestsPromoteThePhaseBreakdown) {
  DispatcherOptions options = FastOptions();
  options.flight_recorder.slow_threshold_us = 0;  // everything is "slow"
  Dispatcher dispatcher(options);
  Response response = dispatcher.Handle(
      MakeRequest("validate", kValidDoc, {{"id", "slow"}}));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  Response debugz = dispatcher.Handle(MakeRequest("debugz", ""));
  // A cold validate compiles then checks; both phases land in the
  // promoted detail alongside the (in-process, so zero) queue wait.
  EXPECT_NE(debugz.body.find(" queue_us=0 compile_us="),
            std::string::npos)
      << debugz.body;
  EXPECT_NE(debugz.body.find(" run_us="), std::string::npos)
      << debugz.body;
}

TEST(DispatcherTest, FlightRecorderDisabledKeepsVerbsAlive) {
  DispatcherOptions options = FastOptions();
  options.flight_recorder.capacity = 0;
  Dispatcher dispatcher(options);
  dispatcher.Handle(MakeRequest("ping", ""));
  Response debugz = dispatcher.Handle(MakeRequest("debugz", ""));
  ASSERT_TRUE(debugz.status.ok());
  EXPECT_EQ(debugz.body,
            "flightrec capacity=0 recorded=0 dropped=0 "
            "slow_threshold_us=100000\n");
  Response stats = dispatcher.Handle(MakeRequest("stats", ""));
  EXPECT_NE(stats.body.find(
                "\"flightrec\": {\"capacity\": 0, \"recorded\": 0, "
                "\"dropped\": 0}"),
            std::string::npos)
      << stats.body;
}

// ---------------------------------------------------------------------------
// Sessions

PlanPtr CompileTestPlan() {
  Dispatcher dispatcher(FastOptions());
  Result<PlanPtr> plan = dispatcher.CompileIntoCache(kSchema, "fixture");
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.value();
}

TEST(SessionTest, OpenApplyClose) {
  SessionRegistry registry;
  FaultInjector clean;
  Result<std::string> name = registry.Open("", CompileTestPlan());
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value(), "s1");
  Result<std::string> body = registry.Apply(
      name.value(), "add root bib\nadd 0 entry\nset 1 isbn 42\n", clean,
      "k");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_NE(body.value().find("vertex 0"), std::string::npos);
  EXPECT_NE(body.value().find("consistent true violations 0"),
            std::string::npos);
  // A key violation flips the consistency verdict but keeps the session.
  body = registry.Apply(name.value(),
                        "add 0 entry\nset 2 isbn 42\n", clean, "k");
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body.value().find("consistent false"), std::string::npos);
  EXPECT_TRUE(registry.Close(name.value()).ok());
  EXPECT_FALSE(registry.Close(name.value()).ok());
}

TEST(SessionTest, RejectedStatementKeepsPriorState) {
  SessionRegistry registry;
  FaultInjector clean;
  ASSERT_TRUE(registry.Open("s", CompileTestPlan()).ok());
  // Statement 2 is garbage: the script stops there, statement 1 stays.
  Result<std::string> body =
      registry.Apply("s", "add root bib\nbogus op here\n", clean, "k");
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body.value().find("error line 2"), std::string::npos);
  // The bib root survived; adding an entry under it works.
  body = registry.Apply("s", "add 0 entry\n", clean, "k");
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body.value().find("vertex 1"), std::string::npos);
}

TEST(SessionTest, CrashedSessionIsReapedOthersSurvive) {
  SessionRegistry registry;
  FaultInjector clean;
  FaultConfig crash_config;
  crash_config.rate = 1.0;
  crash_config.throw_exceptions = true;
  crash_config.sites = {"serve.session"};
  FaultInjector crash(crash_config);
  ASSERT_TRUE(registry.Open("a", CompileTestPlan()).ok());
  ASSERT_TRUE(registry.Open("b", CompileTestPlan()).ok());
  ASSERT_TRUE(registry.Apply("b", "add root bib\n", clean, "k").ok());

  // Session a's update path throws: the handle is poisoned and reaped.
  Result<std::string> crashed =
      registry.Apply("a", "add root bib\n", crash, "k");
  EXPECT_EQ(crashed.status().code(), StatusCode::kInternal);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.stats().reaped, 1u);
  // a is gone...
  EXPECT_EQ(registry.Apply("a", "add 0 entry\n", clean, "k")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // ...but b never noticed.
  Result<std::string> alive = registry.Apply(
      "b", "add 0 entry\nset 1 isbn 7\n", clean, "k");
  ASSERT_TRUE(alive.ok());
  EXPECT_NE(alive.value().find("consistent true"), std::string::npos);
}

TEST(SessionTest, RegistryFullIsExplicitUnavailable) {
  SessionRegistry::Config config;
  config.max_sessions = 1;
  SessionRegistry registry(config);
  ASSERT_TRUE(registry.Open("a", CompileTestPlan()).ok());
  Result<std::string> refused = registry.Open("b", CompileTestPlan());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(registry.stats().refused, 1u);
  // Closing frees the slot.
  ASSERT_TRUE(registry.Close("a").ok());
  EXPECT_TRUE(registry.Open("b", CompileTestPlan()).ok());
}

// ---------------------------------------------------------------------------
// Server (sockets)

class TestClient {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  ~TestClient() { Close(); }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Send(const Request& request) {
    return SendRaw(FormatRequest(request));
  }

  bool SendRaw(const std::string& wire) {
    size_t off = 0;
    while (off < wire.size()) {
      ssize_t n = ::write(fd_, wire.data() + off, wire.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one response frame; false on EOF/error.
  bool Recv(ResponseHead* head, std::string* body) {
    std::string line;
    char c;
    for (;;) {
      ssize_t n = ::read(fd_, &c, 1);
      if (n <= 0) return false;
      if (c == '\n') break;
      line.push_back(c);
    }
    Result<ResponseHead> parsed = ParseResponseLine(line);
    if (!parsed.ok()) return false;
    *head = parsed.value();
    body->resize(parsed.value().body_length);
    size_t off = 0;
    while (off < body->size()) {
      ssize_t n = ::read(fd_, body->data() + off, body->size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool Rpc(const Request& request, ResponseHead* head, std::string* body) {
    return Send(request) && Recv(head, body);
  }

 private:
  int fd_ = -1;
};

ServerOptions TestServerOptions() {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.num_threads = 2;
  options.read_timeout_ms = 2000;
  options.write_timeout_ms = 2000;
  return options;
}

TEST(ServerTest, EndToEndExchange) {
  Server server(TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ResponseHead head;
  std::string body;
  ASSERT_TRUE(client.Rpc(MakeRequest("ping", ""), &head, &body));
  EXPECT_EQ(head.code, StatusCode::kOk);
  EXPECT_EQ(body, "pong\n");
  // schema.put then a header-addressed validate on the same connection.
  ASSERT_TRUE(client.Rpc(MakeRequest("schema.put", kSchema), &head, &body));
  ASSERT_EQ(head.code, StatusCode::kOk);
  std::string schema = head.headers.at("schema");
  ASSERT_TRUE(client.Rpc(MakeRequest("validate",
                                     "<bib><entry isbn=\"1\"/></bib>",
                                     {{"schema", schema}}),
                         &head, &body));
  EXPECT_EQ(head.code, StatusCode::kOk);
  EXPECT_EQ(head.headers.at("verdict"), "ok");
  EXPECT_EQ(head.headers.at("cache"), "hit");
  client.Close();
  server.Shutdown(/*drain=*/true);
  EXPECT_GE(server.stats().served_requests, 3u);
}

TEST(ServerTest, MalformedFrameGetsErrorResponseThenClose) {
  Server server(TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  // Garbage instead of a frame: the server answers with an error frame
  // (it cannot resynchronize, so it then closes the connection).
  ASSERT_TRUE(client.SendRaw("not-the-protocol at all\n"));
  ResponseHead head;
  std::string body;
  ASSERT_TRUE(client.Recv(&head, &body))
      << "server closed without an error response";
  EXPECT_NE(head.code, StatusCode::kOk);
  EXPECT_FALSE(client.Recv(&head, &body)) << "connection was not closed";
  server.Shutdown(true);
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST(ServerTest, DrainLosesNoAcceptedResponses) {
  constexpr int kClients = 8;
  ServerOptions options = TestServerOptions();
  options.num_threads = 2;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  std::atomic<int> complete{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      TestClient client;
      if (!client.Connect(port)) {
        failed.fetch_add(1);
        return;
      }
      ResponseHead head;
      std::string body;
      Request request = MakeRequest(
          "validate", kValidDoc, {{"id", "drain-" + std::to_string(i)}});
      if (client.Rpc(request, &head, &body) &&
          body.size() == head.body_length) {
        complete.fetch_add(1);
      } else {
        failed.fetch_add(1);
      }
    });
  }
  // Wait until every connection is accepted (and thus owed an answer),
  // then shut down mid-flight with drain.
  for (int spin = 0; spin < 400; ++spin) {
    if (server.stats().accepted >= kClients) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server.stats().accepted, static_cast<uint64_t>(kClients));
  server.Shutdown(/*drain=*/true);
  for (std::thread& t : clients) t.join();
  // Drain means zero lost responses: every accepted request got a
  // complete frame (ok or shed -- but never EOF mid-response).
  EXPECT_EQ(complete.load(), kClients);
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(server.stats().served_requests,
            static_cast<uint64_t>(kClients));
}

TEST(ServerTest, QueueOverflowShedsExplicitly) {
  ServerOptions options = TestServerOptions();
  options.num_threads = 1;
  options.max_queue_depth = 1;
  options.read_timeout_ms = 3000;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  // Client A occupies the single worker (the worker blocks reading A's
  // next frame until timeout or close).
  TestClient a;
  ASSERT_TRUE(a.Connect(server.port()));
  ResponseHead head;
  std::string body;
  ASSERT_TRUE(a.Rpc(MakeRequest("ping", ""), &head, &body));

  // B parks in the accept queue; C overflows it and must be shed with an
  // explicit unavailable + retry hint, not a silent close.
  TestClient b;
  ASSERT_TRUE(b.Connect(server.port()));
  ASSERT_TRUE(b.Send(MakeRequest("ping", "")));
  // Give the acceptor a moment to queue b before c arrives.
  for (int spin = 0; spin < 200 && server.stats().accepted < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  TestClient c;
  ASSERT_TRUE(c.Connect(server.port()));
  ResponseHead shed_head;
  std::string shed_body;
  ASSERT_TRUE(c.Recv(&shed_head, &shed_body))
      << "shed connection closed without a response";
  EXPECT_EQ(shed_head.code, StatusCode::kUnavailable);
  EXPECT_EQ(shed_head.headers.count("retry-after-ms"), 1u);

  // Freeing the worker drains B: its queued request is answered.
  a.Close();
  ASSERT_TRUE(b.Recv(&head, &body));
  EXPECT_EQ(head.code, StatusCode::kOk);
  EXPECT_EQ(server.stats().shed_queue_full, 1u);
  server.Shutdown(true);
}

}  // namespace
}  // namespace xic::serve
