#include "util/strings.h"

#include <string.h>

#include <cctype>

namespace xic {

namespace {

// strerror_r has two incompatible signatures: GNU returns the message
// pointer (possibly ignoring the buffer), XSI fills the buffer and
// returns an int. Overload resolution picks the right adapter for
// whichever one <string.h> declared; [[maybe_unused]] because exactly
// one of the two is ever instantiated per platform.
[[maybe_unused]] const char* StrerrorAdapt(const char* result,
                                           const char* /*buffer*/) {
  return result;  // GNU: result is the message
}
[[maybe_unused]] const char* StrerrorAdapt(int result, const char* buffer) {
  return result == 0 ? buffer : "unknown error";  // XSI
}

}  // namespace

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) ||
         std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '.';
}

bool IsXmlName(std::string_view name) {
  if (name.empty() || !IsNameStartChar(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

std::string ErrnoMessage(int err) {
  char buffer[256] = "unknown error";
  return StrerrorAdapt(strerror_r(err, buffer, sizeof(buffer)), buffer);
}

}  // namespace xic
