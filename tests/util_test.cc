#include <gtest/gtest.h>

#include "util/json_writer.h"
#include "util/status.h"
#include "util/strings.h"

namespace xic {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kValidationError),
               "ValidationError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotSupported), "NotSupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("abc"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "abc");
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  XIC_ASSIGN_OR_RETURN(int half, Halve(x));
  XIC_ASSIGN_OR_RETURN(int quarter, Halve(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a.b.c", '.'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(StartsWith("foo", ""));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

using util::JsonWriter;
using Layout = util::JsonWriter::Layout;

TEST(JsonWriterTest, CompactLayoutHasNoWhitespace) {
  JsonWriter w;
  w.BeginObject();
  w.Key("k");
  w.Number(1);
  w.Key("l");
  w.BeginArray();
  w.Bool(true);
  w.Null();
  w.String("x");
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"k\":1,\"l\":[true,null,\"x\"]}");
}

TEST(JsonWriterTest, InlineLayoutSpacesAfterColonAndComma) {
  JsonWriter w;
  w.BeginObject(Layout::kInline);
  w.Key("k");
  w.Number(1);
  w.Key("l");
  w.Number(2);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"k\": 1, \"l\": 2}");
}

// The stats-verb shape: an indented outer object whose sub-objects stay
// on one line each.
TEST(JsonWriterTest, IndentedOuterWithInlineInner) {
  JsonWriter w;
  w.BeginObject(Layout::kIndented);
  w.Key("schema");
  w.String("v1");
  w.Key("cache");
  w.BeginObject(Layout::kInline);
  w.Key("entries");
  w.Number(0);
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"schema\": \"v1\",\n"
            "  \"cache\": {\"entries\": 0}\n"
            "}");
}

// The Chrome trace_event shape: one element per array line, no indent.
TEST(JsonWriterTest, LinesLayoutOneElementPerLine) {
  JsonWriter w;
  w.BeginArray(Layout::kLines);
  w.Raw("{\"a\":1}");
  w.Raw("{\"b\":2}");
  w.EndArray();
  EXPECT_EQ(w.str(), "[\n{\"a\":1},\n{\"b\":2}\n]");
}

TEST(JsonWriterTest, EmptyContainersStayClosedUp) {
  JsonWriter compact;
  compact.BeginObject(Layout::kIndented);
  compact.EndObject();
  EXPECT_EQ(compact.str(), "{}");
  JsonWriter array;
  array.BeginArray(Layout::kLines);
  array.EndArray();
  EXPECT_EQ(array.str(), "[\n]");
}

TEST(JsonWriterTest, EscapesStringsAndKeys) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te\r"),
            "a\\\"b\\\\c\\nd\\te\\r");
  EXPECT_EQ(JsonWriter::Escape(std::string("\x01", 1)), "\\u0001");
  JsonWriter w;
  w.BeginObject();
  w.Key("quote\"key");
  w.String("line\nbreak");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"quote\\\"key\":\"line\\nbreak\"}");
}

TEST(JsonWriterTest, TakeStringMovesTheBuffer) {
  JsonWriter w;
  w.BeginArray();
  w.Number(7);
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[7]");
}

TEST(StringsTest, XmlNames) {
  EXPECT_TRUE(IsXmlName("book"));
  EXPECT_TRUE(IsXmlName("_under"));
  EXPECT_TRUE(IsXmlName("a-b.c1"));
  EXPECT_FALSE(IsXmlName(""));
  EXPECT_FALSE(IsXmlName("1abc"));
  EXPECT_FALSE(IsXmlName("a b"));
  EXPECT_FALSE(IsXmlName("-dash"));
}

}  // namespace
}  // namespace xic
