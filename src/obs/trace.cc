#include "obs/trace.h"

#if XIC_OBS_ENABLED

namespace xic::obs {

namespace {

using Clock = std::chrono::steady_clock;

// The session base time as raw nanoseconds so span begin/end can read it
// without taking the registry mutex.
std::atomic<int64_t> g_base_ns{0};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

uint64_t SinceBaseNs() {
  int64_t now = NowNs();
  int64_t base = g_base_ns.load(std::memory_order_relaxed);
  return now >= base ? static_cast<uint64_t>(now - base) : 0;
}

// Pending per-thread name, applied when the thread registers a buffer.
thread_local std::string tl_thread_name;
thread_local std::shared_ptr<void> tl_buffer;  // actually ThreadBuffer
thread_local uint64_t tl_epoch = 0;

// The ambient request-scoped trace id (ScopedTraceId); spans opened
// while it is non-empty are tagged with it.
thread_local std::string tl_trace_id;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives worker threads
  return *tracer;
}

void Tracer::Start() {
  util::MutexLock lock(&mutex_);
  buffers_.clear();
  g_base_ns.store(NowNs(), std::memory_order_relaxed);
  // A new epoch invalidates every thread's cached buffer pointer; the
  // release store on enabled_ publishes both.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_release); }

std::shared_ptr<Tracer::ThreadBuffer> Tracer::CurrentBuffer() {
  uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tl_buffer != nullptr && tl_epoch == epoch) {
    return std::static_pointer_cast<ThreadBuffer>(tl_buffer);
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  buffer->name = tl_thread_name;
  {
    util::MutexLock lock(&mutex_);
    // The epoch may have advanced between the load above and taking the
    // lock (a concurrent Start()); re-read so the buffer lands in the
    // session it will record into.
    epoch = epoch_.load(std::memory_order_relaxed);
    buffers_.push_back(buffer);
  }
  tl_buffer = buffer;
  tl_epoch = epoch;
  return buffer;
}

void Tracer::SetCurrentThreadName(std::string name) {
  tl_thread_name = std::move(name);
  if (tl_buffer != nullptr) {
    auto buffer = std::static_pointer_cast<ThreadBuffer>(tl_buffer);
    util::MutexLock lock(&buffer->mutex);
    buffer->name = tl_thread_name;
  }
}

TraceSnapshot Tracer::Collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    util::MutexLock lock(&mutex_);
    buffers = buffers_;
  }
  TraceSnapshot snapshot;
  // First pass: sizes, to rebase parent indices across buffers.
  std::vector<size_t> base(buffers.size(), 0);
  size_t total = 0;
  std::vector<std::vector<SpanRecord>> copies(buffers.size());
  for (size_t b = 0; b < buffers.size(); ++b) {
    util::MutexLock lock(&buffers[b]->mutex);
    copies[b] = buffers[b]->spans;
    std::string name = buffers[b]->name;
    if (name.empty()) name = "thread-" + std::to_string(b);
    snapshot.thread_names.push_back(std::move(name));
    base[b] = total;
    total += copies[b].size();
  }
  snapshot.spans.reserve(total);
  for (size_t b = 0; b < buffers.size(); ++b) {
    for (SpanRecord& span : copies[b]) {
      span.tid = static_cast<uint32_t>(b);
      if (span.parent >= 0) {
        span.parent += static_cast<int32_t>(base[b]);
      }
      snapshot.spans.push_back(std::move(span));
    }
  }
  return snapshot;
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view cat) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  buffer_ = tracer.CurrentBuffer();
  if (buffer_ == nullptr) return;
  util::MutexLock lock(&buffer_->mutex);
  index_ = static_cast<int32_t>(buffer_->spans.size());
  SpanRecord record;
  record.name.assign(name);
  record.cat.assign(cat);
  record.start_ns = SinceBaseNs();
  record.parent = buffer_->open.empty() ? -1 : buffer_->open.back();
  if (!tl_trace_id.empty()) {
    // Tag with the thread's ambient request trace id (ScopedTraceId),
    // making the span joinable to its request across the pipeline.
    SpanAttr attr;
    attr.key = "trace_id";
    attr.kind = SpanAttr::Kind::kString;
    attr.string_value = tl_trace_id;
    record.attrs.push_back(std::move(attr));
  }
  buffer_->spans.push_back(std::move(record));
  buffer_->open.push_back(index_);
}

ScopedTraceId::ScopedTraceId(std::string_view id)
    : previous_(std::move(tl_trace_id)) {
  tl_trace_id.assign(id);
}

ScopedTraceId::~ScopedTraceId() { tl_trace_id = std::move(previous_); }

const std::string& ScopedTraceId::Current() { return tl_trace_id; }

ScopedSpan::~ScopedSpan() {
  if (buffer_ == nullptr) return;
  util::MutexLock lock(&buffer_->mutex);
  buffer_->spans[static_cast<size_t>(index_)].end_ns = SinceBaseNs();
  // Spans are strictly scoped, so the top of the open stack is this
  // span; a restart in between cleared nothing (the buffer is retained
  // by this shared_ptr).
  if (!buffer_->open.empty() && buffer_->open.back() == index_) {
    buffer_->open.pop_back();
  }
}

void ScopedSpan::SetSeq(int64_t seq) {
  if (buffer_ == nullptr) return;
  util::MutexLock lock(&buffer_->mutex);
  buffer_->spans[static_cast<size_t>(index_)].seq = seq;
}

void ScopedSpan::AddInt(std::string_view key, int64_t value) {
  if (buffer_ == nullptr) return;
  SpanAttr attr;
  attr.key.assign(key);
  attr.kind = SpanAttr::Kind::kInt;
  attr.int_value = value;
  util::MutexLock lock(&buffer_->mutex);
  buffer_->spans[static_cast<size_t>(index_)].attrs.push_back(
      std::move(attr));
}

void ScopedSpan::AddDouble(std::string_view key, double value) {
  if (buffer_ == nullptr) return;
  SpanAttr attr;
  attr.key.assign(key);
  attr.kind = SpanAttr::Kind::kDouble;
  attr.double_value = value;
  util::MutexLock lock(&buffer_->mutex);
  buffer_->spans[static_cast<size_t>(index_)].attrs.push_back(
      std::move(attr));
}

void ScopedSpan::AddString(std::string_view key, std::string_view value) {
  if (buffer_ == nullptr) return;
  SpanAttr attr;
  attr.key.assign(key);
  attr.kind = SpanAttr::Kind::kString;
  attr.string_value.assign(value);
  util::MutexLock lock(&buffer_->mutex);
  buffer_->spans[static_cast<size_t>(index_)].attrs.push_back(
      std::move(attr));
}

}  // namespace xic::obs

#endif  // XIC_OBS_ENABLED
