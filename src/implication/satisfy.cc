#include "implication/satisfy.h"

#include <map>
#include <set>

namespace xic {

namespace {

// The single reference target of a set-valued source attribute (from set
// foreign keys and inverse constraints), or nullopt / conflict marker.
struct SetAttrTargets {
  std::set<std::string> targets;    // referenced element types
  bool used_by_inverse = false;
};

}  // namespace

Result<TableInstance> GenerateSatisfyingInstance(const ConstraintSet& sigma,
                                                 const DtdStructure* dtd,
                                                 size_t rows_per_type) {
  if (sigma.language == Language::kLid && dtd == nullptr) {
    return Status::InvalidArgument(
        "L_id generation needs the DTD to resolve ID attributes");
  }
  TableSchema schema = TableSchema::Infer(sigma);
  const bool lid = sigma.language == Language::kLid;

  // Per single-valued field, the value column: either the uniform global
  // column v#i, the type's own ID column <type>#i, or a referenced
  // type's ID column (L_id IDREF fields).
  // column key: (type, attr) -> prefix string ("v" or "<type>").
  std::map<std::pair<std::string, std::string>, std::string> prefix;
  std::map<std::pair<std::string, std::string>, SetAttrTargets> set_targets;

  for (const auto& [type, attrs] : schema.attrs) {
    for (const auto& [attr, set_valued] : attrs) {
      if (set_valued) continue;
      std::string p = "v";
      if (lid) {
        std::optional<std::string> id = dtd->IdAttribute(type);
        if (id.has_value() && *id == attr) p = type;
      }
      prefix[{type, attr}] = p;
    }
  }
  for (const Constraint& c : sigma.constraints) {
    switch (c.kind) {
      case ConstraintKind::kForeignKey:
        if (lid) {
          // Unary IDREF field: copy the target's ID column.
          prefix[{c.element, c.attr()}] = c.ref_element;
        }
        break;
      case ConstraintKind::kSetForeignKey:
        set_targets[{c.element, c.attr()}].targets.insert(c.ref_element);
        break;
      case ConstraintKind::kInverse: {
        auto& forward = set_targets[{c.element, c.attr()}];
        forward.targets.insert(c.ref_element);
        forward.used_by_inverse = true;
        auto& backward = set_targets[{c.ref_element, c.ref_attr()}];
        backward.targets.insert(c.element);
        backward.used_by_inverse = true;
        break;
      }
      default:
        break;
    }
  }

  auto column_value = [&](const std::string& p, size_t i) {
    return p + "#" + std::to_string(i);
  };
  // In L / L_u every single-valued field carries the same uniform column,
  // so a set-valued field can safely be filled with it regardless of how
  // many constraints target it. In L_id, ID columns differ per type, so a
  // set field needs a *unique* target type.
  auto set_fill = [&](const std::string& type, const std::string& attr)
      -> Result<AttrValue> {
    auto it = set_targets.find({type, attr});
    if (it == set_targets.end()) return AttrValue{};  // unconstrained
    std::string p = "v";
    if (lid) {
      if (it->second.targets.size() > 1) {
        if (it->second.used_by_inverse) {
          return Status::NotSupported(
              "set-valued attribute " + type + "." + attr +
              " is constrained toward multiple element types and "
              "participates in an inverse; no uniform fill exists");
        }
        return AttrValue{};  // empty satisfies all set foreign keys
      }
      p = *it->second.targets.begin();
    }
    AttrValue out;
    for (size_t i = 0; i < rows_per_type; ++i) {
      out.insert(column_value(p, i));
    }
    return out;
  };

  TableInstance instance;
  for (const auto& [type, attrs] : schema.attrs) {
    std::vector<TableRow>& rows = instance.tables[type];
    for (size_t i = 0; i < rows_per_type; ++i) {
      TableRow row;
      for (const auto& [attr, set_valued] : attrs) {
        if (set_valued) {
          XIC_ASSIGN_OR_RETURN(AttrValue fill, set_fill(type, attr));
          row[attr] = std::move(fill);
        } else {
          row[attr] = {column_value(prefix.at({type, attr}), i)};
        }
      }
      rows.push_back(std::move(row));
    }
  }
  return instance;
}

Result<LiftedDocument> GenerateSatisfyingDocument(const ConstraintSet& sigma,
                                                  const DtdStructure* dtd,
                                                  size_t rows_per_type) {
  XIC_ASSIGN_OR_RETURN(TableInstance instance,
                       GenerateSatisfyingInstance(sigma, dtd, rows_per_type));
  return LiftToDocument(instance, TableSchema::Infer(sigma));
}

}  // namespace xic
