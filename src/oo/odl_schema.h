// ODL-style object schemas: the paper's person/dept example (Sections 1
// and 2.4). Classes have string attributes, keys, and relationships
// (single- or set-valued) that may declare inverses; exporting to XML
// (oo/export_xml.h) preserves object identity via ID attributes and the
// relationship semantics via L_id constraints.

#ifndef XIC_OO_ODL_SCHEMA_H_
#define XIC_OO_ODL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace xic {

enum class RelationshipCardinality {
  kOne,   // relationship <Target>
  kMany,  // relationship set<Target>
};

struct OdlRelationship {
  std::string name;
  std::string target_class;
  RelationshipCardinality cardinality = RelationshipCardinality::kOne;
  /// Name of the inverse relationship on the target class, if declared
  /// (ODL `inverse Target::name`).
  std::optional<std::string> inverse;
};

struct OdlClass {
  std::string name;
  std::vector<std::string> attributes;          // string-valued
  std::vector<std::string> keys;                // unary keys on attributes
  std::vector<OdlRelationship> relationships;
};

class OdlSchema {
 public:
  Status AddClass(OdlClass cls);

  /// Checks: classes unique, keys/relationships reference declared names,
  /// inverse declarations are mutual and agree on targets.
  Status Validate() const;

  const std::vector<OdlClass>& classes() const { return classes_; }
  const OdlClass* Find(const std::string& name) const;

 private:
  std::vector<OdlClass> classes_;
};

}  // namespace xic

#endif  // XIC_OO_ODL_SCHEMA_H_
