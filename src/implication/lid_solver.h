// Implication of L_id constraints (Section 3.1, Proposition 3.1).
//
// The axiomatization I_id:
//   ID-FK:       tau.id ->id tau          |-  tau.id <= tau.id
//   FK-ID:       tau.l <= tau'.id         |-  tau'.id ->id tau'
//   SFK-ID:      tau.l <=S tau'.id        |-  tau'.id ->id tau'
//   Inv-SFK-ID:  tau.l <-> tau'.l'        |-  tau.l <=S tau'.id,
//                                             tau'.l' <=S tau.id
// plus two rules required for soundness/completeness against the declared
// semantics (documented in DESIGN.md):
//   ID-Key:      tau.id ->id tau          |-  tau.id -> tau
//                (document-wide uniqueness implies per-type uniqueness)
//   Inv-Symm:    tau.l <-> tau'.l'        |-  tau'.l' <-> tau.l
//                (the inverse semantics is symmetric)
//
// Implication and finite implication coincide for L_id and are decidable
// in linear time: the closure is computed once in O(|Sigma|) and queries
// are O(1) lookups.

#ifndef XIC_IMPLICATION_LID_SOLVER_H_
#define XIC_IMPLICATION_LID_SOLVER_H_

#include <optional>
#include <string>

#include "constraints/constraint.h"
#include "implication/derivation.h"
#include "model/dtd_structure.h"
#include "util/status.h"

namespace xic {

class LidSolver {
 public:
  /// Builds the I_id closure of `sigma`. The DTD is needed to resolve the
  /// implicit `.id` attribute of each element type. `sigma` should be
  /// well-formed (CheckWellFormed); Init reports structural problems.
  LidSolver(const DtdStructure& dtd, const ConstraintSet& sigma);

  /// Status of closure construction (errors for non-L_id input).
  const Status& status() const { return status_; }

  /// Sigma |= phi (== Sigma |=_f phi for L_id).
  bool Implies(const Constraint& phi) const;

  /// Derivation tree for an implied constraint, or nullopt.
  std::optional<std::string> Explain(const Constraint& phi) const;

  /// Number of facts in the closure (linear in |Sigma|).
  size_t closure_size() const { return closure_.size(); }

  /// The closure facts with provenance (used by path typing).
  const std::map<Constraint, Justification>& facts() const {
    return closure_.facts();
  }

 private:
  Status BuildClosure(const ConstraintSet& sigma);

  const DtdStructure& dtd_;
  Status status_;
  ProofTable closure_;
};

}  // namespace xic

#endif  // XIC_IMPLICATION_LID_SOLVER_H_
