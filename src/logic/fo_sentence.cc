#include "logic/fo_sentence.h"

#include <map>

namespace xic {

FoPtr FoFormula::True() {
  return FoPtr(new FoFormula(FoKind::kTrue, "", "", "", nullptr, nullptr));
}
FoPtr FoFormula::Atom(std::string relation, std::string x, std::string y) {
  return FoPtr(new FoFormula(FoKind::kAtom, std::move(relation), std::move(x), std::move(y),
              nullptr, nullptr));
}
FoPtr FoFormula::Unary(std::string relation, std::string x) {
  return FoPtr(new FoFormula(FoKind::kUnary, std::move(relation), std::move(x), "", nullptr,
              nullptr));
}
FoPtr FoFormula::Equals(std::string x, std::string y) {
  return FoPtr(new FoFormula(FoKind::kEquals, "", std::move(x), std::move(y), nullptr,
              nullptr));
}
FoPtr FoFormula::Not(FoPtr inner) {
  return FoPtr(new FoFormula(FoKind::kNot, "", "", "", std::move(inner), nullptr));
}
FoPtr FoFormula::And(FoPtr left, FoPtr right) {
  return FoPtr(new FoFormula(FoKind::kAnd, "", "", "", std::move(left), std::move(right)));
}
FoPtr FoFormula::Or(FoPtr left, FoPtr right) {
  return FoPtr(new FoFormula(FoKind::kOr, "", "", "", std::move(left), std::move(right)));
}
FoPtr FoFormula::Implies(FoPtr left, FoPtr right) {
  return Or(Not(std::move(left)), std::move(right));
}
FoPtr FoFormula::Exists(std::string var, FoPtr inner) {
  return FoPtr(new FoFormula(FoKind::kExists, "", std::move(var), "", std::move(inner),
              nullptr));
}
FoPtr FoFormula::Forall(std::string var, FoPtr inner) {
  return FoPtr(new FoFormula(FoKind::kForall, "", std::move(var), "", std::move(inner),
              nullptr));
}

void FoFormula::CollectVariables(std::set<std::string>* out) const {
  switch (kind_) {
    case FoKind::kTrue:
      return;
    case FoKind::kAtom:
      out->insert(var1_);
      out->insert(var2_);
      return;
    case FoKind::kUnary:
      out->insert(var1_);
      return;
    case FoKind::kEquals:
      out->insert(var1_);
      out->insert(var2_);
      return;
    case FoKind::kNot:
      left_->CollectVariables(out);
      return;
    case FoKind::kAnd:
    case FoKind::kOr:
      left_->CollectVariables(out);
      right_->CollectVariables(out);
      return;
    case FoKind::kExists:
    case FoKind::kForall:
      out->insert(var1_);
      left_->CollectVariables(out);
      return;
  }
}

size_t FoFormula::VariableCount() const {
  std::set<std::string> vars;
  CollectVariables(&vars);
  return vars.size();
}

bool FoFormula::Eval(const FoStructure& structure,
                     std::map<std::string, size_t>* binding) const {
  switch (kind_) {
    case FoKind::kTrue:
      return true;
    case FoKind::kAtom:
      return structure.HasEdge(relation_, binding->at(var1_),
                               binding->at(var2_));
    case FoKind::kUnary:
      return structure.HasUnary(relation_, binding->at(var1_));
    case FoKind::kEquals:
      return binding->at(var1_) == binding->at(var2_);
    case FoKind::kNot:
      return !left_->Eval(structure, binding);
    case FoKind::kAnd:
      return left_->Eval(structure, binding) &&
             right_->Eval(structure, binding);
    case FoKind::kOr:
      return left_->Eval(structure, binding) ||
             right_->Eval(structure, binding);
    case FoKind::kExists:
    case FoKind::kForall: {
      // Save and restore any outer binding of the re-quantified name.
      auto it = binding->find(var1_);
      bool had = it != binding->end();
      size_t saved = had ? it->second : 0;
      bool result = kind_ == FoKind::kForall;
      for (size_t e = 0; e < structure.size(); ++e) {
        (*binding)[var1_] = e;
        bool inner = left_->Eval(structure, binding);
        if (kind_ == FoKind::kExists && inner) {
          result = true;
          break;
        }
        if (kind_ == FoKind::kForall && !inner) {
          result = false;
          break;
        }
      }
      if (had) {
        (*binding)[var1_] = saved;
      } else {
        binding->erase(var1_);
      }
      return result;
    }
  }
  return false;
}

bool FoFormula::Evaluate(const FoStructure& structure) const {
  std::map<std::string, size_t> binding;
  return Eval(structure, &binding);
}

std::string FoFormula::ToString() const {
  switch (kind_) {
    case FoKind::kTrue:
      return "true";
    case FoKind::kAtom:
      return relation_ + "(" + var1_ + "," + var2_ + ")";
    case FoKind::kUnary:
      return relation_ + "(" + var1_ + ")";
    case FoKind::kEquals:
      return var1_ + "=" + var2_;
    case FoKind::kNot:
      return "!(" + left_->ToString() + ")";
    case FoKind::kAnd:
      return "(" + left_->ToString() + " & " + right_->ToString() + ")";
    case FoKind::kOr:
      return "(" + left_->ToString() + " | " + right_->ToString() + ")";
    case FoKind::kExists:
      return "E" + var1_ + ".(" + left_->ToString() + ")";
    case FoKind::kForall:
      return "A" + var1_ + ".(" + left_->ToString() + ")";
  }
  return "?";
}

FoPtr UnaryKeySentence(const std::string& relation) {
  using F = FoFormula;
  return F::Forall(
      "x", F::Forall(
               "y", F::Implies(
                        F::Exists("z", F::And(F::Atom(relation, "x", "z"),
                                              F::Atom(relation, "y", "z"))),
                        F::Equals("x", "y"))));
}

FoPtr AtLeastTwo(const std::string& var1, const std::string& var2,
                 FoPtr phi_of_var1, FoPtr phi_of_var2) {
  using F = FoFormula;
  return F::Exists(
      var1, F::And(std::move(phi_of_var1),
                   F::Exists(var2, F::And(F::Not(F::Equals(var1, var2)),
                                          std::move(phi_of_var2)))));
}

}  // namespace xic
